//! End-to-end verification: produce a bubble schedule, splice it back into
//! the LLM task graph, re-simulate the combined step under full dependency
//! semantics, and compare against the scheduler's analytic estimate.
//!
//! Run with: `cargo run --release --example verify_schedule`

use optimus_baselines::common::SystemContext;
use optimus_core::{run_optimus, verify, OptimusConfig};
use optimus_modeling::Workload;
use optimus_parallel::ParallelPlan;

fn main() {
    let workload = Workload::small_model();
    let ctx = SystemContext::hopper(workload.num_gpus).expect("cluster setup");

    // Exact re-simulation needs unadjusted dependency points (deferred F
    // points imply a warmup reorder the unmodified graph cannot express).
    let mut cfg = OptimusConfig::new(ParallelPlan::new(2, 2, 2).expect("plan"));
    cfg.adjust_dep_points = false;
    let run = run_optimus(&workload, &cfg, &ctx).expect("optimus run");

    println!(
        "scheduler estimate: {:.4}s (prefix {:.2}ms + LLM {:.2}ms + suffix {:.2}ms)",
        run.outcome.latency_secs(),
        run.outcome.prefix as f64 / 1e6,
        run.profile.makespan as f64 / 1e6,
        run.outcome.suffix as f64 / 1e6,
    );
    match verify(&run, &workload, &ctx, 0.15) {
        Ok(report) => println!(
            "re-simulated:       {:.4}s  (relative error {:.2}%) — schedule verified",
            report.simulated_secs,
            report.rel_error * 100.0
        ),
        Err(e) => println!("verification not applicable or failed: {e}"),
    }
}

//! Quickstart: train a small MLLM under Megatron-LM and under Optimus,
//! compare iteration times, and show where the encoder went.
//!
//! Run with: `cargo run --release --example quickstart`

use optimus_baselines::{common::SystemContext, megatron_lm};
use optimus_core::{run_optimus, OptimusConfig};
use optimus_modeling::Workload;
use optimus_parallel::ParallelPlan;

fn main() {
    // ViT-3B + GPT-11B on 8 simulated H100s, global batch 16 (Appendix C).
    let workload = Workload::small_model();
    let ctx = SystemContext::hopper(workload.num_gpus).expect("cluster setup");

    // Baseline: encoders packed into the first pipeline stage.
    let plan = (2, 2, 2); // (DP, PP, TP)
    let megatron = megatron_lm(&workload, plan, &ctx).expect("megatron run");

    // Optimus: separate encoder parallel plan + bubble scheduling.
    let cfg = OptimusConfig::new(ParallelPlan::new(plan.0, plan.1, plan.2).expect("plan"));
    let optimus = run_optimus(&workload, &cfg, &ctx).expect("optimus run");

    println!("model: {}", workload.mllm.name);
    println!(
        "Megatron-LM: {:.3}s/iter  (MFU {:.1}%, {:.1} GiB peak)",
        megatron.report.iteration_secs,
        megatron.report.mfu * 100.0,
        megatron.report.peak_memory_gib
    );
    println!(
        "Optimus:     {:.3}s/iter  (MFU {:.1}%, {:.1} GiB peak)",
        optimus.report.iteration_secs,
        optimus.report.mfu * 100.0,
        optimus.report.peak_memory_gib
    );
    println!(
        "speedup: {:.2}x",
        megatron.report.iteration_secs / optimus.report.iteration_secs
    );
    println!(
        "\nchosen encoder plan: {} ({} pipelines per LLM pipeline, partition {:?})",
        optimus.enc_plan,
        optimus.outcome.partition.len(),
        optimus.outcome.partition
    );
    println!(
        "scheduling efficiency: coarse {:.1}%, fine {:.1}%  ({} fwd + {} bwd microbatches \
         relocated into interior bubbles)",
        optimus.eff_coarse * 100.0,
        optimus.eff_fine * 100.0,
        optimus.outcome.relocated.0,
        optimus.outcome.relocated.1
    );
}

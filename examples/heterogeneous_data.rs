//! Heterogeneous multimodal data: generate a synthetic LLaVA-style /
//! web-interleaved trace, feed its per-microbatch encoder loads to Optimus,
//! and watch the microbatch-partition search adapt.
//!
//! Run with: `cargo run --release --example heterogeneous_data`

use optimus::baselines::common::SystemContext;
use optimus::core::{run_optimus, OptimusConfig};
use optimus::modeling::{TraceConfig, Workload};
use optimus::parallel::ParallelPlan;

fn main() {
    let workload = Workload::small_model();
    let ctx = SystemContext::hopper(workload.num_gpus).expect("cluster setup");
    let plan = ParallelPlan::new(2, 2, 2).expect("plan");
    let n_mb = workload.microbatches(plan.dp).expect("microbatches");

    for (name, trace) in [
        ("uniform", None),
        ("LLaVA-style", Some(TraceConfig::llava_style())),
        ("web-interleaved", Some(TraceConfig::web_interleaved())),
    ] {
        let mut cfg = OptimusConfig::new(plan);
        cfg.mb_scales = trace.map(|t| {
            t.microbatch_scales(n_mb, workload.microbatch_size, 23)
                .expect("trace scales")
        });
        if let Some(sc) = &cfg.mb_scales {
            let max = sc.iter().cloned().fold(0.0, f64::max);
            let min = sc.iter().cloned().fold(f64::INFINITY, f64::min);
            println!("{name}: per-microbatch encoder load in [{min:.2}, {max:.2}]x");
        } else {
            println!("{name}: all microbatches carry equal encoder load");
        }
        let run = run_optimus(&workload, &cfg, &ctx).expect("optimus");
        println!(
            "  -> {:.4}s/iter, partition {:?}, Eff_fine {:.1}%\n",
            run.report.iteration_secs,
            run.outcome.partition,
            run.eff_fine * 100.0
        );
    }
}

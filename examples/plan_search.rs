//! Plan search: watch the model planner enumerate encoder parallel plans,
//! prune them against GPU memory (§4.1/§4.5), and see what the bubble
//! scheduler makes of each survivor.
//!
//! Run with: `cargo run --release --example plan_search`

use optimus_baselines::common::SystemContext;
use optimus_core::{plan_model, BubbleScheduler, EncoderWork, LlmProfile};
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_trace::TextTable;

fn main() {
    // ViT-22B + LLAMA-70B (Model B) on 128 GPUs, LLM plan (4, 4, 8, V=6).
    let workload = Workload::new(MllmConfig::model_b(), 128, 64, 1);
    let ctx = SystemContext::hopper(workload.num_gpus).expect("cluster setup");
    let llm_plan = ParallelPlan::with_vpp(4, 4, 8, 6).expect("plan");

    let planner = plan_model(&workload, &llm_plan, ctx.topo.gpu.hbm_capacity).expect("planner");
    println!(
        "LLM plan {llm_plan}; {} encoder plan(s) feasible, {} pruned by memory\n",
        planner.candidates.len(),
        planner.pruned
    );

    let profile = LlmProfile::build(&workload, &llm_plan, &ctx).expect("profile");
    println!(
        "LLM-only pipeline: makespan {:.3}s, leading bubble on last stage {:.1}ms, \
         interior bubble capacity (stage 0) {:.1}ms\n",
        profile.makespan as f64 / 1e9,
        profile.devices.last().unwrap().leading_end as f64 / 1e6,
        profile.devices[0].interior_capacity() as f64 / 1e6,
    );

    let mut t = TextTable::new(vec![
        "encoder plan",
        "m",
        "memory (GiB)",
        "latency (s)",
        "efficiency",
        "relocated f/b",
    ]);
    for cand in &planner.candidates {
        let work = EncoderWork::build(&workload.mllm, &cand.plan, 1, &ctx).expect("work");
        let sched = BubbleScheduler::new(&profile, &work, &cand.layout).expect("scheduler");
        match sched.schedule(64, true) {
            Ok(outcome) => {
                t.row(vec![
                    cand.plan.to_string(),
                    cand.layout.pipelines_per_llm_pipeline().to_string(),
                    format!("{:.1}", cand.memory_bytes as f64 / (1u64 << 30) as f64),
                    format!("{:.3}", outcome.latency_secs()),
                    format!("{:.1}%", outcome.efficiency() * 100.0),
                    format!("{}/{}", outcome.relocated.0, outcome.relocated.1),
                ]);
            }
            Err(e) => {
                t.row(vec![
                    cand.plan.to_string(),
                    cand.layout.pipelines_per_llm_pipeline().to_string(),
                    format!("{:.1}", cand.memory_bytes as f64 / (1u64 << 30) as f64),
                    format!("({e})"),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    println!("{}", t.render());
    println!("Algorithm 1 picks the plan with the shortest scheduled latency.");
}

//! Bubble anatomy: simulate a Megatron-LM MLLM step, classify every bubble
//! (Table 1 / Fig. 2), render an ASCII timeline, and export a Chrome trace
//! for Perfetto.
//!
//! Run with: `cargo run --release --example bubble_anatomy`

use std::fs::File;

use optimus_baselines::{common::SystemContext, megatron_lm};
use optimus_modeling::{MllmConfig, Workload};
use optimus_sim::BubbleBreakdown;
use optimus_trace::{bubble_table, render_timeline, write_chrome_trace};

fn main() {
    // ViT-22B + GPT-175B at a reduced 512-GPU scale (Model D weak-scaling
    // point) so the example runs in seconds.
    let workload = Workload::new(MllmConfig::model_d(), 512, 256, 1);
    let ctx = SystemContext::hopper(workload.num_gpus).expect("cluster setup");
    let run = megatron_lm(&workload, (8, 8, 8), &ctx).expect("megatron run");

    let breakdown = BubbleBreakdown::measure(&run.lowered.graph, &run.result);
    println!("{}", bubble_table(&breakdown));
    println!("{}", render_timeline(&run.lowered.graph, &run.result, 100));

    let path = std::env::temp_dir().join("optimus_bubble_anatomy.json");
    let file = File::create(&path).expect("create trace file");
    write_chrome_trace(&run.lowered.graph, &run.result, file).expect("write trace");
    println!(
        "chrome trace written to {} — open it in Perfetto / chrome://tracing",
        path.display()
    );
}

//! The shared bubble-claim arbiter.
//!
//! One step of the schedule offers, per device, a set of proven-idle
//! compute-bubble chunks (OPT005 idle intervals, clipped to the step,
//! minus every span already claimed for relocated encoder work or passed
//! in as extra claims — e.g. checkpoint shard writes). The arbiter carves
//! those chunks once and then hands out non-overlapping sub-spans to any
//! number of consumers, in strict time order per chunk:
//!
//! * [`take`](BubbleArbiter::take) — *divisible* consumption (storage
//!   traffic): fills chunks front-to-back up to a budget, splitting freely;
//! * [`take_atomic`](BubbleArbiter::take_atomic) — *atomic* consumption
//!   (a preemptible compute chunk): the whole duration must fit inside a
//!   single remaining chunk, so consumers are preempted only at bubble
//!   boundaries, never mid-bubble.
//!
//! Consumption is tracked per chunk (not with a single forward cursor), so
//! an atomic request that skips a too-small chunk does not forfeit that
//! chunk's remainder for later divisible requests. The arbiter is `Clone`:
//! planners build trial placements on a clone and commit by replacement.

use optimus_core::{idle_intervals, schedule_insert_set, OptimusRun};
use optimus_lint::{InsertClaim, InsertSet};
use optimus_parallel::{ColocationLayout, ParallelPlan};

use crate::error::FillError;

/// A span handed out by the arbiter: which carved chunk it came from and
/// the half-open `[start, end)` it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TakenSpan {
    /// Index of the carved free chunk on the device (stable across takes:
    /// the enumeration order of the device's free-chunk list).
    pub chunk: usize,
    /// Span start, ns.
    pub start: i64,
    /// Span end (exclusive), ns.
    pub end: i64,
}

impl TakenSpan {
    /// Span duration, ns.
    pub fn dur(&self) -> i64 {
        self.end - self.start
    }
}

/// Subtracts sorted, merged `busy` spans from `iv`, returning the remaining
/// free sub-intervals in time order.
fn subtract_busy(iv: (i64, i64), busy: &[(i64, i64)]) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    let (mut cur, end) = iv;
    for &(bs, be) in busy {
        if be <= cur {
            continue;
        }
        if bs >= end {
            break;
        }
        if bs > cur {
            out.push((cur, bs.min(end)));
        }
        cur = cur.max(be);
        if cur >= end {
            break;
        }
    }
    if cur < end {
        out.push((cur, end));
    }
    out
}

/// Merges sorted spans, coalescing overlaps.
fn merge_spans(mut spans: Vec<(i64, i64)>) -> Vec<(i64, i64)> {
    spans.sort_unstable();
    let mut out: Vec<(i64, i64)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        if e <= s {
            continue;
        }
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Arbitrates one step's proven-idle bubble capacity between consumers
/// (checkpoint shard writes, fill jobs) so their claims can never overlap.
#[derive(Debug, Clone)]
pub struct BubbleArbiter {
    /// Carved free chunks per device, immutable after construction (plus
    /// any [`extend_tail`](BubbleArbiter::extend_tail) appendix).
    free: Vec<Vec<(i64, i64)>>,
    /// Consumption position per chunk: `pos[d][i]` is the next free instant
    /// inside `free[d][i]`; the chunk is exhausted when it reaches the end.
    pos: Vec<Vec<i64>>,
    /// Cached total remaining capacity per device, ns.
    remaining: Vec<i64>,
    /// Capacity per device at construction (before any take or tail
    /// extension), ns.
    initial: Vec<i64>,
    /// The schedule's own insert set (encoder claims + idle intervals).
    base: InsertSet,
    /// Colocation lanes of the layout the schedule was built under.
    lanes: u32,
    /// Step makespan, ns.
    makespan: i64,
    /// Per device: the end of its last busy-or-claimed span (at least the
    /// makespan) — where a tail extension would begin.
    device_tail: Vec<i64>,
}

impl BubbleArbiter {
    /// Carves the free bubble capacity of one Optimus run.
    ///
    /// The free capacity a device offers per step is its proven-idle
    /// compute bubbles (clipped to the step `[0, makespan)`) minus every
    /// span the schedule already claims there for relocated encoder work —
    /// on *any* lane, because arbitrated work occupies the device's
    /// copy/compute engine outright — minus every `extra` claim on the
    /// device (e.g. checkpoint shard writes placed by an earlier consumer).
    pub fn new(
        run: &OptimusRun,
        llm_plan: ParallelPlan,
        extra: &[InsertClaim],
    ) -> Result<BubbleArbiter, FillError> {
        let layout = ColocationLayout::new(llm_plan, run.enc_plan)
            .map_err(|e| FillError::Plan(e.to_string()))?;
        let base = schedule_insert_set(&run.outcome, &run.profile, &layout);
        let num_devices = run.profile.devices.len();
        let makespan = run.profile.makespan;

        let intervals = idle_intervals(&run.profile);
        let mut free: Vec<Vec<(i64, i64)>> = vec![Vec::new(); num_devices];
        let mut device_tail = vec![makespan; num_devices];
        for d in 0..num_devices as u32 {
            let busy = merge_spans(
                base.claims
                    .iter()
                    .filter(|c| c.device == d && !c.comm)
                    .map(|c| (c.start, c.end))
                    .chain(
                        extra
                            .iter()
                            .filter(|c| c.device == d)
                            .map(|c| (c.start, c.end)),
                    )
                    .collect(),
            );
            for iv in &intervals {
                if iv.device != d || iv.comm {
                    continue;
                }
                let clipped = (iv.start.max(0), iv.end.min(makespan));
                if clipped.1 <= clipped.0 {
                    continue;
                }
                free[d as usize].extend(subtract_busy(clipped, &busy));
            }
            free[d as usize].sort_unstable();
            let claim_tail = base
                .claims
                .iter()
                .filter(|c| c.device == d)
                .chain(extra.iter().filter(|c| c.device == d))
                .map(|c| c.end)
                .max()
                .unwrap_or(makespan);
            device_tail[d as usize] = makespan.max(claim_tail);
        }
        let initial: Vec<i64> = free
            .iter()
            .map(|chunks| chunks.iter().map(|&(s, e)| e - s).sum())
            .collect();
        let pos: Vec<Vec<i64>> = free
            .iter()
            .map(|chunks| chunks.iter().map(|&(s, _)| s).collect())
            .collect();
        Ok(BubbleArbiter {
            remaining: initial.clone(),
            initial,
            free,
            pos,
            base,
            lanes: layout.lanes,
            makespan,
            device_tail,
        })
    }

    /// Number of devices in the schedule.
    pub fn devices(&self) -> u32 {
        self.free.len() as u32
    }

    /// Colocation lanes of the underlying layout.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Step makespan, ns.
    pub fn makespan(&self) -> i64 {
        self.makespan
    }

    /// The schedule's own insert set (encoder claims + idle intervals).
    pub fn base(&self) -> &InsertSet {
        &self.base
    }

    /// Remaining free capacity on `device`, ns.
    pub fn remaining(&self, device: u32) -> i64 {
        self.remaining[device as usize]
    }

    /// Free capacity `device` offered at construction, ns (before any take
    /// or tail extension).
    pub fn initial_capacity(&self, device: u32) -> i64 {
        self.initial[device as usize]
    }

    /// All construction-time capacities, ns, indexed by device.
    pub fn initial_capacities(&self) -> &[i64] {
        &self.initial
    }

    /// Where a tail extension on `device` would begin, ns.
    pub fn device_tail(&self, device: u32) -> i64 {
        self.device_tail[device as usize]
    }

    /// Appends one synthetic free chunk of `budget_ns` after each device's
    /// tail. The appendix sits inside the schedule's open trailing idle
    /// interval, so claims placed there still satisfy OPT005 containment;
    /// consuming it stretches the step past the makespan — the caller
    /// prices that stretch against its slack budget.
    pub fn extend_tail(&mut self, budget_ns: i64) {
        if budget_ns <= 0 {
            return;
        }
        for d in 0..self.free.len() {
            let start = self.device_tail[d];
            let end = start + budget_ns;
            self.free[d].push((start, end));
            self.pos[d].push(start);
            self.remaining[d] += budget_ns;
            self.device_tail[d] = end;
        }
    }

    /// Divisible take: consumes up to `budget` ns on `device`, filling
    /// chunks front-to-back and splitting freely. Returns the claimed
    /// spans in time order; their durations sum to `min(budget,
    /// remaining)`.
    pub fn take(&mut self, device: u32, budget: i64) -> Vec<TakenSpan> {
        let d = device as usize;
        let mut budget = budget.max(0);
        let mut out = Vec::new();
        for i in 0..self.free[d].len() {
            if budget <= 0 {
                break;
            }
            let (_, e) = self.free[d][i];
            let p = self.pos[d][i];
            let avail = e - p;
            if avail <= 0 {
                continue;
            }
            let take = budget.min(avail);
            out.push(TakenSpan {
                chunk: i,
                start: p,
                end: p + take,
            });
            self.pos[d][i] = p + take;
            self.remaining[d] -= take;
            budget -= take;
        }
        out
    }

    /// Atomic take: claims one contiguous span of exactly `dur` ns inside
    /// the first chunk on `device` that still has room for it, or `None`
    /// if no single chunk can hold it. Never splits across chunks — this
    /// is what restricts preemption to bubble boundaries.
    pub fn take_atomic(&mut self, device: u32, dur: i64) -> Option<TakenSpan> {
        if dur <= 0 {
            return None;
        }
        let d = device as usize;
        for i in 0..self.free[d].len() {
            let (_, e) = self.free[d][i];
            let p = self.pos[d][i];
            if e - p >= dur {
                self.pos[d][i] = p + dur;
                self.remaining[d] -= dur;
                return Some(TakenSpan {
                    chunk: i,
                    start: p,
                    end: p + dur,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtract_busy_carves_holes() {
        assert_eq!(subtract_busy((0, 100), &[]), vec![(0, 100)]);
        assert_eq!(
            subtract_busy((0, 100), &[(20, 30), (50, 60)]),
            vec![(0, 20), (30, 50), (60, 100)]
        );
        assert_eq!(subtract_busy((0, 100), &[(0, 100)]), vec![]);
        assert_eq!(subtract_busy((10, 20), &[(0, 15)]), vec![(15, 20)]);
        assert_eq!(subtract_busy((10, 20), &[(15, 40)]), vec![(10, 15)]);
    }

    #[test]
    fn merge_spans_coalesces() {
        assert_eq!(
            merge_spans(vec![(5, 10), (0, 6), (20, 25), (25, 30)]),
            vec![(0, 10), (20, 30)]
        );
        assert_eq!(merge_spans(vec![(3, 3), (1, 2)]), vec![(1, 2)]);
    }

    /// A hand-built arbiter over synthetic chunks (bypassing the schedule)
    /// for unit-testing the take semantics.
    fn synthetic(chunks: Vec<(i64, i64)>) -> BubbleArbiter {
        let initial: Vec<i64> = vec![chunks.iter().map(|&(s, e)| e - s).sum()];
        BubbleArbiter {
            pos: vec![chunks.iter().map(|&(s, _)| s).collect()],
            remaining: initial.clone(),
            initial,
            free: vec![chunks],
            base: InsertSet {
                intervals: Vec::new(),
                claims: Vec::new(),
            },
            lanes: 1,
            makespan: 100,
            device_tail: vec![100],
        }
    }

    #[test]
    fn divisible_take_fills_front_to_back() {
        let mut a = synthetic(vec![(0, 10), (20, 25), (40, 60)]);
        assert_eq!(a.remaining(0), 35);
        let spans = a.take(0, 12);
        assert_eq!(
            spans,
            vec![
                TakenSpan {
                    chunk: 0,
                    start: 0,
                    end: 10
                },
                TakenSpan {
                    chunk: 1,
                    start: 20,
                    end: 22
                },
            ]
        );
        assert_eq!(a.remaining(0), 23);
        // A second take resumes exactly where the first stopped.
        let more = a.take(0, 100);
        assert_eq!(
            more,
            vec![
                TakenSpan {
                    chunk: 1,
                    start: 22,
                    end: 25
                },
                TakenSpan {
                    chunk: 2,
                    start: 40,
                    end: 60
                },
            ]
        );
        assert_eq!(a.remaining(0), 0);
    }

    #[test]
    fn atomic_take_skips_small_chunks_without_forfeiting_them() {
        let mut a = synthetic(vec![(0, 10), (20, 50)]);
        // 15 ns does not fit chunk 0; it lands in chunk 1.
        let s = a.take_atomic(0, 15).expect("fits chunk 1");
        assert_eq!(
            s,
            TakenSpan {
                chunk: 1,
                start: 20,
                end: 35
            }
        );
        // Chunk 0's remainder is still available to a divisible take.
        let spans = a.take(0, 10);
        assert_eq!(
            spans,
            vec![TakenSpan {
                chunk: 0,
                start: 0,
                end: 10
            }]
        );
        // Nothing fits 20 ns any more (chunk 1 has 15 left).
        assert!(a.take_atomic(0, 20).is_none());
        assert_eq!(a.remaining(0), 15);
    }

    #[test]
    fn tail_extension_appends_one_chunk_past_the_tail() {
        let mut a = synthetic(vec![(0, 10)]);
        a.extend_tail(40);
        assert_eq!(a.remaining(0), 50);
        assert_eq!(a.device_tail(0), 140);
        assert_eq!(a.initial_capacity(0), 10, "initial excludes the appendix");
        let s = a.take_atomic(0, 30).expect("fits the appendix");
        assert_eq!(
            s,
            TakenSpan {
                chunk: 1,
                start: 100,
                end: 130
            }
        );
    }
}

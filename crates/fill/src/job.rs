//! The fill-job model: what a tenant submits to the bubble-fill planner.

use optimus_cluster::LinkProfile;

use crate::error::FillError;

/// Priority class of a fill job. Lower [`rank`](PriorityClass::rank) is
/// served first; within a class, submission order breaks ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// Evaluation runs of the model being trained (highest fill priority —
    /// their results gate the training job itself).
    Eval,
    /// Data preprocessing / ETL feeding upcoming epochs.
    Preprocess,
    /// Best-effort tenant work: anything goes, last in line.
    BestEffort,
}

impl PriorityClass {
    /// Every class, in service order.
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Eval,
        PriorityClass::Preprocess,
        PriorityClass::BestEffort,
    ];

    /// Service rank: lower is served first.
    pub fn rank(&self) -> u8 {
        match self {
            PriorityClass::Eval => 0,
            PriorityClass::Preprocess => 1,
            PriorityClass::BestEffort => 2,
        }
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            PriorityClass::Eval => "eval",
            PriorityClass::Preprocess => "preprocess",
            PriorityClass::BestEffort => "best-effort",
        }
    }
}

/// An independent job submitted for bubble-fill execution.
///
/// A job divides into `chunks` preemptible chunks of `chunk_ns` compute
/// each; the planner may run any prefix of them inside one step's bubbles
/// and evict the rest. Its working state (`state_bytes`) is loaded over the
/// cluster's `Storage` link before the first chunk and written back on
/// eviction; its resident footprint (`memory_bytes`) must fit the host
/// device's free HBM for the whole occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillJob {
    /// Human-readable job name (unique per submission batch).
    pub name: String,
    /// Priority class; see [`PriorityClass::rank`].
    pub priority: PriorityClass,
    /// Compute cost of one preemptible chunk, ns (`> 0`).
    pub chunk_ns: i64,
    /// Number of chunks submitted (`> 0`).
    pub chunks: u32,
    /// Resident HBM footprint while the job occupies a device, bytes.
    pub memory_bytes: u64,
    /// Working state moved over the storage link on load and evict, bytes.
    pub state_bytes: u64,
}

impl FillJob {
    /// Validates the job spec.
    pub fn validate(&self) -> Result<(), FillError> {
        if self.name.is_empty() {
            return Err(FillError::Invalid("fill job needs a name".into()));
        }
        if self.chunk_ns <= 0 {
            return Err(FillError::Invalid(format!(
                "job `{}`: non-positive chunk_ns {}",
                self.name, self.chunk_ns
            )));
        }
        if self.chunks == 0 {
            return Err(FillError::Invalid(format!(
                "job `{}`: zero chunks",
                self.name
            )));
        }
        Ok(())
    }

    /// Total submitted compute, ns.
    pub fn total_compute_ns(&self) -> i64 {
        self.chunk_ns * self.chunks as i64
    }
}

/// Time to move `bytes` over a storage link, in integer nanoseconds.
pub fn storage_time_ns(bytes: u64, storage: &LinkProfile) -> i64 {
    let secs = storage.latency + bytes as f64 / storage.bandwidth;
    (secs * 1e9).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_time_scales_with_bytes() {
        let link = LinkProfile {
            bandwidth: 1e9,
            latency: 1e-3,
        };
        // 1 GB over 1 GB/s + 1 ms latency = 1.001 s.
        assert_eq!(storage_time_ns(1_000_000_000, &link), 1_001_000_000);
    }

    #[test]
    fn job_validation_rejects_degenerate_specs() {
        let job = FillJob {
            name: "j".into(),
            priority: PriorityClass::Eval,
            chunk_ns: 10,
            chunks: 4,
            memory_bytes: 0,
            state_bytes: 0,
        };
        assert!(job.validate().is_ok());
        assert_eq!(job.total_compute_ns(), 40);
        assert!(FillJob {
            chunks: 0,
            ..job.clone()
        }
        .validate()
        .is_err());
        assert!(FillJob {
            chunk_ns: 0,
            ..job.clone()
        }
        .validate()
        .is_err());
        assert!(FillJob {
            name: String::new(),
            ..job
        }
        .validate()
        .is_err());
    }

    #[test]
    fn priority_ranks_are_ordered() {
        let ranks: Vec<u8> = PriorityClass::ALL.iter().map(|c| c.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
    }
}

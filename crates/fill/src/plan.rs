//! The bubble-fill placement engine.
//!
//! [`plan_fill`] packs a batch of [`FillJob`]s into one step's arbitrated
//! bubbles. Jobs are served in priority order (class rank, then submission
//! order); each picks the admissible device with the most remaining bubble
//! capacity, loads its working state over the storage link (divisible
//! spans), runs as many preemptible chunks as fit atomically inside single
//! bubbles, and — when preempted before completion — writes its state back
//! out. A configurable slack budget adds one synthetic bubble after each
//! device's tail, bounding exactly how far fill work may stretch the step
//! past its makespan. Jobs whose state movement or first chunk cannot be
//! funded are deferred untouched.
//!
//! The engine is sequential and allocation-order deterministic: the
//! resulting [`FillPlan`] is bit-identical however many workers the primary
//! plan search used, because its only input is the (deterministic) run.

use optimus_cluster::ClusterTopology;
use optimus_core::OptimusRun;
use optimus_lint::{Analyzer, FillSpec, InsertClaim, InsertSet, LintReport, Severity};
use optimus_parallel::ParallelPlan;

use crate::arbiter::{BubbleArbiter, TakenSpan};
use crate::error::FillError;
use crate::job::{storage_time_ns, FillJob};

/// Bubble-fill planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillConfig {
    /// Slack budget as a fraction of the step latency: fill work may
    /// stretch the step past its tail by at most `slack_budget · step_ns`.
    /// `0.0` confines fill strictly to proven-idle bubbles.
    pub slack_budget: f64,
}

impl Default for FillConfig {
    fn default() -> FillConfig {
        FillConfig { slack_budget: 0.05 }
    }
}

impl FillConfig {
    /// A config with an explicit slack budget.
    pub fn with_slack_budget(slack_budget: f64) -> FillConfig {
        FillConfig { slack_budget }
    }

    fn validate(&self) -> Result<(), FillError> {
        if !self.slack_budget.is_finite() || !(0.0..=1.0).contains(&self.slack_budget) {
            return Err(FillError::Invalid(format!(
                "slack_budget must be in [0, 1], got {}",
                self.slack_budget
            )));
        }
        Ok(())
    }
}

/// What happened to one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// The job as submitted.
    pub job: FillJob,
    /// Host device, when any chunk was scheduled; `None` for deferred jobs.
    pub device: Option<u32>,
    /// Chunks placed into bubbles this step.
    pub scheduled_chunks: u32,
    /// Chunks preempted out (state evicted; they run in a later step).
    pub evicted_chunks: u32,
    /// Chunks deferred untouched (the job never started).
    pub deferred_chunks: u32,
    /// Storage time spent loading working state, ns.
    pub load_ns: i64,
    /// Storage time spent evicting working state, ns.
    pub evict_ns: i64,
}

impl JobOutcome {
    /// True when every submitted chunk was scheduled.
    pub fn completed(&self) -> bool {
        self.scheduled_chunks == self.job.chunks
    }

    /// Scheduled compute, ns.
    pub fn compute_ns(&self) -> i64 {
        self.scheduled_chunks as i64 * self.job.chunk_ns
    }

    /// Storage overhead (load + evict), ns.
    pub fn overhead_ns(&self) -> i64 {
        self.load_ns + self.evict_ns
    }
}

/// What a placed fill span does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillSpanKind {
    /// Working-state load over the storage link.
    Load,
    /// Preemptible compute chunk `i` of the job.
    Chunk(u32),
    /// Working-state evict over the storage link.
    Evict,
}

impl FillSpanKind {
    /// Short display label.
    pub fn label(&self) -> String {
        match self {
            FillSpanKind::Load => "load".into(),
            FillSpanKind::Chunk(i) => format!("chunk{i}"),
            FillSpanKind::Evict => "evict".into(),
        }
    }
}

/// One placed fill span (lane-agnostic; the device-wide truth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillSpanRec {
    /// Owning job name.
    pub job: String,
    /// Host device.
    pub device: u32,
    /// What the span does.
    pub kind: FillSpanKind,
    /// Span start, ns.
    pub start: i64,
    /// Span end (exclusive), ns.
    pub end: i64,
}

impl FillSpanRec {
    /// Span duration, ns.
    pub fn dur(&self) -> i64 {
        self.end - self.start
    }
}

/// A priced, placed bubble-fill schedule for one step.
#[derive(Debug, Clone, PartialEq)]
pub struct FillPlan {
    /// Jobs as submitted.
    pub jobs: Vec<FillJob>,
    /// Per-job outcomes, in submission order; chunks conserve exactly
    /// (`scheduled + evicted + deferred == submitted` per job).
    pub outcomes: Vec<JobOutcome>,
    /// Every placed span, in service order (lane-agnostic).
    pub spans: Vec<FillSpanRec>,
    /// The fill claims in the OPT005 claim model, duplicated across
    /// colocation lanes (a fill span occupies the device outright).
    pub claims: Vec<InsertClaim>,
    /// The combined insert set: the schedule's own claims, the extra
    /// (checkpoint) claims, and the fill claims, against the proven-idle
    /// intervals plus the slack appendix.
    pub insert_set: InsertSet,
    /// The schedule's own (primary) claims.
    pub primary_claims: Vec<InsertClaim>,
    /// The extra claims the placement arbitrated around (checkpoint shard
    /// writes).
    pub checkpoint_claims: Vec<InsertClaim>,
    /// Fault-free step latency of the underlying schedule, ns.
    pub step_ns: i64,
    /// Where the primary step ends on the busiest device (tail of primary
    /// plus checkpoint claims, at least the makespan), ns.
    pub step_end_ns: i64,
    /// How far fill work stretches the step past `step_end_ns`, ns.
    pub stretch_ns: i64,
    /// The configured slack budget in ns (`round(slack_budget · step_ns)`);
    /// `stretch_ns <= slack_budget_ns` by construction.
    pub slack_budget_ns: i64,
    /// Per-device free bubble capacity before fill (after primary and
    /// checkpoint claims), ns.
    pub bubble_capacity_ns: Vec<i64>,
    /// Devices in the schedule.
    pub devices: u32,
    /// Device-time the primary job keeps busy per step (total device-time
    /// minus statically proven compute-bubble idle), ns.
    pub primary_busy_ns: i64,
}

/// One job's trial placement before commit.
struct Trial {
    arb: BubbleArbiter,
    load: Vec<TakenSpan>,
    chunks: Vec<TakenSpan>,
    evict: Vec<TakenSpan>,
    evict_ns: i64,
}

/// Attempts to place `q` chunks of `job` on `device` on a clone of `arb`:
/// the state load first, then `q` atomic chunks, then — if preempted — the
/// state evict. `None` when any part cannot be funded.
fn attempt(
    arb: &BubbleArbiter,
    device: u32,
    job: &FillJob,
    load_ns: i64,
    q: u32,
    storage: &optimus_cluster::LinkProfile,
) -> Option<Trial> {
    let mut trial = arb.clone();
    let load = trial.take(device, load_ns);
    if load.iter().map(TakenSpan::dur).sum::<i64>() < load_ns {
        return None;
    }
    let mut chunks = Vec::with_capacity(q as usize);
    for _ in 0..q {
        chunks.push(trial.take_atomic(device, job.chunk_ns)?);
    }
    let evict_ns = if q < job.chunks && job.state_bytes > 0 {
        storage_time_ns(job.state_bytes, storage)
    } else {
        0
    };
    let evict = trial.take(device, evict_ns);
    if evict.iter().map(TakenSpan::dur).sum::<i64>() < evict_ns {
        return None;
    }
    Some(Trial {
        arb: trial,
        load,
        chunks,
        evict,
        evict_ns,
    })
}

/// Places a batch of fill jobs into one step's bubbles.
///
/// `extra_claims` are spans an earlier consumer already holds (checkpoint
/// shard writes); fill never overlaps them. See the module docs for the
/// placement policy.
pub fn plan_fill(
    run: &OptimusRun,
    llm_plan: ParallelPlan,
    topo: &ClusterTopology,
    extra_claims: &[InsertClaim],
    jobs: &[FillJob],
    cfg: &FillConfig,
) -> Result<FillPlan, FillError> {
    cfg.validate()?;
    for job in jobs {
        job.validate()?;
    }
    for (i, a) in jobs.iter().enumerate() {
        if jobs[i + 1..].iter().any(|b| b.name == a.name) {
            return Err(FillError::Invalid(format!(
                "duplicate job name `{}`",
                a.name
            )));
        }
    }
    let step_ns = run.outcome.latency;
    if step_ns <= 0 {
        return Err(FillError::Invalid(format!(
            "non-positive step latency {step_ns}"
        )));
    }

    let mut arb = BubbleArbiter::new(run, llm_plan, extra_claims)?;
    let devices = arb.devices();
    let lanes = arb.lanes().max(1);
    let bubble_capacity_ns = arb.initial_capacities().to_vec();
    let step_end_ns = (0..devices)
        .map(|d| arb.device_tail(d))
        .max()
        .unwrap_or(arb.makespan());
    let slack_budget_ns = (cfg.slack_budget * step_ns as f64).round() as i64;
    arb.extend_tail(slack_budget_ns);

    // Worst-rank resident estimate: every device starts with the same HBM
    // headroom, which shrinks as jobs are pinned to it.
    let resident = run.memory.total();
    let mut headroom: Vec<u64> =
        vec![topo.gpu.hbm_capacity.saturating_sub(resident); devices as usize];

    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (jobs[i].priority.rank(), i));

    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
    let mut spans: Vec<FillSpanRec> = Vec::new();
    let mut claims: Vec<InsertClaim> = Vec::new();

    for &ji in &order {
        let job = &jobs[ji];
        let defer = JobOutcome {
            job: job.clone(),
            device: None,
            scheduled_chunks: 0,
            evicted_chunks: 0,
            deferred_chunks: job.chunks,
            load_ns: 0,
            evict_ns: 0,
        };
        // Admission: the job's resident footprint must fit the device.
        let mut device: Option<u32> = None;
        for d in 0..devices {
            if headroom[d as usize] < job.memory_bytes {
                continue;
            }
            match device {
                Some(best) if arb.remaining(d) <= arb.remaining(best) => {}
                _ => device = Some(d),
            }
        }
        let Some(device) = device else {
            outcomes[ji] = Some(defer);
            continue;
        };
        let load_ns = if job.state_bytes > 0 {
            storage_time_ns(job.state_bytes, &topo.storage)
        } else {
            0
        };

        // How many chunks fit greedily after the load, then back off one
        // chunk at a time until the (preemption) evict is fundable too.
        let max_fit = {
            let mut probe = arb.clone();
            let load = probe.take(device, load_ns);
            if load.iter().map(TakenSpan::dur).sum::<i64>() < load_ns {
                outcomes[ji] = Some(defer);
                continue;
            }
            let mut q = 0u32;
            while q < job.chunks && probe.take_atomic(device, job.chunk_ns).is_some() {
                q += 1;
            }
            q
        };
        let mut placed: Option<(u32, Trial)> = None;
        let mut q = max_fit;
        while q > 0 {
            if let Some(trial) = attempt(&arb, device, job, load_ns, q, &topo.storage) {
                placed = Some((q, trial));
                break;
            }
            q -= 1;
        }
        let Some((q, trial)) = placed else {
            outcomes[ji] = Some(defer);
            continue;
        };

        // Commit.
        arb = trial.arb;
        headroom[device as usize] -= job.memory_bytes;
        let mut push = |kind: FillSpanKind, span: &TakenSpan| {
            spans.push(FillSpanRec {
                job: job.name.clone(),
                device,
                kind,
                start: span.start,
                end: span.end,
            });
            // A fill span occupies the device outright: claim it on every
            // colocation lane so overlap with any lane's insert trips
            // OPT005.
            for lane in 0..lanes {
                claims.push(InsertClaim {
                    device,
                    lane,
                    comm: false,
                    start: span.start,
                    end: span.end,
                    label: format!("fill {} {}", job.name, kind.label()),
                    chain: None,
                });
            }
        };
        for s in &trial.load {
            push(FillSpanKind::Load, s);
        }
        for (c, s) in trial.chunks.iter().enumerate() {
            push(FillSpanKind::Chunk(c as u32), s);
        }
        for s in &trial.evict {
            push(FillSpanKind::Evict, s);
        }
        outcomes[ji] = Some(JobOutcome {
            job: job.clone(),
            device: Some(device),
            scheduled_chunks: q,
            evicted_chunks: job.chunks - q,
            deferred_chunks: 0,
            load_ns,
            evict_ns: trial.evict_ns,
        });
    }

    let stretch_ns = spans
        .iter()
        .map(|s| s.end - step_end_ns)
        .max()
        .unwrap_or(0)
        .max(0);

    let mut insert_set = arb.base().clone();
    // The slack appendix lives inside the open trailing idle interval, so
    // no extra interval entries are needed for containment.
    insert_set.claims.extend(extra_claims.iter().cloned());
    insert_set.claims.extend(claims.iter().cloned());

    let primary_busy_ns = devices as i64 * step_ns
        - bubble_capacity_ns.iter().sum::<i64>()
        - extra_claims
            .iter()
            .filter(|c| c.lane == 0)
            .map(|c| c.end - c.start)
            .sum::<i64>();

    Ok(FillPlan {
        jobs: jobs.to_vec(),
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every job resolved"))
            .collect(),
        spans,
        claims,
        insert_set,
        primary_claims: arb.base().claims.clone(),
        checkpoint_claims: extra_claims.to_vec(),
        step_ns,
        step_end_ns,
        stretch_ns,
        slack_budget_ns,
        bubble_capacity_ns,
        devices,
        primary_busy_ns,
    })
}

impl FillPlan {
    /// The OPT008 claim classes: primary compute-side claims, checkpoint
    /// claims (lane-deduplicated), and lane-deduplicated fill claims.
    pub fn fill_spec(&self) -> FillSpec {
        let dedup = |claims: &[InsertClaim]| -> Vec<InsertClaim> {
            claims.iter().filter(|c| c.lane == 0).cloned().collect()
        };
        FillSpec {
            primary: self
                .primary_claims
                .iter()
                .filter(|c| !c.comm)
                .cloned()
                .collect(),
            checkpoint: dedup(&self.checkpoint_claims),
            fill: dedup(&self.claims),
        }
    }

    /// Total fill compute scheduled, ns.
    pub fn fill_compute_ns(&self) -> i64 {
        self.outcomes.iter().map(JobOutcome::compute_ns).sum()
    }

    /// Total fill storage overhead (loads + evicts), ns.
    pub fn fill_overhead_ns(&self) -> i64 {
        self.outcomes.iter().map(JobOutcome::overhead_ns).sum()
    }

    /// Statically validates the placement: the combined primary +
    /// checkpoint + fill claims must pass OPT005 (containment + per-lane
    /// exclusivity) and the fill claims must pass OPT008 (no overlap with
    /// primary, checkpoint, or sibling fill claims). Returns the full
    /// report; error-severity diagnostics fail.
    pub fn verify(&self) -> Result<LintReport, FillError> {
        let report = Analyzer::new()
            .inserts(self.insert_set.clone())
            .fill(self.fill_spec())
            .analyze();
        let errors: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| format!("{}: {}", d.code.code(), d.message))
            .collect();
        if errors.is_empty() {
            Ok(report)
        } else {
            Err(FillError::Lint(errors))
        }
    }
}

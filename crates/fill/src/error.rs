//! Typed errors for the bubble-fill planner.

use std::fmt;

/// Everything that can go wrong planning a bubble-fill placement.
#[derive(Debug, Clone, PartialEq)]
pub enum FillError {
    /// Invalid configuration or job spec (zero chunks, negative slack, …).
    Invalid(String),
    /// The colocation layout or underlying schedule was unusable.
    Plan(String),
    /// The combined claims (primary inserts + checkpoint shards + fill)
    /// failed static analysis — the placement itself is unsound.
    Lint(Vec<String>),
}

impl fmt::Display for FillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FillError::Invalid(msg) => write!(f, "invalid fill config: {msg}"),
            FillError::Plan(msg) => write!(f, "fill planning failed: {msg}"),
            FillError::Lint(diags) => {
                write!(f, "fill placement failed lint: {}", diags.join("; "))
            }
        }
    }
}

impl std::error::Error for FillError {}

//! `optimus-fill` — multi-tenant bubble-fill planning.
//!
//! The paper exploits pipeline bubbles for *encoder* work; the larger prize
//! (PipeFill) is filling those same bubbles with *independent* jobs — eval
//! runs, data preprocessing, best-effort tenant work. This crate
//! generalizes the recovery engine's checkpoint packer into a first-class
//! planner:
//!
//! 1. **Bubble arbitration** ([`arbiter`]) — a [`BubbleArbiter`] carves the
//!    schedule's proven-idle compute bubbles (the OPT005 claim machinery)
//!    once per step and hands out non-overlapping spans to any number of
//!    consumers: divisible takes for storage traffic, atomic takes for
//!    preemptible compute chunks (preemption only at bubble boundaries).
//!    Checkpoint shard writes and fill jobs negotiate the same intervals
//!    through this one path.
//! 2. **Job model** ([`job`]) — a [`FillJob`] names its compute cost per
//!    preemptible chunk, resident HBM footprint, working-state bytes moved
//!    over the `Storage` link on load/evict, and a [`PriorityClass`].
//! 3. **Placement** ([`plan`]) — [`plan_fill`] packs job chunks into the
//!    arbitrated bubbles with per-device HBM headroom accounting and a
//!    configurable slack budget bounding how far fill work may stretch the
//!    step past its makespan. Placement is sequential and deterministic:
//!    bit-identical at any plan-search worker count.
//! 4. **Pricing** ([`report`]) — a [`ClusterGoodputReport`] prices
//!    primary-job slowdown against fill throughput, with a per-priority-
//!    class breakdown, a naive run-after-training baseline, and bit-exact
//!    golden text + JSON renderings.
//!
//! Soundness is checked statically: [`FillPlan::verify`] runs OPT005 on
//! the combined insert set and the OPT008 fill-overlap pass (fill claims
//! never overlap primary-schedule claims, checkpoint claims, or each
//! other).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod error;
pub mod job;
pub mod plan;
pub mod report;

pub use arbiter::{BubbleArbiter, TakenSpan};
pub use error::FillError;
pub use job::{storage_time_ns, FillJob, PriorityClass};
pub use plan::{plan_fill, FillConfig, FillPlan, FillSpanKind, FillSpanRec, JobOutcome};
pub use report::{ClassStats, ClusterGoodputReport};

//! Cluster-goodput pricing: what fill throughput costs in primary-job
//! slowdown, against a naive run-after-training baseline.

use optimus_json::Json;

use crate::job::PriorityClass;
use crate::plan::FillPlan;

/// Per-priority-class fill statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStats {
    /// The class.
    pub class: PriorityClass,
    /// Jobs submitted in this class.
    pub jobs: u32,
    /// Chunks submitted.
    pub submitted_chunks: u32,
    /// Chunks scheduled into bubbles.
    pub scheduled_chunks: u32,
    /// Chunks preempted out (state evicted).
    pub evicted_chunks: u32,
    /// Chunks deferred untouched.
    pub deferred_chunks: u32,
    /// Scheduled compute, ns.
    pub compute_ns: i64,
    /// Storage overhead (loads + evicts), ns.
    pub overhead_ns: i64,
}

/// The headline result of one fill study: how much device-time the cluster
/// keeps busy per step with fill enabled, what it cost the primary job, and
/// how it compares to running the same fill work serially after the step.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterGoodputReport {
    /// Devices in the schedule.
    pub devices: u32,
    /// Fault-free primary step latency, ns.
    pub step_ns: i64,
    /// Step stretch caused by fill work past the primary tail, ns.
    pub stretch_ns: i64,
    /// Configured slack budget, ns (`stretch_ns <= slack_budget_ns`).
    pub slack_budget_ns: i64,
    /// Device-time the primary job keeps busy per step, ns.
    pub primary_busy_ns: i64,
    /// Device-time fill keeps busy per step (compute + storage overhead),
    /// ns.
    pub fill_busy_ns: i64,
    /// Fill compute alone (the throughput that matters to tenants), ns.
    pub fill_compute_ns: i64,
    /// Naive baseline tail: the same placed fill spans executed serially
    /// after the step on each device (the busiest device decides), ns.
    pub naive_tail_ns: i64,
    /// Per-priority-class breakdown, in service order (every class listed).
    pub classes: Vec<ClassStats>,
}

impl ClusterGoodputReport {
    /// Builds the report from a placed fill plan.
    pub fn from_plan(plan: &FillPlan) -> ClusterGoodputReport {
        let classes = PriorityClass::ALL
            .iter()
            .map(|&class| {
                let outs = plan.outcomes.iter().filter(|o| o.job.priority == class);
                let mut s = ClassStats {
                    class,
                    jobs: 0,
                    submitted_chunks: 0,
                    scheduled_chunks: 0,
                    evicted_chunks: 0,
                    deferred_chunks: 0,
                    compute_ns: 0,
                    overhead_ns: 0,
                };
                for o in outs {
                    s.jobs += 1;
                    s.submitted_chunks += o.job.chunks;
                    s.scheduled_chunks += o.scheduled_chunks;
                    s.evicted_chunks += o.evicted_chunks;
                    s.deferred_chunks += o.deferred_chunks;
                    s.compute_ns += o.compute_ns();
                    s.overhead_ns += o.overhead_ns();
                }
                s
            })
            .collect();
        let mut per_device = vec![0i64; plan.devices as usize];
        for s in &plan.spans {
            per_device[s.device as usize] += s.dur();
        }
        ClusterGoodputReport {
            devices: plan.devices,
            step_ns: plan.step_ns,
            stretch_ns: plan.stretch_ns,
            slack_budget_ns: plan.slack_budget_ns,
            primary_busy_ns: plan.primary_busy_ns,
            fill_busy_ns: plan.fill_compute_ns() + plan.fill_overhead_ns(),
            fill_compute_ns: plan.fill_compute_ns(),
            naive_tail_ns: per_device.iter().copied().max().unwrap_or(0),
            classes,
        }
    }

    /// Busy device-time per step with fill enabled (primary + fill), ns.
    pub fn busy_ns(&self) -> i64 {
        self.primary_busy_ns + self.fill_busy_ns
    }

    /// Cluster goodput with fill in the bubbles: busy device-time over
    /// total device-time of the (possibly stretched) step.
    pub fn cluster_goodput(&self) -> f64 {
        let wall = self.step_ns + self.stretch_ns;
        if wall <= 0 || self.devices == 0 {
            return 0.0;
        }
        self.busy_ns() as f64 / (self.devices as i64 * wall) as f64
    }

    /// Cluster goodput of the naive baseline: the identical fill work runs
    /// serially after an unstretched step, so the wall grows by the busiest
    /// device's fill tail instead of the bubble stretch.
    pub fn naive_goodput(&self) -> f64 {
        let wall = self.step_ns + self.naive_tail_ns;
        if wall <= 0 || self.devices == 0 {
            return 0.0;
        }
        self.busy_ns() as f64 / (self.devices as i64 * wall) as f64
    }

    /// True when bubble fill strictly beats running the same work after
    /// training (equivalently: the stretch is strictly smaller than the
    /// naive tail).
    pub fn beats_naive(&self) -> bool {
        self.cluster_goodput() > self.naive_goodput()
    }

    /// Fill-job slowdown imposed on the primary job, as a fraction of the
    /// step.
    pub fn slowdown(&self) -> f64 {
        if self.step_ns <= 0 {
            return 0.0;
        }
        self.stretch_ns as f64 / self.step_ns as f64
    }

    /// Bit-exact text rendering (integers plus fixed-precision ratios of
    /// integers): the golden-file and determinism-comparison format.
    pub fn golden_text(&self) -> String {
        let mut out = format!(
            "cluster goodput {:.6} = busy (primary {} + fill {}) / ({} x wall {}) ns\n\
             step {} stretch {} / slack budget {} | naive tail {} -> naive goodput {:.6}\n",
            self.cluster_goodput(),
            self.primary_busy_ns,
            self.fill_busy_ns,
            self.devices,
            self.step_ns + self.stretch_ns,
            self.step_ns,
            self.stretch_ns,
            self.slack_budget_ns,
            self.naive_tail_ns,
            self.naive_goodput(),
        );
        for s in &self.classes {
            out.push_str(&format!(
                "{}: jobs {} | chunks {}/{}/{} of {} (scheduled/evicted/deferred) \
                 | compute {} overhead {} ns\n",
                s.class.label(),
                s.jobs,
                s.scheduled_chunks,
                s.evicted_chunks,
                s.deferred_chunks,
                s.submitted_chunks,
                s.compute_ns,
                s.overhead_ns,
            ));
        }
        out
    }

    /// JSON rendering for downstream tooling.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("devices", Json::Num(self.devices as f64)),
            ("step_ns", Json::Num(self.step_ns as f64)),
            ("stretch_ns", Json::Num(self.stretch_ns as f64)),
            ("slack_budget_ns", Json::Num(self.slack_budget_ns as f64)),
            ("primary_busy_ns", Json::Num(self.primary_busy_ns as f64)),
            ("fill_busy_ns", Json::Num(self.fill_busy_ns as f64)),
            ("fill_compute_ns", Json::Num(self.fill_compute_ns as f64)),
            ("naive_tail_ns", Json::Num(self.naive_tail_ns as f64)),
            ("cluster_goodput", Json::Num(self.cluster_goodput())),
            ("naive_goodput", Json::Num(self.naive_goodput())),
            (
                "classes",
                Json::Arr(
                    self.classes
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("class", Json::Str(s.class.label().into())),
                                ("jobs", Json::Num(s.jobs as f64)),
                                ("submitted_chunks", Json::Num(s.submitted_chunks as f64)),
                                ("scheduled_chunks", Json::Num(s.scheduled_chunks as f64)),
                                ("evicted_chunks", Json::Num(s.evicted_chunks as f64)),
                                ("deferred_chunks", Json::Num(s.deferred_chunks as f64)),
                                ("compute_ns", Json::Num(s.compute_ns as f64)),
                                ("overhead_ns", Json::Num(s.overhead_ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(stretch: i64, naive_tail: i64) -> ClusterGoodputReport {
        ClusterGoodputReport {
            devices: 2,
            step_ns: 1000,
            stretch_ns: stretch,
            slack_budget_ns: 50,
            primary_busy_ns: 1500,
            fill_busy_ns: 400,
            fill_compute_ns: 350,
            naive_tail_ns: naive_tail,
            classes: vec![ClassStats {
                class: PriorityClass::Eval,
                jobs: 1,
                submitted_chunks: 4,
                scheduled_chunks: 4,
                evicted_chunks: 0,
                deferred_chunks: 0,
                compute_ns: 350,
                overhead_ns: 50,
            }],
        }
    }

    #[test]
    fn goodput_prices_the_stretch() {
        let r = report(0, 200);
        assert!((r.cluster_goodput() - 1900.0 / 2000.0).abs() < 1e-12);
        assert!((r.naive_goodput() - 1900.0 / 2400.0).abs() < 1e-12);
        assert!(r.beats_naive());
        assert_eq!(r.slowdown(), 0.0);
        // Stretch equal to the naive tail: no win.
        assert!(!report(200, 200).beats_naive());
    }

    #[test]
    fn golden_text_is_stable() {
        let r = report(10, 200);
        assert_eq!(r.golden_text(), r.golden_text());
        let text = r.golden_text();
        assert!(
            text.contains("step 1000 stretch 10 / slack budget 50"),
            "{text}"
        );
        assert!(text.contains("eval: jobs 1 | chunks 4/0/0 of 4"), "{text}");
    }

    #[test]
    fn json_round_trips() {
        let r = report(10, 200);
        let parsed = Json::parse(&r.to_json().to_compact()).expect("json");
        assert_eq!(parsed.field("stretch_ns").unwrap().as_i64().unwrap(), 10);
        assert_eq!(parsed.field("classes").unwrap().as_arr().unwrap().len(), 1);
    }
}

//! Cross-validation of simulated pipeline makespans against the closed-form
//! bubble formulas from the Megatron-LM paper (Narayanan et al.):
//!
//! * 1F1B / GPipe, uniform stages:  T = (n + pp − 1) · (t_f + t_b)
//! * interleaved 1F1B, V chunks:    T = n · (t_f + t_b) + (pp − 1) · (t_f + t_b) / V
//!
//! where t_f/t_b are the *per-rank* forward/backward times (split evenly
//! across the V chunks in the interleaved case).
//!
//! Shapes are drawn from the in-repo deterministic PRNG so the suite needs
//! no registry access and failures reproduce from the fixed seeds.

use optimus_cluster::DurNs;
use optimus_detrand::{rngs::StdRng, RngExt, SeedableRng};
use optimus_pipeline::{
    gpipe, interleaved_1f1b, one_f_one_b, simulate_pipeline, PipelineSpec, StageSpec, TimedKernel,
};

fn uniform_spec(pp: u32, vpp: u32, n: u32, tf_chunk: u64, tb_chunk: u64) -> PipelineSpec {
    let stage = StageSpec {
        fwd: vec![TimedKernel {
            label: "f",
            dur: DurNs(tf_chunk),
            comm: false,
        }],
        bwd: vec![TimedKernel {
            label: "b",
            dur: DurNs(tb_chunk),
            comm: false,
        }],
        ..StageSpec::default()
    };
    PipelineSpec {
        pp,
        vpp,
        n_microbatches: n,
        stages: vec![stage; (pp * vpp) as usize],
        dp_allgather: DurNs::ZERO,
        dp_reducescatter: DurNs::ZERO,
        p2p: DurNs::ZERO,
    }
}

#[test]
fn one_f_one_b_closed_form() {
    let mut rng = StdRng::seed_from_u64(0x1F1B);
    for _ in 0..32 {
        let pp = rng.random_range(1u32..7);
        let k = rng.random_range(1u32..5);
        let tf = rng.random_range(1u64..500);
        let tb = rng.random_range(1u64..500);
        let n = pp * k;
        let spec = uniform_spec(pp, 1, n, tf, tb);
        let sched = one_f_one_b(pp, n).unwrap();
        let (_l, r) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        assert_eq!(r.makespan().0, u64::from(n + pp - 1) * (tf + tb));
    }
}

#[test]
fn gpipe_closed_form() {
    let mut rng = StdRng::seed_from_u64(0x6B1BE);
    for _ in 0..32 {
        let pp = rng.random_range(1u32..7);
        let n = rng.random_range(1u32..12);
        let tf = rng.random_range(1u64..500);
        let tb = rng.random_range(1u64..500);
        let spec = uniform_spec(pp, 1, n, tf, tb);
        let sched = gpipe(pp, n).unwrap();
        let (_l, r) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        assert_eq!(r.makespan().0, u64::from(n + pp - 1) * (tf + tb));
    }
}

#[test]
fn interleaved_closed_form() {
    let mut rng = StdRng::seed_from_u64(0x171E6);
    for _ in 0..32 {
        let pp = rng.random_range(2u32..6);
        let vpp = rng.random_range(2u32..4);
        let k = rng.random_range(1u32..4);
        let unit = rng.random_range(1u64..200);
        // Per-chunk times chosen so per-rank totals divide evenly by vpp.
        let n = pp * k;
        let (tf_chunk, tb_chunk) = (unit, 2 * unit);
        let spec = uniform_spec(pp, vpp, n, tf_chunk, tb_chunk);
        let sched = interleaved_1f1b(pp, vpp, n, None).unwrap();
        let (_l, r) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        // Per-rank totals: t_f = vpp·tf_chunk, t_b = vpp·tb_chunk.
        let tf = u64::from(vpp) * tf_chunk;
        let tb = u64::from(vpp) * tb_chunk;
        let expect = u64::from(n) * (tf + tb) + u64::from(pp - 1) * (tf + tb) / u64::from(vpp);
        assert_eq!(
            r.makespan().0,
            expect,
            "pp={pp} vpp={vpp} n={n} unit={unit}"
        );
    }
}

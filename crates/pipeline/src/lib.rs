//! Pipeline schedules and their lowering to simulator task graphs.
//!
//! Implements the scheduling substrate the paper builds on: Megatron-LM's
//! 1F1B and interleaved-1F1B schedules, GPipe (for the Alpa-like baseline),
//! the Appendix B balanced layer partitioner, lowering of schedules to
//! kernel-level task graphs (with TP collectives, pipeline P2P and DP
//! collectives), and extraction of the encoder–LLM dependency points
//! `F_i`/`B_i` including the Fig. 12 warmup adjustment.
//!
//! # Examples
//!
//! ```
//! use optimus_pipeline::schedule::{interleaved_1f1b, one_f_one_b};
//!
//! let s = one_f_one_b(4, 8).unwrap();
//! assert_eq!(s.warmup, vec![3, 2, 1, 0]);
//! let i = interleaved_1f1b(4, 2, 8, None).unwrap();
//! assert_eq!(i.warmup, vec![10, 8, 6, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod bidir;
pub mod deps;
pub mod error;
pub mod lower;
pub mod schedule;
pub mod stage;

pub use balance::{balance_layers, BalancedPartition};
pub use bidir::{simulate_bidirectional, BidirSpec, Flow};
pub use deps::{dependency_points, DependencyPoints};
pub use error::PipelineError;
pub use lower::{
    lower, simulate_pipeline, InsertKernel, InsertStream, Lowered, OpRef, PipelineSpec,
};
pub use schedule::{
    gpipe, interleaved_1f1b, one_f_one_b, zero_bubble_h1, Dir, PipelineOp, PipelineSchedule,
};
pub use stage::{StageSpec, TimedKernel};

//! Lowering: pipeline schedule + stage specs → simulator task graph.
//!
//! One simulated device represents one pipeline rank (one TP group — TP
//! ranks execute in lockstep, and DP replicas are identical, so a single
//! pipeline suffices; DP communication enters as explicit collectives whose
//! durations were computed for the full DP group).
//!
//! The lowering also supports *inserts*: extra kernels (encoder compute /
//! communication) spliced into a device's compute or TP-comm FIFO queue at a
//! chosen position. This is how a bubble schedule is verified end-to-end: the
//! combined graph is re-simulated and the makespan compared against the
//! scheduler's estimate (§6 "online scheduling" discussion).

use std::collections::HashMap;

use optimus_cluster::DurNs;
use optimus_sim::{simulate, SimResult, Stream, TaskGraph, TaskId, TaskKind};

use crate::error::PipelineError;
use crate::schedule::{Dir, PipelineSchedule};
use crate::stage::StageSpec;

/// Reference to one pipeline operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRef {
    /// Pipeline rank.
    pub rank: u32,
    /// Model chunk on that rank.
    pub chunk: u32,
    /// Microbatch.
    pub microbatch: u32,
    /// Direction.
    pub dir: Dir,
}

/// Stream selector for inserted kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertStream {
    /// Splice into the compute queue (encoder compute kernels → bubbles).
    Compute,
    /// Splice into the TP-comm queue (encoder collectives → LLM compute
    /// windows, Design Decision 3).
    TpComm,
}

/// One kernel spliced into the lowered graph.
#[derive(Debug, Clone)]
pub struct InsertKernel {
    /// Device (pipeline rank) to run on.
    pub device: u32,
    /// Which queue to splice into.
    pub stream: InsertStream,
    /// Label for traces.
    pub label: &'static str,
    /// Task kind (typically `EncFwd` / `EncBwd` / `EncTpComm`).
    pub kind: TaskKind,
    /// Duration.
    pub dur: DurNs,
    /// Splice position: run before the LLM kernel that occupies this index
    /// of the device's original (no-insert) queue for the chosen stream.
    /// `u32::MAX` appends after all LLM kernels.
    pub queue_index: u32,
    /// Indices of other inserts this one depends on.
    pub dep_inserts: Vec<u32>,
    /// LLM ops whose *last* kernel must complete first (e.g. the backward
    /// dependency point `B_i`: gradients must exist before encoder backward).
    pub dep_ops: Vec<OpRef>,
    /// LLM ops whose *first* kernel must wait for this insert (e.g. the
    /// forward dependency point `F_i`: activations must exist before the LLM
    /// forward of that microbatch).
    pub feeds_ops: Vec<OpRef>,
}

/// Timing/topology inputs of one LLM pipeline.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Pipeline-parallel size.
    pub pp: u32,
    /// Model chunks per rank.
    pub vpp: u32,
    /// Microbatches per step.
    pub n_microbatches: u32,
    /// Per-virtual-stage kernels; `len == pp · vpp`, virtual stage `s` is
    /// chunk `s / pp` on rank `s % pp`.
    pub stages: Vec<StageSpec>,
    /// Unhidden start-of-step parameter all-gather duration.
    pub dp_allgather: DurNs,
    /// Unhidden end-of-step gradient reduce-scatter duration.
    pub dp_reducescatter: DurNs,
    /// Inter-stage point-to-point transfer duration.
    pub p2p: DurNs,
}

impl PipelineSpec {
    /// Validates stage-count consistency.
    pub fn check(&self, schedule: &PipelineSchedule) -> Result<(), PipelineError> {
        if self.stages.len() != (self.pp * self.vpp) as usize {
            return Err(PipelineError::BadSpec {
                reason: format!(
                    "{} stages for pp={} vpp={}",
                    self.stages.len(),
                    self.pp,
                    self.vpp
                ),
            });
        }
        if schedule.pp != self.pp
            || schedule.vpp != self.vpp
            || schedule.n_microbatches != self.n_microbatches
        {
            return Err(PipelineError::BadSpec {
                reason: "schedule shape does not match spec".into(),
            });
        }
        Ok(())
    }
}

type OpKey = (u32, u32, u32, Dir);

/// A lowered pipeline: the task graph plus maps back to pipeline structure.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The task graph (one device per pipeline rank).
    pub graph: TaskGraph,
    /// First kernel task of each op.
    pub first: HashMap<OpKey, TaskId>,
    /// Last kernel task of each op.
    pub last: HashMap<OpKey, TaskId>,
    /// Task of each insert, parallel to the `inserts` argument.
    pub insert_tasks: Vec<TaskId>,
    /// Per-device LLM compute kernels in queue order (for bubble anchoring).
    pub compute_queue: Vec<Vec<TaskId>>,
    /// Per-device LLM TP-comm kernels in queue order.
    pub tpcomm_queue: Vec<Vec<TaskId>>,
}

impl Lowered {
    /// Convenience: task ids of an op's kernel boundaries.
    pub fn op_first(&self, op: OpRef) -> Option<TaskId> {
        self.first
            .get(&(op.rank, op.chunk, op.microbatch, op.dir))
            .copied()
    }

    /// Last kernel task of an op.
    pub fn op_last(&self, op: OpRef) -> Option<TaskId> {
        self.last
            .get(&(op.rank, op.chunk, op.microbatch, op.dir))
            .copied()
    }

    /// Names a task with its lowering provenance — the op (chunk /
    /// microbatch / direction), transfer, or collective it implements, plus
    /// rank and stream. Used as the witness namer for static analysis
    /// reports, where "`attn` (LLM bwd chunk 1 mb 3, rank 2, Compute)" beats
    /// a bare task id.
    pub fn describe(&self, id: TaskId) -> String {
        let t = self.graph.task(id);
        let role = match t.kind {
            TaskKind::LlmFwd { chunk, microbatch } => {
                format!("LLM fwd chunk {chunk} mb {microbatch}")
            }
            TaskKind::LlmBwd { chunk, microbatch } => {
                format!("LLM bwd chunk {chunk} mb {microbatch}")
            }
            TaskKind::LlmTpComm => "LLM TP collective".into(),
            TaskKind::PpFwdTransfer { microbatch } => {
                format!("PP fwd transfer mb {microbatch}")
            }
            TaskKind::PpBwdTransfer { microbatch } => {
                format!("PP bwd transfer mb {microbatch}")
            }
            TaskKind::DpAllGather => "DP all-gather".into(),
            TaskKind::DpReduceScatter => "DP reduce-scatter".into(),
            TaskKind::Optimizer => "optimizer step".into(),
            TaskKind::EncFwd {
                pipeline,
                stage,
                microbatch,
            } => format!("encoder fwd pipeline {pipeline} stage {stage} mb {microbatch}"),
            TaskKind::EncBwd {
                pipeline,
                stage,
                microbatch,
            } => format!("encoder bwd pipeline {pipeline} stage {stage} mb {microbatch}"),
            TaskKind::EncTpComm => "encoder TP collective".into(),
            TaskKind::EncLlmTransfer => "encoder↔LLM transfer".into(),
            TaskKind::Generic => "task".into(),
        };
        format!("`{}` ({role}, rank {}, {:?})", t.label, t.device, t.stream)
    }
}

/// Lowers a schedule over a spec, splicing in `inserts`.
pub fn lower(
    spec: &PipelineSpec,
    schedule: &PipelineSchedule,
    inserts: &[InsertKernel],
) -> Result<Lowered, PipelineError> {
    spec.check(schedule)?;
    let pp = spec.pp;
    let mut graph = TaskGraph::new(pp);
    let mut first: HashMap<OpKey, TaskId> = HashMap::new();
    let mut last: HashMap<OpKey, TaskId> = HashMap::new();
    let mut compute_queue: Vec<Vec<TaskId>> = vec![Vec::new(); pp as usize];
    let mut tpcomm_queue: Vec<Vec<TaskId>> = vec![Vec::new(); pp as usize];
    let mut insert_tasks: Vec<Option<TaskId>> = vec![None; inserts.len()];

    // Pending cross-rank wires: (transfer task, producing op).
    let mut fwd_wires: Vec<(TaskId, OpKey)> = Vec::new();
    let mut bwd_wires: Vec<(TaskId, OpKey)> = Vec::new();

    // Group insert indices per (device, stream), sorted by queue position.
    let mut dev_inserts: Vec<Vec<usize>> = vec![Vec::new(); pp as usize * 2];
    for (i, ins) in inserts.iter().enumerate() {
        let slot = ins.device as usize * 2 + usize::from(ins.stream == InsertStream::TpComm);
        dev_inserts[slot].push(i);
    }
    for v in &mut dev_inserts {
        v.sort_by_key(|&i| (inserts[i].queue_index, i as u32));
    }

    let total_stages = pp * spec.vpp;

    for rank in 0..pp {
        let ag = graph.push(
            "dp_allgather",
            rank,
            Stream::DpComm,
            spec.dp_allgather,
            TaskKind::DpAllGather,
            vec![],
        );
        let mut comp_cursor = 0usize; // position within dev_inserts compute list
        let mut tp_cursor = 0usize;
        let mut comp_qidx: u32 = 0;
        let mut tp_qidx: u32 = 0;
        let comp_slot = rank as usize * 2;
        let tp_slot = comp_slot + 1;
        let mut rank_last_task: Option<TaskId> = None;

        for op in &schedule.ops[rank as usize] {
            let s = op.chunk * pp + rank;
            let stage = &spec.stages[s as usize];
            let kernels = match op.dir {
                Dir::Fwd => &stage.fwd,
                Dir::Bwd => &stage.bwd,
                Dir::Wgrad => &stage.bwd_weight,
            };
            if kernels.is_empty() {
                continue;
            }
            let key: OpKey = (rank, op.chunk, op.microbatch, op.dir);

            // Incoming transfer, if this op consumes remote data.
            let mut head_deps: Vec<TaskId> = Vec::new();
            if first.is_empty() || !first.keys().any(|k| k.0 == rank) {
                head_deps.push(ag);
            }
            match op.dir {
                Dir::Fwd if s > 0 => {
                    let prod_rank = (s - 1) % pp;
                    let prod_chunk = (s - 1) / pp;
                    if prod_rank == rank {
                        // Same device: direct dependency, no transfer.
                        if let Some(&t) =
                            last.get(&(prod_rank, prod_chunk, op.microbatch, Dir::Fwd))
                        {
                            head_deps.push(t);
                        }
                    } else {
                        let tr = graph.push(
                            "pp_fwd_recv",
                            rank,
                            Stream::P2p,
                            spec.p2p,
                            TaskKind::PpFwdTransfer {
                                microbatch: op.microbatch,
                            },
                            vec![],
                        );
                        fwd_wires.push((tr, (prod_rank, prod_chunk, op.microbatch, Dir::Fwd)));
                        head_deps.push(tr);
                    }
                }
                Dir::Bwd if s + 1 < total_stages => {
                    let prod_rank = (s + 1) % pp;
                    let prod_chunk = (s + 1) / pp;
                    if prod_rank == rank {
                        if let Some(&t) =
                            last.get(&(prod_rank, prod_chunk, op.microbatch, Dir::Bwd))
                        {
                            head_deps.push(t);
                        }
                    } else {
                        let tr = graph.push(
                            "pp_bwd_recv",
                            rank,
                            Stream::P2p,
                            spec.p2p,
                            TaskKind::PpBwdTransfer {
                                microbatch: op.microbatch,
                            },
                            vec![],
                        );
                        bwd_wires.push((tr, (prod_rank, prod_chunk, op.microbatch, Dir::Bwd)));
                        head_deps.push(tr);
                    }
                }
                Dir::Bwd => {
                    // Last virtual stage: backward follows own forward (loss).
                    if let Some(&t) = last.get(&(rank, op.chunk, op.microbatch, Dir::Fwd)) {
                        head_deps.push(t);
                    }
                }
                Dir::Wgrad => {
                    // Weight gradient needs this rank's own input-gradient
                    // pass for the same microbatch; no cross-rank traffic.
                    if let Some(&t) = last.get(&(rank, op.chunk, op.microbatch, Dir::Bwd)) {
                        head_deps.push(t);
                    }
                }
                Dir::Fwd => {}
            }

            // Emit kernels, splicing inserts at their queue positions.
            let mut prev: Option<TaskId> = None;
            for k in kernels {
                if k.comm {
                    while let Some(&ii) = dev_inserts[tp_slot].get(tp_cursor) {
                        if inserts[ii].queue_index <= tp_qidx {
                            insert_tasks[ii] = Some(push_insert(&mut graph, &inserts[ii]));
                            tp_cursor += 1;
                        } else {
                            break;
                        }
                    }
                } else {
                    while let Some(&ii) = dev_inserts[comp_slot].get(comp_cursor) {
                        if inserts[ii].queue_index <= comp_qidx {
                            insert_tasks[ii] = Some(push_insert(&mut graph, &inserts[ii]));
                            comp_cursor += 1;
                        } else {
                            break;
                        }
                    }
                }
                let stream = if k.comm {
                    Stream::TpComm
                } else {
                    Stream::Compute
                };
                let kind = if k.comm {
                    TaskKind::LlmTpComm
                } else {
                    match op.dir {
                        Dir::Fwd => TaskKind::LlmFwd {
                            chunk: op.chunk,
                            microbatch: op.microbatch,
                        },
                        Dir::Bwd | Dir::Wgrad => TaskKind::LlmBwd {
                            chunk: op.chunk,
                            microbatch: op.microbatch,
                        },
                    }
                };
                let deps = match prev {
                    Some(p) => vec![p],
                    None => head_deps.clone(),
                };
                let tid = graph.push(k.label, rank, stream, k.dur, kind, deps);
                if k.comm {
                    tpcomm_queue[rank as usize].push(tid);
                    tp_qidx += 1;
                } else {
                    compute_queue[rank as usize].push(tid);
                    comp_qidx += 1;
                }
                if prev.is_none() {
                    first.insert(key, tid);
                }
                prev = Some(tid);
            }
            if let Some(p) = prev {
                last.insert(key, p);
                rank_last_task = Some(p);
            }
        }

        // Remaining inserts for this device go after all LLM kernels.
        for slot in [comp_slot, tp_slot] {
            let cursor = if slot == comp_slot {
                &mut comp_cursor
            } else {
                &mut tp_cursor
            };
            while let Some(&ii) = dev_inserts[slot].get(*cursor) {
                insert_tasks[ii] = Some(push_insert(&mut graph, &inserts[ii]));
                *cursor += 1;
            }
        }

        // End-of-step gradient reduce-scatter.
        let rs_deps = rank_last_task.map(|t| vec![t]).unwrap_or_default();
        graph.push(
            "dp_reducescatter",
            rank,
            Stream::DpComm,
            spec.dp_reducescatter,
            TaskKind::DpReduceScatter,
            rs_deps,
        );
    }

    // Wire pipeline transfers to their producers.
    for (tr, key) in fwd_wires.into_iter().chain(bwd_wires) {
        let prod = *last.get(&key).ok_or_else(|| PipelineError::BadSpec {
            reason: format!("missing producer op {key:?}"),
        })?;
        graph.add_dep(tr, prod);
    }

    // Wire insert dependencies.
    let insert_tasks: Vec<TaskId> = insert_tasks
        .into_iter()
        .map(|t| t.expect("insert pushed"))
        .collect();
    for (i, ins) in inserts.iter().enumerate() {
        let tid = insert_tasks[i];
        for &d in &ins.dep_inserts {
            let dep_tid = insert_tasks[d as usize];
            let dep_dev = inserts[d as usize].device;
            if dep_dev == ins.device {
                graph.add_dep(tid, dep_tid);
            } else {
                // Cross-device encoder dependency: route through a transfer.
                let tr = graph.push(
                    "enc_p2p",
                    ins.device,
                    Stream::EncP2p,
                    spec.p2p,
                    TaskKind::EncLlmTransfer,
                    vec![dep_tid],
                );
                graph.add_dep(tid, tr);
            }
        }
        for op in &ins.dep_ops {
            let prod = *last
                .get(&(op.rank, op.chunk, op.microbatch, op.dir))
                .ok_or_else(|| PipelineError::BadSpec {
                    reason: format!("missing dep op {op:?}"),
                })?;
            if op.rank == ins.device {
                graph.add_dep(tid, prod);
            } else {
                let tr = graph.push(
                    "grad_p2p",
                    ins.device,
                    Stream::EncP2p,
                    spec.p2p,
                    TaskKind::EncLlmTransfer,
                    vec![prod],
                );
                graph.add_dep(tid, tr);
            }
        }
        for op in &ins.feeds_ops {
            let cons = *first
                .get(&(op.rank, op.chunk, op.microbatch, op.dir))
                .ok_or_else(|| PipelineError::BadSpec {
                    reason: format!("missing fed op {op:?}"),
                })?;
            if op.rank == ins.device {
                graph.add_dep(cons, tid);
            } else {
                let tr = graph.push(
                    "act_p2p",
                    op.rank,
                    Stream::EncP2p,
                    spec.p2p,
                    TaskKind::EncLlmTransfer,
                    vec![tid],
                );
                graph.add_dep(cons, tr);
            }
        }
    }

    Ok(Lowered {
        graph,
        first,
        last,
        insert_tasks,
        compute_queue,
        tpcomm_queue,
    })
}

fn push_insert(graph: &mut TaskGraph, ins: &InsertKernel) -> TaskId {
    let stream = match ins.stream {
        InsertStream::Compute => Stream::Compute,
        InsertStream::TpComm => Stream::TpComm,
    };
    // Dependencies are wired after all tasks exist.
    graph.push(ins.label, ins.device, stream, ins.dur, ins.kind, vec![])
}

/// Lowers and simulates in one step.
pub fn simulate_pipeline(
    spec: &PipelineSpec,
    schedule: &PipelineSchedule,
    inserts: &[InsertKernel],
) -> Result<(Lowered, SimResult), PipelineError> {
    let lowered = lower(spec, schedule, inserts)?;
    let result = simulate(&lowered.graph).map_err(|e| PipelineError::Simulation(e.to_string()))?;
    Ok((lowered, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{gpipe, interleaved_1f1b, one_f_one_b};
    use crate::stage::TimedKernel;
    use optimus_sim::BubbleKind;

    /// A stage with a single forward kernel of `tf` ns and a single backward
    /// kernel of `tb` ns (no TP comm) — makes makespans analytic.
    fn unit_stage(tf: u64, tb: u64) -> StageSpec {
        StageSpec {
            fwd: vec![TimedKernel {
                label: "f",
                dur: DurNs(tf),
                comm: false,
            }],
            bwd: vec![TimedKernel {
                label: "b",
                dur: DurNs(tb),
                comm: false,
            }],
            ..StageSpec::default()
        }
    }

    fn uniform_spec(pp: u32, vpp: u32, n: u32, tf: u64, tb: u64) -> PipelineSpec {
        PipelineSpec {
            pp,
            vpp,
            n_microbatches: n,
            stages: vec![unit_stage(tf, tb); (pp * vpp) as usize],
            dp_allgather: DurNs::ZERO,
            dp_reducescatter: DurNs::ZERO,
            p2p: DurNs::ZERO,
        }
    }

    #[test]
    fn describe_names_op_provenance() {
        let spec = uniform_spec(2, 1, 2, 100, 200);
        let schedule = one_f_one_b(2, 2).unwrap();
        let lowered = lower(&spec, &schedule, &[]).unwrap();
        let descriptions: Vec<String> = (0..lowered.graph.len())
            .map(|i| lowered.describe(TaskId(i as u32)))
            .collect();
        assert!(
            descriptions
                .iter()
                .any(|d| d.contains("LLM fwd chunk 0 mb 0")),
            "{descriptions:?}"
        );
        assert!(descriptions.iter().any(|d| d.contains("DP all-gather")));
        assert!(descriptions.iter().any(|d| d.contains("rank 1")));
    }

    #[test]
    fn one_f_one_b_makespan_matches_closed_form() {
        // Equal stages, zero comm: T = (n + pp − 1)(tf + tb).
        let (pp, n, tf, tb) = (4, 8, 100, 200);
        let spec = uniform_spec(pp, 1, n, tf, tb);
        let sched = one_f_one_b(pp, n).unwrap();
        let (_l, r) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        assert_eq!(r.makespan().0, u64::from(n + pp - 1) * (tf + tb));
    }

    #[test]
    fn gpipe_matches_closed_form() {
        let (pp, n, tf, tb) = (4, 6, 100, 200);
        let spec = uniform_spec(pp, 1, n, tf, tb);
        let sched = gpipe(pp, n).unwrap();
        let (_l, r) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        // GPipe with equal stages: same fill+drain bound.
        assert_eq!(r.makespan().0, u64::from(n + pp - 1) * (tf + tb));
    }

    #[test]
    fn interleaving_reduces_bubbles() {
        // Same per-rank work split into 2 chunks: bubble shrinks, so the
        // makespan must be strictly smaller than non-interleaved.
        let (pp, n) = (4, 8);
        let plain = uniform_spec(pp, 1, n, 400, 800);
        let inter = uniform_spec(pp, 2, n, 200, 400); // half-size stages × 2 chunks
        let (_l1, r1) = simulate_pipeline(&plain, &one_f_one_b(pp, n).unwrap(), &[]).unwrap();
        let (_l2, r2) =
            simulate_pipeline(&inter, &interleaved_1f1b(pp, 2, n, None).unwrap(), &[]).unwrap();
        assert!(
            r2.makespan() < r1.makespan(),
            "interleaved {} vs plain {}",
            r2.makespan(),
            r1.makespan()
        );
    }

    #[test]
    fn zero_bubble_beats_one_f_one_b() {
        // Same total work, backward split 50/50 into B and W: deferring W
        // out of the critical path shrinks the pipeline fill/drain cost.
        use crate::schedule::zero_bubble_h1;
        let (pp, n) = (4, 8);
        let plain = uniform_spec(pp, 1, n, 400, 800);
        let mut split = uniform_spec(pp, 1, n, 400, 400);
        for st in &mut split.stages {
            st.bwd_weight = vec![TimedKernel {
                label: "w",
                dur: DurNs(400),
                comm: false,
            }];
        }
        let (_l1, r1) = simulate_pipeline(&plain, &one_f_one_b(pp, n).unwrap(), &[]).unwrap();
        let (_l2, r2) = simulate_pipeline(&split, &zero_bubble_h1(pp, n).unwrap(), &[]).unwrap();
        assert!(
            r2.makespan() < r1.makespan(),
            "zb {} vs 1f1b {}",
            r2.makespan(),
            r1.makespan()
        );
        // Work conservation: total compute identical.
        let w1 = _l1
            .graph
            .total_work(|t| t.stream == optimus_sim::Stream::Compute);
        let w2 = _l2
            .graph
            .total_work(|t| t.stream == optimus_sim::Stream::Compute);
        assert_eq!(w1, w2);
    }

    #[test]
    fn split_backward_preserves_total_time() {
        use optimus_cluster::{ClusterTopology, CommCostModel, GpuProfile, ProcessGroup};
        use optimus_modeling::TransformerConfig;
        let topo = ClusterTopology::hopper_cluster(8).unwrap();
        let timer = optimus_modeling::KernelTimer::new(
            GpuProfile::h100(),
            CommCostModel::new(topo),
            ProcessGroup::contiguous(0, 8).unwrap(),
        );
        let cfg = TransformerConfig::gpt_175b();
        let plain = StageSpec::transformer_layers(&cfg, 4, 2, 2048, 8, &timer);
        let split = StageSpec::transformer_layers_split(&cfg, 4, 2, 2048, 8, &timer);
        assert_eq!(plain.bwd_total(), split.bwd_total() + split.wgrad_total());
        assert!(split.wgrad_total() > DurNs::ZERO);
        // The W half is pure matmul work, a large share of the backward.
        let frac = split.wgrad_total().as_secs_f64() / plain.bwd_total().as_secs_f64();
        assert!((0.25..0.55).contains(&frac), "wgrad fraction {frac}");
    }

    #[test]
    fn warmup_bubble_on_later_ranks() {
        let spec = uniform_spec(4, 1, 8, 100, 200);
        let sched = one_f_one_b(4, 8).unwrap();
        let (l, r) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        let bubbles = optimus_sim::device_bubbles(&l.graph, &r, 3);
        // Rank 3 idles 3·tf = 300 ns before its first forward.
        let warm: Vec<_> = bubbles
            .iter()
            .filter(|b| b.kind == BubbleKind::PpWarmup)
            .collect();
        assert_eq!(warm.len(), 1);
        assert_eq!(warm[0].duration().0, 300);
        // Rank 0 has no warmup bubble.
        let b0 = optimus_sim::device_bubbles(&l.graph, &r, 0);
        assert!(b0.iter().all(|b| b.kind != BubbleKind::PpWarmup));
    }

    #[test]
    fn dp_collectives_extend_step() {
        let mut spec = uniform_spec(2, 1, 2, 100, 100);
        spec.dp_allgather = DurNs(1000);
        spec.dp_reducescatter = DurNs(2000);
        let sched = one_f_one_b(2, 2).unwrap();
        let (l, r) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        // Step = AG + pipeline + RS.
        let base = uniform_spec(2, 1, 2, 100, 100);
        let (_lb, rb) = simulate_pipeline(&base, &sched, &[]).unwrap();
        assert_eq!(r.makespan().0, rb.makespan().0 + 1000 + 2000);
        let bubbles = optimus_sim::device_bubbles(&l.graph, &r, 1);
        assert!(bubbles.iter().any(|b| b.kind == BubbleKind::DpAllGather));
        assert!(bubbles
            .iter()
            .any(|b| b.kind == BubbleKind::DpReduceScatter));
    }

    #[test]
    fn p2p_latency_delays_downstream() {
        let mut spec = uniform_spec(2, 1, 1, 100, 100);
        spec.p2p = DurNs(50);
        let sched = one_f_one_b(2, 1).unwrap();
        let (_l, r) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        // fwd0 (100) + p2p (50) + fwd1 (100) + bwd1 (100) + p2p + bwd0 (100).
        assert_eq!(r.makespan().0, 100 + 50 + 100 + 100 + 50 + 100);
    }

    #[test]
    fn tp_comm_kernels_create_tp_bubbles() {
        let stage = StageSpec {
            fwd: vec![
                TimedKernel {
                    label: "ag",
                    dur: DurNs(30),
                    comm: true,
                },
                TimedKernel {
                    label: "mm",
                    dur: DurNs(100),
                    comm: false,
                },
                TimedKernel {
                    label: "rs",
                    dur: DurNs(30),
                    comm: true,
                },
                TimedKernel {
                    label: "mm2",
                    dur: DurNs(100),
                    comm: false,
                },
            ],
            bwd: vec![TimedKernel {
                label: "b",
                dur: DurNs(200),
                comm: false,
            }],
            ..StageSpec::default()
        };
        let spec = PipelineSpec {
            pp: 1,
            vpp: 1,
            n_microbatches: 2,
            stages: vec![stage],
            dp_allgather: DurNs::ZERO,
            dp_reducescatter: DurNs::ZERO,
            p2p: DurNs::ZERO,
        };
        let sched = one_f_one_b(1, 2).unwrap();
        let (l, r) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        let bubbles = optimus_sim::device_bubbles(&l.graph, &r, 0);
        let tp_total: u64 = bubbles
            .iter()
            .filter(|b| b.kind == BubbleKind::Tp)
            .map(|b| b.duration().0)
            .sum();
        // Each forward stalls 30 ns on its mid-layer reduce-scatter; mb1's
        // all-gather overlaps the preceding backward, and mb0's all-gather
        // stall is the leading (warmup-classified) gap. Net: 2 × 30 ns.
        assert_eq!(tp_total, 60, "tp bubble total {tp_total}");
        let lead: u64 = bubbles
            .iter()
            .filter(|b| b.kind == BubbleKind::PpWarmup)
            .map(|b| b.duration().0)
            .sum();
        assert_eq!(lead, 30);
    }

    #[test]
    fn insert_fills_bubble_without_extending_makespan() {
        // Rank 1 of a 2-stage pipeline idles 100 ns during warmup; an insert
        // of 80 ns placed before its first kernel must not extend the step.
        let spec = uniform_spec(2, 1, 4, 100, 100);
        let sched = one_f_one_b(2, 4).unwrap();
        let (_l0, r0) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        let ins = InsertKernel {
            device: 1,
            stream: InsertStream::Compute,
            label: "enc",
            kind: TaskKind::EncFwd {
                pipeline: 0,
                stage: 0,
                microbatch: 0,
            },
            dur: DurNs(80),
            queue_index: 0,
            dep_inserts: vec![],
            dep_ops: vec![],
            feeds_ops: vec![],
        };
        let (_l1, r1) = simulate_pipeline(&spec, &sched, &[ins]).unwrap();
        assert_eq!(r0.makespan(), r1.makespan());
    }

    #[test]
    fn oversized_insert_extends_makespan() {
        let spec = uniform_spec(2, 1, 4, 100, 100);
        let sched = one_f_one_b(2, 4).unwrap();
        let (_l0, r0) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        let ins = InsertKernel {
            device: 1,
            stream: InsertStream::Compute,
            label: "enc",
            kind: TaskKind::EncFwd {
                pipeline: 0,
                stage: 0,
                microbatch: 0,
            },
            dur: DurNs(150), // larger than the 100 ns warmup bubble
            queue_index: 0,
            dep_inserts: vec![],
            dep_ops: vec![],
            feeds_ops: vec![],
        };
        let (_l1, r1) = simulate_pipeline(&spec, &sched, &[ins]).unwrap();
        assert!(r1.makespan() > r0.makespan());
    }

    #[test]
    fn feeds_op_blocks_llm_forward() {
        // An insert feeding mb0's forward on rank 0 delays the whole step
        // when it is long.
        let spec = uniform_spec(2, 1, 2, 100, 100);
        let sched = one_f_one_b(2, 2).unwrap();
        let ins = InsertKernel {
            device: 1,
            stream: InsertStream::Compute,
            label: "enc_fwd",
            kind: TaskKind::EncFwd {
                pipeline: 0,
                stage: 0,
                microbatch: 0,
            },
            dur: DurNs(500),
            queue_index: 0,
            dep_inserts: vec![],
            dep_ops: vec![],
            feeds_ops: vec![OpRef {
                rank: 0,
                chunk: 0,
                microbatch: 0,
                dir: Dir::Fwd,
            }],
        };
        let (_l, r) = simulate_pipeline(&spec, &sched, &[ins]).unwrap();
        let (_l0, r0) = simulate_pipeline(&spec, &sched, &[]).unwrap();
        assert!(r.makespan().0 >= r0.makespan().0 + 400);
    }

    #[test]
    fn dep_op_orders_encoder_backward_after_llm() {
        let spec = uniform_spec(2, 1, 2, 100, 100);
        let sched = one_f_one_b(2, 2).unwrap();
        let ins = InsertKernel {
            device: 0,
            stream: InsertStream::Compute,
            label: "enc_bwd",
            kind: TaskKind::EncBwd {
                pipeline: 0,
                stage: 0,
                microbatch: 0,
            },
            dur: DurNs(10),
            queue_index: u32::MAX,
            dep_inserts: vec![],
            dep_ops: vec![OpRef {
                rank: 0,
                chunk: 0,
                microbatch: 1,
                dir: Dir::Bwd,
            }],
            feeds_ops: vec![],
        };
        let (l, r) = simulate_pipeline(&spec, &sched, &[ins]).unwrap();
        let enc_span = r.span(l.insert_tasks[0]);
        let llm_bwd_last = l
            .op_last(OpRef {
                rank: 0,
                chunk: 0,
                microbatch: 1,
                dir: Dir::Bwd,
            })
            .unwrap();
        assert!(enc_span.start >= r.span(llm_bwd_last).end);
    }
}

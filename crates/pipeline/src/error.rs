//! Pipeline-crate errors.

use std::error::Error;
use std::fmt;

/// Errors from schedule generation and lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A schedule violated a structural invariant.
    BadSchedule {
        /// Human-readable reason.
        reason: String,
    },
    /// A pipeline spec was inconsistent (stage counts, empty stages...).
    BadSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// The lowered graph failed to simulate.
    Simulation(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::BadSchedule { reason } => write!(f, "bad schedule: {reason}"),
            PipelineError::BadSpec { reason } => write!(f, "bad pipeline spec: {reason}"),
            PipelineError::Simulation(s) => write!(f, "simulation failed: {s}"),
        }
    }
}

impl Error for PipelineError {}

//! The Megatron-LM-balanced layer partitioner (Appendix B).
//!
//! A dynamic program assigns the concatenated MLLM layer list (encoder layers
//! followed by LLM layers) to `V × PP` virtual stages, minimising the latency
//! of the slowest stage:
//!
//! `F(l, m) = min_{j<l} max(F(j, m−1), Σ_{i=j+1..l} t_i)`
//!
//! This is the strawman baseline's partitioning strategy; it only applies to
//! single-encoder (linear) MLLMs.

use optimus_cluster::DurNs;

use crate::error::PipelineError;

/// Result of the balanced partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancedPartition {
    /// Layers per virtual stage (sums to the total layer count).
    pub layers_per_stage: Vec<u32>,
    /// Latency of the slowest virtual stage.
    pub bottleneck: DurNs,
}

/// Partitions `layer_times` into `stages` contiguous groups minimising the
/// maximum group sum (Appendix B dynamic program).
#[allow(clippy::needless_range_loop)] // DP table indices mirror the recurrence
pub fn balance_layers(
    layer_times: &[DurNs],
    stages: u32,
) -> Result<BalancedPartition, PipelineError> {
    let n = layer_times.len();
    let m = stages as usize;
    if m == 0 {
        return Err(PipelineError::BadSpec {
            reason: "stage count must be >= 1".into(),
        });
    }
    if n < m {
        return Err(PipelineError::BadSpec {
            reason: format!("cannot split {n} layers into {m} stages"),
        });
    }

    // Prefix sums in ns.
    let mut prefix = vec![0u64; n + 1];
    for (i, t) in layer_times.iter().enumerate() {
        prefix[i + 1] = prefix[i] + t.0;
    }
    let seg = |a: usize, b: usize| prefix[b] - prefix[a]; // layers a..b

    const INF: u64 = u64::MAX;
    // f[k][l] = min over partitions of first l layers into k stages of the
    // max stage time; choice[k][l] = split point.
    let mut f = vec![vec![INF; n + 1]; m + 1];
    let mut choice = vec![vec![0usize; n + 1]; m + 1];
    for l in 1..=n {
        f[1][l] = seg(0, l);
    }
    for k in 2..=m {
        for l in k..=n {
            // Monotone structure: as j grows, F(j, k−1) grows and seg(j, l)
            // shrinks. A linear scan suffices at these sizes (≤ a few
            // hundred layers).
            let mut best = INF;
            let mut best_j = k - 1;
            for j in (k - 1)..l {
                let cand = f[k - 1][j].max(seg(j, l));
                if cand < best {
                    best = cand;
                    best_j = j;
                }
            }
            f[k][l] = best;
            choice[k][l] = best_j;
        }
    }

    // Recover the partition.
    let mut bounds = vec![n];
    let mut l = n;
    for k in (2..=m).rev() {
        l = choice[k][l];
        bounds.push(l);
    }
    bounds.push(0);
    bounds.reverse();
    let layers_per_stage: Vec<u32> = bounds.windows(2).map(|w| (w[1] - w[0]) as u32).collect();

    Ok(BalancedPartition {
        layers_per_stage,
        bottleneck: DurNs(f[m][n]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(v: &[u64]) -> Vec<DurNs> {
        v.iter().map(|&x| DurNs(x)).collect()
    }

    #[test]
    fn uniform_layers_split_evenly() {
        let p = balance_layers(&times(&[10; 12]), 4).unwrap();
        assert_eq!(p.layers_per_stage, vec![3, 3, 3, 3]);
        assert_eq!(p.bottleneck, DurNs(30));
    }

    #[test]
    fn heavy_head_gets_fewer_layers() {
        // Encoder-like cheap layers followed by expensive LLM layers: the
        // balanced split gives stages with more cheap layers.
        let mut t = vec![1u64; 8];
        t.extend([10u64; 8]);
        let p = balance_layers(&times(&t), 4).unwrap();
        assert_eq!(p.layers_per_stage.iter().sum::<u32>(), 16);
        // The first stage must hold all (or most) cheap layers plus maybe an
        // expensive one; the bottleneck must beat the naive 4-4-4-4 split.
        let naive_bottleneck = 10 * 4; // a stage of 4 expensive layers
        assert!(p.bottleneck.0 < naive_bottleneck);
    }

    #[test]
    fn bottleneck_is_lower_bound_respected() {
        // Bottleneck can never be below max(single layer, total/stages).
        let t = times(&[7, 3, 9, 4, 6, 2, 8, 5]);
        let total: u64 = t.iter().map(|d| d.0).sum();
        let p = balance_layers(&t, 3).unwrap();
        assert!(p.bottleneck.0 >= total.div_ceil(3));
        assert!(p.bottleneck.0 >= 9);
        assert_eq!(p.layers_per_stage.iter().sum::<u32>(), 8);
        assert!(p.layers_per_stage.iter().all(|&c| c >= 1));
    }

    #[test]
    fn single_stage_takes_everything() {
        let p = balance_layers(&times(&[5, 5, 5]), 1).unwrap();
        assert_eq!(p.layers_per_stage, vec![3]);
        assert_eq!(p.bottleneck, DurNs(15));
    }

    #[test]
    fn more_stages_never_worse() {
        let t = times(&[7, 3, 9, 4, 6, 2, 8, 5, 1, 12, 4, 4]);
        let mut prev = u64::MAX;
        for m in 1..=6 {
            let p = balance_layers(&t, m).unwrap();
            assert!(p.bottleneck.0 <= prev, "stages {m}");
            prev = p.bottleneck.0;
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(balance_layers(&times(&[1, 2]), 3).is_err());
        assert!(balance_layers(&times(&[1]), 0).is_err());
    }
}

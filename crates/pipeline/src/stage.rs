//! Stage specifications: the timed kernel sequences one virtual pipeline
//! stage executes per microbatch.

use optimus_cluster::{DurNs, KernelClass};
use optimus_modeling::{layer_kernels, KernelBody, KernelTimer, Pass, TransformerConfig};

/// One kernel with a resolved duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedKernel {
    /// Kernel name (stable, for traces).
    pub label: &'static str,
    /// Duration on this rank.
    pub dur: DurNs,
    /// True for communication-stream kernels (TP collectives).
    pub comm: bool,
}

/// Timed kernel sequences for one virtual pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageSpec {
    /// Forward kernels for one microbatch, in issue order.
    pub fwd: Vec<TimedKernel>,
    /// Backward kernels for one microbatch, in issue order. Under a
    /// zero-bubble schedule this holds only the input-gradient half; the
    /// weight-gradient half lives in [`bwd_weight`](Self::bwd_weight).
    pub bwd: Vec<TimedKernel>,
    /// Weight-gradient kernels (zero-bubble schedules); empty otherwise.
    pub bwd_weight: Vec<TimedKernel>,
    /// Bytes of activations sent to the next stage per microbatch.
    pub activation_bytes: u64,
    /// Parameters resident on one GPU of this stage (for DP comm sizing).
    pub params_per_gpu: u64,
}

impl StageSpec {
    /// Builds a stage of `n_layers` identical transformer layers.
    ///
    /// `microbatch` is the number of sequences per microbatch, `seq` tokens
    /// per sequence, `tp` the tensor-parallel degree; the `timer` resolves
    /// kernel durations against the hardware and TP group.
    pub fn transformer_layers(
        cfg: &TransformerConfig,
        n_layers: u32,
        microbatch: u64,
        seq: u64,
        tp: u64,
        timer: &KernelTimer,
    ) -> StageSpec {
        let fwd_one: Vec<TimedKernel> = layer_kernels(cfg, microbatch, seq, tp, Pass::Forward)
            .iter()
            .map(|k| TimedKernel {
                label: k.name,
                dur: timer.duration(k),
                comm: !k.is_compute(),
            })
            .collect();
        let bwd_one: Vec<TimedKernel> = layer_kernels(cfg, microbatch, seq, tp, Pass::Backward)
            .iter()
            .map(|k| TimedKernel {
                label: k.name,
                dur: timer.duration(k),
                comm: !k.is_compute(),
            })
            .collect();
        let mut fwd = Vec::with_capacity(fwd_one.len() * n_layers as usize);
        let mut bwd = Vec::with_capacity(bwd_one.len() * n_layers as usize);
        for _ in 0..n_layers {
            fwd.extend(fwd_one.iter().cloned());
            bwd.extend(bwd_one.iter().cloned());
        }
        StageSpec {
            fwd,
            bwd,
            bwd_weight: Vec::new(),
            activation_bytes: microbatch * seq * cfg.hidden * 2,
            params_per_gpu: n_layers as u64 * cfg.params_per_layer() / tp.max(1),
        }
    }

    /// Like [`transformer_layers`](Self::transformer_layers) but with the
    /// backward split for zero-bubble schedules: matmul backward kernels do
    /// half their work (input gradient) in `bwd` and half (weight gradient)
    /// in `bwd_weight`; memory-bound and communication kernels stay on the
    /// input-gradient path.
    pub fn transformer_layers_split(
        cfg: &TransformerConfig,
        n_layers: u32,
        microbatch: u64,
        seq: u64,
        tp: u64,
        timer: &KernelTimer,
    ) -> StageSpec {
        let mut stage = StageSpec::transformer_layers(cfg, n_layers, microbatch, seq, tp, timer);
        let bwd_specs = layer_kernels(cfg, microbatch, seq, tp, Pass::Backward);
        let is_matmul = |label: &str| {
            bwd_specs.iter().any(|k| {
                k.name == label
                    && matches!(
                        k.body,
                        KernelBody::Compute {
                            class: KernelClass::Matmul,
                            ..
                        }
                    )
            })
        };
        let mut b = Vec::with_capacity(stage.bwd.len());
        let mut w = Vec::with_capacity(stage.bwd.len());
        for kern in stage.bwd.drain(..) {
            if !kern.comm && is_matmul(kern.label) {
                let half = DurNs(kern.dur.0 / 2);
                b.push(TimedKernel {
                    label: kern.label,
                    dur: half,
                    comm: false,
                });
                w.push(TimedKernel {
                    label: kern.label,
                    dur: kern.dur - half,
                    comm: false,
                });
            } else {
                b.push(kern);
            }
        }
        stage.bwd = b;
        stage.bwd_weight = w;
        stage
    }

    /// Concatenates another stage's kernels after this one's (used by the
    /// Megatron baseline, which packs encoder layers and LLM layers into the
    /// same first pipeline stage). Backward order is reversed: the appended
    /// sub-module backpropagates first.
    pub fn then(mut self, next: StageSpec) -> StageSpec {
        self.fwd.extend(next.fwd);
        let mut bwd = next.bwd;
        bwd.extend(self.bwd);
        self.bwd = bwd;
        let mut bwd_weight = next.bwd_weight;
        bwd_weight.extend(std::mem::take(&mut self.bwd_weight));
        self.bwd_weight = bwd_weight;
        self.activation_bytes = next.activation_bytes;
        self.params_per_gpu += next.params_per_gpu;
        self
    }

    /// Total weight-gradient compute time (zero-bubble stages).
    pub fn wgrad_total(&self) -> DurNs {
        self.bwd_weight.iter().map(|k| k.dur).sum()
    }

    /// Total forward compute time (excluding comm kernels).
    pub fn fwd_compute(&self) -> DurNs {
        self.fwd.iter().filter(|k| !k.comm).map(|k| k.dur).sum()
    }

    /// Total backward compute time (excluding comm kernels).
    pub fn bwd_compute(&self) -> DurNs {
        self.bwd.iter().filter(|k| !k.comm).map(|k| k.dur).sum()
    }

    /// Serial forward duration (compute + TP comm stalls).
    pub fn fwd_total(&self) -> DurNs {
        self.fwd.iter().map(|k| k.dur).sum()
    }

    /// Serial backward duration (compute + TP comm stalls).
    pub fn bwd_total(&self) -> DurNs {
        self.bwd.iter().map(|k| k.dur).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_cluster::{ClusterTopology, CommCostModel, GpuProfile, ProcessGroup};

    fn timer(tp: u32) -> KernelTimer {
        let topo = ClusterTopology::hopper_cluster(8).unwrap();
        KernelTimer::new(
            GpuProfile::h100(),
            CommCostModel::new(topo),
            ProcessGroup::contiguous(0, tp).unwrap(),
        )
    }

    #[test]
    fn stage_repeats_layers() {
        let t = timer(8);
        let cfg = TransformerConfig::gpt_175b();
        let one = StageSpec::transformer_layers(&cfg, 1, 2, 2048, 8, &t);
        let twelve = StageSpec::transformer_layers(&cfg, 12, 2, 2048, 8, &t);
        assert_eq!(twelve.fwd.len(), 12 * one.fwd.len());
        assert_eq!(twelve.fwd_compute(), one.fwd_compute() * 12);
    }

    #[test]
    fn then_concatenates_and_reverses_backward() {
        let t = timer(1);
        let enc = StageSpec::transformer_layers(&TransformerConfig::vit_3b(), 2, 2, 576, 1, &t);
        let llm = StageSpec::transformer_layers(&TransformerConfig::gpt_11b(), 2, 2, 2048, 1, &t);
        let enc_fwd_len = enc.fwd.len();
        let llm_bwd0 = llm.bwd[0].clone();
        let merged = enc.clone().then(llm.clone());
        assert_eq!(merged.fwd.len(), enc.fwd.len() + llm.fwd.len());
        // Forward: encoder kernels first.
        assert_eq!(merged.fwd[0], enc.fwd[0]);
        assert_eq!(merged.fwd[enc_fwd_len], llm.fwd[0]);
        // Backward: LLM kernels first.
        assert_eq!(merged.bwd[0], llm_bwd0);
        assert_eq!(
            merged.params_per_gpu,
            enc.params_per_gpu + llm.params_per_gpu
        );
    }

    #[test]
    fn activation_bytes_match_bf16_hidden() {
        let t = timer(8);
        let cfg = TransformerConfig::gpt_175b();
        let s = StageSpec::transformer_layers(&cfg, 12, 2, 2048, 8, &t);
        assert_eq!(s.activation_bytes, 2 * 2048 * 12288 * 2);
    }
}

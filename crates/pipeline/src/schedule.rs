//! Pipeline schedules: per-rank operation orders.
//!
//! A schedule is, for every pipeline rank, the ordered list of forward and
//! backward microbatch executions it performs. Generators implement
//! Megatron-LM's 1F1B, Megatron's interleaved 1F1B (the paper's baseline
//! schedule, §4.3 Fig. 12) and GPipe (used by the Alpa-like baseline).

use crate::error::PipelineError;

/// Direction of one pipeline operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Forward pass.
    Fwd,
    /// Backward pass (under zero-bubble schedules: input-gradient half).
    Bwd,
    /// Weight-gradient half of the backward (zero-bubble schedules only) —
    /// off the critical path, used as pipeline filler.
    Wgrad,
}

/// One operation in a rank's program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineOp {
    /// Direction.
    pub dir: Dir,
    /// Model chunk (virtual stage index on this rank); 0 for
    /// non-interleaved schedules.
    pub chunk: u32,
    /// Microbatch index, 0-based.
    pub microbatch: u32,
}

impl PipelineOp {
    /// Forward op.
    pub fn fwd(chunk: u32, microbatch: u32) -> PipelineOp {
        PipelineOp {
            dir: Dir::Fwd,
            chunk,
            microbatch,
        }
    }

    /// Backward op.
    pub fn bwd(chunk: u32, microbatch: u32) -> PipelineOp {
        PipelineOp {
            dir: Dir::Bwd,
            chunk,
            microbatch,
        }
    }

    /// Weight-gradient op (zero-bubble schedules).
    pub fn wgrad(chunk: u32, microbatch: u32) -> PipelineOp {
        PipelineOp {
            dir: Dir::Wgrad,
            chunk,
            microbatch,
        }
    }
}

/// A complete pipeline schedule: one op list per rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSchedule {
    /// Pipeline-parallel size.
    pub pp: u32,
    /// Model chunks per rank.
    pub vpp: u32,
    /// Microbatches per step.
    pub n_microbatches: u32,
    /// Per-rank program order.
    pub ops: Vec<Vec<PipelineOp>>,
    /// Number of warmup (forward-only) ops per rank, used by the Fig. 12
    /// dependency-point adjustment.
    pub warmup: Vec<u32>,
}

impl PipelineSchedule {
    /// Validates structural invariants: every rank executes every
    /// (chunk, microbatch) exactly once in each direction, and never runs a
    /// backward before the matching forward.
    pub fn validate(&self) -> Result<(), PipelineError> {
        for (rank, ops) in self.ops.iter().enumerate() {
            let expect = (self.vpp * self.n_microbatches) as usize;
            let fwd = ops.iter().filter(|o| o.dir == Dir::Fwd).count();
            let bwd = ops.iter().filter(|o| o.dir == Dir::Bwd).count();
            let wgrad = ops.iter().filter(|o| o.dir == Dir::Wgrad).count();
            if fwd != expect || bwd != expect {
                return Err(PipelineError::BadSchedule {
                    reason: format!(
                        "rank {rank}: {fwd} fwd / {bwd} bwd ops, expected {expect} each"
                    ),
                });
            }
            if wgrad != 0 && wgrad != expect {
                return Err(PipelineError::BadSchedule {
                    reason: format!("rank {rank}: {wgrad} wgrad ops, expected 0 or {expect}"),
                });
            }
            let mut seen_fwd = std::collections::HashSet::new();
            let mut seen_bwd = std::collections::HashSet::new();
            for op in ops {
                match op.dir {
                    Dir::Fwd => {
                        if !seen_fwd.insert((op.chunk, op.microbatch)) {
                            return Err(PipelineError::BadSchedule {
                                reason: format!("rank {rank}: duplicate forward {op:?}"),
                            });
                        }
                    }
                    Dir::Bwd => {
                        if !seen_fwd.contains(&(op.chunk, op.microbatch)) {
                            return Err(PipelineError::BadSchedule {
                                reason: format!("rank {rank}: backward before forward {op:?}"),
                            });
                        }
                        seen_bwd.insert((op.chunk, op.microbatch));
                    }
                    Dir::Wgrad => {
                        if !seen_bwd.contains(&(op.chunk, op.microbatch)) {
                            return Err(PipelineError::BadSchedule {
                                reason: format!("rank {rank}: wgrad before backward {op:?}"),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Megatron-LM 1F1B schedule (non-interleaved, `vpp = 1`).
///
/// Rank `r` of `pp` warms up with `min(pp − r − 1, n)` forwards, then
/// alternates one-forward-one-backward, then drains backwards.
pub fn one_f_one_b(pp: u32, n_microbatches: u32) -> Result<PipelineSchedule, PipelineError> {
    if pp == 0 || n_microbatches == 0 {
        return Err(PipelineError::BadSchedule {
            reason: "pp and n_microbatches must be >= 1".into(),
        });
    }
    let n = n_microbatches;
    let mut ops = Vec::with_capacity(pp as usize);
    let mut warmups = Vec::with_capacity(pp as usize);
    for r in 0..pp {
        let warmup = (pp - r - 1).min(n);
        let mut v = Vec::with_capacity(2 * n as usize);
        for mb in 0..warmup {
            v.push(PipelineOp::fwd(0, mb));
        }
        let steady = n - warmup;
        for k in 0..steady {
            v.push(PipelineOp::fwd(0, warmup + k));
            v.push(PipelineOp::bwd(0, k));
        }
        for mb in steady..n {
            v.push(PipelineOp::bwd(0, mb));
        }
        warmups.push(warmup);
        ops.push(v);
    }
    let s = PipelineSchedule {
        pp,
        vpp: 1,
        n_microbatches: n,
        ops,
        warmup: warmups,
    };
    s.validate()?;
    Ok(s)
}

/// Megatron-LM interleaved 1F1B schedule (`vpp ≥ 1` model chunks per rank).
///
/// Follows Megatron's `get_num_warmup_microbatches` and chunk-indexing
/// formulas; requires `n_microbatches` to be a multiple of `pp` (Megatron's
/// own constraint for the interleaved schedule).
///
/// `warmup_reduction[r]` (optional) reduces rank `r`'s warmup count — the
/// Fig. 12 adjustment that defers forward dependency points.
pub fn interleaved_1f1b(
    pp: u32,
    vpp: u32,
    n_microbatches: u32,
    warmup_reduction: Option<&[u32]>,
) -> Result<PipelineSchedule, PipelineError> {
    if pp == 0 || vpp == 0 || n_microbatches == 0 {
        return Err(PipelineError::BadSchedule {
            reason: "degrees must be >= 1".into(),
        });
    }
    if vpp == 1 && warmup_reduction.is_none() {
        return one_f_one_b(pp, n_microbatches);
    }
    if !n_microbatches.is_multiple_of(pp) {
        return Err(PipelineError::BadSchedule {
            reason: format!(
                "interleaved schedule needs pp ({pp}) | n_microbatches ({n_microbatches})"
            ),
        });
    }
    let total = (vpp * n_microbatches) as usize;
    let group = (pp * vpp) as usize;

    // Virtual-microbatch k → (chunk, microbatch), Megatron indexing.
    let fwd_chunk = |k: usize| ((k % group) / pp as usize) as u32;
    let bwd_chunk = |k: usize| vpp - 1 - ((k % group) / pp as usize) as u32;
    let micro = |k: usize| {
        let in_group = k % group;
        let group_id = k / group;
        (group_id * pp as usize + in_group % pp as usize) as u32
    };

    let mut ops = Vec::with_capacity(pp as usize);
    let mut warmups = Vec::with_capacity(pp as usize);
    for r in 0..pp {
        let mut warmup = ((pp - r - 1) * 2 + (vpp - 1) * pp).min(total as u32);
        if let Some(red) = warmup_reduction {
            let red_r = red.get(r as usize).copied().unwrap_or(0);
            warmup = warmup.saturating_sub(red_r).max(1);
        }
        let warmup = warmup as usize;
        let mut v = Vec::with_capacity(2 * total);
        for k in 0..warmup.min(total) {
            v.push(PipelineOp::fwd(fwd_chunk(k), micro(k)));
        }
        let steady = total - warmup.min(total);
        for j in 0..steady {
            v.push(PipelineOp::fwd(fwd_chunk(warmup + j), micro(warmup + j)));
            v.push(PipelineOp::bwd(bwd_chunk(j), micro(j)));
        }
        for j in steady..total {
            v.push(PipelineOp::bwd(bwd_chunk(j), micro(j)));
        }
        warmups.push(warmup.min(total) as u32);
        ops.push(v);
    }
    let s = PipelineSchedule {
        pp,
        vpp,
        n_microbatches,
        ops,
        warmup: warmups,
    };
    s.validate()?;
    Ok(s)
}

/// A zero-bubble-inspired schedule (ZB-H1 family, Qi et al.): the backward
/// is split into an input-gradient half `B` (on the critical path) and a
/// weight-gradient half `W` (a filler with no cross-rank dependencies).
/// Warmup and steady phases follow 1F1B over `F`/`B`; during the cooldown,
/// each remaining `B` is chased with available `W`s so that former cooldown
/// bubbles execute weight gradients instead of idling.
///
/// This is a faithful *family member*, not a byte-exact reimplementation of
/// ZB-H1's ILP-derived schedules; it preserves the mechanism (split
/// backward, W as filler) and the memory profile (W deferred).
pub fn zero_bubble_h1(pp: u32, n_microbatches: u32) -> Result<PipelineSchedule, PipelineError> {
    if pp == 0 || n_microbatches == 0 {
        return Err(PipelineError::BadSchedule {
            reason: "pp and n_microbatches must be >= 1".into(),
        });
    }
    let n = n_microbatches;
    let mut ops = Vec::with_capacity(pp as usize);
    let mut warmups = Vec::with_capacity(pp as usize);
    for r in 0..pp {
        let warmup = (pp - r - 1).min(n);
        let mut v = Vec::with_capacity(3 * n as usize);
        let mut w_pending: Vec<u32> = Vec::new();
        for mb in 0..warmup {
            v.push(PipelineOp::fwd(0, mb));
        }
        let steady = n - warmup;
        for k in 0..steady {
            v.push(PipelineOp::fwd(0, warmup + k));
            v.push(PipelineOp::bwd(0, k));
            w_pending.push(k);
        }
        for mb in steady..n {
            v.push(PipelineOp::bwd(0, mb));
            w_pending.push(mb);
            // Chase every cooldown B with one queued W: the W executes while
            // the next B's upstream dependency is still in flight.
            if let Some(w) = w_pending.first().copied() {
                w_pending.remove(0);
                v.push(PipelineOp::wgrad(0, w));
            }
        }
        for w in w_pending {
            v.push(PipelineOp::wgrad(0, w));
        }
        warmups.push(warmup);
        ops.push(v);
    }
    let s = PipelineSchedule {
        pp,
        vpp: 1,
        n_microbatches: n,
        ops,
        warmup: warmups,
    };
    s.validate()?;
    Ok(s)
}

/// GPipe schedule: all forwards, then all backwards (used by the Alpa-like
/// baseline, which does not implement 1F1B-interleaving).
pub fn gpipe(pp: u32, n_microbatches: u32) -> Result<PipelineSchedule, PipelineError> {
    if pp == 0 || n_microbatches == 0 {
        return Err(PipelineError::BadSchedule {
            reason: "pp and n_microbatches must be >= 1".into(),
        });
    }
    let n = n_microbatches;
    let mut ops = Vec::with_capacity(pp as usize);
    for _ in 0..pp {
        let mut v = Vec::with_capacity(2 * n as usize);
        for mb in 0..n {
            v.push(PipelineOp::fwd(0, mb));
        }
        for mb in (0..n).rev() {
            v.push(PipelineOp::bwd(0, mb));
        }
        ops.push(v);
    }
    let s = PipelineSchedule {
        pp,
        vpp: 1,
        n_microbatches: n,
        ops,
        warmup: vec![n; pp as usize],
    };
    s.validate()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_f_one_b_structure() {
        let s = one_f_one_b(4, 8).unwrap();
        assert_eq!(s.warmup, vec![3, 2, 1, 0]);
        // Rank 3 (last stage) strictly alternates F,B.
        let r3 = &s.ops[3];
        assert_eq!(r3[0], PipelineOp::fwd(0, 0));
        assert_eq!(r3[1], PipelineOp::bwd(0, 0));
        assert_eq!(r3.len(), 16);
    }

    #[test]
    fn one_f_one_b_with_few_microbatches() {
        // Fewer microbatches than stages: warmup caps at n.
        let s = one_f_one_b(8, 2).unwrap();
        assert_eq!(s.warmup[0], 2);
        s.validate().unwrap();
    }

    #[test]
    fn interleaved_warmup_formula() {
        // pp=4, vpp=2, n=8 (the Fig. 12 configuration):
        // rank 0 warmup = 3*2 + 1*4 = 10.
        let s = interleaved_1f1b(4, 2, 8, None).unwrap();
        assert_eq!(s.warmup, vec![10, 8, 6, 4]);
        s.validate().unwrap();
    }

    #[test]
    fn interleaved_first_ops_cover_chunks() {
        let s = interleaved_1f1b(4, 2, 8, None).unwrap();
        // Rank 0 warmup order: mb 0..3 chunk 0, mb 0..3 chunk 1, mb 4,5 chunk 0.
        let r0: Vec<PipelineOp> = s.ops[0][..10].to_vec();
        assert_eq!(r0[0], PipelineOp::fwd(0, 0));
        assert_eq!(r0[3], PipelineOp::fwd(0, 3));
        assert_eq!(r0[4], PipelineOp::fwd(1, 0));
        assert_eq!(r0[7], PipelineOp::fwd(1, 3));
        assert_eq!(r0[8], PipelineOp::fwd(0, 4));
        assert_eq!(r0[9], PipelineOp::fwd(0, 5));
    }

    #[test]
    fn interleaved_requires_divisibility() {
        assert!(interleaved_1f1b(4, 2, 6, None).is_err());
    }

    #[test]
    fn warmup_reduction_defers_forwards() {
        let base = interleaved_1f1b(4, 2, 8, None).unwrap();
        let red = interleaved_1f1b(4, 2, 8, Some(&[4, 0, 0, 0])).unwrap();
        assert_eq!(red.warmup[0], 6);
        assert_eq!(base.warmup[0], 10);
        red.validate().unwrap();
    }

    #[test]
    fn gpipe_all_forwards_first() {
        let s = gpipe(4, 6).unwrap();
        for ops in &s.ops {
            let first_bwd = ops.iter().position(|o| o.dir == Dir::Bwd).unwrap();
            assert!(ops[..first_bwd].iter().all(|o| o.dir == Dir::Fwd));
            assert_eq!(first_bwd, 6);
        }
    }

    #[test]
    fn zero_bubble_structure() {
        let s = zero_bubble_h1(4, 8).unwrap();
        s.validate().unwrap();
        for ops in &s.ops {
            assert_eq!(ops.iter().filter(|o| o.dir == Dir::Wgrad).count(), 8);
            // Every W comes after its own B.
            let mut seen_b = std::collections::HashSet::new();
            for op in ops {
                match op.dir {
                    Dir::Bwd => {
                        seen_b.insert(op.microbatch);
                    }
                    Dir::Wgrad => assert!(seen_b.contains(&op.microbatch), "{op:?}"),
                    Dir::Fwd => {}
                }
            }
        }
    }

    #[test]
    fn validation_catches_wgrad_before_backward() {
        let s = PipelineSchedule {
            pp: 1,
            vpp: 1,
            n_microbatches: 1,
            ops: vec![vec![
                PipelineOp::fwd(0, 0),
                PipelineOp::wgrad(0, 0),
                PipelineOp::bwd(0, 0),
            ]],
            warmup: vec![0],
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn validation_catches_backward_before_forward() {
        let s = PipelineSchedule {
            pp: 1,
            vpp: 1,
            n_microbatches: 1,
            ops: vec![vec![PipelineOp::bwd(0, 0), PipelineOp::fwd(0, 0)]],
            warmup: vec![0],
        };
        assert!(s.validate().is_err());
    }
}

//! Encoder–LLM dependency points (§4.3, `GetEncLLMDep`).
//!
//! For each microbatch `i` the LLM pipeline defines a forward dependency
//! point `F_i` (when the first pipeline stage *consumes* the encoder's
//! activations `A_i`) and a backward dependency point `B_i` (when the first
//! stage finishes producing the gradients `G_i` the encoder needs).
//!
//! Fig. 12 observes that later microbatches' forward dependency points can be
//! deferred without affecting pipeline latency by adjusting warmup counts. We
//! implement that deferral in its general form: `F_i` is the *latest start
//! time* of the first kernel of the rank-0 chunk-0 forward of microbatch `i`
//! that leaves the makespan unchanged (critical-path slack analysis over the
//! lowered graph), which subsumes the warmup-count adjustment.

use optimus_cluster::TimeNs;
use optimus_sim::{latest_start_times, SimResult};

use crate::error::PipelineError;
use crate::lower::Lowered;
use crate::schedule::Dir;

/// Forward and backward dependency points per microbatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyPoints {
    /// `F_i`: the encoder must finish the forward of microbatch `i` (and its
    /// activations must have been transferred) by this instant.
    pub forward: Vec<TimeNs>,
    /// `B_i`: the encoder may begin the backward of microbatch `i` no
    /// earlier than this instant.
    pub backward: Vec<TimeNs>,
}

impl DependencyPoints {
    /// Number of microbatches.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }
}

/// Extracts dependency points from a lowered, simulated LLM pipeline.
///
/// With `adjusted = false`, `F_i` is the *actual* start of the rank-0 chunk-0
/// forward (the default interleaved-1F1B behaviour, Fig. 12 top). With
/// `adjusted = true`, `F_i` is the latest start that preserves the makespan
/// (Fig. 12 bottom).
pub fn dependency_points(
    lowered: &Lowered,
    result: &SimResult,
    n_microbatches: u32,
    adjusted: bool,
) -> Result<DependencyPoints, PipelineError> {
    let latest = if adjusted {
        Some(latest_start_times(&lowered.graph, result))
    } else {
        None
    };
    let mut forward = Vec::with_capacity(n_microbatches as usize);
    let mut backward = Vec::with_capacity(n_microbatches as usize);
    for mb in 0..n_microbatches {
        let f = lowered
            .first
            .get(&(0, 0, mb, Dir::Fwd))
            .ok_or_else(|| PipelineError::BadSpec {
                reason: format!("missing rank-0 forward for microbatch {mb}"),
            })?;
        let b = lowered
            .last
            .get(&(0, 0, mb, Dir::Bwd))
            .ok_or_else(|| PipelineError::BadSpec {
                reason: format!("missing rank-0 backward for microbatch {mb}"),
            })?;
        let f_point = match &latest {
            Some(ls) => ls[f.index()],
            None => result.span(*f).start,
        };
        forward.push(f_point);
        backward.push(result.span(*b).end);
    }
    Ok(DependencyPoints { forward, backward })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{simulate_pipeline, PipelineSpec};
    use crate::schedule::interleaved_1f1b;
    use crate::stage::{StageSpec, TimedKernel};
    use optimus_cluster::DurNs;

    fn uniform_spec(pp: u32, vpp: u32, n: u32, tf: u64, tb: u64) -> PipelineSpec {
        let stage = StageSpec {
            fwd: vec![TimedKernel {
                label: "f",
                dur: DurNs(tf),
                comm: false,
            }],
            bwd: vec![TimedKernel {
                label: "b",
                dur: DurNs(tb),
                comm: false,
            }],
            ..StageSpec::default()
        };
        PipelineSpec {
            pp,
            vpp,
            n_microbatches: n,
            stages: vec![stage; (pp * vpp) as usize],
            dp_allgather: DurNs::ZERO,
            dp_reducescatter: DurNs::ZERO,
            p2p: DurNs::ZERO,
        }
    }

    /// The Fig. 12 configuration: pp=4, vpp=2, 8 microbatches.
    fn fig12() -> (crate::lower::Lowered, optimus_sim::SimResult) {
        let spec = uniform_spec(4, 2, 8, 100, 200);
        let sched = interleaved_1f1b(4, 2, 8, None).unwrap();
        simulate_pipeline(&spec, &sched, &[]).unwrap()
    }

    #[test]
    fn forward_points_are_nondecreasing() {
        let (l, r) = fig12();
        for adjusted in [false, true] {
            let dp = dependency_points(&l, &r, 8, adjusted).unwrap();
            assert_eq!(dp.len(), 8);
            for w in dp.forward.windows(2) {
                assert!(w[0] <= w[1], "adjusted={adjusted}: {:?}", dp.forward);
            }
        }
    }

    #[test]
    fn adjustment_defers_later_forward_points() {
        // Fig. 12: the last microbatches' forward dependency points can be
        // deferred without latency impact; earlier ones are on the critical
        // path and cannot move.
        let (l, r) = fig12();
        let base = dependency_points(&l, &r, 8, false).unwrap();
        let adj = dependency_points(&l, &r, 8, true).unwrap();
        // No adjusted point is earlier than the default.
        for i in 0..8 {
            assert!(adj.forward[i] >= base.forward[i], "mb {i}");
        }
        // At least one later microbatch is strictly deferred.
        let deferred = (4..8).filter(|&i| adj.forward[i] > base.forward[i]).count();
        assert!(
            deferred > 0,
            "no deferral achieved: {:?} vs {:?}",
            adj.forward,
            base.forward
        );
        // Backward points identical (no adjustment applies).
        assert_eq!(base.backward, adj.backward);
    }

    #[test]
    fn backward_points_follow_forward_points() {
        let (l, r) = fig12();
        let dp = dependency_points(&l, &r, 8, false).unwrap();
        for i in 0..8 {
            assert!(dp.backward[i] > dp.forward[i], "mb {i}");
        }
    }

    #[test]
    fn missing_microbatch_is_an_error() {
        let (l, r) = fig12();
        assert!(dependency_points(&l, &r, 9, false).is_err());
    }
}

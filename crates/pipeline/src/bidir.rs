//! Chimera-style bidirectional pipelines (Li & Hoefler), the other §6
//! schedule family.
//!
//! Two pipelines share the same ranks in opposite directions: the *down*
//! pipeline places stage `s` on rank `s`, the *up* pipeline places stage `s`
//! on rank `pp − 1 − s`; each processes half the microbatches with 1F1B.
//! A rank's warmup bubble in one direction coincides with steady work in the
//! other, roughly halving the fill/drain cost. Each rank holds both models'
//! stage states (double the weight memory — Chimera's known trade-off).
//!
//! This is a faithful family member rather than a byte-exact Chimera
//! reimplementation: per-rank op orders interleave the two 1F1B programs
//! round-robin, and the dependency-driven engine resolves the exact timing.

use std::collections::HashMap;

use optimus_sim::{simulate, SimResult, Stream, TaskGraph, TaskId, TaskKind};

use crate::error::PipelineError;
use crate::schedule::{one_f_one_b, Dir, PipelineOp};
use crate::stage::StageSpec;

/// Which of the two pipelines an operation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flow {
    /// Stage `s` on rank `s`.
    Down,
    /// Stage `s` on rank `pp − 1 − s`.
    Up,
}

/// Specification of a bidirectional pipeline.
#[derive(Debug, Clone)]
pub struct BidirSpec {
    /// Pipeline depth (ranks).
    pub pp: u32,
    /// Total microbatches (must be even; half per direction).
    pub n_microbatches: u32,
    /// Per-stage kernels of the down pipeline (`len == pp`).
    pub stages_down: Vec<StageSpec>,
    /// Per-stage kernels of the up pipeline (`len == pp`).
    pub stages_up: Vec<StageSpec>,
    /// Unhidden DP all-gather duration.
    pub dp_allgather: optimus_cluster::DurNs,
    /// Unhidden DP reduce-scatter duration.
    pub dp_reducescatter: optimus_cluster::DurNs,
    /// Inter-stage transfer duration.
    pub p2p: optimus_cluster::DurNs,
}

impl BidirSpec {
    fn check(&self) -> Result<(), PipelineError> {
        if self.pp == 0 {
            return Err(PipelineError::BadSpec {
                reason: "pp must be >= 1".into(),
            });
        }
        if self.n_microbatches == 0 || !self.n_microbatches.is_multiple_of(2) {
            return Err(PipelineError::BadSpec {
                reason: format!(
                    "bidirectional needs an even microbatch count, got {}",
                    self.n_microbatches
                ),
            });
        }
        if self.stages_down.len() != self.pp as usize || self.stages_up.len() != self.pp as usize {
            return Err(PipelineError::BadSpec {
                reason: "stage count != pp".into(),
            });
        }
        Ok(())
    }

    /// Rank hosting stage `s` of `flow`.
    pub fn host(&self, flow: Flow, stage: u32) -> u32 {
        match flow {
            Flow::Down => stage,
            Flow::Up => self.pp - 1 - stage,
        }
    }

    /// Stage hosted by `rank` in `flow`.
    pub fn stage_of(&self, flow: Flow, rank: u32) -> u32 {
        match flow {
            Flow::Down => rank,
            Flow::Up => self.pp - 1 - rank,
        }
    }
}

type OpKey = (Flow, u32, u32, Dir); // (flow, stage, microbatch, dir)

/// Derives per-rank merged op orders by op-level list scheduling: at every
/// step the globally earliest-startable head op (over all ranks × flows) is
/// committed. Chimera's gain comes precisely from this readiness-aware
/// interleaving — a naive round-robin merge head-of-line-blocks one flow on
/// the other's stalls.
fn merge_programs(
    spec: &BidirSpec,
    sched: &crate::schedule::PipelineSchedule,
) -> Vec<Vec<(Flow, PipelineOp)>> {
    let pp = spec.pp as usize;
    let p2p = spec.p2p.0;
    // Op duration at stage level.
    let dur = |flow: Flow, stage: u32, dir: Dir| -> u64 {
        let stages = match flow {
            Flow::Down => &spec.stages_down,
            Flow::Up => &spec.stages_up,
        };
        match dir {
            Dir::Fwd => stages[stage as usize].fwd_total().0,
            Dir::Bwd => stages[stage as usize].bwd_total().0,
            Dir::Wgrad => stages[stage as usize].wgrad_total().0,
        }
    };

    // Program cursors: (rank, flow) → index into that flow's 1F1B program.
    let mut cursor = vec![[0usize; 2]; pp];
    let mut free = vec![0u64; pp];
    let mut finish: HashMap<OpKey, u64> = HashMap::new();
    let mut merged: Vec<Vec<(Flow, PipelineOp)>> = vec![Vec::new(); pp];
    let total: usize = 2 * sched.ops.iter().map(|v| v.len()).sum::<usize>() / sched.ops.len() * pp;
    let mut emitted = 0usize;

    while emitted < total {
        // Earliest-startable head op across all (rank, flow).
        let mut best: Option<((u64, u64), usize, usize)> = None; // ((start, inv-urgency), rank, flow)
        for (rank, cur) in cursor.iter().enumerate() {
            for (fi, flow) in [Flow::Down, Flow::Up].into_iter().enumerate() {
                let program = &sched.ops[spec.stage_of(flow, rank as u32) as usize];
                let Some(op) = program.get(cur[fi]) else {
                    continue;
                };
                let stage = spec.stage_of(flow, rank as u32);
                let producer: Option<OpKey> = match op.dir {
                    Dir::Fwd if stage > 0 => Some((flow, stage - 1, op.microbatch, Dir::Fwd)),
                    Dir::Bwd if stage + 1 < spec.pp => {
                        Some((flow, stage + 1, op.microbatch, Dir::Bwd))
                    }
                    Dir::Bwd => Some((flow, stage, op.microbatch, Dir::Fwd)),
                    _ => None,
                };
                let ready = match producer {
                    None => 0,
                    Some(key) => match finish.get(&key) {
                        Some(&t) => t + p2p,
                        None => continue, // producer not scheduled yet
                    },
                };
                let start = ready.max(free[rank]);
                // Tie-break by remaining critical work: forwards deep in the
                // pipeline (few stages left) matter less than upstream
                // forwards feeding many consumers; backwards of early
                // microbatches unblock 1F1B steady progress.
                let urgency = match op.dir {
                    Dir::Fwd => u64::from(2 * spec.pp - stage),
                    Dir::Bwd => u64::from(spec.pp + stage),
                    Dir::Wgrad => 0,
                };
                let key = (start, u64::MAX - urgency);
                if best.map(|(b, _, _)| key < b).unwrap_or(true) {
                    best = Some((key, rank, fi));
                }
            }
        }
        let Some(((start, _), rank, fi)) = best else {
            break;
        };
        let flow = if fi == 0 { Flow::Down } else { Flow::Up };
        let program = &sched.ops[spec.stage_of(flow, rank as u32) as usize];
        let op = program[cursor[rank][fi]];
        cursor[rank][fi] += 1;
        let stage = spec.stage_of(flow, rank as u32);
        let end = start + dur(flow, stage, op.dir);
        free[rank] = end;
        finish.insert((flow, stage, op.microbatch, op.dir), end);
        merged[rank].push((flow, op));
        emitted += 1;
    }
    merged
}

/// Lowers and simulates a bidirectional pipeline; returns the task graph and
/// simulation result.
pub fn simulate_bidirectional(spec: &BidirSpec) -> Result<(TaskGraph, SimResult), PipelineError> {
    spec.check()?;
    let pp = spec.pp;
    let half = spec.n_microbatches / 2;
    let sched = one_f_one_b(pp, half)?;

    // Per-rank merged program: alternate one op from each flow. The down
    // program of rank r is sched.ops[stage_of(Down, r)] == ops[r]; the up
    // program of rank r is the 1F1B program of its up-stage.
    let merged_orders = merge_programs(spec, &sched);

    let mut graph = TaskGraph::new(pp);
    let mut first: HashMap<OpKey, TaskId> = HashMap::new();
    let mut last: HashMap<OpKey, TaskId> = HashMap::new();
    let mut wires: Vec<(TaskId, OpKey)> = Vec::new();

    for rank in 0..pp {
        let ag = graph.push(
            "dp_allgather",
            rank,
            Stream::DpComm,
            spec.dp_allgather,
            TaskKind::DpAllGather,
            vec![],
        );
        let merged = merged_orders[rank as usize].clone();

        let mut rank_started = false;
        let mut rank_last: Option<TaskId> = None;
        for (flow, op) in merged {
            let stage_idx = spec.stage_of(flow, rank);
            let stages = match flow {
                Flow::Down => &spec.stages_down,
                Flow::Up => &spec.stages_up,
            };
            let stage = &stages[stage_idx as usize];
            let kernels = match op.dir {
                Dir::Fwd => &stage.fwd,
                Dir::Bwd => &stage.bwd,
                Dir::Wgrad => &stage.bwd_weight,
            };
            if kernels.is_empty() {
                continue;
            }
            let key: OpKey = (flow, stage_idx, op.microbatch, op.dir);

            let mut head_deps = Vec::new();
            if !rank_started {
                head_deps.push(ag);
                rank_started = true;
            }
            match op.dir {
                Dir::Fwd if stage_idx > 0 => {
                    let tr = graph.push(
                        "pp_fwd_recv",
                        rank,
                        Stream::P2p,
                        spec.p2p,
                        TaskKind::PpFwdTransfer {
                            microbatch: op.microbatch,
                        },
                        vec![],
                    );
                    wires.push((tr, (flow, stage_idx - 1, op.microbatch, Dir::Fwd)));
                    head_deps.push(tr);
                }
                Dir::Bwd if stage_idx + 1 < pp => {
                    let tr = graph.push(
                        "pp_bwd_recv",
                        rank,
                        Stream::P2p,
                        spec.p2p,
                        TaskKind::PpBwdTransfer {
                            microbatch: op.microbatch,
                        },
                        vec![],
                    );
                    wires.push((tr, (flow, stage_idx + 1, op.microbatch, Dir::Bwd)));
                    head_deps.push(tr);
                }
                Dir::Bwd => {
                    if let Some(&t) = last.get(&(flow, stage_idx, op.microbatch, Dir::Fwd)) {
                        head_deps.push(t);
                    }
                }
                _ => {}
            }

            let mut prev: Option<TaskId> = None;
            for k in kernels {
                let stream = if k.comm {
                    Stream::TpComm
                } else {
                    Stream::Compute
                };
                let kind = if k.comm {
                    TaskKind::LlmTpComm
                } else {
                    match op.dir {
                        Dir::Fwd => TaskKind::LlmFwd {
                            chunk: 0,
                            microbatch: op.microbatch,
                        },
                        _ => TaskKind::LlmBwd {
                            chunk: 0,
                            microbatch: op.microbatch,
                        },
                    }
                };
                let deps = match prev {
                    Some(p) => vec![p],
                    None => head_deps.clone(),
                };
                let tid = graph.push(k.label, rank, stream, k.dur, kind, deps);
                if prev.is_none() {
                    first.insert(key, tid);
                }
                prev = Some(tid);
            }
            if let Some(p) = prev {
                last.insert(key, p);
                rank_last = Some(p);
            }
        }
        let rs_deps = rank_last.map(|t| vec![t]).unwrap_or_default();
        graph.push(
            "dp_reducescatter",
            rank,
            Stream::DpComm,
            spec.dp_reducescatter,
            TaskKind::DpReduceScatter,
            rs_deps,
        );
    }

    for (tr, key) in wires {
        let prod = *last.get(&key).ok_or_else(|| PipelineError::BadSpec {
            reason: format!("missing producer {key:?}"),
        })?;
        graph.add_dep(tr, prod);
    }

    let result = simulate(&graph).map_err(|e| PipelineError::Simulation(e.to_string()))?;
    Ok((graph, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{simulate_pipeline, PipelineSpec};
    use crate::stage::TimedKernel;
    use optimus_cluster::DurNs;
    use optimus_sim::mean_compute_utilization;

    fn unit_stage(tf: u64, tb: u64) -> StageSpec {
        StageSpec {
            fwd: vec![TimedKernel {
                label: "f",
                dur: DurNs(tf),
                comm: false,
            }],
            bwd: vec![TimedKernel {
                label: "b",
                dur: DurNs(tb),
                comm: false,
            }],
            ..StageSpec::default()
        }
    }

    /// Chimera replicates the model into two full-size pipelines and splits
    /// the *microbatches* between them: per-rank work matches plain 1F1B.
    fn bidir_spec(pp: u32, n: u32, tf: u64, tb: u64) -> BidirSpec {
        BidirSpec {
            pp,
            n_microbatches: n,
            stages_down: vec![unit_stage(tf, tb); pp as usize],
            stages_up: vec![unit_stage(tf, tb); pp as usize],
            dp_allgather: DurNs::ZERO,
            dp_reducescatter: DurNs::ZERO,
            p2p: DurNs::ZERO,
        }
    }

    #[test]
    fn chimera_beats_plain_1f1b() {
        // Equal total work per rank: one full-size pipeline with n
        // microbatches vs two half-size opposing pipelines with n/2 each.
        let (pp, n, tf, tb) = (4, 8, 400, 800);
        let plain = PipelineSpec {
            pp,
            vpp: 1,
            n_microbatches: n,
            stages: vec![unit_stage(tf, tb); pp as usize],
            dp_allgather: DurNs::ZERO,
            dp_reducescatter: DurNs::ZERO,
            p2p: DurNs::ZERO,
        };
        let (_l, r1) = simulate_pipeline(&plain, &one_f_one_b(pp, n).unwrap(), &[]).unwrap();
        let (g2, r2) = simulate_bidirectional(&bidir_spec(pp, n, tf, tb)).unwrap();
        assert!(
            r2.makespan() < r1.makespan(),
            "chimera {} vs 1f1b {}",
            r2.makespan(),
            r1.makespan()
        );
        // Work conservation: per rank n/2 microbatches in each direction at
        // full stage size = n·(t_f + t_b), matching plain 1F1B.
        let w2 = g2.total_work(|t| t.stream == Stream::Compute);
        assert_eq!(w2.0, u64::from(n * pp) * (tf + tb));
        // Utilisation improves.
        assert!(mean_compute_utilization(&g2, &r2) > 0.5);
    }

    #[test]
    fn stage_hosting_is_reversed() {
        let s = bidir_spec(4, 8, 100, 100);
        assert_eq!(s.host(Flow::Down, 0), 0);
        assert_eq!(s.host(Flow::Up, 0), 3);
        assert_eq!(s.stage_of(Flow::Up, 3), 0);
    }

    #[test]
    fn odd_microbatches_rejected() {
        let mut s = bidir_spec(4, 8, 100, 100);
        s.n_microbatches = 7;
        assert!(simulate_bidirectional(&s).is_err());
    }

    #[test]
    fn single_rank_degenerates_cleanly() {
        let s = bidir_spec(1, 4, 100, 100);
        let (_g, r) = simulate_bidirectional(&s).unwrap();
        // All work serial on one rank: 2 mbs × (100 + 100) per flow × 2.
        assert_eq!(r.makespan().0, 2 * 200 * 2);
    }
}

//! 3D-parallelism plans: (DP, PP, TP) plus virtual-pipeline chunking.

use std::fmt;

use crate::error::PlanError;

/// One 3D parallelism plan.
///
/// `vpp` is the number of virtual pipeline chunks per stage used by the
/// interleaved 1F1B schedule (Megatron's `V`); `vpp = 1` means the plain
/// non-interleaved schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelPlan {
    /// Data-parallel degree.
    pub dp: u32,
    /// Pipeline-parallel degree.
    pub pp: u32,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Virtual pipeline chunks per physical stage.
    pub vpp: u32,
}

impl ParallelPlan {
    /// Builds a plan, validating all degrees are ≥ 1.
    pub fn new(dp: u32, pp: u32, tp: u32) -> Result<ParallelPlan, PlanError> {
        ParallelPlan::with_vpp(dp, pp, tp, 1)
    }

    /// Builds an interleaved plan with `vpp` model chunks per stage.
    pub fn with_vpp(dp: u32, pp: u32, tp: u32, vpp: u32) -> Result<ParallelPlan, PlanError> {
        if dp == 0 || pp == 0 || tp == 0 || vpp == 0 {
            return Err(PlanError::ZeroDegree);
        }
        Ok(ParallelPlan { dp, pp, tp, vpp })
    }

    /// GPUs the plan occupies.
    pub fn num_gpus(&self) -> u32 {
        self.dp * self.pp * self.tp
    }

    /// Virtual stages in the pipeline (`pp · vpp`).
    pub fn virtual_stages(&self) -> u32 {
        self.pp * self.vpp
    }

    /// Splits `layers` across the virtual stages as evenly as possible,
    /// front-loading the remainder (Megatron assigns extra layers to earlier
    /// stages). Returns layers per virtual stage, length `pp · vpp`.
    pub fn layer_split(&self, layers: u32) -> Vec<u32> {
        let stages = self.virtual_stages();
        let base = layers / stages;
        let extra = layers % stages;
        (0..stages).map(|s| base + u32::from(s < extra)).collect()
    }

    /// Validates the plan against a cluster size and node width: the plan
    /// must tile the GPUs exactly and TP groups must fit inside one node
    /// (Megatron practice — TP traffic must stay on NVLink).
    pub fn check(&self, num_gpus: u32, gpus_per_node: u32) -> Result<(), PlanError> {
        if self.num_gpus() != num_gpus {
            return Err(PlanError::GpuMismatch {
                plan: self.num_gpus(),
                cluster: num_gpus,
            });
        }
        if self.tp > gpus_per_node || !gpus_per_node.is_multiple_of(self.tp) {
            return Err(PlanError::TpSpansNodes {
                tp: self.tp,
                gpus_per_node,
            });
        }
        Ok(())
    }
}

impl fmt::Display for ParallelPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.vpp > 1 {
            write!(
                f,
                "(DP={}, PP={}, TP={}, V={})",
                self.dp, self.pp, self.tp, self.vpp
            )
        } else {
            write!(f, "(DP={}, PP={}, TP={})", self.dp, self.pp, self.tp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_count_is_product() {
        let p = ParallelPlan::new(48, 8, 8).unwrap();
        assert_eq!(p.num_gpus(), 3072);
    }

    #[test]
    fn zero_degree_rejected() {
        assert!(matches!(
            ParallelPlan::new(0, 1, 1),
            Err(PlanError::ZeroDegree)
        ));
    }

    #[test]
    fn layer_split_front_loads_remainder() {
        let p = ParallelPlan::with_vpp(1, 4, 1, 1).unwrap();
        assert_eq!(p.layer_split(10), vec![3, 3, 2, 2]);
        let q = ParallelPlan::with_vpp(1, 4, 1, 3).unwrap();
        assert_eq!(q.layer_split(96).len(), 12);
        assert_eq!(q.layer_split(96).iter().sum::<u32>(), 96);
    }

    #[test]
    fn check_enforces_tiling_and_tp_width() {
        let p = ParallelPlan::new(2, 4, 8).unwrap();
        assert!(p.check(64, 8).is_ok());
        assert!(matches!(
            p.check(128, 8),
            Err(PlanError::GpuMismatch { .. })
        ));
        let wide = ParallelPlan::new(1, 4, 16).unwrap();
        assert!(matches!(
            wide.check(64, 8),
            Err(PlanError::TpSpansNodes { .. })
        ));
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = ParallelPlan::with_vpp(8, 8, 8, 12).unwrap();
        assert_eq!(p.to_string(), "(DP=8, PP=8, TP=8, V=12)");
        let q = ParallelPlan::new(2, 4, 8).unwrap();
        assert_eq!(q.to_string(), "(DP=2, PP=4, TP=8)");
    }
}

//! Colocation layout: how encoder pipelines tile the GPUs of one LLM
//! pipeline (Design Decision 1, Fig. 5).
//!
//! Within one LLM data-parallel replica there are `PP_llm × TP_llm` GPUs.
//! An encoder plan with `PP_enc | PP_llm` and `TP_enc | TP_llm` tiles those
//! GPUs into `m = (PP_llm/PP_enc) · (TP_llm/TP_enc) · 1` encoder pipelines:
//! `blocks = PP_llm/PP_enc` contiguous stage blocks × `lanes = TP_llm/TP_enc`
//! tensor-parallel sub-groups. Every GPU hosts exactly one encoder pipeline
//! stage in addition to its LLM stage, so all GPUs can run encoder work
//! during LLM bubbles.

use crate::error::PlanError;
use crate::plan::ParallelPlan;

/// The tiling of encoder pipelines over one LLM pipeline's GPUs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColocationLayout {
    /// The LLM plan.
    pub llm: ParallelPlan,
    /// The encoder plan.
    pub enc: ParallelPlan,
    /// TP sub-groups per LLM TP group (`TP_llm / TP_enc`).
    pub lanes: u32,
    /// Contiguous LLM-stage blocks (`PP_llm / PP_enc`).
    pub blocks: u32,
}

impl ColocationLayout {
    /// Builds the layout, validating the §4.1 divisibility constraints.
    pub fn new(llm: ParallelPlan, enc: ParallelPlan) -> Result<ColocationLayout, PlanError> {
        if !llm.pp.is_multiple_of(enc.pp) {
            return Err(PlanError::IncompatibleEncoderPlan {
                reason: format!("PP_enc={} does not divide PP_llm={}", enc.pp, llm.pp),
            });
        }
        if !llm.tp.is_multiple_of(enc.tp) {
            return Err(PlanError::IncompatibleEncoderPlan {
                reason: format!("TP_enc={} does not divide TP_llm={}", enc.tp, llm.tp),
            });
        }
        if enc.num_gpus() != llm.num_gpus() {
            return Err(PlanError::IncompatibleEncoderPlan {
                reason: format!(
                    "encoder plan covers {} GPUs, LLM plan covers {}",
                    enc.num_gpus(),
                    llm.num_gpus()
                ),
            });
        }
        Ok(ColocationLayout {
            llm,
            enc,
            lanes: llm.tp / enc.tp,
            blocks: llm.pp / enc.pp,
        })
    }

    /// Number of encoder pipelines colocated with one LLM pipeline — the
    /// paper's `m = DP_enc / DP_llm`.
    pub fn pipelines_per_llm_pipeline(&self) -> u32 {
        self.lanes * self.blocks
    }

    /// The LLM pipeline stage hosting stage `enc_stage` of encoder pipeline
    /// `pipeline` (0-based). Encoder pipelines are numbered block-major:
    /// pipeline `p` lives in block `p / lanes`, lane `p % lanes`.
    ///
    /// # Panics
    ///
    /// Panics if `pipeline` or `enc_stage` is out of range.
    pub fn host_llm_stage(&self, pipeline: u32, enc_stage: u32) -> u32 {
        assert!(
            pipeline < self.pipelines_per_llm_pipeline(),
            "pipeline {pipeline} out of range"
        );
        assert!(
            enc_stage < self.enc.pp,
            "encoder stage {enc_stage} out of range"
        );
        let block = pipeline / self.lanes;
        block * self.enc.pp + enc_stage
    }

    /// The lane (TP sub-group index) of an encoder pipeline.
    pub fn lane_of(&self, pipeline: u32) -> u32 {
        pipeline % self.lanes
    }

    /// Encoder pipelines hosted (in part) on a given LLM stage.
    pub fn pipelines_on_llm_stage(&self, llm_stage: u32) -> Vec<u32> {
        let block = llm_stage / self.enc.pp;
        (0..self.lanes)
            .map(|lane| block * self.lanes + lane)
            .collect()
    }

    /// The encoder stage that `pipeline` runs on `llm_stage`, if any.
    pub fn enc_stage_on(&self, pipeline: u32, llm_stage: u32) -> Option<u32> {
        let block = pipeline / self.lanes;
        let first = block * self.enc.pp;
        if llm_stage >= first && llm_stage < first + self.enc.pp {
            Some(llm_stage - first)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 5 example: encoder (DP=2, PP=2, TP=2), LLM (DP=1, PP=4,
    /// TP=2) over 8 GPUs.
    fn figure5() -> ColocationLayout {
        let llm = ParallelPlan::new(1, 4, 2).unwrap();
        let enc = ParallelPlan::new(2, 2, 2).unwrap();
        ColocationLayout::new(llm, enc).unwrap()
    }

    #[test]
    fn figure5_has_two_encoder_pipelines() {
        let l = figure5();
        assert_eq!(l.pipelines_per_llm_pipeline(), 2);
        assert_eq!(l.lanes, 1);
        assert_eq!(l.blocks, 2);
    }

    #[test]
    fn figure5_stage_hosting() {
        let l = figure5();
        // Pipeline 0 occupies LLM stages 0..2, pipeline 1 stages 2..4.
        assert_eq!(l.host_llm_stage(0, 0), 0);
        assert_eq!(l.host_llm_stage(0, 1), 1);
        assert_eq!(l.host_llm_stage(1, 0), 2);
        assert_eq!(l.host_llm_stage(1, 1), 3);
    }

    #[test]
    fn every_llm_stage_hosts_exactly_one_stage_per_lane() {
        let llm = ParallelPlan::new(2, 8, 8).unwrap();
        let enc = ParallelPlan::new(16, 2, 4).unwrap();
        let l = ColocationLayout::new(llm, enc).unwrap();
        assert_eq!(l.lanes, 2);
        assert_eq!(l.blocks, 4);
        assert_eq!(l.pipelines_per_llm_pipeline(), 8);
        for stage in 0..8 {
            let ps = l.pipelines_on_llm_stage(stage);
            assert_eq!(ps.len(), l.lanes as usize, "stage {stage}");
            for p in ps {
                assert!(l.enc_stage_on(p, stage).is_some());
            }
        }
    }

    #[test]
    fn m_matches_dp_ratio() {
        // m = DP_enc / DP_llm (paper §4.1).
        let llm = ParallelPlan::new(2, 8, 8).unwrap();
        let enc = ParallelPlan::new(16, 2, 4).unwrap();
        let l = ColocationLayout::new(llm, enc).unwrap();
        assert_eq!(l.pipelines_per_llm_pipeline(), enc.dp / llm.dp);
    }

    #[test]
    fn incompatible_plans_rejected() {
        let llm = ParallelPlan::new(1, 4, 2).unwrap();
        let bad_pp = ParallelPlan::new(1, 3, 2).unwrap(); // 3 ∤ 4, also wrong gpu count
        assert!(ColocationLayout::new(llm, bad_pp).is_err());
        let bad_gpus = ParallelPlan::new(1, 2, 2).unwrap(); // 4 GPUs vs 8
        assert!(ColocationLayout::new(llm, bad_gpus).is_err());
    }

    #[test]
    fn enc_stage_on_returns_none_outside_block() {
        let l = figure5();
        assert_eq!(l.enc_stage_on(0, 3), None);
        assert_eq!(l.enc_stage_on(1, 0), None);
        assert_eq!(l.enc_stage_on(1, 2), Some(0));
    }
}

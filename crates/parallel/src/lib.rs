//! 3D-parallelism plans, enumeration, and encoder/LLM colocation layout.
//!
//! Implements the plan machinery of the Optimus model planner (§4.1): plan
//! representation `(DP, PP, TP, V)`, enumeration of candidate encoder plans
//! under the divisibility constraints `PP_enc | PP_llm` and `TP_enc | TP_llm`,
//! the colocation tiling that gives every GPU both encoder and LLM model
//! states (Fig. 5), and the enumeration of microbatch partitions across
//! encoder pipelines.
//!
//! # Examples
//!
//! ```
//! use optimus_parallel::{ColocationLayout, ParallelPlan};
//!
//! // Figure 5: encoder (DP=2, PP=2, TP=2) over LLM (DP=1, PP=4, TP=2).
//! let llm = ParallelPlan::new(1, 4, 2).unwrap();
//! let enc = ParallelPlan::new(2, 2, 2).unwrap();
//! let layout = ColocationLayout::new(llm, enc).unwrap();
//! assert_eq!(layout.pipelines_per_llm_pipeline(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
pub mod error;
pub mod layout;
pub mod microbatch;
pub mod plan;
pub mod pool;

pub use enumerate::{divisors, enumerate_encoder_plans, enumerate_plans};
pub use error::PlanError;
pub use layout::ColocationLayout;
pub use microbatch::{composition_count, Compositions};
pub use plan::ParallelPlan;
pub use pool::{par_map, resolve_workers, PoolRun, WorkerLoad};

//! Errors for parallel-plan construction and enumeration.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating parallel plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Every parallel degree must be at least 1.
    ZeroDegree,
    /// Plan GPU count does not match the cluster.
    GpuMismatch {
        /// GPUs required by the plan.
        plan: u32,
        /// GPUs in the cluster.
        cluster: u32,
    },
    /// A tensor-parallel group would span server boundaries.
    TpSpansNodes {
        /// Tensor-parallel degree.
        tp: u32,
        /// GPUs per node.
        gpus_per_node: u32,
    },
    /// Encoder plan degrees must divide the LLM plan degrees (§4.1).
    IncompatibleEncoderPlan {
        /// Human-readable reason.
        reason: String,
    },
    /// A microbatch partition request was invalid.
    BadPartition {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ZeroDegree => write!(f, "parallel degrees must be >= 1"),
            PlanError::GpuMismatch { plan, cluster } => {
                write!(f, "plan needs {plan} GPUs but cluster has {cluster}")
            }
            PlanError::TpSpansNodes { tp, gpus_per_node } => {
                write!(
                    f,
                    "TP={tp} does not fit within nodes of {gpus_per_node} GPUs"
                )
            }
            PlanError::IncompatibleEncoderPlan { reason } => {
                write!(f, "incompatible encoder plan: {reason}")
            }
            PlanError::BadPartition { reason } => write!(f, "bad microbatch partition: {reason}"),
        }
    }
}

impl Error for PlanError {}

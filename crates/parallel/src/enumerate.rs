//! Enumeration of candidate 3D parallelism plans.
//!
//! The model planner (§4.1) fixes the LLM plan from Megatron-LM practice and
//! then "enumerates potential 3D parallelism plans (DP_enc, PP_enc, TP_enc)"
//! for the encoder, subject to the colocation constraints that `PP_enc`
//! divides `PP_llm` and `TP_enc` divides `TP_llm`.

use crate::plan::ParallelPlan;

/// All divisors of `n`, ascending.
pub fn divisors(n: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut i = 1;
    while i * i <= n {
        if n.is_multiple_of(i) {
            out.push(i);
            if i != n / i {
                out.push(n / i);
            }
        }
        i += 1;
    }
    out.sort_unstable();
    out
}

/// Enumerates every (DP, PP, TP) factorisation of `num_gpus` with `tp` not
/// exceeding (and dividing) the node width and `pp ≤ max_pp`.
pub fn enumerate_plans(num_gpus: u32, gpus_per_node: u32, max_pp: u32) -> Vec<ParallelPlan> {
    let mut plans = Vec::new();
    for tp in divisors(num_gpus) {
        if tp > gpus_per_node || !gpus_per_node.is_multiple_of(tp) {
            continue;
        }
        let rest = num_gpus / tp;
        for pp in divisors(rest) {
            if pp > max_pp {
                continue;
            }
            let dp = rest / pp;
            if let Ok(p) = ParallelPlan::new(dp, pp, tp) {
                plans.push(p);
            }
        }
    }
    plans
}

/// Enumerates encoder plans compatible with a fixed LLM plan over the same
/// GPUs (§4.1): `PP_enc | PP_llm`, `TP_enc | TP_llm`, and the encoder plan
/// occupies exactly the same GPU count.
///
/// `max_pp` additionally caps `PP_enc` at the number of encoder layers.
pub fn enumerate_encoder_plans(llm: &ParallelPlan, max_pp: u32) -> Vec<ParallelPlan> {
    let total = llm.num_gpus();
    let mut plans = Vec::new();
    for tp in divisors(llm.tp) {
        for pp in divisors(llm.pp) {
            if pp > max_pp {
                continue;
            }
            let dp = total / (pp * tp);
            if let Ok(p) = ParallelPlan::new(dp, pp, tp) {
                plans.push(p);
            }
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisors_of_12() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
    }

    #[test]
    fn plans_tile_the_cluster() {
        for p in enumerate_plans(64, 8, 16) {
            assert_eq!(p.num_gpus(), 64);
            assert!(p.tp <= 8);
        }
    }

    #[test]
    fn encoder_plans_divide_llm_plan() {
        let llm = ParallelPlan::new(1, 4, 2).unwrap();
        let encs = enumerate_encoder_plans(&llm, 48);
        assert!(!encs.is_empty());
        for e in &encs {
            assert_eq!(llm.pp % e.pp, 0, "{e}");
            assert_eq!(llm.tp % e.tp, 0, "{e}");
            assert_eq!(e.num_gpus(), llm.num_gpus(), "{e}");
            // DP_enc is a multiple of DP_llm by construction.
            assert_eq!(e.dp % llm.dp, 0, "{e}");
        }
        // Figure 5's example plan must be among them: (DP=2, PP=2, TP=2).
        assert!(encs.contains(&ParallelPlan::new(2, 2, 2).unwrap()));
    }

    #[test]
    fn encoder_pp_capped_by_layers() {
        let llm = ParallelPlan::new(1, 8, 8).unwrap();
        let encs = enumerate_encoder_plans(&llm, 2);
        assert!(encs.iter().all(|e| e.pp <= 2));
    }

    #[test]
    fn strong_scaling_llm_plan_enumerable() {
        // (DP=48, PP=8, TP=8) on 3072 GPUs must be in the general enumeration.
        let plans = enumerate_plans(3072, 8, 8);
        assert!(plans.contains(&ParallelPlan::new(48, 8, 8).unwrap()));
    }
}

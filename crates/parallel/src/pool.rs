//! A deterministic scoped worker pool: fan a batch of work items out across
//! `std::thread::scope` threads with atomic work-claiming, and hand the
//! results back **in input order**.
//!
//! The pool is the repo's one shared fan-out primitive: the plan search in
//! `optimus-core` drives its candidate sweep through it, and the adversarial
//! chaos search in `optimus-chaos` evaluates perturbation probes on it.
//! Both get the same contract:
//!
//! * work items are claimed from a shared atomic counter, so workers stay
//!   busy regardless of per-item cost skew;
//! * `eval` must be a pure function of `(index, item)` — it runs
//!   concurrently and nothing else is synchronized;
//! * results are returned indexed by input position, so any reduction the
//!   caller performs over them is independent of claiming interleave and
//!   therefore bit-identical at any worker count, including `workers == 1`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Resolves a worker-count knob: `0` means one worker per available core.
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Wall-clock accounting for one pool worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Worker index in `0..workers`.
    pub worker: usize,
    /// Work items this worker claimed and evaluated.
    pub items: usize,
    /// Time the worker spent evaluating (excludes spawn/join overhead).
    pub busy: Duration,
}

/// Results of one pool run: per-item results in input order plus timing.
#[derive(Debug, Clone)]
pub struct PoolRun<R> {
    /// `results[i]` is `eval(i, &items[i])`.
    pub results: Vec<R>,
    /// Worker threads actually used (after clamping to the item count).
    pub workers: usize,
    /// Per-worker breakdown, ordered by worker index.
    pub per_worker: Vec<WorkerLoad>,
    /// Wall-clock time of the whole fan-out/join.
    pub wall: Duration,
}

impl<R> PoolRun<R> {
    /// Sum of worker busy time (≈ sequential cost of the same sweep).
    pub fn busy_total(&self) -> Duration {
        self.per_worker.iter().map(|t| t.busy).sum()
    }
}

/// Evaluates every item with `eval` across `workers` threads and returns
/// the results in input order.
///
/// `workers` is resolved via [`resolve_workers`] and clamped to the item
/// count (with a floor of one). See the module docs for the determinism
/// contract.
pub fn par_map<T, R, F>(items: &[T], workers: usize, eval: F) -> PoolRun<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_workers(workers).min(items.len()).max(1);
    let t_wall = Instant::now();
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<WorkerLoad> = Vec::with_capacity(workers);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let next = &next;
                let eval = &eval;
                s.spawn(move || {
                    let t0 = Instant::now();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, eval(i, &items[i])));
                    }
                    (
                        WorkerLoad {
                            worker,
                            items: local.len(),
                            busy: t0.elapsed(),
                        },
                        local,
                    )
                })
            })
            .collect();
        for h in handles {
            let (load, local) = h.join().expect("pool worker panicked");
            per_worker.push(load);
            indexed.extend(local);
        }
    });
    per_worker.sort_by_key(|t| t.worker);
    indexed.sort_by_key(|(i, _)| *i);
    PoolRun {
        results: indexed.into_iter().map(|(_, r)| r).collect(),
        workers,
        per_worker,
        wall: t_wall.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for workers in [1usize, 2, 3, 8, 64] {
            let run = par_map(&items, workers, |i, &x| x * 2 + i as u64);
            assert_eq!(run.results.len(), items.len());
            for (i, r) in run.results.iter().enumerate() {
                assert_eq!(*r, items[i] * 2 + i as u64, "workers={workers}");
            }
            assert_eq!(run.workers, workers.min(items.len()));
            let claimed: usize = run.per_worker.iter().map(|t| t.items).sum();
            assert_eq!(claimed, items.len());
        }
    }

    #[test]
    fn empty_input_uses_one_idle_worker() {
        let run = par_map(&[] as &[u32], 8, |_, _| 0u32);
        assert!(run.results.is_empty());
        assert_eq!(run.workers, 1);
    }

    #[test]
    fn zero_workers_means_all_cores() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
        let items = vec![1u32; 5];
        let run = par_map(&items, 0, |_, &x| x);
        assert_eq!(run.results, items);
    }

    #[test]
    fn skewed_item_costs_still_reduce_in_order() {
        // Early items are the most expensive: late claimers finish first,
        // so unordered collection would interleave; the contract sorts it.
        let items: Vec<u32> = (0..32).collect();
        let run = par_map(&items, 8, |_, &x| {
            let spins = (32 - x) as u64 * 1000;
            let mut acc = 0u64;
            for s in 0..spins {
                acc = acc.wrapping_add(s ^ x as u64);
            }
            (x, acc)
        });
        for (i, (x, _)) in run.results.iter().enumerate() {
            assert_eq!(*x as usize, i);
        }
    }
}

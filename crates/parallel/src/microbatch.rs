//! Microbatch partitioning across encoder pipelines (§4.1).
//!
//! With `m` encoder pipelines colocated per LLM pipeline and `N_mb`
//! microbatches per training step, the planner "enumerates possible ways to
//! partition these N_mb microbatches among the m encoder pipelines" — the
//! compositions of `N_mb` into `m` positive parts (e.g. 8 into 2 parts gives
//! the 7 options [1,7], [2,6], …, [7,1]).

use crate::error::PlanError;

/// Number of compositions of `n` into `m` positive parts: `C(n−1, m−1)`.
pub fn composition_count(n: u32, m: u32) -> u128 {
    if m == 0 || n < m {
        return 0;
    }
    binomial(u128::from(n - 1), u128::from(m - 1))
}

fn binomial(n: u128, k: u128) -> u128 {
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

/// Iterator over all compositions of `n` into `m` positive parts, in
/// lexicographic order.
#[derive(Debug, Clone)]
pub struct Compositions {
    n: u32,
    m: u32,
    current: Option<Vec<u32>>,
}

impl Compositions {
    /// Creates the iterator. Errors when `m == 0` or `n < m` (no positive
    /// composition exists).
    pub fn new(n: u32, m: u32) -> Result<Compositions, PlanError> {
        if m == 0 {
            return Err(PlanError::BadPartition {
                reason: "m must be >= 1".into(),
            });
        }
        if n < m {
            return Err(PlanError::BadPartition {
                reason: format!("cannot split {n} microbatches into {m} positive parts"),
            });
        }
        // First composition: [1, 1, ..., n-m+1] reversed to lexicographic
        // smallest [1,...,1, n-m+1].
        let mut first = vec![1u32; m as usize];
        first[m as usize - 1] = n - m + 1;
        Ok(Compositions {
            n,
            m,
            current: Some(first),
        })
    }

    /// A balanced partition (parts differ by at most one), used as the
    /// default when enumeration is too expensive.
    pub fn balanced(n: u32, m: u32) -> Result<Vec<u32>, PlanError> {
        if m == 0 || n < m {
            return Err(PlanError::BadPartition {
                reason: format!("cannot split {n} into {m} positive parts"),
            });
        }
        let base = n / m;
        let extra = n % m;
        Ok((0..m).map(|i| base + u32::from(i < extra)).collect())
    }
}

impl Iterator for Compositions {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        let out = self.current.clone()?;
        // Advance: find the rightmost position (excluding the last) that can
        // be incremented by stealing from the tail.
        let m = self.m as usize;
        let cur = self.current.as_mut().unwrap();
        // Standard successor: scan from second-to-last position leftwards.
        let mut i = m.checked_sub(2);
        let mut advanced = false;
        while let Some(idx) = i {
            let tail_sum: u32 = cur[idx + 1..].iter().sum();
            if tail_sum > (m - idx - 1) as u32 {
                // Increment cur[idx], reset the tail to minimal values.
                cur[idx] += 1;
                let consumed: u32 = cur[..=idx].iter().sum();
                let remaining = self.n - consumed;
                let slots = (m - idx - 1) as u32;
                for c in &mut cur[idx + 1..m] {
                    *c = 1;
                }
                cur[m - 1] = remaining - (slots - 1);
                advanced = true;
                break;
            }
            i = idx.checked_sub(1);
        }
        if !advanced {
            self.current = None;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_eight_into_two() {
        // §4.1: "if there are 8 microbatches ... and m=2 ... 7 possible
        // partitioning options, such as [1,7], [2,6], ..., [7,1]".
        let all: Vec<Vec<u32>> = Compositions::new(8, 2).unwrap().collect();
        assert_eq!(all.len(), 7);
        assert_eq!(all.first().unwrap(), &vec![1, 7]);
        assert_eq!(all.last().unwrap(), &vec![7, 1]);
        assert_eq!(composition_count(8, 2), 7);
    }

    #[test]
    fn compositions_sum_to_n_and_are_positive() {
        for comp in Compositions::new(9, 3).unwrap() {
            assert_eq!(comp.iter().sum::<u32>(), 9);
            assert!(comp.iter().all(|&x| x >= 1));
        }
        let count = Compositions::new(9, 3).unwrap().count();
        assert_eq!(count as u128, composition_count(9, 3));
        assert_eq!(composition_count(9, 3), 28); // C(8,2)
    }

    #[test]
    fn compositions_are_unique() {
        let mut all: Vec<Vec<u32>> = Compositions::new(10, 4).unwrap().collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
        assert_eq!(n as u128, composition_count(10, 4));
    }

    #[test]
    fn singleton_partition() {
        let all: Vec<Vec<u32>> = Compositions::new(5, 1).unwrap().collect();
        assert_eq!(all, vec![vec![5]]);
    }

    #[test]
    fn invalid_partitions_rejected() {
        assert!(Compositions::new(2, 3).is_err());
        assert!(Compositions::new(5, 0).is_err());
        assert_eq!(composition_count(2, 3), 0);
    }

    #[test]
    fn balanced_partition_spreads_evenly() {
        assert_eq!(Compositions::balanced(16, 4).unwrap(), vec![4, 4, 4, 4]);
        assert_eq!(Compositions::balanced(10, 3).unwrap(), vec![4, 3, 3]);
        assert!(Compositions::balanced(2, 5).is_err());
    }

    #[test]
    fn strong_scaling_counts_shrink_with_fewer_microbatches() {
        // Table 7: runtime drops as microbatches drop (32 → 24 → 16) because
        // there are fewer partitioning options.
        let c32 = composition_count(32, 4);
        let c24 = composition_count(24, 4);
        let c16 = composition_count(16, 4);
        assert!(c32 > c24 && c24 > c16);
    }
}

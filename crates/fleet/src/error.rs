//! Typed errors for the fleet what-if engine.

use std::fmt;

use optimus_recovery::RecoveryError;

/// Everything that can go wrong running a fleet what-if study.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// Invalid scenario or study configuration.
    Invalid(String),
    /// An underlying recovery primitive (trace generation, parameter
    /// validation) rejected its input.
    Recovery(RecoveryError),
    /// The exact-ledger audit failed: a replica's wall clock does not equal
    /// useful work plus the lost-work ledger. This is a bug, never a
    /// data-dependent condition.
    Audit(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Invalid(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::Recovery(e) => write!(f, "recovery primitive failed: {e}"),
            FleetError::Audit(msg) => write!(f, "ledger audit failed: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<RecoveryError> for FleetError {
    fn from(e: RecoveryError) -> FleetError {
        FleetError::Recovery(e)
    }
}

/// Shorthand for `Err(FleetError::Invalid(...))`.
pub(crate) fn invalid<T>(msg: impl Into<String>) -> Result<T, FleetError> {
    Err(FleetError::Invalid(msg.into()))
}

//! Deterministic Monte Carlo over seeded failure traces.
//!
//! Each replica draws its own month-long failure trace from the scenario's
//! per-component MTBF streams (a pure function of `(scenario, replica)`),
//! prices it with the exact lifecycle ledger, and audits the exactness
//! invariant `wall == useful + lost` before its goodput enters any
//! statistic. Replicas are embarrassingly parallel and fan out over the
//! workspace's deterministic worker pool: results come back in input
//! order, so every summary is bit-identical at any worker count.

use optimus_parallel::par_map;
use optimus_recovery::{FailureTrace, LostWork, RecoveryParams};
use optimus_trace::quantile;

use crate::error::{invalid, FleetError};
use crate::ledger::{fast_lifecycle, LedgerPlan};
use crate::scenario::FleetScenario;

/// Monte Carlo sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Independent failure-trace replicas (`> 0`).
    pub replicas: u32,
    /// Worker threads for the fan-out (`0` = one per core). Any value
    /// yields bit-identical results.
    pub workers: usize,
}

/// One replica's priced outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaOutcome {
    /// Replica index (also the trace-seed salt).
    pub replica: u32,
    /// Failures that fired inside the horizon.
    pub failures: u32,
    /// Total wall time, ns.
    pub wall_ns: i64,
    /// Useful work over wall time.
    pub goodput: f64,
    /// Where the lost wall time went (audited: sums to `wall - useful`
    /// exactly).
    pub lost: LostWork,
}

/// Order statistics over the replica goodputs.
#[derive(Debug, Clone, PartialEq)]
pub struct McSummary {
    /// Replicas the statistics pool.
    pub replicas: u32,
    /// Median goodput.
    pub goodput_p50: f64,
    /// The goodput 99% of replicas meet or exceed (the lower 1% tail —
    /// the SLO-style "p99 guarantee").
    pub goodput_p99: f64,
    /// Mean goodput.
    pub goodput_mean: f64,
    /// Mean failures per replica.
    pub mean_failures: f64,
}

/// One Monte Carlo study: per-replica outcomes (input order) + summary.
#[derive(Debug, Clone, PartialEq)]
pub struct McStudy {
    /// Per-replica outcomes, indexed by replica.
    pub outcomes: Vec<ReplicaOutcome>,
    /// Pooled order statistics.
    pub summary: McSummary,
}

/// Generates the `replicas` seeded failure traces of a scenario, fanned out
/// over the worker pool (generation dominates the cost of a study; the
/// ledger walk is near-free).
pub fn replica_traces(
    sc: &FleetScenario,
    replicas: u32,
    workers: usize,
) -> Result<Vec<FailureTrace>, FleetError> {
    if replicas == 0 {
        return invalid("monte carlo needs at least one replica");
    }
    let idx: Vec<u32> = (0..replicas).collect();
    let run = par_map(&idx, workers, |_, &r| sc.replica_trace(r));
    run.results.into_iter().collect()
}

/// Prices one (plan, params) knob setting over pre-generated replica
/// traces. Every replica's ledger is audited; the per-replica outcomes are
/// returned in replica order regardless of worker count.
pub fn evaluate(
    plan: &LedgerPlan,
    traces: &[FailureTrace],
    params: &RecoveryParams,
    horizon_steps: u32,
    workers: usize,
) -> Result<McStudy, FleetError> {
    if traces.is_empty() {
        return invalid("monte carlo needs at least one replica trace");
    }
    let run = par_map(traces, workers, |i, trace| {
        let out = fast_lifecycle(plan, trace, params, horizon_steps)?;
        out.audit()?;
        Ok::<ReplicaOutcome, FleetError>(ReplicaOutcome {
            replica: i as u32,
            failures: out.failures_seen,
            wall_ns: out.wall_ns,
            goodput: out.goodput(),
            lost: out.lost,
        })
    });
    let outcomes: Vec<ReplicaOutcome> = run.results.into_iter().collect::<Result<_, _>>()?;

    let mut goodputs: Vec<f64> = outcomes.iter().map(|o| o.goodput).collect();
    goodputs.sort_by(f64::total_cmp);
    let n = outcomes.len() as f64;
    let summary = McSummary {
        replicas: outcomes.len() as u32,
        goodput_p50: quantile(&goodputs, 0.5),
        goodput_p99: quantile(&goodputs, 0.01),
        goodput_mean: goodputs.iter().sum::<f64>() / n,
        mean_failures: outcomes.iter().map(|o| f64::from(o.failures)).sum::<f64>() / n,
    };
    Ok(McStudy { outcomes, summary })
}

/// Convenience: generate traces and price one (policy, interval, mode)
/// setting in one call.
pub fn run_monte_carlo(
    sc: &FleetScenario,
    policy: optimus_recovery::PlacementPolicy,
    interval_steps: u32,
    mode: optimus_recovery::DegradedMode,
    cfg: &McConfig,
) -> Result<McStudy, FleetError> {
    sc.validate()?;
    let traces = replica_traces(sc, cfg.replicas, cfg.workers)?;
    evaluate(
        &sc.plan(policy, interval_steps),
        &traces,
        &sc.recovery_params(mode)?,
        sc.horizon_steps,
        cfg.workers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_recovery::{DegradedMode, PlacementPolicy};

    fn small_scenario() -> FleetScenario {
        // The reference scenario at a shorter horizon keeps unit tests fast
        // while still seeing dozens of failures per replica.
        let mut sc = FleetScenario::synthetic();
        sc.horizon_steps = 200_000;
        sc
    }

    #[test]
    fn study_is_bit_identical_across_worker_counts() {
        let sc = small_scenario();
        let cfg1 = McConfig {
            replicas: 6,
            workers: 1,
        };
        let cfg4 = McConfig {
            replicas: 6,
            workers: 4,
        };
        let a = run_monte_carlo(
            &sc,
            PlacementPolicy::Bubble,
            24,
            DegradedMode::WaitForRestart,
            &cfg1,
        )
        .expect("study");
        let b = run_monte_carlo(
            &sc,
            PlacementPolicy::Bubble,
            24,
            DegradedMode::WaitForRestart,
            &cfg4,
        )
        .expect("study");
        assert_eq!(a, b, "worker count leaked into the study");
        assert!(a.summary.mean_failures > 5.0, "want real failure pressure");
        assert!(a.summary.goodput_p99 <= a.summary.goodput_p50);
        assert!(a.summary.goodput_p50 > 0.0 && a.summary.goodput_p50 < 1.0);
    }

    #[test]
    fn replicas_differ_but_reruns_do_not() {
        let sc = small_scenario();
        let cfg = McConfig {
            replicas: 4,
            workers: 2,
        };
        let a = run_monte_carlo(
            &sc,
            PlacementPolicy::CriticalPath,
            24,
            DegradedMode::ShrinkDp,
            &cfg,
        )
        .expect("study");
        let b = run_monte_carlo(
            &sc,
            PlacementPolicy::CriticalPath,
            24,
            DegradedMode::ShrinkDp,
            &cfg,
        )
        .expect("study");
        assert_eq!(a, b, "rerun differs");
        let walls: Vec<i64> = a.outcomes.iter().map(|o| o.wall_ns).collect();
        assert!(
            walls.windows(2).any(|w| w[0] != w[1]),
            "replica traces are not independent: {walls:?}"
        );
        // Every replica's ledger balanced (evaluate audits; re-check here).
        for o in &a.outcomes {
            let useful = sc.horizon_steps as i64 * sc.step_ns;
            assert_eq!(o.wall_ns, useful + o.lost.total(), "replica {}", o.replica);
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let sc = small_scenario();
        assert!(replica_traces(&sc, 0, 1).is_err());
        let plan = sc.plan(PlacementPolicy::Bubble, 24);
        let params = sc
            .recovery_params(DegradedMode::WaitForRestart)
            .expect("params");
        assert!(evaluate(&plan, &[], &params, sc.horizon_steps, 1).is_err());
    }
}

//! The byte-stable what-if report: scenario headline, solver verdicts per
//! policy, and the goodput frontier table.
//!
//! Text rendering uses integers and fixed-precision decimals only (Rust's
//! float formatting is exact and platform-independent), so the report is
//! the golden-file and determinism-comparison format. JSON carries the
//! same content for downstream tooling (`BENCH_fleet.json`).

use optimus_json::Json;

use crate::frontier::FrontierCell;
use crate::scenario::FleetScenario;
use crate::solver::SolverResult;

/// The assembled result of one fleet what-if study.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Scenario name.
    pub name: String,
    /// Devices in the reference fleet.
    pub num_devices: u32,
    /// Priced training horizon, steps.
    pub horizon_steps: u32,
    /// Fault-free step latency, ns.
    pub step_ns: i64,
    /// Full checkpoint write, ns.
    pub write_ns: i64,
    /// Fleet-level MTBF of the reference scenario, ns (rounded).
    pub fleet_mtbf_ns: u64,
    /// Monte Carlo replicas per study.
    pub replicas: u32,
    /// Solver verdicts, one per policy (and mode) solved.
    pub solver: Vec<SolverResult>,
    /// Frontier cells in sweep order.
    pub frontier: Vec<FrontierCell>,
}

impl FleetReport {
    /// Assembles a report from a scenario and its study outputs.
    pub fn new(
        sc: &FleetScenario,
        replicas: u32,
        solver: Vec<SolverResult>,
        frontier: Vec<FrontierCell>,
    ) -> FleetReport {
        let mtbf = sc.fleet_mtbf_ns();
        FleetReport {
            name: sc.name.clone(),
            num_devices: sc.num_devices,
            horizon_steps: sc.horizon_steps,
            step_ns: sc.step_ns,
            write_ns: sc.write_ns,
            fleet_mtbf_ns: if mtbf.is_finite() {
                mtbf.round() as u64
            } else {
                u64::MAX
            },
            replicas,
            solver,
            frontier,
        }
    }

    /// Bit-exact text rendering: the golden-file format.
    pub fn golden_text(&self) -> String {
        let mut out = format!(
            "fleet what-if: {}\n\
             devices {} | horizon {} steps @ {} ns/step | write {} ns | \
             fleet mtbf {} ns | replicas {}\n",
            self.name,
            self.num_devices,
            self.horizon_steps,
            self.step_ns,
            self.write_ns,
            self.fleet_mtbf_ns,
            self.replicas,
        );
        for s in &self.solver {
            out.push_str(&format!(
                "solver {} [{}]: yd k={} self k={} exact k={} | goodput yd {:.6} \
                 self {:.6} exact {:.6} | gap {:.2}% | evals {}\n",
                s.policy.label(),
                s.mode.label(),
                s.young_daly_k,
                s.self_consistent_k,
                s.exact_k,
                s.young_daly_goodput,
                s.self_consistent_goodput,
                s.exact_goodput,
                s.gap_pct,
                s.evaluations,
            ));
        }
        out.push_str("frontier: devices mtbf% policy mode k p50 p99 mean fails\n");
        for c in &self.frontier {
            out.push_str(&format!(
                "{} {} {} {} {} {:.6} {:.6} {:.6} {:.2}\n",
                c.devices,
                c.mtbf_pct,
                c.policy.label(),
                c.mode.label(),
                c.interval_steps,
                c.summary.goodput_p50,
                c.summary.goodput_p99,
                c.summary.goodput_mean,
                c.summary.mean_failures,
            ));
        }
        out
    }

    /// JSON rendering for downstream tooling.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("num_devices", Json::from(self.num_devices)),
            ("horizon_steps", Json::from(self.horizon_steps)),
            ("step_ns", Json::Num(self.step_ns as f64)),
            ("write_ns", Json::Num(self.write_ns as f64)),
            ("fleet_mtbf_ns", Json::Num(self.fleet_mtbf_ns as f64)),
            ("replicas", Json::from(self.replicas)),
            (
                "solver",
                Json::Arr(
                    self.solver
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("policy", Json::from(s.policy.label())),
                                ("mode", Json::from(s.mode.label())),
                                ("fleet_mtbf_ns", Json::Num(s.fleet_mtbf_ns)),
                                ("young_daly_k", Json::from(s.young_daly_k)),
                                ("self_consistent_k", Json::from(s.self_consistent_k)),
                                ("exact_k", Json::from(s.exact_k)),
                                ("young_daly_goodput", Json::Num(s.young_daly_goodput)),
                                (
                                    "self_consistent_goodput",
                                    Json::Num(s.self_consistent_goodput),
                                ),
                                ("exact_goodput", Json::Num(s.exact_goodput)),
                                ("gap_pct", Json::Num(s.gap_pct)),
                                ("evaluations", Json::from(s.evaluations)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "frontier",
                Json::Arr(
                    self.frontier
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("devices", Json::from(c.devices)),
                                ("mtbf_pct", Json::from(c.mtbf_pct)),
                                ("policy", Json::from(c.policy.label())),
                                ("mode", Json::from(c.mode.label())),
                                ("interval_steps", Json::from(c.interval_steps)),
                                ("goodput_p50", Json::Num(c.summary.goodput_p50)),
                                ("goodput_p99", Json::Num(c.summary.goodput_p99)),
                                ("goodput_mean", Json::Num(c.summary.goodput_mean)),
                                ("mean_failures", Json::Num(c.summary.mean_failures)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::McSummary;
    use optimus_recovery::{DegradedMode, PlacementPolicy};

    fn tiny_report() -> FleetReport {
        let sc = FleetScenario::synthetic();
        FleetReport::new(
            &sc,
            8,
            vec![SolverResult {
                policy: PlacementPolicy::Bubble,
                mode: DegradedMode::WaitForRestart,
                fleet_mtbf_ns: sc.fleet_mtbf_ns(),
                young_daly_k: 265,
                self_consistent_k: 20,
                exact_k: 22,
                young_daly_goodput: 0.921,
                self_consistent_goodput: 0.959,
                exact_goodput: 0.96,
                gap_pct: 4.06,
                evaluations: 31,
            }],
            vec![FrontierCell {
                devices: 512,
                mtbf_pct: 100,
                policy: PlacementPolicy::Bubble,
                mode: DegradedMode::ShrinkDp,
                interval_steps: 22,
                summary: McSummary {
                    replicas: 8,
                    goodput_p50: 0.961,
                    goodput_p99: 0.948,
                    goodput_mean: 0.9605,
                    mean_failures: 890.25,
                },
            }],
        )
    }

    #[test]
    fn golden_text_is_stable_and_complete() {
        let r = tiny_report();
        let a = r.golden_text();
        assert_eq!(a, r.golden_text());
        assert!(a.starts_with("fleet what-if: synthetic-month\n"));
        assert!(a.contains("solver bubble [wait-for-restart]: yd k=265 self k=20 exact k=22"));
        assert!(a.contains("gap 4.06%"));
        assert!(a.contains("512 100 bubble shrink-dp 22 0.961000 0.948000 0.960500 890.25"));
    }

    #[test]
    fn json_round_trips() {
        let r = tiny_report();
        let parsed = Json::parse(&r.to_json().to_compact()).expect("json");
        assert_eq!(parsed.field("num_devices").unwrap().as_i64().unwrap(), 512);
        let solver = parsed.field("solver").unwrap();
        let first = &solver.as_arr().unwrap()[0];
        assert_eq!(first.field("exact_k").unwrap().as_i64().unwrap(), 22);
        let frontier = parsed.field("frontier").unwrap();
        assert_eq!(frontier.as_arr().unwrap().len(), 1);
    }
}

//! The exact lifecycle ledger, fast: an `O(failures · log steps)` jump-walk
//! that reproduces [`optimus_recovery::simulate_lifecycle`] bit-for-bit.
//!
//! The recovery crate's lifecycle walks the horizon one step at a time and
//! materialises a gapless [`Segment`](optimus_recovery::Segment) timeline —
//! perfect for a few dozen steps, hopeless for the month-long horizons a
//! fleet study prices (millions of steps × hundreds of Monte Carlo replicas
//! × a frontier grid). This module keeps the *identical* integer-ns state
//! machine but advances it in closed form between events:
//!
//! * Between two "interesting" wall instants (the next failure, the replay
//!   catch-up boundary, the degraded-mode repair landing, the end of the
//!   horizon) every step costs the same and checkpoints fire at fixed
//!   multiples of the interval, so the wall after `j` more steps is the
//!   affine-with-a-floor function `w(j) = wall + j·cost + ⌈ckpts(j)⌉·spill`.
//! * The number of steps that fit before the next event is found by binary
//!   search on `w` (it is strictly increasing), and the whole stretch is
//!   booked in O(1): replay/degraded/spill ledger entries are per-step
//!   constants times the jump length.
//! * Failure handling, rollback, degraded entry/exit and recovery-time
//!   accounting are verbatim mirrors of the stepwise walk.
//!
//! The equivalence is not aspirational: the unit tests below drive both
//! engines over transient, permanent-wait and permanent-degraded traces and
//! require the full [`LostWork`] ledger, wall clock, failure count and
//! recovery times to match exactly, and `tests/fleet.rs` re-checks it at
//! the integration level. The exactness invariant
//! `wall == horizon·step + lost.total()` is enforced per replica by
//! [`LedgerOutcome::audit`].

use optimus_recovery::{
    CheckpointPlan, FailureKind, FailureTrace, GoodputReport, LostWork, RecoveryParams,
};

use crate::error::{invalid, FleetError};

/// The four numbers of a checkpoint plan the lifecycle ledger actually
/// consumes. Everything else on [`CheckpointPlan`] (claims, insert sets,
/// byte counts) prices or verifies the placement; the ledger only needs the
/// step cost, the restore read, and the per-interval spill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerPlan {
    /// Steps between durable checkpoints (`> 0`).
    pub interval_steps: u32,
    /// Fault-free step latency, ns (`> 0`).
    pub step_ns: i64,
    /// Full shard write — and restore read — time, ns (`>= 0`).
    pub write_ns: i64,
    /// Critical-path stall per checkpoint interval, ns (`>= 0`; zero when
    /// the write is fully bubble-hidden).
    pub spill_ns: i64,
}

impl LedgerPlan {
    /// Extracts the ledger view of a priced checkpoint plan.
    pub fn of(plan: &CheckpointPlan) -> LedgerPlan {
        LedgerPlan {
            interval_steps: plan.interval_steps,
            step_ns: plan.step_ns,
            write_ns: plan.write_ns,
            spill_ns: plan.spill_ns,
        }
    }

    /// Rejects degenerate plans.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.interval_steps == 0 {
            return invalid("checkpoint interval must be >= 1 step");
        }
        if self.step_ns <= 0 {
            return invalid(format!("non-positive step latency {}", self.step_ns));
        }
        if self.write_ns < 0 || self.spill_ns < 0 {
            return invalid(format!(
                "negative write ({}) or spill ({})",
                self.write_ns, self.spill_ns
            ));
        }
        if self.spill_ns > self.write_ns {
            return invalid(format!(
                "spill {} exceeds the full write {}",
                self.spill_ns, self.write_ns
            ));
        }
        Ok(())
    }

    /// Fault-free wall time for `horizon_steps` steps, same closed form as
    /// [`CheckpointPlan::fault_free_wall_ns`].
    pub fn fault_free_wall_ns(&self, horizon_steps: u32) -> i64 {
        horizon_steps as i64 * self.step_ns
            + (horizon_steps / self.interval_steps) as i64 * self.spill_ns
    }
}

/// The result of one fast lifecycle walk: the same ledger
/// [`simulate_lifecycle`](optimus_recovery::simulate_lifecycle) produces,
/// minus the per-segment timeline (which would be `O(steps)` to carry).
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerOutcome {
    /// Steps in the horizon.
    pub horizon_steps: u32,
    /// Fault-free step latency, ns.
    pub step_ns: i64,
    /// Total wall time, ns.
    pub wall_ns: i64,
    /// Lost-time breakdown; `wall_ns == horizon_steps · step_ns +
    /// lost.total()` exactly ([`LedgerOutcome::audit`]).
    pub lost: LostWork,
    /// Failures that fired inside the horizon.
    pub failures_seen: u32,
    /// Per-failure recovery time (failure instant → replay caught up), ns,
    /// in event order.
    pub recoveries_ns: Vec<i64>,
}

impl LedgerOutcome {
    /// Useful work: `horizon_steps · step_ns`.
    pub fn useful_ns(&self) -> i64 {
        self.horizon_steps as i64 * self.step_ns
    }

    /// Goodput: useful work over wall time.
    pub fn goodput(&self) -> f64 {
        if self.wall_ns <= 0 {
            return 0.0;
        }
        self.useful_ns() as f64 / self.wall_ns as f64
    }

    /// Checks the exactness invariant `wall == useful + lost.total()`.
    /// A violation is a ledger bug, so Monte Carlo audits every replica.
    pub fn audit(&self) -> Result<(), FleetError> {
        let expect = self.useful_ns() + self.lost.total();
        if self.wall_ns != expect {
            return Err(FleetError::Audit(format!(
                "wall {} ns != useful {} + lost {} = {} ns",
                self.wall_ns,
                self.useful_ns(),
                self.lost.total(),
                expect
            )));
        }
        Ok(())
    }

    /// The outcome as a [`GoodputReport`] (recovery times sorted ascending,
    /// matching [`GoodputReport::from_outcome`]).
    pub fn report(&self) -> GoodputReport {
        let mut recoveries = self.recoveries_ns.clone();
        recoveries.sort_unstable();
        GoodputReport {
            horizon_steps: self.horizon_steps,
            step_ns: self.step_ns,
            useful_ns: self.useful_ns(),
            wall_ns: self.wall_ns,
            lost: self.lost,
            failures: self.failures_seen,
            recoveries_ns: recoveries,
        }
    }
}

/// Runs the failure lifecycle for `horizon_steps` steps in
/// `O(failures · log steps)`, reproducing the exact integer-ns ledger of
/// [`simulate_lifecycle`](optimus_recovery::simulate_lifecycle).
pub fn fast_lifecycle(
    plan: &LedgerPlan,
    trace: &FailureTrace,
    params: &RecoveryParams,
    horizon_steps: u32,
) -> Result<LedgerOutcome, FleetError> {
    plan.validate()?;
    if horizon_steps == 0 {
        return invalid("empty training horizon");
    }
    if let Some(d) = &params.degraded {
        if d.effective_step_ns <= 0 || d.reshard_ns < 0 {
            return invalid(format!(
                "degraded plan has non-positive step ({}) or negative reshard ({})",
                d.effective_step_ns, d.reshard_ns
            ));
        }
    }
    let n = horizon_steps;
    let k = plan.interval_steps;
    let step = plan.step_ns;
    let spill = plan.spill_ns;
    let read_ns = plan.write_ns; // restore read: same bytes, same link
    let det = params.detection.0 as i64;
    let overhead = params.restart_overhead.0 as i64;

    let mut wall: i64 = 0;
    let mut progress: u32 = 0; // completed steps (monotone within a replay era)
    let mut committed: u32 = 0; // last durable step
    let mut replay_target: u32 = 0;
    let mut open_failure_at: Option<i64> = None;
    let mut degraded_until: Option<i64> = None;

    let mut lost = LostWork::default();
    let mut recoveries: Vec<i64> = Vec::new();
    let mut failures_seen = 0u32;
    let mut fi = 0usize;
    let fails = trace.failures();

    // Checkpoints paid while stepping `j` times from progress `p0`. At
    // every loop top `committed == (p0 / k) · k` (the stepwise walk commits
    // at each crossed multiple of `k`, and rollback lands exactly on one),
    // so the boundaries crossed are the multiples of `k` in `(p0, p0 + j]`.
    let ckpts = |p0: u32, j: u64| -> i64 {
        ((u64::from(p0) + j) / u64::from(k) - u64::from(p0) / u64::from(k)) as i64
    };

    while progress < n {
        // Leave degraded mode at a step boundary once the repair landed.
        if let (Some(t), Some(d)) = (degraded_until, params.degraded.as_ref()) {
            if wall >= t {
                lost.restart_ns += d.reshard_ns;
                wall += d.reshard_ns;
                degraded_until = None;
            }
        }
        let in_degraded = degraded_until.is_some();
        let cost = match (&params.degraded, in_degraded) {
            (Some(d), true) => d.effective_step_ns,
            _ => step,
        };

        // A failure fires inside the very next step? Handle it exactly as
        // the stepwise walk does.
        if fi < fails.len() && (fails[fi].at.0 as i64) < wall + cost {
            let f = fails[fi];
            fi += 1;
            failures_seen += 1;
            let fat = (f.at.0 as i64).max(wall);
            lost.replay_ns += fat - wall; // truncated partial step
            wall = fat;
            if open_failure_at.is_none() {
                open_failure_at = Some(fat);
            }
            lost.detection_ns += det;
            wall += det;
            let mut restart_cost = overhead + read_ns;
            match f.kind {
                FailureKind::Transient { restart } => {
                    restart_cost += restart.0 as i64;
                }
                FailureKind::Permanent { repair } => {
                    let repair_at = fat + repair.0 as i64;
                    match (&params.degraded, degraded_until) {
                        (None, _) => {
                            // Wait-for-restart: idle until the replacement.
                            let waited = (repair_at - wall).max(0);
                            lost.wait_ns += waited;
                            wall += waited;
                        }
                        (Some(d), None) => {
                            degraded_until = Some(repair_at.max(wall));
                            lost.restart_ns += d.reshard_ns;
                            wall += d.reshard_ns;
                        }
                        (Some(_), Some(t)) => {
                            // A second loss while already degraded: extend
                            // the repair horizon.
                            degraded_until = Some(t.max(repair_at));
                        }
                    }
                }
            }
            lost.restart_ns += restart_cost;
            wall += restart_cost;
            replay_target = replay_target.max(progress);
            progress = committed;
            if replay_target <= progress {
                // Nothing to replay: the failure hit right on a checkpoint.
                if let Some(at) = open_failure_at.take() {
                    recoveries.push(wall - at);
                }
            }
            continue;
        }

        // Jump: run as many steps as the stepwise walk would before the
        // next event. `w(j)` is the wall at the loop top after `j` more
        // steps — strictly increasing, so every cap is a binary search.
        let p0 = progress;
        let w = |j: u64| -> i64 { wall + j as i64 * cost + ckpts(p0, j) * spill };
        let mut s: u64 = u64::from(n - p0);
        let replaying = p0 < replay_target;
        if replaying {
            // The replay→step transition (and the recovery close) happens
            // at the catch-up boundary.
            s = s.min(u64::from(replay_target - p0));
        }
        if let Some(t) = degraded_until {
            // The loop-top reshard-back fires at the first step boundary
            // with `wall >= t`; the check above guarantees `w(0) < t`.
            if w(s) >= t {
                let (mut lo, mut hi) = (1u64, s);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if w(mid) >= t {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                s = lo;
            }
        }
        if fi < fails.len() {
            // Step `j` (1-based) is failure-free iff `w(j-1) + cost <= at`;
            // the loop-top check guarantees step 1 is safe.
            let at = fails[fi].at.0 as i64;
            if w(s - 1) + cost > at {
                let (mut lo, mut hi) = (1u64, s); // lo safe, hi unsafe
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if w(mid - 1) + cost <= at {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                s = lo;
            }
        }

        // Book the whole stretch in O(1) — per-step ledger constants times
        // the jump length, spills by the boundary count.
        if replaying {
            lost.replay_ns += s as i64 * cost;
            if u64::from(p0) + s == u64::from(replay_target) {
                // The stepwise walk closes the recovery after the catch-up
                // step's cost but before that step's own spill.
                if let Some(at) = open_failure_at.take() {
                    recoveries.push(wall + s as i64 * cost + ckpts(p0, s - 1) * spill - at);
                }
            }
        } else if in_degraded {
            lost.degraded_ns += s as i64 * (cost - step).max(0);
        }
        lost.spill_ns += ckpts(p0, s) * spill;
        wall = w(s);
        progress = p0 + s as u32;
        committed = (progress / k) * k;
    }

    debug_assert_eq!(wall, n as i64 * step + lost.total());
    Ok(LedgerOutcome {
        horizon_steps: n,
        step_ns: step,
        wall_ns: wall,
        lost,
        failures_seen,
        recoveries_ns: recoveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_cluster::{DurNs, TimeNs};
    use optimus_lint::InsertSet;
    use optimus_recovery::{
        simulate_lifecycle, DegradedMode, DegradedPlan, Failure, FailureTrace, FailureTraceConfig,
        GoodputReport, Hazard, PlacementPolicy,
    };

    /// A checkpoint plan literal the stepwise engine accepts; the claims and
    /// insert set only matter to placement lint, not the lifecycle.
    fn plan(k: u32, step: i64, write: i64, spill: i64) -> CheckpointPlan {
        CheckpointPlan {
            policy: PlacementPolicy::Bubble,
            interval_steps: k,
            num_ranks: 4,
            bytes_per_rank: 1 << 20,
            write_ns: write,
            step_ns: step,
            spill_ns: spill,
            bubble_capacity_ns: vec![write / k as i64; 4],
            claims: Vec::new(),
            insert_set: InsertSet::default(),
        }
    }

    fn assert_equivalent(
        cplan: &CheckpointPlan,
        trace: &FailureTrace,
        params: &RecoveryParams,
        horizon: u32,
        what: &str,
    ) {
        let slow = simulate_lifecycle(cplan, trace, params, horizon).expect("stepwise");
        let fast = fast_lifecycle(&LedgerPlan::of(cplan), trace, params, horizon).expect("fast");
        assert_eq!(fast.wall_ns, slow.wall_ns, "{what}: wall");
        assert_eq!(fast.lost, slow.lost, "{what}: lost ledger");
        assert_eq!(fast.failures_seen, slow.failures_seen, "{what}: failures");
        assert_eq!(fast.recoveries_ns, slow.recoveries_ns, "{what}: recoveries");
        fast.audit().expect("audit");
        assert_eq!(
            fast.report(),
            GoodputReport::from_outcome(&slow),
            "{what}: report"
        );
    }

    #[test]
    fn matches_stepwise_on_fault_free_horizons() {
        for (k, spill) in [(1u32, 0i64), (3, 0), (4, 700), (7, 1)] {
            let p = plan(k, 1_000, 5_000, spill);
            let trace = FailureTrace::new(Vec::new()).expect("empty trace");
            assert_equivalent(
                &p,
                &trace,
                &RecoveryParams::defaults(),
                97,
                &format!("fault-free k={k} spill={spill}"),
            );
            let fast = fast_lifecycle(&LedgerPlan::of(&p), &trace, &RecoveryParams::defaults(), 97)
                .expect("fast");
            assert_eq!(fast.wall_ns, LedgerPlan::of(&p).fault_free_wall_ns(97));
        }
    }

    #[test]
    fn matches_stepwise_under_generated_transient_and_permanent_faults() {
        let params = RecoveryParams::defaults();
        for seed in [1u64, 7, 2026] {
            for permanent_every in [0u32, 3] {
                for (k, spill) in [(4u32, 0i64), (4, 900), (6, 250)] {
                    let p = plan(k, 10_000, 30_000, spill);
                    let horizon: u32 = 400;
                    let horizon_ns = LedgerPlan::of(&p).fault_free_wall_ns(horizon) * 2;
                    let trace = FailureTrace::generate(&FailureTraceConfig {
                        seed,
                        horizon_ns: horizon_ns as u64,
                        mtbf_ns: (horizon_ns / 9) as u64,
                        num_devices: 4,
                        restart: DurNs(20_000),
                        repair: DurNs(200_000),
                        permanent_every,
                        hazard: Hazard::Exponential,
                    })
                    .expect("trace");
                    assert!(trace.len() >= 4, "want a multi-failure trace");
                    assert_equivalent(
                        &p,
                        &trace,
                        &params,
                        horizon,
                        &format!("seed={seed} perm={permanent_every} k={k} spill={spill}"),
                    );
                }
            }
        }
    }

    #[test]
    fn matches_stepwise_in_degraded_mode() {
        // Permanent losses with an elastic plan: enter degraded, extend it
        // on a second loss, leave it at a step boundary; transient faults
        // inside and outside the degraded window.
        let p = plan(5, 10_000, 40_000, 1_500);
        let degraded = DegradedPlan {
            mode: DegradedMode::ShrinkDp,
            effective_step_ns: 13_000,
            reshard_ns: 7_000,
        };
        let params = RecoveryParams {
            degraded: Some(degraded),
            ..RecoveryParams::defaults()
        };
        for seed in [3u64, 11, 42] {
            let horizon: u32 = 300;
            let horizon_ns = 3 * 300 * 10_000i64;
            let trace = FailureTrace::generate(&FailureTraceConfig {
                seed,
                horizon_ns: horizon_ns as u64,
                mtbf_ns: (horizon_ns / 8) as u64,
                num_devices: 4,
                restart: DurNs(15_000),
                repair: DurNs(450_000),
                permanent_every: 2,
                hazard: Hazard::Exponential,
            })
            .expect("trace");
            assert_equivalent(
                &p,
                &trace,
                &params,
                horizon,
                &format!("degraded seed={seed}"),
            );
        }
    }

    #[test]
    fn matches_stepwise_on_checkpoint_boundary_edge_cases() {
        // Failures exactly on checkpoint instants and back-to-back failures
        // inside one step exercise the zero-replay recovery close and the
        // repeated-rollback path.
        let p = plan(4, 1_000, 3_000, 500);
        let mk = |at: u64, kind: FailureKind| Failure {
            at: TimeNs(at),
            device: 0,
            kind,
        };
        let t = FailureTrace::new(vec![
            // Right on the first checkpoint's durable instant (wall 4500).
            mk(4_500, FailureKind::Transient { restart: DurNs(10) }),
            // Two failures inside the same step.
            mk(12_000, FailureKind::Transient { restart: DurNs(10) }),
            mk(12_100, FailureKind::Transient { restart: DurNs(10) }),
            // A permanent loss with a short repair (wait mode).
            mk(20_000, FailureKind::Permanent { repair: DurNs(900) }),
        ])
        .expect("trace");
        assert_equivalent(&p, &t, &RecoveryParams::defaults(), 40, "boundary cases");
    }

    #[test]
    fn rejects_degenerate_plans_and_horizons() {
        let good = LedgerPlan {
            interval_steps: 2,
            step_ns: 10,
            write_ns: 5,
            spill_ns: 5,
        };
        let trace = FailureTrace::new(Vec::new()).expect("trace");
        assert!(fast_lifecycle(&good, &trace, &RecoveryParams::defaults(), 0).is_err());
        for bad in [
            LedgerPlan {
                interval_steps: 0,
                ..good
            },
            LedgerPlan { step_ns: 0, ..good },
            LedgerPlan {
                spill_ns: 6,
                ..good
            },
            LedgerPlan {
                write_ns: -1,
                spill_ns: -1,
                ..good
            },
        ] {
            assert!(
                fast_lifecycle(&bad, &trace, &RecoveryParams::defaults(), 10).is_err(),
                "{bad:?} accepted"
            );
        }
    }

    #[test]
    fn month_long_horizon_runs_in_jumps_not_steps() {
        // 2.6M steps, a few hundred failures: the stepwise walk would build
        // millions of segments; the jump-walk books it near-instantly and
        // still balances exactly.
        let p = LedgerPlan {
            interval_steps: 30,
            step_ns: 1_000_000_000,
            write_ns: 12_000_000_000,
            spill_ns: 0,
        };
        let horizon: u32 = 2_592_000;
        let trace = FailureTrace::generate(&FailureTraceConfig {
            seed: 9,
            horizon_ns: 6_000_000_000_000_000,
            mtbf_ns: 20_000_000_000_000,
            num_devices: 512,
            restart: DurNs(2_000_000_000),
            repair: DurNs(600_000_000_000),
            permanent_every: 10,
            hazard: Hazard::Exponential,
        })
        .expect("trace");
        assert!(trace.len() > 100);
        let out = fast_lifecycle(&p, &trace, &RecoveryParams::defaults(), horizon).expect("fast");
        out.audit().expect("audit");
        assert!(out.failures_seen > 100);
        assert!(out.goodput() > 0.5 && out.goodput() < 1.0);
    }
}

//! Optimal checkpoint-interval solving: the Young/Daly closed form
//! cross-checked against a golden-section search over the exact ledger.
//!
//! Young/Daly prescribes checkpointing every `T = √(2·δ·M)` of wall time
//! for checkpoint cost `δ` and platform MTBF `M`. The classical calibration
//! takes `δ` to be the full write — correct for a `torch.save`-style
//! critical-path checkpoint, but wrong once shard writes are packed into
//! pipeline bubbles: the cost that actually lands on the critical path is
//! the *spill* `δ(k) = max_d (write − k·cap_d)⁺`, which vanishes for large
//! enough intervals. This module reports three answers per policy:
//!
//! 1. **`young_daly_k`** — the closed form with `δ = write` (the textbook
//!    prescription an operator would compute);
//! 2. **`self_consistent_k`** — the fixed point `k = YD(δ(k))` of the
//!    closed form fed the true spill (bubble-aware, still analytic);
//! 3. **`exact_k`** — the argmax of mean Monte Carlo goodput under the
//!    exact lifecycle ledger, found by a geometric ladder plus
//!    golden-section refinement plus a half/double hill-climb, so the
//!    returned optimum provably beats both half and double its interval
//!    on the same traces.
//!
//! The headline number is [`SolverResult::gap_pct`]: how much goodput the
//! textbook prescription leaves on the table. For the critical-path policy
//! the gap is ~0 (Young/Daly is near-optimal in its own regime — the
//! cross-check); for bubble-packed writes it is large, because zero
//! marginal checkpoint cost rewards intervals an order of magnitude
//! shorter than `√(2·write·M)`.

use std::collections::BTreeMap;

use optimus_recovery::{DegradedMode, FailureTrace, PlacementPolicy, RecoveryParams};

use crate::error::{invalid, FleetError};
use crate::montecarlo::{evaluate, replica_traces, McConfig};
use crate::scenario::FleetScenario;

/// The three interval answers for one (policy, elastic-mode) knob setting,
/// each priced by the exact ledger on the same traces.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverResult {
    /// Checkpoint placement policy the intervals were solved for.
    pub policy: PlacementPolicy,
    /// Elastic degraded mode assumed during pricing.
    pub mode: DegradedMode,
    /// Fleet-level MTBF the closed forms used, ns.
    pub fleet_mtbf_ns: f64,
    /// Textbook Young/Daly interval (`δ` = full write), steps.
    pub young_daly_k: u32,
    /// Bubble-aware fixed point `k = YD(spill(k))`, steps.
    pub self_consistent_k: u32,
    /// Exact-ledger optimum, steps.
    pub exact_k: u32,
    /// Mean Monte Carlo goodput at `young_daly_k`.
    pub young_daly_goodput: f64,
    /// Mean Monte Carlo goodput at `self_consistent_k`.
    pub self_consistent_goodput: f64,
    /// Mean Monte Carlo goodput at `exact_k` (≥ the other two).
    pub exact_goodput: f64,
    /// Goodput the textbook prescription forfeits, percent:
    /// `(exact − young_daly) / exact · 100`.
    pub gap_pct: f64,
    /// Exact-ledger evaluations the search spent.
    pub evaluations: u32,
}

impl SolverResult {
    /// True when the textbook Young/Daly calibration measurably mispredicts
    /// the optimum — the bubble-packed-write regime.
    pub fn diverged(&self, threshold_pct: f64) -> bool {
        self.gap_pct > threshold_pct
    }
}

/// The Young/Daly interval in steps: `T = √(2·δ·M)` rounded to whole
/// steps and clamped to `[1, k_max]`. Zero (or negative) checkpoint cost
/// prescribes checkpointing every step; an infinite MTBF prescribes the
/// longest allowed interval.
pub fn young_daly_steps(delta_ns: f64, mtbf_ns: f64, step_ns: f64, k_max: u32) -> u32 {
    if delta_ns <= 0.0 || delta_ns.is_nan() {
        return 1;
    }
    if !mtbf_ns.is_finite() {
        return k_max.max(1);
    }
    let t = (2.0 * delta_ns * mtbf_ns).sqrt();
    let k = (t / step_ns).round();
    if !k.is_finite() || k >= f64::from(k_max) {
        return k_max.max(1);
    }
    (k as u32).clamp(1, k_max.max(1))
}

/// The bubble-aware fixed point `k = YD(spill(k))`: since the spill is
/// non-increasing in `k` and `YD` is non-decreasing in its cost argument,
/// the map `k ↦ YD(spill(k))` is non-increasing and the crossing is the
/// largest `k` with `YD(spill(k)) ≥ k` (binary search).
pub fn self_consistent_steps(sc: &FleetScenario, policy: PlacementPolicy, k_max: u32) -> u32 {
    let mtbf = sc.fleet_mtbf_ns();
    let step = sc.step_ns as f64;
    let holds = |k: u32| young_daly_steps(sc.spill_ns(policy, k) as f64, mtbf, step, k_max) >= k;
    if holds(k_max) {
        return k_max;
    }
    let (mut lo, mut hi) = (1u32, k_max); // holds(lo), !holds(hi)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if holds(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

struct Search<'a> {
    sc: &'a FleetScenario,
    policy: PlacementPolicy,
    params: RecoveryParams,
    traces: &'a [FailureTrace],
    workers: usize,
    memo: BTreeMap<u32, f64>,
    evaluations: u32,
}

impl Search<'_> {
    fn eval(&mut self, k: u32) -> Result<f64, FleetError> {
        if let Some(&g) = self.memo.get(&k) {
            return Ok(g);
        }
        let plan = self.sc.plan(self.policy, k);
        let study = evaluate(
            &plan,
            self.traces,
            &self.params,
            self.sc.horizon_steps,
            self.workers,
        )?;
        self.evaluations += 1;
        self.memo.insert(k, study.summary.goodput_mean);
        Ok(study.summary.goodput_mean)
    }

    /// Best evaluated interval: max goodput, ties to the shorter interval
    /// (less work at risk for the same goodput).
    fn best(&self) -> (u32, f64) {
        let (&k, &g) = self
            .memo
            .iter()
            .max_by(|(ka, ga), (kb, gb)| ga.total_cmp(gb).then_with(|| kb.cmp(ka)))
            .expect("search evaluated at least one interval");
        (k, g)
    }
}

/// Solves the optimal interval on pre-generated traces. `k_max` bounds the
/// search (clamped to the horizon).
pub fn solve_on_traces(
    sc: &FleetScenario,
    policy: PlacementPolicy,
    mode: DegradedMode,
    traces: &[FailureTrace],
    workers: usize,
    k_max: u32,
) -> Result<SolverResult, FleetError> {
    sc.validate()?;
    if k_max == 0 {
        return invalid("solver needs k_max >= 1");
    }
    let k_max = k_max.min(sc.horizon_steps);
    let mtbf = sc.fleet_mtbf_ns();
    let young_daly_k = young_daly_steps(sc.write_ns as f64, mtbf, sc.step_ns as f64, k_max);
    let self_consistent_k = self_consistent_steps(sc, policy, k_max);

    let mut s = Search {
        sc,
        policy,
        params: sc.recovery_params(mode)?,
        traces,
        workers,
        memo: BTreeMap::new(),
        evaluations: 0,
    };

    // Closed-form answers always enter the candidate set, so the reported
    // exact optimum is ≥ both by construction.
    s.eval(young_daly_k)?;
    s.eval(self_consistent_k)?;

    // Geometric ladder: the goodput curve is smooth on a log-k axis.
    let mut k = 1u32;
    while k < k_max {
        s.eval(k)?;
        k = k.saturating_mul(2);
    }
    s.eval(k_max)?;

    // Golden-section refinement around the ladder's best octave.
    let (ladder_best, _) = s.best();
    let lo0 = (ladder_best / 2).max(1);
    let hi0 = ladder_best.saturating_mul(2).min(k_max);
    let (mut lo, mut hi) = (f64::from(lo0), f64::from(hi0));
    const INVPHI: f64 = 0.618_033_988_749_894_8;
    for _ in 0..18 {
        if hi - lo < 1.0 {
            break;
        }
        let c = hi - (hi - lo) * INVPHI;
        let d = lo + (hi - lo) * INVPHI;
        let fc = s.eval((c.round() as u32).clamp(1, k_max))?;
        let fd = s.eval((d.round() as u32).clamp(1, k_max))?;
        if fc > fd {
            hi = d;
        } else {
            lo = c;
        }
    }

    // Local integer scan closes the rounding gap.
    let (refined, _) = s.best();
    for dk in refined.saturating_sub(2)..=refined.saturating_add(2).min(k_max) {
        if dk >= 1 {
            s.eval(dk)?;
        }
    }

    // Half/double hill-climb: guarantees the returned optimum beats both
    // half and double its own interval on these traces.
    loop {
        let (best_k, best_g) = s.best();
        let half = (best_k / 2).max(1);
        let double = best_k.saturating_mul(2).min(k_max);
        if s.eval(half)? > best_g || s.eval(double)? > best_g {
            continue;
        }
        break;
    }

    let (exact_k, exact_goodput) = s.best();
    let young_daly_goodput = s.eval(young_daly_k)?;
    let self_consistent_goodput = s.eval(self_consistent_k)?;
    let gap_pct = if exact_goodput > 0.0 {
        (exact_goodput - young_daly_goodput) / exact_goodput * 100.0
    } else {
        0.0
    };
    Ok(SolverResult {
        policy,
        mode,
        fleet_mtbf_ns: mtbf,
        young_daly_k,
        self_consistent_k,
        exact_k,
        young_daly_goodput,
        self_consistent_goodput,
        exact_goodput,
        gap_pct,
        evaluations: s.evaluations,
    })
}

/// Convenience: generate traces and solve in one call.
pub fn solve_interval(
    sc: &FleetScenario,
    policy: PlacementPolicy,
    mode: DegradedMode,
    cfg: &McConfig,
    k_max: u32,
) -> Result<SolverResult, FleetError> {
    let traces = replica_traces(sc, cfg.replicas, cfg.workers)?;
    solve_on_traces(sc, policy, mode, &traces, cfg.workers, k_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_daly_matches_hand_computation() {
        // δ = 12 s, M = 2929 s, step = 1 s → T = √(2·12·2929) ≈ 265.2 s.
        let k = young_daly_steps(12e9, 2.929e12, 1e9, 4096);
        assert_eq!(k, 265);
        assert_eq!(young_daly_steps(0.0, 2.9e12, 1e9, 4096), 1);
        assert_eq!(young_daly_steps(12e9, f64::INFINITY, 1e9, 4096), 4096);
        assert_eq!(young_daly_steps(1e30, 1e30, 1.0, 4096), 4096);
    }

    #[test]
    fn self_consistent_interval_tracks_the_spill_knee() {
        let sc = FleetScenario::synthetic();
        // Critical-path spill never shrinks, so the fixed point is the
        // textbook answer.
        let yd = young_daly_steps(
            sc.write_ns as f64,
            sc.fleet_mtbf_ns(),
            sc.step_ns as f64,
            4096,
        );
        assert_eq!(
            self_consistent_steps(&sc, PlacementPolicy::CriticalPath, 4096),
            yd
        );
        // Bubble spill hits zero at k = 20; past the knee YD(0) = 1 < k, so
        // the fixed point sits at the knee — an order of magnitude below
        // the textbook answer.
        let sck = self_consistent_steps(&sc, PlacementPolicy::Bubble, 4096);
        assert!(
            (15..=21).contains(&sck),
            "fixed point {sck} not at the knee"
        );
        assert!(yd > 10 * sck, "yd {yd} vs self-consistent {sck}");
    }

    #[test]
    fn exact_search_beats_half_and_double_and_is_deterministic() {
        let mut sc = FleetScenario::synthetic();
        sc.horizon_steps = 150_000;
        let cfg = McConfig {
            replicas: 4,
            workers: 2,
        };
        let traces = replica_traces(&sc, cfg.replicas, cfg.workers).expect("traces");
        let r = solve_on_traces(
            &sc,
            PlacementPolicy::Bubble,
            DegradedMode::WaitForRestart,
            &traces,
            cfg.workers,
            4096,
        )
        .expect("solve");
        let r2 = solve_on_traces(
            &sc,
            PlacementPolicy::Bubble,
            DegradedMode::WaitForRestart,
            &traces,
            1,
            4096,
        )
        .expect("solve");
        assert_eq!(r, r2, "solver depends on worker count");
        assert!(r.exact_goodput >= r.young_daly_goodput);
        assert!(r.exact_goodput >= r.self_consistent_goodput);
        assert!(r.gap_pct >= 0.0);
        // The guarantee the smoke gate re-asserts: optimum ≥ half, double.
        let eval_at = |k: u32| {
            let plan = sc.plan(PlacementPolicy::Bubble, k);
            let params = sc.recovery_params(DegradedMode::WaitForRestart).unwrap();
            evaluate(&plan, &traces, &params, sc.horizon_steps, 1)
                .unwrap()
                .summary
                .goodput_mean
        };
        assert!(r.exact_goodput >= eval_at((r.exact_k / 2).max(1)));
        assert!(r.exact_goodput >= eval_at(r.exact_k.saturating_mul(2).min(4096)));
    }
}

//! The physical description of a fleet a what-if study prices: step and
//! checkpoint costs, bubble capacity, per-component failure rates, and the
//! priced elastic degraded modes.
//!
//! A [`FleetScenario`] separates the *physics* (what the hardware and the
//! schedule cost) from the *knobs* a study sweeps (checkpoint policy and
//! interval, elastic mode, cluster size, MTBF scale). Every knob setting
//! maps to a [`LedgerPlan`] + [`RecoveryParams`] pair the exact lifecycle
//! ledger executes, so all what-if answers are priced by the same
//! integer-ns state machine the recovery crate's golden tests pin.

use optimus_calibrate::MtbfCalibration;
use optimus_cluster::DurNs;
use optimus_recovery::{
    ClassedTrace, ComponentSpec, DegradedMode, DegradedPlan, FailureTrace, PlacementPolicy,
    RecoveryParams,
};

use crate::error::{invalid, FleetError};
use crate::ledger::LedgerPlan;

/// Salt mixed into per-replica trace seeds (the SplitMix64 increment, the
/// same constant the per-class stream salting uses — additive here, so the
/// two saltings cannot cancel).
const REPLICA_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fleet-scale training deployment the what-if engine studies.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScenario {
    /// Display name (report headline).
    pub name: String,
    /// Fault-free step latency of the schedule, ns.
    pub step_ns: i64,
    /// Full checkpoint shard write (and restore read) time, ns.
    pub write_ns: i64,
    /// Per-device proven-idle bubble capacity per step of the reference
    /// node, ns. The node layout is replicated fleet-wide, so the spill a
    /// bubble-placed write pays is independent of cluster size.
    pub bubble_capacity_ns: Vec<i64>,
    /// Devices in the fleet.
    pub num_devices: u32,
    /// Training steps the study prices (the "month" of useful work).
    pub horizon_steps: u32,
    /// Failure detection latency.
    pub detection: DurNs,
    /// Process respawn + framework re-init overhead on restart.
    pub restart_overhead: DurNs,
    /// Priced elastic degraded modes (from `plan_elastic` or measured);
    /// [`DegradedMode::WaitForRestart`] needs no entry.
    pub elastic: Vec<DegradedPlan>,
    /// Per-component failure classes (MTBF, hazard, recovery semantics).
    pub specs: Vec<ComponentSpec>,
    /// Base seed for Monte Carlo replica traces.
    pub seed: u64,
}

impl FleetScenario {
    /// Rejects degenerate scenarios.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.step_ns <= 0 {
            return invalid(format!("non-positive step latency {}", self.step_ns));
        }
        if self.write_ns < 0 {
            return invalid(format!("negative write {}", self.write_ns));
        }
        if self.bubble_capacity_ns.is_empty() || self.bubble_capacity_ns.iter().any(|&c| c < 0) {
            return invalid("bubble capacities must be non-empty and non-negative");
        }
        if self.num_devices == 0 || self.horizon_steps == 0 {
            return invalid("fleet needs devices > 0 and horizon > 0");
        }
        if self.specs.is_empty() {
            return invalid("fleet needs at least one component spec");
        }
        for d in &self.elastic {
            if d.mode == DegradedMode::WaitForRestart {
                return invalid("wait-for-restart needs no elastic plan entry");
            }
            if d.effective_step_ns <= 0 || d.reshard_ns < 0 {
                return invalid(format!(
                    "elastic plan {} has non-positive step ({}) or negative reshard ({})",
                    d.mode.label(),
                    d.effective_step_ns,
                    d.reshard_ns
                ));
            }
        }
        Ok(())
    }

    /// The per-interval critical-path spill of a checkpoint policy at
    /// interval `k` — the same closed form `plan_checkpoints` prices: a
    /// bubble-placed write spreads over the interval's `k` steps and the
    /// slowest device decides the remainder; the critical-path baseline
    /// spills the whole write.
    pub fn spill_ns(&self, policy: PlacementPolicy, interval_steps: u32) -> i64 {
        match policy {
            PlacementPolicy::CriticalPath => self.write_ns,
            PlacementPolicy::Bubble => self
                .bubble_capacity_ns
                .iter()
                .map(|&cap| (self.write_ns - interval_steps as i64 * cap).max(0))
                .max()
                .unwrap_or(self.write_ns),
        }
    }

    /// The ledger plan of one (policy, interval) knob setting.
    pub fn plan(&self, policy: PlacementPolicy, interval_steps: u32) -> LedgerPlan {
        LedgerPlan {
            interval_steps,
            step_ns: self.step_ns,
            write_ns: self.write_ns,
            spill_ns: self.spill_ns(policy, interval_steps),
        }
    }

    /// The recovery parameters of one elastic-mode knob setting. Modes
    /// other than wait-for-restart must have a priced [`DegradedPlan`] in
    /// [`FleetScenario::elastic`].
    pub fn recovery_params(&self, mode: DegradedMode) -> Result<RecoveryParams, FleetError> {
        let degraded = match mode {
            DegradedMode::WaitForRestart => None,
            m => Some(*self.elastic.iter().find(|d| d.mode == m).ok_or_else(|| {
                FleetError::Invalid(format!("no priced elastic plan for mode {}", m.label()))
            })?),
        };
        Ok(RecoveryParams {
            detection: self.detection,
            restart_overhead: self.restart_overhead,
            degraded,
        })
    }

    /// Fleet-level MTBF across every component class: superposing one
    /// stream of rate `devices / mtbf_device` per class, the combined rate
    /// is the sum, so the fleet sees one failure every
    /// `1 / Σ_c (devices / mtbf_c)` ns on average.
    pub fn fleet_mtbf_ns(&self) -> f64 {
        let rate: f64 = self
            .specs
            .iter()
            .map(|s| f64::from(self.num_devices) / s.mtbf_device_ns as f64)
            .sum();
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        1.0 / rate
    }

    /// The failure-generation window, chosen independent of the checkpoint
    /// knobs so every (policy, interval, mode) setting is priced against
    /// the *same* trace prefix: twice the fault-free wall of the worst plan
    /// ever run (`k = 1` critical-path, which pays the full write every
    /// step). A replica whose wall exceeded this window would see a
    /// failure-free tail; that needs the lost fraction to exceed ~25× the
    /// useful work, far outside any regime the studies sweep.
    pub fn trace_horizon_ns(&self) -> u64 {
        (self.horizon_steps as i64 * (self.step_ns + self.write_ns)).saturating_mul(2) as u64
    }

    /// The seeded failure trace of one Monte Carlo replica: the merged
    /// superposition of per-component streams. Pure function of
    /// `(scenario, replica)` — bit-identical at any worker count and on
    /// every platform.
    pub fn replica_trace(&self, replica: u32) -> Result<FailureTrace, FleetError> {
        let seed = self.seed.wrapping_add(
            u64::from(replica)
                .wrapping_add(1)
                .wrapping_mul(REPLICA_SALT),
        );
        let classed =
            ClassedTrace::generate(seed, self.trace_horizon_ns(), self.num_devices, &self.specs)?;
        Ok(classed.merged()?)
    }

    /// The scenario at a different cluster size (failure arrival rates
    /// scale with the device count; per-node physics are unchanged).
    pub fn with_devices(&self, num_devices: u32) -> FleetScenario {
        FleetScenario {
            num_devices,
            ..self.clone()
        }
    }

    /// The scenario with every component MTBF scaled to `pct` percent of
    /// its current value (50 = twice as failure-prone, 200 = twice as
    /// reliable). Exact integer scaling, floor 1 ns.
    pub fn with_mtbf_scale_pct(&self, pct: u32) -> FleetScenario {
        let mut out = self.clone();
        for spec in &mut out.specs {
            let scaled = u128::from(spec.mtbf_device_ns) * u128::from(pct) / 100;
            spec.mtbf_device_ns = u64::try_from(scaled).unwrap_or(u64::MAX).max(1);
        }
        out
    }

    /// Replaces each component's MTBF with the rate a trace calibration
    /// fitted ([`optimus_calibrate::fit_mtbf`]), closing the
    /// observe→calibrate→what-if loop. Classes the fit saw no events for
    /// (infinite MTBF) keep their current prior.
    pub fn with_calibrated_mtbf(&self, cal: &MtbfCalibration) -> FleetScenario {
        let mut out = self.clone();
        for spec in &mut out.specs {
            let fitted = cal.rate(spec.component).mtbf_device_ns;
            if fitted.is_finite() && fitted >= 1.0 {
                spec.mtbf_device_ns = fitted as u64;
            }
        }
        out
    }

    /// The reference study scenario: a month of 1 s steps on a 512-GPU
    /// fleet writing 12 s checkpoints, with enough per-step bubble capacity
    /// that a bubble-placed write is fully hidden from interval 20 up —
    /// the regime where the Young/Daly closed form (calibrated on the full
    /// write) prescribes an interval an order of magnitude too long.
    pub fn synthetic() -> FleetScenario {
        let second: i64 = 1_000_000_000;
        FleetScenario {
            name: "synthetic-month".to_string(),
            step_ns: second,
            write_ns: 12 * second,
            // Slowest device hides 0.6 s of write per step.
            bubble_capacity_ns: vec![3 * second, 2 * second + second / 2, second, 3 * second / 5],
            num_devices: 512,
            horizon_steps: 2_592_000, // 30 days of 1 s steps
            detection: DurNs(30 * second as u64),
            restart_overhead: DurNs(60 * second as u64),
            elastic: vec![
                DegradedPlan {
                    mode: DegradedMode::ShrinkDp,
                    effective_step_ns: second + 180_000_000, // +18% per step
                    reshard_ns: 25 * second,
                },
                DegradedPlan {
                    mode: DegradedMode::DropPipelineReplica,
                    effective_step_ns: second + 140_000_000, // +14% effective
                    reshard_ns: 18 * second,
                },
            ],
            // GPU MTBF ≈ 23 device-days anchors the standard 1 : ¼ : 1/12
            // GPU/NIC/host mix; 2 s process restart, 30 min host repair.
            specs: ComponentSpec::standard_mix(
                2_000_000_000_000_000,
                DurNs(2 * second as u64),
                DurNs(1_800 * second as u64),
            ),
            seed: 0x0F1E_E7F1_EE7F_1EE7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_scenario_validates_and_prices_knobs() {
        let sc = FleetScenario::synthetic();
        sc.validate().expect("valid");
        // Bubble spill vanishes once the interval amortises the write over
        // the slowest device's capacity; critical-path always pays it all.
        assert_eq!(sc.spill_ns(PlacementPolicy::Bubble, 1), 11_400_000_000);
        assert_eq!(sc.spill_ns(PlacementPolicy::Bubble, 20), 0);
        assert_eq!(sc.spill_ns(PlacementPolicy::CriticalPath, 20), sc.write_ns);
        let plan = sc.plan(PlacementPolicy::Bubble, 20);
        plan.validate().expect("plan");
        assert_eq!(plan.spill_ns, 0);
        // Every elastic mode resolves to params; wait mode has no plan.
        for mode in [
            DegradedMode::WaitForRestart,
            DegradedMode::ShrinkDp,
            DegradedMode::DropPipelineReplica,
        ] {
            let p = sc.recovery_params(mode).expect("params");
            assert_eq!(p.degraded.is_some(), mode != DegradedMode::WaitForRestart);
        }
        // Fleet MTBF: 512 devices at the standard mix fail every ~49 min.
        let mtbf = sc.fleet_mtbf_ns();
        assert!(mtbf > 2.8e12 && mtbf < 3.1e12, "fleet mtbf {mtbf}");
    }

    #[test]
    fn replica_traces_are_deterministic_and_distinct() {
        let sc = FleetScenario::synthetic();
        let a = sc.replica_trace(0).expect("trace");
        let b = sc.replica_trace(0).expect("trace");
        let c = sc.replica_trace(1).expect("trace");
        assert_eq!(a.failures(), b.failures(), "same replica differs");
        assert_ne!(a.failures(), c.failures(), "replicas share a stream");
        assert!(
            a.len() > 1_000,
            "month-long fleet trace is dense: {}",
            a.len()
        );
    }

    #[test]
    fn knob_transforms_scale_rates_exactly() {
        let sc = FleetScenario::synthetic();
        let half = sc.with_mtbf_scale_pct(50);
        for (a, b) in sc.specs.iter().zip(&half.specs) {
            assert_eq!(b.mtbf_device_ns, a.mtbf_device_ns / 2);
        }
        // Halving MTBF or doubling devices both double the fleet rate.
        let double_dev = sc.with_devices(1024);
        assert!((half.fleet_mtbf_ns() - double_dev.fleet_mtbf_ns()).abs() < 1.0);
        assert!(half.fleet_mtbf_ns() < sc.fleet_mtbf_ns());
    }

    #[test]
    fn validation_rejects_degenerate_scenarios() {
        let good = FleetScenario::synthetic();
        let mut bad = good.clone();
        bad.step_ns = 0;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.specs.clear();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.elastic[0].effective_step_ns = 0;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.elastic.push(DegradedPlan {
            mode: DegradedMode::WaitForRestart,
            effective_step_ns: 1,
            reshard_ns: 0,
        });
        assert!(bad.validate().is_err());
        // Asking for an unpriced mode fails loudly.
        let mut no_elastic = good.clone();
        no_elastic.elastic.clear();
        assert!(no_elastic.recovery_params(DegradedMode::ShrinkDp).is_err());
    }
}

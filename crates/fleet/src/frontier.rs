//! Goodput frontiers: p50/p99 goodput over cluster size × MTBF scale ×
//! checkpoint policy × elastic mode.
//!
//! Each `(devices, mtbf%)` cell generates one shared set of replica traces
//! (so every policy/mode comparison inside the cell is against identical
//! failure realities), solves the exact-optimal checkpoint interval per
//! policy under wait-for-restart, then prices every elastic mode at that
//! interval. The output is a flat list of [`FrontierCell`]s in
//! deterministic sweep order — the raw material of the report's frontier
//! table and the golden fixture.

use optimus_recovery::{DegradedMode, PlacementPolicy};

use crate::error::{invalid, FleetError};
use crate::montecarlo::{evaluate, replica_traces, McSummary};
use crate::scenario::FleetScenario;
use crate::solver::solve_on_traces;

/// The sweep grid of a frontier study.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierConfig {
    /// Cluster sizes to sweep.
    pub devices: Vec<u32>,
    /// MTBF scales, percent of the scenario's rates (100 = as specified).
    pub mtbf_pcts: Vec<u32>,
    /// Checkpoint placement policies.
    pub policies: Vec<PlacementPolicy>,
    /// Elastic degraded modes.
    pub modes: Vec<DegradedMode>,
    /// Monte Carlo replicas per cell.
    pub replicas: u32,
    /// Worker threads (`0` = one per core); any value is bit-identical.
    pub workers: usize,
    /// Interval-search bound, steps.
    pub k_max: u32,
}

impl FrontierConfig {
    /// A compact CI-sized grid: two cluster sizes, two reliability points,
    /// both policies, every elastic mode.
    pub fn smoke(replicas: u32, workers: usize) -> FrontierConfig {
        FrontierConfig {
            devices: vec![256, 512],
            mtbf_pcts: vec![50, 100],
            policies: vec![PlacementPolicy::Bubble, PlacementPolicy::CriticalPath],
            modes: vec![
                DegradedMode::WaitForRestart,
                DegradedMode::ShrinkDp,
                DegradedMode::DropPipelineReplica,
            ],
            replicas,
            workers,
            k_max: 4096,
        }
    }
}

/// One point of the goodput frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierCell {
    /// Cluster size of the cell.
    pub devices: u32,
    /// MTBF scale, percent.
    pub mtbf_pct: u32,
    /// Checkpoint placement policy.
    pub policy: PlacementPolicy,
    /// Elastic degraded mode.
    pub mode: DegradedMode,
    /// Exact-solved checkpoint interval for this cell's policy, steps.
    pub interval_steps: u32,
    /// Pooled goodput statistics at that interval.
    pub summary: McSummary,
}

/// Sweeps the frontier grid. Cells come back in `devices → mtbf% → policy
/// → mode` order; the whole sweep is a pure function of `(scenario,
/// config)` and bit-identical at any worker count.
pub fn sweep_frontier(
    sc: &FleetScenario,
    cfg: &FrontierConfig,
) -> Result<Vec<FrontierCell>, FleetError> {
    sc.validate()?;
    if cfg.devices.is_empty() || cfg.mtbf_pcts.is_empty() {
        return invalid("frontier needs at least one device count and one mtbf scale");
    }
    if cfg.policies.is_empty() || cfg.modes.is_empty() {
        return invalid("frontier needs at least one policy and one mode");
    }
    if cfg.mtbf_pcts.contains(&0) {
        return invalid("mtbf scale must be > 0 percent");
    }
    let mut cells = Vec::new();
    for &devices in &cfg.devices {
        for &pct in &cfg.mtbf_pcts {
            let variant = sc.with_devices(devices).with_mtbf_scale_pct(pct);
            // One trace set per physical cell: every policy/mode knob is
            // priced against identical failure realities.
            let traces = replica_traces(&variant, cfg.replicas, cfg.workers)?;
            for &policy in &cfg.policies {
                let solved = solve_on_traces(
                    &variant,
                    policy,
                    DegradedMode::WaitForRestart,
                    &traces,
                    cfg.workers,
                    cfg.k_max,
                )?;
                let plan = variant.plan(policy, solved.exact_k);
                for &mode in &cfg.modes {
                    let params = variant.recovery_params(mode)?;
                    let study =
                        evaluate(&plan, &traces, &params, variant.horizon_steps, cfg.workers)?;
                    cells.push(FrontierCell {
                        devices,
                        mtbf_pct: pct,
                        policy,
                        mode,
                        interval_steps: solved.exact_k,
                        summary: study.summary,
                    });
                }
            }
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_scenario() -> FleetScenario {
        let mut sc = FleetScenario::synthetic();
        sc.horizon_steps = 100_000;
        sc
    }

    #[test]
    fn sweep_is_deterministic_and_ordered() {
        let sc = short_scenario();
        let cfg = FrontierConfig {
            devices: vec![512],
            mtbf_pcts: vec![100],
            policies: vec![PlacementPolicy::Bubble, PlacementPolicy::CriticalPath],
            modes: vec![DegradedMode::WaitForRestart, DegradedMode::ShrinkDp],
            replicas: 3,
            workers: 2,
            k_max: 2048,
        };
        let a = sweep_frontier(&sc, &cfg).expect("sweep");
        let b = sweep_frontier(
            &sc,
            &FrontierConfig {
                workers: 1,
                ..cfg.clone()
            },
        )
        .expect("sweep");
        assert_eq!(a, b, "worker count leaked into the frontier");
        assert_eq!(a.len(), 4);
        // Bubble cells strictly beat critical-path cells on the same
        // traces and mode.
        let find = |policy, mode| {
            a.iter()
                .find(|c| c.policy == policy && c.mode == mode)
                .expect("cell")
        };
        for mode in [DegradedMode::WaitForRestart, DegradedMode::ShrinkDp] {
            let bubble = find(PlacementPolicy::Bubble, mode);
            let critical = find(PlacementPolicy::CriticalPath, mode);
            assert!(
                bubble.summary.goodput_mean > critical.summary.goodput_mean,
                "bubble {} <= critical {} under {:?}",
                bubble.summary.goodput_mean,
                critical.summary.goodput_mean,
                mode
            );
        }
        // Elastic shrink-DP beats waiting out host repairs.
        let wait = find(PlacementPolicy::Bubble, DegradedMode::WaitForRestart);
        let shrink = find(PlacementPolicy::Bubble, DegradedMode::ShrinkDp);
        assert!(shrink.summary.goodput_mean > wait.summary.goodput_mean);
    }

    #[test]
    fn degenerate_grids_are_rejected() {
        let sc = short_scenario();
        let good = FrontierConfig::smoke(2, 1);
        for bad in [
            FrontierConfig {
                devices: vec![],
                ..good.clone()
            },
            FrontierConfig {
                mtbf_pcts: vec![0],
                ..good.clone()
            },
            FrontierConfig {
                policies: vec![],
                ..good.clone()
            },
            FrontierConfig {
                modes: vec![],
                ..good.clone()
            },
        ] {
            assert!(sweep_frontier(&sc, &bad).is_err());
        }
    }
}

//! optimus-fleet — the fleet-scale resilience what-if engine.
//!
//! Checkpoint placement, failure recovery and elastic degraded modes are
//! priced per-job by `optimus-recovery`; this crate lifts them to the
//! question an operator actually asks: *over a month on N devices, which
//! knob buys the most goodput?* Three layers compose the answer:
//!
//! 1. **Deterministic Monte Carlo** ([`montecarlo`]) — month-long failure
//!    traces drawn per replica from per-component MTBF classes (GPU
//!    fail-stop, NIC fault, host loss — [`optimus_recovery::ComponentSpec`],
//!    optionally calibrated from observed traces via
//!    [`optimus_calibrate::fit_mtbf`]), each priced by the **exact**
//!    lifecycle ledger. The walk is an `O(failures · log steps)` jump
//!    re-derivation of `simulate_lifecycle` ([`ledger`]) — same integer-ns
//!    state machine, proven equivalent by test — so a replica audit
//!    (`wall == useful + lost`, [`LedgerOutcome::audit`]) backs every
//!    statistic. Replicas fan out over the deterministic worker pool:
//!    bit-identical at any worker count.
//! 2. **Optimal checkpoint-interval solver** ([`solver`]) — the Young/Daly
//!    closed form (`T = √(2δM)`), its bubble-aware self-consistent fixed
//!    point, and a golden-section search over the exact ledger, reported
//!    side by side. Headline: once shard writes pack into pipeline bubbles
//!    the marginal checkpoint cost collapses, and the textbook calibration
//!    (`δ` = full write) prescribes intervals an order of magnitude too
//!    long — [`SolverResult::gap_pct`] quantifies the goodput forfeited.
//! 3. **Goodput frontiers** ([`frontier`], [`report`]) — p50/p99 goodput
//!    over cluster size × MTBF × checkpoint policy × elastic mode, emitted
//!    as a byte-stable [`FleetReport`] (golden text + JSON).
//!
//! # Examples
//!
//! ```
//! use optimus_fleet::{run_monte_carlo, FleetScenario, McConfig};
//! use optimus_recovery::{DegradedMode, PlacementPolicy};
//!
//! let mut sc = FleetScenario::synthetic();
//! sc.horizon_steps = 50_000; // shrink the month for the doctest
//! let cfg = McConfig { replicas: 2, workers: 1 };
//! let study = run_monte_carlo(
//!     &sc,
//!     PlacementPolicy::Bubble,
//!     24,
//!     DegradedMode::WaitForRestart,
//!     &cfg,
//! )
//! .unwrap();
//! assert!(study.summary.goodput_p50 > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frontier;
pub mod ledger;
pub mod montecarlo;
pub mod report;
pub mod scenario;
pub mod solver;

pub use error::FleetError;
pub use frontier::{sweep_frontier, FrontierCell, FrontierConfig};
pub use ledger::{fast_lifecycle, LedgerOutcome, LedgerPlan};
pub use montecarlo::{
    evaluate, replica_traces, run_monte_carlo, McConfig, McStudy, McSummary, ReplicaOutcome,
};
pub use report::FleetReport;
pub use scenario::FleetScenario;
pub use solver::{
    self_consistent_steps, solve_interval, solve_on_traces, young_daly_steps, SolverResult,
};

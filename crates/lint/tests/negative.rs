//! Negative suite: one minimal fixture per diagnostic code, each triggering
//! exactly that lint, plus mutation tests that seed a fault into a *real*
//! lowered schedule and assert the analyzer catches it.

use optimus_cluster::DurNs;
use optimus_lint::{
    certify_symmetry, lint_graph, Analyzer, CheckpointSpec, CollectiveSpec, CommGroup, CommRank,
    DepPoints, DeviceCoord, DiagCode, FillSpec, IdleInterval, InsertClaim, InsertSet, LintReport,
    MemoryClaim, Severity,
};
use optimus_pipeline::{
    lower, one_f_one_b, Dir, InsertKernel, InsertStream, OpRef, PipelineSpec, StageSpec,
    TimedKernel,
};
use optimus_sim::{Stream, TaskGraph, TaskId, TaskKind};

fn push(g: &mut TaskGraph, label: &'static str, dev: u32, s: Stream, deps: Vec<TaskId>) -> TaskId {
    g.push(label, dev, s, DurNs(100), TaskKind::Generic, deps)
}

/// Asserts the report contains `code` and nothing else.
fn assert_only(report: &LintReport, code: DiagCode) {
    assert!(report.has(code), "expected {code}: {report}");
    for d in &report.diagnostics {
        assert_eq!(d.code, code, "unexpected extra diagnostic: {}", d.render());
    }
}

// ---------------------------------------------------------------- fixtures

#[test]
fn opt001_dependency_cycle() {
    let mut g = TaskGraph::new(2);
    let a = push(&mut g, "a", 0, Stream::Compute, vec![]);
    let b = push(&mut g, "b", 1, Stream::Compute, vec![a]);
    g.add_dep(a, b); // a → b → a
    let report = lint_graph(&g);
    assert_only(&report, DiagCode::Cycle);
    assert_eq!(report.count(DiagCode::Cycle), 1);
    assert!(report.has_errors());
}

#[test]
fn opt002_stream_fifo_inversion() {
    // Dep-only graph is acyclic; the cycle appears only once the FIFO edge
    // a→b (queue order) is added: a waits for b which queues behind it.
    let mut g = TaskGraph::new(1);
    let a = push(&mut g, "a", 0, Stream::Compute, vec![]);
    let b = push(&mut g, "b", 0, Stream::Compute, vec![]);
    g.add_dep(a, b);
    let report = lint_graph(&g);
    assert_only(&report, DiagCode::StreamFifoInversion);
}

#[test]
fn opt003_collective_order_mismatch() {
    let spec = CollectiveSpec::new(vec![CommGroup::new(
        "dp",
        vec![
            CommRank::new("rank0", vec!["ag".into(), "rs".into()]),
            CommRank::new("rank1", vec!["rs".into(), "ag".into()]),
        ],
    )]);
    let report = Analyzer::new().collectives(spec).analyze();
    assert_only(&report, DiagCode::CollectiveOrderMismatch);
}

#[test]
fn opt004_memory_over_budget() {
    let claim = MemoryClaim::new("gpu 0", 100)
        .component("weights", 80)
        .component("activations", 40);
    let report = Analyzer::new().memory(claim).analyze();
    assert_only(&report, DiagCode::MemoryOverBudget);
}

#[test]
fn opt005_bubble_insert_overlap() {
    let set = InsertSet {
        intervals: vec![IdleInterval {
            device: 0,
            comm: false,
            start: 0,
            end: 50,
        }],
        claims: vec![InsertClaim {
            device: 0,
            lane: 0,
            comm: false,
            start: 40,
            end: 90, // spills 40ns past the bubble
            label: "enc_fwd".into(),
            chain: None,
        }],
    };
    let report = Analyzer::new().inserts(set).analyze();
    assert_only(&report, DiagCode::BubbleInsertOverlap);
}

#[test]
fn opt005_dependency_point_violation() {
    // Encoder forward finishes at t=100 but the LLM consumes it at t=80.
    let dp = DepPoints {
        ef: vec![100],
        f_points: vec![80],
        eb: vec![],
        b_points: vec![],
        p2p_margin: 0,
    };
    let report = Analyzer::new().dep_points(dp).analyze();
    assert_only(&report, DiagCode::BubbleInsertOverlap);
}

#[test]
fn opt006_orphan_task() {
    let mut g = TaskGraph::new(2);
    let a = push(&mut g, "a", 0, Stream::Compute, vec![]);
    let _b = push(&mut g, "b", 0, Stream::Compute, vec![a]);
    let _orphan = push(&mut g, "stray", 1, Stream::Compute, vec![]);
    let report = lint_graph(&g);
    assert_only(&report, DiagCode::OrphanTask);
    // Orphans warn; they stall nothing, so deny mode must not reject them.
    assert!(!report.has_errors());
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.severity == Severity::Warning));
}

#[test]
fn opt007_missing_checkpoint() {
    // A 5-step segment with a 1-step checkpoint budget, but the only durable
    // point sits at step 1: the remaining 4-step stretch is uncovered.
    let step = 1_000_000i64;
    let spec = CheckpointSpec::new("step horizon", step, (0, 5 * step)).durable_at(step, "ckpt@1");
    let report = Analyzer::new().checkpoints(spec).analyze();
    assert_only(&report, DiagCode::MissingCheckpoint);
    // Coverage gaps warn; they block nothing at execution time.
    assert!(!report.has_errors());
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.severity == Severity::Warning));

    // The covered variant is clean: one durable point per interval.
    let mut covered = CheckpointSpec::new("step horizon", step, (0, 5 * step));
    for k in 1..5 {
        covered = covered.durable_at(k * step, format!("ckpt@{k}"));
    }
    assert!(Analyzer::new().checkpoints(covered).analyze().is_clean());
}

#[test]
fn opt008_fill_claim_overlap() {
    let claim = |label: &str, device: u32, start: i64, end: i64| InsertClaim {
        device,
        lane: 0,
        comm: false,
        start,
        end,
        label: label.into(),
        chain: None,
    };
    // A fill chunk that leaks into the checkpoint shard write ahead of it,
    // and a sibling pair double-booking the same bubble.
    let spec = FillSpec {
        primary: vec![claim("enc mb0", 0, 0, 100)],
        checkpoint: vec![claim("ckpt shard dev0 chunk0", 0, 150, 250)],
        fill: vec![
            claim("fill eval chunk0", 0, 120, 180),
            claim("fill etl chunk0", 1, 40, 90),
            claim("fill etl chunk1", 1, 80, 130),
        ],
    };
    let report = Analyzer::new().fill(spec).analyze();
    assert_only(&report, DiagCode::FillClaimOverlap);
    assert_eq!(report.count(DiagCode::FillClaimOverlap), 2);
    assert!(report.has_errors(), "fill overlaps must be errors");

    // The disjoint variant is clean: fill stays inside its own spans.
    let clean = FillSpec {
        primary: vec![claim("enc mb0", 0, 0, 100)],
        checkpoint: vec![claim("ckpt shard dev0 chunk0", 0, 150, 250)],
        fill: vec![
            claim("fill eval chunk0", 0, 100, 150),
            claim("fill etl chunk0", 1, 40, 90),
        ],
    };
    assert!(Analyzer::new().fill(clean).analyze().is_clean());
}

/// A minimal 2-stage × 2-replica grid for the symmetry certifier: per-device
/// compute plus a DP all-gather whose dependency set fans in across both
/// replicas (device = replica·2 + stage, single TP lane).
fn symmetric_grid() -> (TaskGraph, Vec<DeviceCoord>) {
    let mut g = TaskGraph::new(4);
    let mut coords = vec![DeviceCoord::new(0, 0, 0); 4];
    let mut compute = Vec::new();
    for q in 0..2u32 {
        for s in 0..2u32 {
            let d = q * 2 + s;
            coords[d as usize] = DeviceCoord::new(s, 0, q);
            compute.push(push(&mut g, "w", d, Stream::Compute, vec![]));
        }
    }
    for q in 0..2u32 {
        for s in 0..2u32 {
            let d = q * 2 + s;
            let deps = vec![compute[s as usize], compute[(2 + s) as usize]];
            g.push(
                "ag",
                d,
                Stream::DpComm,
                DurNs(60),
                TaskKind::DpAllGather,
                deps,
            );
        }
    }
    (g, coords)
}

#[test]
fn opt009_symmetry_broken_demotes_to_singleton() {
    let (g, coords) = symmetric_grid();
    // Hand-break the witness renaming: device 2 (stage 0, replica 1) runs a
    // different compute duration than its image, device 0.
    let g = g.with_durations(|t| {
        if t.device == 2 && t.stream == Stream::Compute {
            DurNs(t.duration.0 * 7)
        } else {
            t.duration
        }
    });
    let out = certify_symmetry(&g, &coords);
    assert_only(&out.report, DiagCode::SymmetryBroken);
    // OPT009 warns: folding stays sound, so deny mode must not reject it.
    assert!(!out.report.has_errors());
    assert!(out
        .report
        .diagnostics
        .iter()
        .all(|d| d.severity == Severity::Warning));
    let cert = out.certificate.expect("demotion keeps the certificate");
    assert!(cert.covers(&g));
    assert!(
        cert.classes
            .iter()
            .any(|c| c.is_singleton() && c.members == vec![2]),
        "diverging device must land in a singleton class"
    );
    // The untouched fixture certifies clean with one class per stage.
    let (clean, coords) = symmetric_grid();
    let out = certify_symmetry(&clean, &coords);
    assert!(out.report.is_clean(), "{}", out.report);
    assert_eq!(out.certificate.unwrap().classes.len(), 2);
}

#[test]
fn opt010_asymmetric_collective_refuses_certificate() {
    let (mut g, coords) = symmetric_grid();
    // Hand-break the collective's endpoint set: device 2's all-gather drops
    // its cross-replica dependency, so the replica transposition maps an
    // existing edge onto a missing one — the renaming is no isomorphism and
    // folding would silently mis-time the collective.
    let ag2 = g
        .tasks()
        .iter()
        .find(|t| t.device == 2 && t.kind == TaskKind::DpAllGather)
        .unwrap()
        .id;
    let cross = g
        .task(ag2)
        .deps
        .iter()
        .copied()
        .find(|&d| g.task(d).device != 2)
        .unwrap();
    assert!(g.remove_dep(ag2, cross));
    let out = certify_symmetry(&g, &coords);
    assert_only(&out.report, DiagCode::AsymmetricCollective);
    assert!(out.report.has_errors(), "OPT010 must be an error");
    assert!(
        out.certificate.is_none(),
        "an asymmetric collective must refuse the certificate"
    );
}

// ---------------------------------------------------------------- mutations

fn small_spec(pp: u32, n: u32) -> PipelineSpec {
    let stage = StageSpec {
        fwd: vec![
            TimedKernel {
                label: "f",
                dur: DurNs(400),
                comm: false,
            },
            TimedKernel {
                label: "ag",
                dur: DurNs(50),
                comm: true,
            },
        ],
        bwd: vec![
            TimedKernel {
                label: "b",
                dur: DurNs(800),
                comm: false,
            },
            TimedKernel {
                label: "rs",
                dur: DurNs(50),
                comm: true,
            },
        ],
        ..StageSpec::default()
    };
    PipelineSpec {
        pp,
        vpp: 1,
        n_microbatches: n,
        stages: vec![stage; pp as usize],
        dp_allgather: DurNs(300),
        dp_reducescatter: DurNs(500),
        p2p: DurNs(50),
    }
}

fn lowered_1f1b(pp: u32, n: u32) -> optimus_pipeline::Lowered {
    lower(&small_spec(pp, n), &one_f_one_b(pp, n).unwrap(), &[]).unwrap()
}

/// Rebuilds `g` with the queue positions of `x` and `y` swapped (same
/// device+stream), preserving every dependency edge.
fn swap_queue_positions(g: &TaskGraph, x: TaskId, y: TaskId) -> TaskGraph {
    let mut order: Vec<TaskId> = g.tasks().iter().map(|t| t.id).collect();
    let (ix, iy) = (x.index(), y.index());
    order.swap(ix, iy);
    let mut out = TaskGraph::new(g.num_devices());
    let mut map = vec![None; g.len()];
    for id in &order {
        let t = g.task(*id);
        map[t.id.index()] = Some(out.push(t.label, t.device, t.stream, t.duration, t.kind, vec![]));
    }
    for (dep, task) in g.dep_edges() {
        out.add_dep(map[task.index()].unwrap(), map[dep.index()].unwrap());
    }
    out
}

#[test]
fn mutation_swapping_same_stream_tasks_deadlocks() {
    let lowered = lowered_1f1b(2, 4);
    assert!(lint_graph(&lowered.graph).is_clean());

    // Swap microbatch 0's forward with the first backward on device 0's
    // compute queue: the backward transitively depends on that forward (via
    // the downstream rank), so queueing it first wedges the stream.
    let q = lowered.graph.stream_queues();
    let (_, compute0) = q
        .iter()
        .find(|((d, s), _)| *d == 0 && *s == Stream::Compute)
        .expect("device 0 compute queue");
    let first_bwd = *compute0
        .iter()
        .find(|id| matches!(lowered.graph.task(**id).kind, TaskKind::LlmBwd { .. }))
        .expect("a backward on device 0");
    let mutated = swap_queue_positions(&lowered.graph, compute0[0], first_bwd);
    let report = lint_graph(&mutated);
    assert!(
        report.has(DiagCode::StreamFifoInversion) || report.has(DiagCode::Cycle),
        "swap went undetected: {report}"
    );
    assert!(report.has_errors());
}

#[test]
fn mutation_dropping_dep_edge_orphans_task() {
    // Minimal two-device graph: the transfer consumer on device 1 is alone
    // in its queue, so cutting its only edge makes it an orphan.
    let mut g = TaskGraph::new(2);
    let prod = push(&mut g, "fwd", 0, Stream::Compute, vec![]);
    let send = push(&mut g, "send", 0, Stream::P2p, vec![prod]);
    let recv = push(&mut g, "recv", 1, Stream::Compute, vec![send]);
    let _ = recv;
    assert!(lint_graph(&g).is_clean());

    assert!(g.remove_dep(recv, send));
    let report = lint_graph(&g);
    assert_only(&report, DiagCode::OrphanTask);
}

/// A real lowered 1F1B schedule with two encoder inserts on rank 0 whose
/// activations feed LLM forwards on rank 1 — producing two `act_p2p`
/// transfers on rank 1's `EncP2p` queue, one channel, in send order.
fn lowered_with_enc_p2p() -> optimus_pipeline::Lowered {
    let enc = |microbatch: u32| InsertKernel {
        device: 0,
        stream: InsertStream::Compute,
        label: "enc_f",
        kind: TaskKind::EncFwd {
            pipeline: 0,
            stage: 0,
            microbatch,
        },
        dur: DurNs(200),
        queue_index: 0,
        dep_inserts: vec![],
        dep_ops: vec![],
        feeds_ops: vec![OpRef {
            rank: 1,
            chunk: 0,
            microbatch,
            dir: Dir::Fwd,
        }],
    };
    lower(
        &small_spec(2, 4),
        &one_f_one_b(2, 4).unwrap(),
        &[enc(0), enc(1)],
    )
    .unwrap()
}

#[test]
fn mutation_swapping_enc_p2p_pair_order_breaks_channel() {
    let lowered = lowered_with_enc_p2p();
    assert!(
        lint_graph(&lowered.graph).is_clean(),
        "{}",
        lint_graph(&lowered.graph)
    );

    // Swap the two transfers on rank 1's EncP2p queue: the receive order no
    // longer replays the send order, so the channel's sequences diverge.
    let q = lowered.graph.stream_queues();
    let (_, enc_p2p) = q
        .iter()
        .find(|((d, s), _)| *d == 1 && *s == Stream::EncP2p)
        .expect("rank 1 EncP2p queue");
    assert_eq!(
        enc_p2p.len(),
        2,
        "fixture should yield exactly two transfers"
    );
    let mutated = swap_queue_positions(&lowered.graph, enc_p2p[0], enc_p2p[1]);
    let report = lint_graph(&mutated);
    assert!(
        report.has(DiagCode::CollectiveOrderMismatch),
        "swapped p2p pair went undetected: {report}"
    );
}

#[test]
fn mutation_dropping_enc_p2p_send_edge_leaves_dangling_receive() {
    let lowered = lowered_with_enc_p2p();
    let mut g = lowered.graph.clone();
    assert!(lint_graph(&g).is_clean());

    // Cut the transfer's edge to its producer: a receive with no matching
    // send on any channel.
    let q = g.stream_queues();
    let (_, enc_p2p) = q
        .iter()
        .find(|((d, s), _)| *d == 1 && *s == Stream::EncP2p)
        .expect("rank 1 EncP2p queue");
    let tr = enc_p2p[0];
    let producer = g.task(tr).deps[0];
    assert_ne!(g.task(producer).device, 1, "dep should be the remote send");
    assert!(g.remove_dep(tr, producer));
    let report = lint_graph(&g);
    assert!(
        report.has(DiagCode::CollectiveOrderMismatch),
        "dangling receive went undetected: {report}"
    );
}

#[test]
fn mutation_skipping_one_ranks_allgather_breaks_collectives() {
    let lowered = lowered_1f1b(2, 4);
    assert!(lint_graph(&lowered.graph).is_clean());

    // Rebuild without device 1's DP all-gather: rank 1's DpComm sequence
    // diverges from rank 0's at position 0.
    let mut out = TaskGraph::new(lowered.graph.num_devices());
    let mut map: Vec<Option<TaskId>> = vec![None; lowered.graph.len()];
    let mut skipped = false;
    for t in lowered.graph.tasks() {
        if !skipped && t.device == 1 && t.stream == Stream::DpComm {
            skipped = true;
            continue;
        }
        map[t.id.index()] = Some(out.push(t.label, t.device, t.stream, t.duration, t.kind, vec![]));
    }
    assert!(skipped, "fixture has no DP collective on device 1");
    for (dep, task) in lowered.graph.dep_edges() {
        if let (Some(nt), Some(nd)) = (map[task.index()], map[dep.index()]) {
            out.add_dep(nt, nd);
        }
    }
    let report = lint_graph(&out);
    assert!(
        report.has(DiagCode::CollectiveOrderMismatch),
        "skipped all-gather went undetected: {report}"
    );
}

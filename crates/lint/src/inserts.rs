//! Bubble-insert validity (OPT005).
//!
//! Optimus fills LLM pipeline bubbles with encoder kernels. A *claim* is the
//! scheduler's assertion that one inserted kernel occupies `[start, end)` on
//! a device; an *idle interval* is a bubble the LLM profile proved free
//! (leading/interior/trailing compute gaps, or TP-comm idle windows for
//! communication kernels). This pass checks three things without
//! simulating:
//!
//! 1. **containment** — every claim fits entirely inside some idle interval
//!    of the matching kind on its device;
//! 2. **exclusivity** — no two claims on the same `(device, lane, kind)`
//!    overlap (different lanes legitimately run concurrently on different
//!    TP subgroups of the same pipeline stage);
//! 3. **chain order** — claims belonging to one dependency chain occupy
//!    non-overlapping, position-ordered spans.
//!
//! [`check_dep_points`] additionally mirrors the scheduler's
//! `CheckEncLLMDep` (§4.3) sorted-matching conditions on encoder
//! finish/start times versus LLM dependency points.

use std::collections::BTreeMap;

use crate::diag::{DiagCode, Diagnostic, Witness};

/// Signed nanosecond timestamp (matches `optimus_core::profile::Ts`; encoder
/// work may be scheduled before the LLM step origin).
pub type Time = i64;

/// One proven-idle interval on a device timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleInterval {
    /// Device index.
    pub device: u32,
    /// True for TP-comm idle windows (communication inserts), false for
    /// compute bubbles.
    pub comm: bool,
    /// Interval start.
    pub start: Time,
    /// Interval end.
    pub end: Time,
}

/// One inserted kernel's claimed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertClaim {
    /// Device index.
    pub device: u32,
    /// TP lane (colocation sub-group). Claims on different lanes of the same
    /// device may overlap in time.
    pub lane: u32,
    /// True for communication kernels (claim against comm windows).
    pub comm: bool,
    /// Claimed start.
    pub start: Time,
    /// Claimed end.
    pub end: Time,
    /// Display label.
    pub label: String,
    /// `(chain id, position)` when the insert belongs to an ordered
    /// dependency chain (e.g. the kernels of one encoder microbatch).
    pub chain: Option<(u32, u32)>,
}

/// The full set of idle intervals and claims for one schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InsertSet {
    /// Proven-idle intervals.
    pub intervals: Vec<IdleInterval>,
    /// Claimed insert spans.
    pub claims: Vec<InsertClaim>,
}

fn span(start: Time, end: Time) -> String {
    format!("[{start}, {end})")
}

/// Runs OPT005 over an insert set.
pub(crate) fn check_inserts(set: &InsertSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // 1. Containment.
    for c in &set.claims {
        let fits = set.intervals.iter().any(|iv| {
            iv.device == c.device && iv.comm == c.comm && iv.start <= c.start && c.end <= iv.end
        });
        if !fits {
            let kind = if c.comm {
                "comm window"
            } else {
                "compute bubble"
            };
            let nearest = set
                .intervals
                .iter()
                .filter(|iv| iv.device == c.device && iv.comm == c.comm)
                .map(|iv| span(iv.start, iv.end))
                .collect::<Vec<_>>()
                .join(", ");
            out.push(Diagnostic::new(
                DiagCode::BubbleInsertOverlap,
                format!(
                    "insert `{}` claims {} on device {} but no idle {kind} \
                     contains it",
                    c.label,
                    span(c.start, c.end),
                    c.device
                ),
                vec![Witness::note(if nearest.is_empty() {
                    format!("device {} has no idle {kind}s at all", c.device)
                } else {
                    format!("idle {kind}s on device {}: {nearest}", c.device)
                })],
            ));
        }
    }

    // 2. Exclusivity per (device, lane, kind).
    let mut by_slot: BTreeMap<(u32, u32, bool), Vec<&InsertClaim>> = BTreeMap::new();
    for c in &set.claims {
        by_slot
            .entry((c.device, c.lane, c.comm))
            .or_default()
            .push(c);
    }
    for ((device, lane, _comm), mut claims) in by_slot {
        claims.sort_by_key(|c| (c.start, c.end));
        for pair in claims.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.start < a.end && a.start < b.end {
                out.push(Diagnostic::new(
                    DiagCode::BubbleInsertOverlap,
                    format!(
                        "inserts `{}` {} and `{}` {} overlap on device {device} \
                         lane {lane}",
                        a.label,
                        span(a.start, a.end),
                        b.label,
                        span(b.start, b.end),
                    ),
                    vec![],
                ));
            }
        }
    }

    // 3. Chain order.
    let mut chains: BTreeMap<u32, Vec<&InsertClaim>> = BTreeMap::new();
    for c in &set.claims {
        if let Some((id, _)) = c.chain {
            chains.entry(id).or_default().push(c);
        }
    }
    for (id, mut links) in chains {
        links.sort_by_key(|c| c.chain.expect("chained").1);
        for pair in links.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.start < a.end {
                out.push(Diagnostic::new(
                    DiagCode::BubbleInsertOverlap,
                    format!(
                        "chain {id}: `{}` {} starts before its predecessor \
                         `{}` {} finishes",
                        b.label,
                        span(b.start, b.end),
                        a.label,
                        span(a.start, a.end),
                    ),
                    vec![],
                ));
            }
        }
    }
    out
}

/// Encoder↔LLM dependency points, mirroring the scheduler's
/// `CheckEncLLMDep` (§4.3): with both sides sorted, the `k`-th encoder
/// forward finish must not exceed the `k`-th forward point, and the `k`-th
/// encoder backward start must not precede the `k`-th backward point plus
/// the P2P margin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepPoints {
    /// Encoder forward finish times (`EF_i`), one per microbatch.
    pub ef: Vec<Time>,
    /// LLM forward dependency points (`F_i`).
    pub f_points: Vec<Time>,
    /// Encoder backward start times (`EB_i`).
    pub eb: Vec<Time>,
    /// LLM backward dependency points (`B_i`).
    pub b_points: Vec<Time>,
    /// P2P margin applied to cross-device backward dependencies.
    pub p2p_margin: Time,
}

/// Runs the static `CheckEncLLMDep` mirror; violations report as OPT005.
pub(crate) fn check_dep_points(dp: &DepPoints) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let pairs = |what: &str,
                 enc: &[Time],
                 llm: &[Time],
                 ok: &dyn Fn(Time, Time) -> bool,
                 out: &mut Vec<Diagnostic>| {
        if enc.len() != llm.len() {
            out.push(Diagnostic::new(
                DiagCode::BubbleInsertOverlap,
                format!(
                    "{what}: {} encoder time(s) against {} LLM dependency \
                     point(s) — every microbatch must be matched",
                    enc.len(),
                    llm.len()
                ),
                vec![],
            ));
            return;
        }
        let mut e = enc.to_vec();
        e.sort_unstable();
        let mut l = llm.to_vec();
        l.sort_unstable();
        for (k, (ev, lv)) in e.iter().zip(&l).enumerate() {
            if !ok(*ev, *lv) {
                out.push(Diagnostic::new(
                    DiagCode::BubbleInsertOverlap,
                    format!(
                        "{what}: sorted position {k} violates CheckEncLLMDep \
                         (encoder {ev} vs LLM point {lv})"
                    ),
                    vec![],
                ));
            }
        }
    };
    pairs(
        "forward (EF vs F)",
        &dp.ef,
        &dp.f_points,
        &|e, f| e <= f,
        &mut out,
    );
    let margin = dp.p2p_margin;
    pairs(
        "backward (EB vs B)",
        &dp.eb,
        &dp.b_points,
        &move |e, b| e >= b + margin,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(device: u32, comm: bool, start: Time, end: Time) -> IdleInterval {
        IdleInterval {
            device,
            comm,
            start,
            end,
        }
    }

    fn claim(device: u32, lane: u32, comm: bool, start: Time, end: Time) -> InsertClaim {
        InsertClaim {
            device,
            lane,
            comm,
            start,
            end,
            label: "enc".into(),
            chain: None,
        }
    }

    #[test]
    fn contained_claims_are_clean() {
        let set = InsertSet {
            intervals: vec![iv(0, false, 0, 100), iv(0, true, 20, 60)],
            claims: vec![claim(0, 0, false, 10, 40), claim(0, 0, true, 20, 50)],
        };
        assert!(check_inserts(&set).is_empty());
    }

    #[test]
    fn escaping_claim_is_flagged() {
        let set = InsertSet {
            intervals: vec![iv(0, false, 0, 30)],
            claims: vec![claim(0, 0, false, 10, 40)],
        };
        let diags = check_inserts(&set);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::BubbleInsertOverlap);
        assert!(diags[0].message.contains("no idle"), "{}", diags[0].message);
    }

    #[test]
    fn comm_claim_cannot_use_compute_bubble() {
        let set = InsertSet {
            intervals: vec![iv(0, false, 0, 100)],
            claims: vec![claim(0, 0, true, 10, 20)],
        };
        assert_eq!(check_inserts(&set).len(), 1);
    }

    #[test]
    fn same_lane_overlap_is_flagged_but_cross_lane_is_fine() {
        let intervals = vec![iv(0, false, 0, 100)];
        let overlapping = InsertSet {
            intervals: intervals.clone(),
            claims: vec![claim(0, 0, false, 10, 40), claim(0, 0, false, 30, 60)],
        };
        assert_eq!(check_inserts(&overlapping).len(), 1);
        let cross_lane = InsertSet {
            intervals,
            claims: vec![claim(0, 0, false, 10, 40), claim(0, 1, false, 30, 60)],
        };
        assert!(check_inserts(&cross_lane).is_empty());
    }

    #[test]
    fn chain_order_violation_is_flagged() {
        let mut a = claim(0, 0, false, 10, 40);
        a.chain = Some((7, 0));
        let mut b = claim(1, 0, false, 20, 60);
        b.chain = Some((7, 1)); // starts before its predecessor ends
        let set = InsertSet {
            intervals: vec![iv(0, false, 0, 100), iv(1, false, 0, 100)],
            claims: vec![a, b],
        };
        let diags = check_inserts(&set);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("chain 7"), "{}", diags[0].message);
    }

    #[test]
    fn dep_points_accept_matching_sequences() {
        let dp = DepPoints {
            ef: vec![30, 10, 20],
            f_points: vec![25, 15, 40],
            eb: vec![100, 120],
            b_points: vec![90, 110],
            p2p_margin: 5,
        };
        assert!(check_dep_points(&dp).is_empty());
    }

    #[test]
    fn late_encoder_forward_is_flagged() {
        let dp = DepPoints {
            ef: vec![50],
            f_points: vec![40],
            ..DepPoints::default()
        };
        let diags = check_dep_points(&dp);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("forward"), "{}", diags[0].message);
    }

    #[test]
    fn early_backward_and_length_mismatch_are_flagged() {
        let dp = DepPoints {
            eb: vec![90],
            b_points: vec![90],
            p2p_margin: 5, // 90 < 90 + 5
            ..DepPoints::default()
        };
        assert_eq!(check_dep_points(&dp).len(), 1);
        let dp2 = DepPoints {
            ef: vec![1, 2],
            f_points: vec![1],
            ..DepPoints::default()
        };
        assert_eq!(check_dep_points(&dp2).len(), 1);
    }
}

//! Structural task-graph passes: dependency cycles (OPT001), stream-FIFO
//! inversions (OPT002), and orphan tasks (OPT006).
//!
//! The two cycle passes analyze different edge sets. OPT001 looks at
//! dependency edges alone: a cycle there is unexecutable no matter how tasks
//! are queued. OPT002 looks at the *union* of dependency edges and the
//! implicit per-`(device, stream)` FIFO edges the CUDA-stream execution
//! model adds between queue neighbours: a cycle that only closes through
//! FIFO edges is exactly the situation where `optimus_sim::simulate` would
//! report a deadlock — queue order contradicts dependency order. Witnesses
//! are minimal: the shortest cycle through any stuck node, found by BFS.

use optimus_sim::{Stream, TaskGraph, TaskId};

use crate::diag::{DiagCode, Diagnostic, Witness};

/// Default witness namer: label + device + stream + kind.
pub(crate) fn default_name(g: &TaskGraph, id: TaskId) -> String {
    let t = g.task(id);
    format!(
        "`{}` (device {}, {:?}, {:?})",
        t.label, t.device, t.stream, t.kind
    )
}

/// Edge kinds of the union graph, kept for witness rendering.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    Dep,
    Fifo,
}

struct UnionGraph {
    /// Adjacency: `succ[u]` lists `(v, kind)` edges `u → v` ("v waits for u").
    succ: Vec<Vec<(u32, EdgeKind)>>,
}

fn dep_adjacency(g: &TaskGraph) -> Vec<Vec<(u32, EdgeKind)>> {
    let mut succ = vec![Vec::new(); g.len()];
    for (dep, task) in g.dep_edges() {
        succ[dep.index()].push((task.0, EdgeKind::Dep));
    }
    succ
}

fn union_graph(g: &TaskGraph) -> UnionGraph {
    let mut succ = dep_adjacency(g);
    for ((_dev, _stream), queue) in g.stream_queues() {
        for pair in queue.windows(2) {
            succ[pair[0].index()].push((pair[1].0, EdgeKind::Fifo));
        }
    }
    UnionGraph { succ }
}

/// Kahn's algorithm; returns the set of nodes left on a cycle (empty when
/// acyclic).
fn residual_nodes(succ: &[Vec<(u32, EdgeKind)>]) -> Vec<u32> {
    let n = succ.len();
    let mut indeg = vec![0usize; n];
    for edges in succ {
        for &(v, _) in edges {
            indeg[v as usize] += 1;
        }
    }
    let mut stack: Vec<u32> = (0..n as u32).filter(|&u| indeg[u as usize] == 0).collect();
    let mut seen = 0usize;
    while let Some(u) = stack.pop() {
        seen += 1;
        for &(v, _) in &succ[u as usize] {
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                stack.push(v);
            }
        }
    }
    if seen == n {
        Vec::new()
    } else {
        (0..n as u32).filter(|&u| indeg[u as usize] > 0).collect()
    }
}

/// Shortest cycle through any of (a bounded sample of) the stuck nodes:
/// BFS from each seed until the seed is reached again. Returns the cycle as
/// `(node, kind-of-edge-leaving-it)` pairs.
fn minimal_cycle(succ: &[Vec<(u32, EdgeKind)>], stuck: &[u32]) -> Vec<(u32, EdgeKind)> {
    const MAX_SEEDS: usize = 16;
    let n = succ.len();
    let mut best: Vec<(u32, EdgeKind)> = Vec::new();
    for &seed in stuck.iter().take(MAX_SEEDS) {
        let mut parent: Vec<Option<(u32, EdgeKind)>> = vec![None; n];
        let mut queue = std::collections::VecDeque::from([seed]);
        let mut found = false;
        'bfs: while let Some(u) = queue.pop_front() {
            for &(v, kind) in &succ[u as usize] {
                if v == seed {
                    parent[seed as usize] = Some((u, kind));
                    found = true;
                    break 'bfs;
                }
                if parent[v as usize].is_none() {
                    parent[v as usize] = Some((u, kind));
                    queue.push_back(v);
                }
            }
        }
        if !found {
            continue;
        }
        // Walk parents back from the seed to recover the cycle.
        let mut cycle = Vec::new();
        let (mut node, mut kind) = parent[seed as usize].expect("cycle found");
        cycle.push((node, kind));
        while node != seed {
            let (p, k) = parent[node as usize].expect("on BFS tree");
            node = p;
            kind = k;
            cycle.push((node, kind));
        }
        cycle.reverse();
        if best.is_empty() || cycle.len() < best.len() {
            best = cycle;
        }
    }
    best
}

fn cycle_witness(
    g: &TaskGraph,
    cycle: &[(u32, EdgeKind)],
    name: &dyn Fn(TaskId) -> String,
) -> Vec<Witness> {
    cycle
        .iter()
        .map(|&(u, kind)| {
            let id = TaskId(u);
            let t = g.task(id);
            let via = match kind {
                EdgeKind::Dep => "dependency edge".to_string(),
                EdgeKind::Fifo => {
                    format!("FIFO order on (device {}, {:?})", t.device, t.stream)
                }
            };
            Witness::task(id, format!("{} → next via {}", name(id), via))
        })
        .collect()
}

/// Runs OPT001, OPT002, and OPT006 over one graph.
pub(crate) fn check_graph(g: &TaskGraph, name: &dyn Fn(TaskId) -> String) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if g.is_empty() {
        return out;
    }

    // OPT001: dependency-only cycle.
    let dep_succ = dep_adjacency(g);
    let dep_stuck = residual_nodes(&dep_succ);
    if !dep_stuck.is_empty() {
        let cycle = minimal_cycle(&dep_succ, &dep_stuck);
        out.push(Diagnostic::new(
            DiagCode::Cycle,
            format!(
                "dependency cycle of length {} ({} tasks cannot execute)",
                cycle.len(),
                dep_stuck.len()
            ),
            cycle_witness(g, &cycle, name),
        ));
        // The union graph inherits every dependency cycle; re-reporting it
        // as a FIFO hazard would be noise.
        return out;
    }

    // OPT002: union (dependency + stream-FIFO) cycle.
    let union = union_graph(g);
    let stuck = residual_nodes(&union.succ);
    if !stuck.is_empty() {
        let cycle = minimal_cycle(&union.succ, &stuck);
        let fifo_edges = cycle.iter().filter(|(_, k)| *k == EdgeKind::Fifo).count();
        out.push(Diagnostic::new(
            DiagCode::StreamFifoInversion,
            format!(
                "stream FIFO order contradicts dependency order: cycle of \
                 length {} through {} queue edge(s); {} task(s) would deadlock",
                cycle.len(),
                fifo_edges,
                stuck.len()
            ),
            cycle_witness(g, &cycle, name),
        ));
    }

    // OPT006: orphan tasks — no dependency edges at all, alone on their
    // stream queue, in a graph that otherwise has structure.
    if g.len() > 1 {
        let mut has_dependent = vec![false; g.len()];
        for (dep, _task) in g.dep_edges() {
            has_dependent[dep.index()] = true;
        }
        let mut queue_len = std::collections::HashMap::new();
        for ((dev, stream), queue) in g.stream_queues() {
            queue_len.insert((dev, stream), queue.len());
        }
        for t in g.tasks() {
            let alone = queue_len
                .get(&(t.device, t.stream))
                .is_some_and(|&l| l == 1);
            if t.deps.is_empty() && !has_dependent[t.id.index()] && alone {
                out.push(Diagnostic::new(
                    DiagCode::OrphanTask,
                    format!(
                        "task {} is disconnected: no dependency edges and \
                         alone on (device {}, {:?})",
                        t.id.0, t.device, t.stream
                    ),
                    vec![Witness::task(t.id, name(t.id))],
                ));
            }
        }
    }
    out
}

// `Stream` is used in the public docs above; silence the unused warning in
// builds where no code path names it.
#[allow(unused_imports)]
use Stream as _StreamDoc;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagCode;
    use crate::lint_graph;
    use optimus_cluster::DurNs;
    use optimus_sim::TaskKind;

    fn push(g: &mut TaskGraph, dev: u32, stream: Stream, deps: Vec<TaskId>) -> TaskId {
        g.push("t", dev, stream, DurNs(10), TaskKind::Generic, deps)
    }

    #[test]
    fn dep_cycle_is_opt001_only() {
        let mut g = TaskGraph::new(2);
        let a = push(&mut g, 0, Stream::Compute, vec![]);
        let b = push(&mut g, 1, Stream::Compute, vec![a]);
        g.add_dep(a, b); // a ← b and b ← a
        let r = lint_graph(&g);
        assert!(r.has(DiagCode::Cycle));
        assert!(!r.has(DiagCode::StreamFifoInversion));
        // Minimal witness: the 2-cycle, not some longer walk.
        assert_eq!(r.diagnostics[0].witness.len(), 2);
    }

    #[test]
    fn same_queue_inversion_is_opt002() {
        let mut g = TaskGraph::new(1);
        let a = push(&mut g, 0, Stream::Compute, vec![]);
        let b = push(&mut g, 0, Stream::Compute, vec![]);
        g.add_dep(a, b); // a queued first, but must wait for b behind it
        let r = lint_graph(&g);
        assert!(r.has(DiagCode::StreamFifoInversion));
        assert!(!r.has(DiagCode::Cycle));
        assert!(
            optimus_sim::simulate(&g).is_err(),
            "engine agrees: deadlock"
        );
    }

    #[test]
    fn crossed_queues_deadlock_is_opt002() {
        // The engine's own deadlock test case, statically.
        let mut g = TaskGraph::new(1);
        let k1 = push(&mut g, 0, Stream::Compute, vec![]);
        let k2 = push(&mut g, 0, Stream::Compute, vec![]);
        let _c1 = g.push(
            "c1",
            0,
            Stream::TpComm,
            DurNs(1),
            TaskKind::Generic,
            vec![k2],
        );
        let c2 = push(&mut g, 0, Stream::TpComm, vec![]);
        g.add_dep(k1, c2);
        let r = lint_graph(&g);
        assert!(r.has(DiagCode::StreamFifoInversion), "{}", r.render());
        assert!(!r.has(DiagCode::Cycle));
        assert!(optimus_sim::simulate(&g).is_err());
    }

    #[test]
    fn orphan_task_is_opt006_warning() {
        let mut g = TaskGraph::new(2);
        let a = push(&mut g, 0, Stream::Compute, vec![]);
        let _b = push(&mut g, 0, Stream::Compute, vec![a]);
        let _orphan = push(&mut g, 1, Stream::TpComm, vec![]);
        let r = lint_graph(&g);
        assert!(r.has(DiagCode::OrphanTask));
        assert!(!r.has_errors(), "orphans warn, not deny: {}", r.render());
    }

    #[test]
    fn connected_singleton_queue_is_not_orphan() {
        // A task alone on its queue but wired by dependencies is fine.
        let mut g = TaskGraph::new(1);
        let a = push(&mut g, 0, Stream::Compute, vec![]);
        let _c = g.push("c", 0, Stream::TpComm, DurNs(1), TaskKind::Generic, vec![a]);
        let r = lint_graph(&g);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn single_task_graph_is_clean() {
        let mut g = TaskGraph::new(1);
        push(&mut g, 0, Stream::Compute, vec![]);
        assert!(lint_graph(&g).is_clean());
    }

    #[test]
    fn executable_graphs_lint_clean_and_deadlocks_do_not() {
        // Statically clean ⇔ dynamically executable on a batch of shapes.
        for shape in 0..4u32 {
            let mut g = TaskGraph::new(2);
            let a = push(&mut g, 0, Stream::Compute, vec![]);
            let b = push(&mut g, 1, Stream::Compute, vec![a]);
            let c = push(&mut g, 0, Stream::TpComm, vec![b]);
            if shape % 2 == 1 {
                g.add_dep(a, c); // close a cycle
            }
            let r = lint_graph(&g);
            assert_eq!(
                r.has_errors(),
                optimus_sim::simulate(&g).is_err(),
                "shape {shape}: {}",
                r.render()
            );
        }
    }
}

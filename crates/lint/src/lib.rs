//! `optimus-lint` — static schedule & task-graph analysis.
//!
//! The simulator's dynamic checks (`optimus_sim::simulate` deadlock
//! detection, `optimus_core::verify` re-simulation) only cover what they can
//! execute — and re-simulation is restricted to `lanes == 1` colocation
//! layouts. This crate closes the gap with a *static* analyzer that inspects
//! a lowered [`TaskGraph`] and/or a bubble schedule without simulating,
//! emitting structured [`Diagnostic`]s:
//!
//! | code   | name                        | meaning |
//! |--------|-----------------------------|---------|
//! | OPT001 | `cycle`                     | dependency-edge cycle: unexecutable regardless of scheduling |
//! | OPT002 | `stream-fifo-inversion`     | per-stream FIFO queue order contradicts dependency order — the static signature of a simulated deadlock |
//! | OPT003 | `collective-order-mismatch` | ranks of one communicator group enqueue different collective sequences (the NCCL-deadlock lint) |
//! | OPT004 | `memory-over-budget`        | static per-device peak memory exceeds HBM capacity |
//! | OPT005 | `bubble-insert-overlap`     | an inserted kernel escapes its claimed idle interval, overlaps a sibling, breaks chain order, or violates a dependency point |
//! | OPT006 | `orphan-task`               | a task with no dependency edges, alone on its stream queue — a mis-wired insert |
//! | OPT007 | `missing-durable-checkpoint` | a schedule segment longer than the configured checkpoint interval carries no durable checkpoint claim |
//! | OPT008 | `fill-claim-overlap`        | a bubble-fill claim overlaps a primary-schedule claim, a checkpoint claim, or another fill claim |
//! | OPT009 | `symmetry-broken`           | a device provably diverges from its rank-symmetry class — demoted to a singleton class (folding stays sound) |
//! | OPT010 | `asymmetric-collective`     | a collective's endpoint set crosses symmetry classes inconsistently — folding would be unsound, certificate refused |
//!
//! The registry in [`diag::REGISTRY`] is the single source of truth for
//! code, slug, severity, and docs link; this table and DESIGN.md §9 mirror
//! it under a consistency test.
//!
//! Passes are composed through [`Analyzer`]; [`lint_graph`] is the one-call
//! entry point for pure task-graph checks (OPT001/002/006 plus the
//! DP-collective sequence derived from the graph itself). The
//! [`symmetry`] module houses the rank-symmetry certifier
//! ([`certify_symmetry`]) whose [`SymmetryCertificate`] drives
//! `optimus_sim::simulate_folded`.
//!
//! # Examples
//!
//! ```
//! use optimus_cluster::DurNs;
//! use optimus_lint::{lint_graph, DiagCode};
//! use optimus_sim::{Stream, TaskGraph, TaskKind};
//!
//! // Crossed FIFO heads: the classic stream-ordering deadlock.
//! let mut g = TaskGraph::new(1);
//! let k1 = g.push("k1", 0, Stream::Compute, DurNs(1), TaskKind::Generic, vec![]);
//! let k2 = g.push("k2", 0, Stream::Compute, DurNs(1), TaskKind::Generic, vec![]);
//! let _c1 = g.push("c1", 0, Stream::TpComm, DurNs(1), TaskKind::Generic, vec![k2]);
//! let c2 = g.push("c2", 0, Stream::TpComm, DurNs(1), TaskKind::Generic, vec![]);
//! g.add_dep(k1, c2);
//! let report = lint_graph(&g);
//! assert!(report.has(DiagCode::StreamFifoInversion));
//! assert!(report.has_errors());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod collective;
pub mod diag;
pub mod fill;
pub mod graph;
pub mod inserts;
pub mod memory;
pub mod symmetry;

pub use checkpoint::CheckpointSpec;
pub use collective::{CollectiveSpec, CommGroup, CommRank};
pub use diag::{DiagCode, DiagSpec, Diagnostic, LintReport, Severity, Witness, REGISTRY};
pub use fill::FillSpec;
pub use inserts::{DepPoints, IdleInterval, InsertClaim, InsertSet};
pub use memory::MemoryClaim;
pub use symmetry::{
    certify_symmetry, certify_symmetry_with_claims, CertifyOutcome, DeviceCoord,
    SymmetryCertificate, SymmetryClass,
};

use optimus_sim::{TaskGraph, TaskId};

/// Names a task for witness rendering. The default namer formats the task's
/// label, device, and stream; callers with lowering provenance (e.g.
/// `optimus_pipeline::Lowered::describe`) substitute richer names that spell
/// out stage / chunk / microbatch.
pub type Namer<'a> = Box<dyn Fn(TaskId) -> String + 'a>;

/// A composable static analyzer: attach the inputs you have, then call
/// [`analyze`](Analyzer::analyze). Every attached input enables the passes
/// that consume it; nothing is simulated.
#[derive(Default)]
pub struct Analyzer<'a> {
    graph: Option<&'a TaskGraph>,
    collectives: Vec<CollectiveSpec>,
    memory: Vec<MemoryClaim>,
    inserts: Option<InsertSet>,
    dep_points: Option<DepPoints>,
    checkpoints: Vec<CheckpointSpec>,
    fill: Option<FillSpec>,
    namer: Option<Namer<'a>>,
}

impl<'a> Analyzer<'a> {
    /// Creates an empty analyzer (analyzing nothing yields a clean report).
    pub fn new() -> Analyzer<'a> {
        Analyzer::default()
    }

    /// Attaches a task graph: enables OPT001 (cycle), OPT002 (stream-FIFO
    /// inversion), and OPT006 (orphan task).
    pub fn graph(mut self, g: &'a TaskGraph) -> Analyzer<'a> {
        self.graph = Some(g);
        self
    }

    /// Attaches a collective-participation spec: enables OPT003.
    pub fn collectives(mut self, spec: CollectiveSpec) -> Analyzer<'a> {
        self.collectives.push(spec);
        self
    }

    /// Attaches a per-device memory claim: enables OPT004.
    pub fn memory(mut self, claim: MemoryClaim) -> Analyzer<'a> {
        self.memory.push(claim);
        self
    }

    /// Attaches bubble-insert claims and idle intervals: enables OPT005.
    pub fn inserts(mut self, set: InsertSet) -> Analyzer<'a> {
        self.inserts = Some(set);
        self
    }

    /// Attaches encoder↔LLM dependency points: extends OPT005 with the
    /// `CheckEncLLMDep` ordering conditions.
    pub fn dep_points(mut self, dp: DepPoints) -> Analyzer<'a> {
        self.dep_points = Some(dp);
        self
    }

    /// Attaches a durable-checkpoint coverage spec: enables OPT007.
    pub fn checkpoints(mut self, spec: CheckpointSpec) -> Analyzer<'a> {
        self.checkpoints.push(spec);
        self
    }

    /// Attaches the claim classes of a bubble-fill placement: enables
    /// OPT008 (fill claims must not overlap primary, checkpoint, or
    /// sibling fill claims).
    pub fn fill(mut self, spec: FillSpec) -> Analyzer<'a> {
        self.fill = Some(spec);
        self
    }

    /// Substitutes a task namer for witness rendering.
    pub fn namer(mut self, f: impl Fn(TaskId) -> String + 'a) -> Analyzer<'a> {
        self.namer = Some(Box::new(f));
        self
    }

    /// Runs every enabled pass and collects diagnostics, most severe first.
    pub fn analyze(&self) -> LintReport {
        let mut diagnostics = Vec::new();
        if let Some(g) = self.graph {
            let name = |id: TaskId| match &self.namer {
                Some(f) => f(id),
                None => graph::default_name(g, id),
            };
            diagnostics.extend(graph::check_graph(g, &name));
        }
        for spec in &self.collectives {
            diagnostics.extend(collective::check_collectives(spec));
        }
        for claim in &self.memory {
            diagnostics.extend(memory::check_memory(claim));
        }
        if let Some(set) = &self.inserts {
            diagnostics.extend(inserts::check_inserts(set));
        }
        if let Some(dp) = &self.dep_points {
            diagnostics.extend(inserts::check_dep_points(dp));
        }
        for spec in &self.checkpoints {
            diagnostics.extend(checkpoint::check_checkpoints(spec));
        }
        if let Some(spec) = &self.fill {
            diagnostics.extend(fill::check_fill(spec));
        }
        diagnostics.sort_by_key(|d| (std::cmp::Reverse(d.severity), d.code));
        LintReport { diagnostics }
    }
}

/// Lints a bare task graph: structural passes plus the DP-collective
/// sequence check derived from the graph's own `DpComm` queues and the
/// encoder↔LLM p2p channel-order check derived from its `EncP2p` queues.
pub fn lint_graph(g: &TaskGraph) -> LintReport {
    Analyzer::new()
        .graph(g)
        .collectives(CollectiveSpec::from_graph(g))
        .collectives(CollectiveSpec::enc_p2p_from_graph(g))
        .analyze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_cluster::DurNs;
    use optimus_sim::{Stream, TaskKind};

    #[test]
    fn empty_analyzer_is_clean() {
        let r = Analyzer::new().analyze();
        assert!(r.is_clean());
        assert!(!r.has_errors());
    }

    #[test]
    fn clean_chain_lints_clean() {
        let mut g = TaskGraph::new(2);
        let a = g.push("a", 0, Stream::Compute, DurNs(5), TaskKind::Generic, vec![]);
        let b = g.push(
            "b",
            1,
            Stream::Compute,
            DurNs(5),
            TaskKind::Generic,
            vec![a],
        );
        g.push(
            "c",
            1,
            Stream::Compute,
            DurNs(5),
            TaskKind::Generic,
            vec![b],
        );
        let r = lint_graph(&g);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn custom_namer_shows_in_witness() {
        let mut g = TaskGraph::new(1);
        let a = g.push("a", 0, Stream::Compute, DurNs(1), TaskKind::Generic, vec![]);
        let b = g.push("b", 0, Stream::Compute, DurNs(1), TaskKind::Generic, vec![]);
        g.add_dep(a, b); // a queued first but waits for b: same-queue inversion
        let r = Analyzer::new()
            .graph(&g)
            .namer(|id| format!("task<{}>", id.0))
            .analyze();
        assert!(r.has(DiagCode::StreamFifoInversion));
        let rendered = r.render();
        assert!(rendered.contains("task<0>"), "{rendered}");
    }
}

//! Durable-checkpoint coverage (OPT007).
//!
//! The recovery engine's invariant is that no stretch of committed training
//! work longer than the configured checkpoint interval runs without a durable
//! checkpoint — otherwise a fail-stop rolls the job back further than the
//! operator budgeted for. This pass is the static mirror: given the claimed
//! durable-checkpoint instants over a schedule segment, it warns on every
//! gap (segment start → first checkpoint, consecutive checkpoints, last
//! checkpoint → segment end) that exceeds the interval.

use crate::diag::{DiagCode, Diagnostic, Witness};
use crate::inserts::Time;

/// Durable-checkpoint claims over one schedule segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Display name ("step horizon", "pipeline replica 0", ...).
    pub name: String,
    /// Maximum tolerated time between durable points, `> 0`.
    pub interval: Time,
    /// Covered segment `[start, end)`.
    pub span: (Time, Time),
    /// `(instant, label)` of each claimed durable checkpoint.
    pub durable: Vec<(Time, String)>,
}

impl CheckpointSpec {
    /// A spec with no durable points yet.
    pub fn new(name: impl Into<String>, interval: Time, span: (Time, Time)) -> CheckpointSpec {
        CheckpointSpec {
            name: name.into(),
            interval,
            span,
            durable: Vec::new(),
        }
    }

    /// Adds a durable-checkpoint instant; returns `self` for chaining.
    pub fn durable_at(mut self, at: Time, label: impl Into<String>) -> CheckpointSpec {
        self.durable.push((at, label.into()));
        self
    }
}

/// Runs OPT007 over a checkpoint spec: every uncovered gap longer than the
/// interval warns, naming the bounding checkpoints.
pub(crate) fn check_checkpoints(spec: &CheckpointSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let (start, end) = spec.span;
    if spec.interval <= 0 || end <= start {
        out.push(Diagnostic::new(
            DiagCode::MissingCheckpoint,
            format!(
                "{}: unusable checkpoint spec (interval {}, span [{start}, {end}))",
                spec.name, spec.interval
            ),
            vec![],
        ));
        return out;
    }
    // Walk the durable points in time order, bounded by the segment edges.
    let mut points: Vec<(Time, &str)> = spec
        .durable
        .iter()
        .filter(|(at, _)| (start..end).contains(at))
        .map(|(at, label)| (*at, label.as_str()))
        .collect();
    points.sort_by_key(|&(at, _)| at);
    let mut bounds: Vec<(Time, String)> = Vec::with_capacity(points.len() + 2);
    bounds.push((start, "segment start".into()));
    for (at, label) in points {
        bounds.push((at, format!("checkpoint `{label}`")));
    }
    bounds.push((end, "segment end".into()));
    for pair in bounds.windows(2) {
        let (a_at, a_name) = (&pair[0].0, &pair[0].1);
        let (b_at, b_name) = (&pair[1].0, &pair[1].1);
        let gap = b_at - a_at;
        if gap > spec.interval {
            out.push(Diagnostic::new(
                DiagCode::MissingCheckpoint,
                format!(
                    "{}: {gap} ns between {a_name} and {b_name} exceeds the \
                     checkpoint interval {} ns — a failure there rolls back \
                     more work than budgeted",
                    spec.name, spec.interval
                ),
                vec![
                    Witness::note(format!("{a_name} at {a_at}")),
                    Witness::note(format!("{b_name} at {b_at}")),
                ],
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covered_segment_is_clean() {
        let spec = CheckpointSpec::new("horizon", 100, (0, 250))
            .durable_at(90, "ckpt0")
            .durable_at(180, "ckpt1");
        assert!(check_checkpoints(&spec).is_empty());
    }

    #[test]
    fn no_checkpoints_over_a_long_segment_warns() {
        let spec = CheckpointSpec::new("horizon", 100, (0, 250));
        let diags = check_checkpoints(&spec);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::MissingCheckpoint);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
        assert!(
            diags[0].message.contains("segment start"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn each_oversized_gap_warns_separately() {
        let spec = CheckpointSpec::new("h", 100, (0, 400)).durable_at(150, "only");
        // start→150 and 150→400 both exceed 100.
        let diags = check_checkpoints(&spec);
        assert_eq!(diags.len(), 2);
        assert!(diags[1].message.contains("`only`"), "{}", diags[1].message);
    }

    #[test]
    fn out_of_span_points_do_not_count() {
        let spec = CheckpointSpec::new("h", 100, (0, 150)).durable_at(500, "beyond");
        assert_eq!(check_checkpoints(&spec).len(), 1);
    }

    #[test]
    fn unusable_spec_is_one_warning() {
        let spec = CheckpointSpec::new("h", 0, (0, 100));
        let diags = check_checkpoints(&spec);
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].message.contains("unusable"),
            "{}",
            diags[0].message
        );
        assert_eq!(
            check_checkpoints(&CheckpointSpec::new("h", 10, (5, 5))).len(),
            1
        );
    }
}

//! Fill-claim exclusivity (OPT008).
//!
//! The bubble-fill planner places independent jobs into the same proven-idle
//! intervals the encoder inserts and checkpoint shard writes use. OPT005
//! already proves containment and per-lane exclusivity of the *combined*
//! insert set; this pass adds the fill-specific invariant: a fill claim is a
//! guest on the device and must never overlap — device-wide, on *any* lane
//! or engine — a primary-schedule claim (relocated encoder work), a
//! checkpoint shard write, or another fill claim. Each class is supplied
//! separately so a violation names exactly which tenant lost time.

use crate::diag::{DiagCode, Diagnostic, Witness};
use crate::inserts::InsertClaim;

fn span(start: i64, end: i64) -> String {
    format!("[{start}, {end})")
}

fn overlaps(a: &InsertClaim, b: &InsertClaim) -> bool {
    a.device == b.device && b.start < a.end && a.start < b.end
}

/// The claim classes sharing one step's bubbles, for the OPT008 pass.
///
/// Fill claims should be supplied deduplicated (one claim per placed span,
/// not one per colocation lane): the check is device-wide and
/// lane-agnostic, so lane duplicates of the same span would report as
/// self-overlaps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FillSpec {
    /// The schedule's own claims (relocated encoder work).
    pub primary: Vec<InsertClaim>,
    /// Checkpoint shard-write claims.
    pub checkpoint: Vec<InsertClaim>,
    /// Bubble-fill claims (deduplicated across lanes).
    pub fill: Vec<InsertClaim>,
}

/// Runs OPT008 over a fill spec.
pub(crate) fn check_fill(spec: &FillSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut flag = |f: &InsertClaim, other: &InsertClaim, class: &str| {
        out.push(Diagnostic::new(
            DiagCode::FillClaimOverlap,
            format!(
                "fill claim `{}` {} overlaps {class} claim `{}` {} on device {}",
                f.label,
                span(f.start, f.end),
                other.label,
                span(other.start, other.end),
                f.device,
            ),
            vec![Witness::note(format!(
                "shared span {}",
                span(f.start.max(other.start), f.end.min(other.end))
            ))],
        ));
    };
    for f in &spec.fill {
        for p in &spec.primary {
            if overlaps(f, p) {
                flag(f, p, "primary");
            }
        }
        for c in &spec.checkpoint {
            if overlaps(f, c) {
                flag(f, c, "checkpoint");
            }
        }
    }
    for (i, a) in spec.fill.iter().enumerate() {
        for b in &spec.fill[i + 1..] {
            if overlaps(a, b) {
                flag(a, b, "sibling fill");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(label: &str, device: u32, start: i64, end: i64) -> InsertClaim {
        InsertClaim {
            device,
            lane: 0,
            comm: false,
            start,
            end,
            label: label.into(),
            chain: None,
        }
    }

    #[test]
    fn disjoint_classes_are_clean() {
        let spec = FillSpec {
            primary: vec![claim("enc", 0, 0, 10)],
            checkpoint: vec![claim("ckpt", 0, 10, 20)],
            fill: vec![claim("fill a", 0, 20, 30), claim("fill b", 0, 30, 40)],
        };
        assert!(check_fill(&spec).is_empty());
    }

    #[test]
    fn cross_device_claims_never_conflict() {
        let spec = FillSpec {
            primary: vec![claim("enc", 0, 0, 10)],
            checkpoint: vec![],
            fill: vec![claim("fill", 1, 0, 10)],
        };
        assert!(check_fill(&spec).is_empty());
    }

    #[test]
    fn each_overlap_class_is_named() {
        let spec = FillSpec {
            primary: vec![claim("enc", 0, 0, 10)],
            checkpoint: vec![claim("ckpt", 0, 20, 30)],
            fill: vec![claim("fill a", 0, 5, 25), claim("fill b", 0, 24, 40)],
        };
        let diags = check_fill(&spec);
        assert_eq!(diags.len(), 4);
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("primary claim")), "{msgs:?}");
        assert!(
            msgs.iter()
                .filter(|m| m.contains("checkpoint claim"))
                .count()
                == 2,
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("sibling fill claim")),
            "{msgs:?}"
        );
    }
}

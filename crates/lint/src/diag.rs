//! Diagnostic model: codes, severities, witnesses, and the report with its
//! human-text and JSON renderers.

use std::fmt;

use optimus_json::Json;
use optimus_sim::TaskId;

/// Stable diagnostic codes, one per analysis pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// OPT001: a cycle over dependency edges alone — the graph cannot
    /// execute under any scheduling policy.
    Cycle,
    /// OPT002: per-stream FIFO queue order contradicts the dependency
    /// order — the static signature of a stream deadlock the simulator
    /// would only discover by hanging.
    StreamFifoInversion,
    /// OPT003: ranks of one communicator group enqueue different collective
    /// sequences — the classic NCCL deadlock.
    CollectiveOrderMismatch,
    /// OPT004: static per-device peak memory exceeds the HBM budget.
    MemoryOverBudget,
    /// OPT005: a bubble insert escapes its claimed idle interval, overlaps
    /// a sibling claim, breaks chain order, or violates a dependency point.
    BubbleInsertOverlap,
    /// OPT006: a task with no dependency edges, alone on its stream queue —
    /// disconnected from the rest of the step.
    OrphanTask,
    /// OPT007: a schedule segment longer than the configured checkpoint
    /// interval carries no durable checkpoint claim — a failure there rolls
    /// back more work than the recovery budget allows.
    MissingCheckpoint,
    /// OPT008: a fill claim overlaps a primary-schedule claim, a checkpoint
    /// claim, or another fill claim — the bubble-fill placement would steal
    /// device time the schedule already committed elsewhere.
    FillClaimOverlap,
    /// OPT009: a device provably diverges from its rank-symmetry equivalence
    /// class (straggler-faulted durations, fail-stop rewrites, irregular
    /// coordinates). The certifier *degrades* the device into a singleton
    /// class — folded simulation stays sound, just less folded — so this
    /// warns rather than errors.
    SymmetryBroken,
    /// OPT010: a collective's endpoint set crosses symmetry classes
    /// inconsistently — the positional witness renaming has no image for one
    /// of its edges. Folding such a graph would be unsound, so the certifier
    /// refuses to issue a certificate.
    AsymmetricCollective,
}

/// One row of the diagnostic registry: everything that used to be
/// hand-duplicated across `DiagCode`'s accessors, the crate-doc table, and
/// DESIGN.md. The registry is the single source of truth; consistency tests
/// pin the rendered docs to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagSpec {
    /// The enum variant this row describes.
    pub code: DiagCode,
    /// The stable code string (`OPT001` …).
    pub id: &'static str,
    /// The kebab-case lint name.
    pub slug: &'static str,
    /// The severity the pass reports at.
    pub severity: Severity,
    /// Where the diagnostic is documented.
    pub docs: &'static str,
}

/// The diagnostic registry, in numeric order. Index `i` holds the spec of
/// the `i`-th declared [`DiagCode`] variant (pinned by a test).
pub const REGISTRY: [DiagSpec; 10] = [
    DiagSpec {
        code: DiagCode::Cycle,
        id: "OPT001",
        slug: "cycle",
        severity: Severity::Error,
        docs: "DESIGN.md §9",
    },
    DiagSpec {
        code: DiagCode::StreamFifoInversion,
        id: "OPT002",
        slug: "stream-fifo-inversion",
        severity: Severity::Error,
        docs: "DESIGN.md §9",
    },
    DiagSpec {
        code: DiagCode::CollectiveOrderMismatch,
        id: "OPT003",
        slug: "collective-order-mismatch",
        severity: Severity::Error,
        docs: "DESIGN.md §9",
    },
    DiagSpec {
        code: DiagCode::MemoryOverBudget,
        id: "OPT004",
        slug: "memory-over-budget",
        severity: Severity::Error,
        docs: "DESIGN.md §9",
    },
    DiagSpec {
        code: DiagCode::BubbleInsertOverlap,
        id: "OPT005",
        slug: "bubble-insert-overlap",
        severity: Severity::Error,
        docs: "DESIGN.md §9",
    },
    DiagSpec {
        code: DiagCode::OrphanTask,
        id: "OPT006",
        slug: "orphan-task",
        severity: Severity::Warning,
        docs: "DESIGN.md §9",
    },
    DiagSpec {
        code: DiagCode::MissingCheckpoint,
        id: "OPT007",
        slug: "missing-durable-checkpoint",
        severity: Severity::Warning,
        docs: "DESIGN.md §9",
    },
    DiagSpec {
        code: DiagCode::FillClaimOverlap,
        id: "OPT008",
        slug: "fill-claim-overlap",
        severity: Severity::Error,
        docs: "DESIGN.md §9",
    },
    DiagSpec {
        code: DiagCode::SymmetryBroken,
        id: "OPT009",
        slug: "symmetry-broken",
        severity: Severity::Warning,
        docs: "DESIGN.md §14",
    },
    DiagSpec {
        code: DiagCode::AsymmetricCollective,
        id: "OPT010",
        slug: "asymmetric-collective",
        severity: Severity::Error,
        docs: "DESIGN.md §14",
    },
];

impl DiagCode {
    /// All codes, in numeric order.
    pub const ALL: [DiagCode; 10] = [
        DiagCode::Cycle,
        DiagCode::StreamFifoInversion,
        DiagCode::CollectiveOrderMismatch,
        DiagCode::MemoryOverBudget,
        DiagCode::BubbleInsertOverlap,
        DiagCode::OrphanTask,
        DiagCode::MissingCheckpoint,
        DiagCode::FillClaimOverlap,
        DiagCode::SymmetryBroken,
        DiagCode::AsymmetricCollective,
    ];

    /// This code's registry row.
    pub fn spec(self) -> &'static DiagSpec {
        // Declaration order matches registry order (pinned by a test).
        &REGISTRY[self as usize]
    }

    /// The stable code string (`OPT001` …).
    pub fn code(self) -> &'static str {
        self.spec().id
    }

    /// The kebab-case lint name.
    pub fn name(self) -> &'static str {
        self.spec().slug
    }

    /// The severity this pass reports at. Orphan tasks, missing durable
    /// checkpoints, and symmetry demotions are suspicious but harmless to
    /// execution, so they warn; everything else is an error.
    pub fn default_severity(self) -> Severity {
        self.spec().severity
    }

    /// Where this diagnostic is documented.
    pub fn docs(self) -> &'static str {
        self.spec().docs
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not execution-blocking.
    Warning,
    /// The schedule is unsafe: it would deadlock, over-subscribe memory, or
    /// delay the critical path.
    Error,
}

impl Severity {
    /// Lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One element of a diagnostic's evidence trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The task involved, when the evidence points at a graph node.
    pub task: Option<TaskId>,
    /// Human-readable description of this element's role.
    pub detail: String,
}

impl Witness {
    /// A witness pointing at a task.
    pub fn task(id: TaskId, detail: impl Into<String>) -> Witness {
        Witness {
            task: Some(id),
            detail: detail.into(),
        }
    }

    /// A witness with no task anchor (group names, devices, intervals).
    pub fn note(detail: impl Into<String>) -> Witness {
        Witness {
            task: None,
            detail: detail.into(),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: DiagCode,
    /// How bad it is.
    pub severity: Severity,
    /// One-line statement of the defect.
    pub message: String,
    /// Evidence: the minimal cycle, the diverging rank, the escaping claim.
    pub witness: Vec<Witness>,
}

impl Diagnostic {
    /// Builds a diagnostic at the code's default severity.
    pub fn new(code: DiagCode, message: impl Into<String>, witness: Vec<Witness>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            witness,
        }
    }

    /// `CODE name severity: message` plus indented witness lines.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} [{}]: {}",
            self.code,
            self.severity.label(),
            self.message
        );
        for w in &self.witness {
            out.push_str("\n    ");
            match w.task {
                Some(t) => out.push_str(&format!("task {}: {}", t.0, w.detail)),
                None => out.push_str(&w.detail),
            }
        }
        out
    }

    /// One-line summary (code + message, no witnesses).
    pub fn summary(&self) -> String {
        format!("{}: {}", self.code, self.message)
    }

    /// The diagnostic as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("code", Json::Str(self.code.code().into())),
            ("name", Json::Str(self.code.name().into())),
            ("severity", Json::Str(self.severity.label().into())),
            ("message", Json::Str(self.message.clone())),
            (
                "witness",
                Json::Arr(
                    self.witness
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("task", w.task.map_or(Json::Null, |t| Json::Num(t.0 as f64))),
                                ("detail", Json::Str(w.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Everything the analyzer found, most severe first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// The findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// True when some finding carries this code.
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Number of findings with this code.
    pub fn count(&self, code: DiagCode) -> usize {
        self.diagnostics.iter().filter(|d| d.code == code).count()
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// One-line summaries (code + message), for embedding in errors.
    pub fn summaries(&self) -> Vec<String> {
        self.diagnostics.iter().map(Diagnostic::summary).collect()
    }

    /// Merges another report into this one, keeping most-severe-first order.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
        self.diagnostics
            .sort_by_key(|d| (std::cmp::Reverse(d.severity), d.code));
    }

    /// Human-readable rendering; `"clean"` when nothing was found.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "clean".into();
        }
        self.diagnostics
            .iter()
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The report as a JSON document (deterministic field order).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("clean", Json::Bool(self.is_clean())),
            ("errors", Json::Num(self.errors().count() as f64)),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_ordered() {
        let codes: Vec<&str> = DiagCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(
            codes,
            vec![
                "OPT001", "OPT002", "OPT003", "OPT004", "OPT005", "OPT006", "OPT007", "OPT008",
                "OPT009", "OPT010"
            ]
        );
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn registry_matches_declaration_order() {
        // `DiagCode::spec` indexes the registry by discriminant; this is the
        // test that licenses it.
        assert_eq!(REGISTRY.len(), DiagCode::ALL.len());
        for (i, (spec, &code)) in REGISTRY.iter().zip(DiagCode::ALL.iter()).enumerate() {
            assert_eq!(spec.code, code, "registry row {i} out of order");
            assert_eq!(code as usize, i, "variant {code} declared out of order");
            assert_eq!(spec.id, format!("OPT{:03}", i + 1));
            assert_eq!(code.default_severity(), spec.severity);
            assert!(!code.docs().is_empty());
        }
    }

    #[test]
    fn registry_is_the_single_source_of_truth_for_docs() {
        // The crate-doc table in lib.rs and the DESIGN.md table must carry
        // one row per registry entry — the registry is authoritative, the
        // rendered docs merely mirror it.
        let lib_src = include_str!("lib.rs");
        let design = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"));
        for spec in &REGISTRY {
            assert!(
                lib_src.contains(&format!("| {} | `{}`", spec.id, spec.slug)),
                "lib.rs crate-doc table is missing {} `{}`",
                spec.id,
                spec.slug
            );
            assert!(
                design.contains(spec.id) && design.contains(spec.slug),
                "DESIGN.md is missing {} `{}`",
                spec.id,
                spec.slug
            );
        }
    }

    #[test]
    fn report_renders_and_serializes() {
        let mut r = LintReport::default();
        assert_eq!(r.render(), "clean");
        r.merge(LintReport {
            diagnostics: vec![Diagnostic::new(
                DiagCode::OrphanTask,
                "task 3 is disconnected",
                vec![Witness::task(TaskId(3), "`enc` on device 1")],
            )],
        });
        assert!(r.has(DiagCode::OrphanTask));
        assert!(!r.has_errors());
        let text = r.render();
        assert!(text.contains("OPT006 orphan-task [warning]"), "{text}");
        assert!(text.contains("task 3"), "{text}");
        let json = r.to_json().to_string();
        assert!(json.contains("\"OPT006\""), "{json}");
        assert!(json.contains("\"clean\":false"), "{json}");
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut r = LintReport {
            diagnostics: vec![Diagnostic::new(DiagCode::OrphanTask, "w", vec![])],
        };
        r.merge(LintReport {
            diagnostics: vec![Diagnostic::new(DiagCode::Cycle, "e", vec![])],
        });
        assert_eq!(r.diagnostics[0].code, DiagCode::Cycle);
        assert!(r.has_errors());
        assert_eq!(r.summaries()[0], "OPT001 cycle: e");
    }
}

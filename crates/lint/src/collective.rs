//! Collective-participation matching (OPT003).
//!
//! NCCL collectives are matched by *issue order within a communicator*, not
//! by name: if the ranks of one group enqueue different collective
//! sequences — one rank skips an all-gather, or two ranks issue the same
//! collectives in different orders — every rank blocks inside a different
//! call and the job hangs with no error. Runtime verification only catches
//! this for layouts it can simulate; this pass checks the issue sequences
//! symbolically, so it also covers the multi-lane colocation layouts
//! `optimus_core::verify` rejects.

use std::collections::BTreeMap;

use optimus_sim::{Stream, TaskGraph, TaskId};

use crate::diag::{DiagCode, Diagnostic, Witness};

/// One channel's transfers in receive order: (send queue position, producer,
/// transfer).
type ChannelEvents = Vec<(usize, TaskId, TaskId)>;

/// One rank's view of a communicator: the ordered collective sequence it
/// will enqueue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommRank {
    /// Display name ("device 3", "lane 1 rank 0", ...).
    pub name: String,
    /// Ordered collective tags, one per enqueued collective.
    pub sequence: Vec<String>,
    /// Optional task anchors, parallel to `sequence` (used in witnesses).
    pub tasks: Vec<Option<TaskId>>,
}

impl CommRank {
    /// A rank with tag-only entries (no task anchors).
    pub fn new(name: impl Into<String>, sequence: Vec<String>) -> CommRank {
        let tasks = vec![None; sequence.len()];
        CommRank {
            name: name.into(),
            sequence,
            tasks,
        }
    }

    /// Appends one collective, optionally anchored to a task.
    pub fn push(&mut self, tag: impl Into<String>, task: Option<TaskId>) {
        self.sequence.push(tag.into());
        self.tasks.push(task);
    }

    fn anchor(&self, k: usize) -> Option<TaskId> {
        self.tasks.get(k).copied().flatten()
    }
}

/// One communicator group: every member must enqueue the same sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommGroup {
    /// Display name ("dp", "tp lane 0", ...).
    pub name: String,
    /// Member ranks.
    pub ranks: Vec<CommRank>,
}

impl CommGroup {
    /// A named group.
    pub fn new(name: impl Into<String>, ranks: Vec<CommRank>) -> CommGroup {
        CommGroup {
            name: name.into(),
            ranks,
        }
    }
}

/// Communicator groups to check against each other.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectiveSpec {
    /// The groups; each is checked independently.
    pub groups: Vec<CommGroup>,
}

impl CollectiveSpec {
    /// A spec over explicit groups.
    pub fn new(groups: Vec<CommGroup>) -> CollectiveSpec {
        CollectiveSpec { groups }
    }

    /// Derives the data-parallel group from a task graph: every device that
    /// executes any task is a member, and its sequence is the labels of its
    /// `DpComm`-stream queue in issue order. Devices whose queue is empty
    /// participate with an empty sequence — that is what catches a rank
    /// whose all-gather was dropped.
    pub fn from_graph(g: &TaskGraph) -> CollectiveSpec {
        let mut dp: BTreeMap<u32, CommRank> = BTreeMap::new();
        for t in g.tasks() {
            dp.entry(t.device)
                .or_insert_with(|| CommRank::new(format!("device {}", t.device), Vec::new()));
        }
        for ((dev, stream), queue) in g.stream_queues() {
            if stream != Stream::DpComm {
                continue;
            }
            let rank = dp.get_mut(&dev).expect("queued device is active");
            for id in queue {
                rank.push(g.task(id).label.to_string(), Some(id));
            }
        }
        let ranks: Vec<CommRank> = dp.into_values().collect();
        if ranks.len() < 2 {
            return CollectiveSpec::default();
        }
        CollectiveSpec::new(vec![CommGroup::new("dp", ranks)])
    }

    /// Derives encoder↔LLM point-to-point channel groups from a task graph.
    ///
    /// Every `EncP2p`-stream task is a *receive*: it runs on the consuming
    /// device and depends on its producer on another device. P2P traffic is
    /// matched per channel by issue order, exactly like collectives, so for
    /// each `(source device, source stream, destination device)` channel the
    /// receive queue must replay the producers' issue order. The send-side
    /// rank is reconstructed by sorting the channel's transfers by producer
    /// queue position; the receive-side rank is the `EncP2p` queue order.
    /// A transfer with no cross-device producer is a receive with no
    /// matching send — it forms its own group that always diverges.
    pub fn enc_p2p_from_graph(g: &TaskGraph) -> CollectiveSpec {
        // Queue position of every task within its (device, stream) FIFO.
        let mut qpos = vec![0usize; g.len()];
        for (_, queue) in g.stream_queues() {
            for (i, &id) in queue.iter().enumerate() {
                qpos[id.index()] = i;
            }
        }
        let mut groups = Vec::new();
        for ((dst, stream), queue) in g.stream_queues() {
            if stream != Stream::EncP2p {
                continue;
            }
            // Per-channel events in receive order.
            let mut channels: BTreeMap<(u32, usize), ChannelEvents> = BTreeMap::new();
            for &tr in &queue {
                let task = g.task(tr);
                let mut matched = false;
                for &dep in &task.deps {
                    let p = g.task(dep);
                    if p.device == dst {
                        continue;
                    }
                    matched = true;
                    channels
                        .entry((p.device, p.stream.index()))
                        .or_default()
                        .push((qpos[dep.index()], dep, tr));
                }
                if !matched {
                    let mut recv = CommRank::new(format!("device {dst} recv side"), Vec::new());
                    recv.push(task.label.to_string(), Some(tr));
                    groups.push(CommGroup::new(
                        format!("enc-p2p into device {dst}"),
                        vec![CommRank::new("send side", Vec::new()), recv],
                    ));
                }
            }
            for ((src, sstream), events) in channels {
                let tag = |p: usize, dep: TaskId| format!("{}#{p}", g.task(dep).label);
                let mut by_send = events.clone();
                by_send.sort_by_key(|&(p, _, _)| p);
                let mut send = CommRank::new(format!("device {src} send order"), Vec::new());
                for &(p, dep, _) in &by_send {
                    send.push(tag(p, dep), Some(dep));
                }
                let mut recv = CommRank::new(format!("device {dst} recv order"), Vec::new());
                for &(p, dep, tr) in &events {
                    recv.push(tag(p, dep), Some(tr));
                }
                groups.push(CommGroup::new(
                    format!("enc-p2p device {src}/stream {sstream} -> device {dst}"),
                    vec![send, recv],
                ));
            }
        }
        CollectiveSpec::new(groups)
    }
}

fn divergence_witness(reference: &CommRank, rank: &CommRank, k: usize) -> Vec<Witness> {
    let describe = |r: &CommRank| -> Witness {
        let detail = match r.sequence.get(k) {
            Some(tag) => format!("{} enqueues `{}` at position {}", r.name, tag, k),
            None => format!(
                "{} enqueues nothing at position {} (sequence ends after {} collective(s))",
                r.name,
                k,
                r.sequence.len()
            ),
        };
        match r.anchor(k) {
            Some(id) => Witness::task(id, detail),
            None => Witness::note(detail),
        }
    };
    vec![describe(reference), describe(rank)]
}

/// Runs OPT003: within each group, every rank's sequence must equal the
/// first rank's. One diagnostic per diverging rank, anchored at the first
/// position where the sequences differ.
pub(crate) fn check_collectives(spec: &CollectiveSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for group in &spec.groups {
        let Some(reference) = group.ranks.first() else {
            continue;
        };
        for rank in &group.ranks[1..] {
            if rank.sequence == reference.sequence {
                continue;
            }
            let k = reference
                .sequence
                .iter()
                .zip(&rank.sequence)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| reference.sequence.len().min(rank.sequence.len()));
            out.push(Diagnostic::new(
                DiagCode::CollectiveOrderMismatch,
                format!(
                    "communicator `{}`: {} and {} enqueue different collective \
                     sequences (first divergence at position {k}) — all ranks \
                     would block in mismatched calls",
                    group.name, reference.name, rank.name
                ),
                divergence_witness(reference, rank, k),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use optimus_cluster::DurNs;
    use optimus_sim::TaskKind;

    fn check(spec: CollectiveSpec) -> Vec<Diagnostic> {
        check_collectives(&spec)
    }

    #[test]
    fn identical_sequences_are_clean() {
        let spec = CollectiveSpec::new(vec![CommGroup::new(
            "dp",
            vec![
                CommRank::new("rank 0", vec!["ag".into(), "rs".into()]),
                CommRank::new("rank 1", vec!["ag".into(), "rs".into()]),
            ],
        )]);
        assert!(check(spec).is_empty());
    }

    #[test]
    fn skipped_collective_is_flagged_at_divergence_point() {
        let spec = CollectiveSpec::new(vec![CommGroup::new(
            "dp",
            vec![
                CommRank::new("rank 0", vec!["ag".into(), "rs".into()]),
                CommRank::new("rank 1", vec!["rs".into()]),
            ],
        )]);
        let diags = check(spec);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::CollectiveOrderMismatch);
        assert!(
            diags[0].message.contains("position 0"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn swapped_order_is_flagged() {
        let spec = CollectiveSpec::new(vec![CommGroup::new(
            "tp",
            vec![
                CommRank::new("rank 0", vec!["ag".into(), "rs".into()]),
                CommRank::new("rank 1", vec!["rs".into(), "ag".into()]),
            ],
        )]);
        assert_eq!(check(spec).len(), 1);
    }

    #[test]
    fn each_diverging_rank_reported() {
        let spec = CollectiveSpec::new(vec![CommGroup::new(
            "dp",
            vec![
                CommRank::new("rank 0", vec!["ag".into()]),
                CommRank::new("rank 1", vec![]),
                CommRank::new("rank 2", vec!["ag".into()]),
                CommRank::new("rank 3", vec!["ag".into(), "ag".into()]),
            ],
        )]);
        assert_eq!(check(spec).len(), 2);
    }

    #[test]
    fn from_graph_matches_dp_queues() {
        let mut g = TaskGraph::new(2);
        for dev in 0..2 {
            g.push(
                "dp_allgather",
                dev,
                Stream::DpComm,
                DurNs(5),
                TaskKind::DpAllGather,
                vec![],
            );
            g.push(
                "k",
                dev,
                Stream::Compute,
                DurNs(5),
                TaskKind::Generic,
                vec![],
            );
        }
        let spec = CollectiveSpec::from_graph(&g);
        assert_eq!(spec.groups.len(), 1);
        assert!(check(spec).is_empty());

        // Drop rank 1's all-gather: the derived spec now diverges.
        let mut g2 = TaskGraph::new(2);
        g2.push(
            "dp_allgather",
            0,
            Stream::DpComm,
            DurNs(5),
            TaskKind::DpAllGather,
            vec![],
        );
        g2.push("k", 1, Stream::Compute, DurNs(5), TaskKind::Generic, vec![]);
        let diags = check(CollectiveSpec::from_graph(&g2));
        assert_eq!(diags.len(), 1);
        // The present side of the witness is anchored to the real task.
        assert!(diags[0].witness.iter().any(|w| w.task == Some(TaskId(0))));
    }

    #[test]
    fn enc_p2p_receives_in_send_order_are_clean() {
        let mut g = TaskGraph::new(2);
        let p0 = g.push(
            "enc0",
            0,
            Stream::Compute,
            DurNs(5),
            TaskKind::Generic,
            vec![],
        );
        let p1 = g.push(
            "enc1",
            0,
            Stream::Compute,
            DurNs(5),
            TaskKind::Generic,
            vec![p0],
        );
        g.push(
            "act_p2p",
            1,
            Stream::EncP2p,
            DurNs(2),
            TaskKind::EncLlmTransfer,
            vec![p0],
        );
        g.push(
            "act_p2p",
            1,
            Stream::EncP2p,
            DurNs(2),
            TaskKind::EncLlmTransfer,
            vec![p1],
        );
        let spec = CollectiveSpec::enc_p2p_from_graph(&g);
        assert_eq!(spec.groups.len(), 1);
        assert!(check(spec).is_empty());
    }

    #[test]
    fn enc_p2p_swapped_receive_order_is_flagged() {
        let mut g = TaskGraph::new(2);
        let p0 = g.push(
            "enc0",
            0,
            Stream::Compute,
            DurNs(5),
            TaskKind::Generic,
            vec![],
        );
        let p1 = g.push(
            "enc1",
            0,
            Stream::Compute,
            DurNs(5),
            TaskKind::Generic,
            vec![p0],
        );
        // Receiver enqueues the transfer of the *later* producer first.
        g.push(
            "act_p2p",
            1,
            Stream::EncP2p,
            DurNs(2),
            TaskKind::EncLlmTransfer,
            vec![p1],
        );
        g.push(
            "act_p2p",
            1,
            Stream::EncP2p,
            DurNs(2),
            TaskKind::EncLlmTransfer,
            vec![p0],
        );
        let diags = check(CollectiveSpec::enc_p2p_from_graph(&g));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::CollectiveOrderMismatch);
        assert!(
            diags[0].message.contains("position 0"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn enc_p2p_receive_without_send_is_flagged() {
        let mut g = TaskGraph::new(2);
        // A receive whose only dependency is on its own device: no matching
        // cross-device send exists.
        let local = g.push("k", 1, Stream::Compute, DurNs(5), TaskKind::Generic, vec![]);
        g.push(
            "act_p2p",
            1,
            Stream::EncP2p,
            DurNs(2),
            TaskKind::EncLlmTransfer,
            vec![local],
        );
        let diags = check(CollectiveSpec::enc_p2p_from_graph(&g));
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].message.contains("into device 1"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn enc_p2p_channels_from_different_sources_are_independent() {
        // Receives from two source devices may interleave arbitrarily; only
        // per-channel order matters.
        let mut g = TaskGraph::new(3);
        let a = g.push(
            "enc_a",
            0,
            Stream::Compute,
            DurNs(5),
            TaskKind::Generic,
            vec![],
        );
        let b = g.push(
            "enc_b",
            1,
            Stream::Compute,
            DurNs(5),
            TaskKind::Generic,
            vec![],
        );
        g.push(
            "act_p2p",
            2,
            Stream::EncP2p,
            DurNs(2),
            TaskKind::EncLlmTransfer,
            vec![b],
        );
        g.push(
            "act_p2p",
            2,
            Stream::EncP2p,
            DurNs(2),
            TaskKind::EncLlmTransfer,
            vec![a],
        );
        let spec = CollectiveSpec::enc_p2p_from_graph(&g);
        assert_eq!(spec.groups.len(), 2);
        assert!(check(spec).is_empty());
    }

    #[test]
    fn single_rank_group_is_vacuously_clean() {
        let spec = CollectiveSpec::new(vec![CommGroup::new(
            "dp",
            vec![CommRank::new("rank 0", vec!["ag".into()])],
        )]);
        assert!(check(spec).is_empty());
        let r = Analyzer::new()
            .collectives(CollectiveSpec::default())
            .analyze();
        assert!(r.is_clean());
    }
}

//! Static memory-budget checking (OPT004).
//!
//! Colocation trades memory for bubbles (§4.5 of the paper): encoder model
//! states and activations share HBM with the LLM's. A plan whose worst-rank
//! resident footprint exceeds capacity OOMs at step one — long after an
//! expensive plan search looked "optimal". This pass is a plain budget
//! comparison over labeled components so the witness says *what* is over,
//! not just that something is.

use crate::diag::{DiagCode, Diagnostic, Witness};

/// A per-device (or worst-rank) static memory claim against an HBM budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryClaim {
    /// Display name ("worst LLM rank", "device 3", ...).
    pub name: String,
    /// Labeled contributions in bytes (model states, optimizer shards,
    /// activations, overhead, ...).
    pub components: Vec<(String, u64)>,
    /// HBM capacity in bytes.
    pub budget: u64,
}

impl MemoryClaim {
    /// A claim with no components yet.
    pub fn new(name: impl Into<String>, budget: u64) -> MemoryClaim {
        MemoryClaim {
            name: name.into(),
            components: Vec::new(),
            budget,
        }
    }

    /// Adds a labeled contribution; returns `self` for chaining.
    pub fn component(mut self, label: impl Into<String>, bytes: u64) -> MemoryClaim {
        self.components.push((label.into(), bytes));
        self
    }

    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.components.iter().map(|(_, b)| b).sum()
    }
}

const GIB: f64 = (1u64 << 30) as f64;

/// Runs OPT004: total over budget is an error; witnesses list components
/// largest-first so the dominant consumer leads.
pub(crate) fn check_memory(claim: &MemoryClaim) -> Vec<Diagnostic> {
    let total = claim.total();
    if total <= claim.budget {
        return Vec::new();
    }
    let mut parts = claim.components.clone();
    parts.sort_by_key(|&(_, b)| std::cmp::Reverse(b));
    let witness = parts
        .into_iter()
        .map(|(label, bytes)| Witness::note(format!("{label}: {:.2} GiB", bytes as f64 / GIB)))
        .collect();
    vec![Diagnostic::new(
        DiagCode::MemoryOverBudget,
        format!(
            "{}: static peak {:.2} GiB exceeds HBM budget {:.2} GiB by {:.2} GiB",
            claim.name,
            total as f64 / GIB,
            claim.budget as f64 / GIB,
            (total - claim.budget) as f64 / GIB,
        ),
        witness,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_budget_is_clean() {
        let claim = MemoryClaim::new("worst rank", 80 << 30)
            .component("model states", 40 << 30)
            .component("activations", 20 << 30);
        assert!(check_memory(&claim).is_empty());
        assert_eq!(claim.total(), 60 << 30);
    }

    #[test]
    fn exactly_at_budget_is_clean() {
        let claim = MemoryClaim::new("r", 100).component("a", 100);
        assert!(check_memory(&claim).is_empty());
    }

    #[test]
    fn over_budget_names_dominant_component_first() {
        let claim = MemoryClaim::new("worst rank", 80 << 30)
            .component("model states", 50 << 30)
            .component("encoder colocation", 60 << 30);
        let diags = check_memory(&claim);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::MemoryOverBudget);
        assert!(diags[0].message.contains("exceeds"), "{}", diags[0].message);
        assert!(
            diags[0].witness[0].detail.starts_with("encoder colocation"),
            "{}",
            diags[0].witness[0].detail
        );
    }
}

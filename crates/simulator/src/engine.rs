//! The discrete-event execution engine.
//!
//! Executes a [`TaskGraph`] under CUDA-stream semantics: each
//! `(device, stream)` pair is a FIFO resource; its head task starts as soon
//! as the resource is free *and* every dependency has completed. The engine
//! is event-driven and deterministic: ties are broken by resource index, so
//! identical graphs always produce identical timelines.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use optimus_cluster::{DurNs, TimeNs};

use crate::error::SimError;
use crate::task::{Stream, TaskGraph, TaskId};

/// Execution record of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpan {
    /// The task.
    pub task: TaskId,
    /// Start instant.
    pub start: TimeNs,
    /// End instant.
    pub end: TimeNs,
}

impl TaskSpan {
    /// Duration of the span.
    pub fn duration(&self) -> DurNs {
        self.end.since(self.start)
    }
}

/// Result of simulating a task graph.
#[derive(Debug, Clone)]
pub struct SimResult {
    spans: Vec<TaskSpan>,
    makespan: TimeNs,
}

impl SimResult {
    /// Assembles a result from precomputed spans — the constructor used by
    /// the folded engine (`crate::fold`) and by drivers that project a
    /// cluster-scale result down to one representative pipeline. `spans`
    /// must be indexed by [`TaskId`].
    pub fn from_parts(spans: Vec<TaskSpan>, makespan: TimeNs) -> SimResult {
        SimResult { spans, makespan }
    }

    /// Per-task execution spans, indexed by [`TaskId`].
    pub fn spans(&self) -> &[TaskSpan] {
        &self.spans
    }

    /// Execution span of one task.
    pub fn span(&self, id: TaskId) -> TaskSpan {
        self.spans[id.index()]
    }

    /// End-to-end makespan (training-step time).
    pub fn makespan(&self) -> TimeNs {
        self.makespan
    }

    /// Spans of all tasks on one `(device, stream)` resource, sorted by
    /// start time.
    pub fn stream_spans(&self, graph: &TaskGraph, device: u32, stream: Stream) -> Vec<TaskSpan> {
        let mut v: Vec<TaskSpan> = graph
            .tasks()
            .iter()
            .filter(|t| t.device == device && t.stream == stream)
            .map(|t| self.spans[t.id.index()])
            .collect();
        v.sort_by_key(|s| (s.start, s.end));
        v
    }

    /// Total busy time of one resource.
    pub fn busy_time(&self, graph: &TaskGraph, device: u32, stream: Stream) -> DurNs {
        self.stream_spans(graph, device, stream)
            .iter()
            .map(|s| s.duration())
            .sum()
    }
}

fn resource_index(device: u32, stream: Stream) -> usize {
    device as usize * Stream::COUNT + stream.index()
}

struct EngineState<'g> {
    graph: &'g TaskGraph,
    queues: Vec<Vec<TaskId>>,
    cursor: Vec<usize>,
    free_at: Vec<TimeNs>,
    running: Vec<bool>,
    done: Vec<bool>,
    spans: Vec<TaskSpan>,
    waiters: HashMap<TaskId, Vec<usize>>,
    events: BinaryHeap<Reverse<(TimeNs, usize, TaskId)>>,
}

impl<'g> EngineState<'g> {
    fn new(graph: &'g TaskGraph) -> EngineState<'g> {
        let n_res = graph.num_devices() as usize * Stream::COUNT;
        let mut queues: Vec<Vec<TaskId>> = vec![Vec::new(); n_res];
        for t in graph.tasks() {
            queues[resource_index(t.device, t.stream)].push(t.id);
        }
        EngineState {
            graph,
            queues,
            cursor: vec![0; n_res],
            free_at: vec![TimeNs::ZERO; n_res],
            running: vec![false; n_res],
            done: vec![false; graph.len()],
            spans: vec![
                TaskSpan {
                    task: TaskId(0),
                    start: TimeNs::ZERO,
                    end: TimeNs::ZERO
                };
                graph.len()
            ],
            waiters: HashMap::new(),
            events: BinaryHeap::new(),
        }
    }

    /// Starts the head task of resource `r` if the resource is free and all
    /// dependencies are met; otherwise registers a waiter on the first unmet
    /// dependency.
    fn attempt_start(&mut self, r: usize, now: TimeNs) {
        if self.running[r] {
            return;
        }
        let Some(&head) = self.queues[r].get(self.cursor[r]) else {
            return;
        };
        let task = self.graph.task(head);
        if let Some(&unmet) = task.deps.iter().find(|d| !self.done[d.index()]) {
            let entry = self.waiters.entry(unmet).or_default();
            if !entry.contains(&r) {
                entry.push(r);
            }
            return;
        }
        let start = now.max(self.free_at[r]);
        let end = start + task.duration;
        self.spans[head.index()] = TaskSpan {
            task: head,
            start,
            end,
        };
        self.free_at[r] = end;
        self.running[r] = true;
        self.events.push(Reverse((end, r, head)));
    }
}

/// Executes the graph; returns per-task spans and the makespan.
///
/// # Errors
///
/// Returns [`SimError::Deadlock`] when the per-stream FIFO orders are
/// inconsistent with the dependency structure — the schedule being lowered
/// would hang on real hardware too.
pub fn simulate(graph: &TaskGraph) -> Result<SimResult, SimError> {
    let mut st = EngineState::new(graph);
    let n_res = st.queues.len();
    for r in 0..n_res {
        st.attempt_start(r, TimeNs::ZERO);
    }

    let mut makespan = TimeNs::ZERO;
    let mut executed = 0usize;
    while let Some(Reverse((now, r, task))) = st.events.pop() {
        st.done[task.index()] = true;
        executed += 1;
        makespan = makespan.max(now);
        st.running[r] = false;
        st.cursor[r] += 1;
        st.attempt_start(r, now);
        if let Some(blocked) = st.waiters.remove(&task) {
            for br in blocked {
                st.attempt_start(br, now);
            }
        }
    }

    if executed != graph.len() {
        let stuck: Vec<TaskId> = (0..graph.len())
            .filter(|&i| !st.done[i])
            .map(|i| TaskId(i as u32))
            .collect();
        let first_label = graph.task(stuck[0]).label;
        return Err(SimError::Deadlock { stuck, first_label });
    }

    Ok(SimResult {
        spans: st.spans,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;

    fn push(g: &mut TaskGraph, dev: u32, stream: Stream, dur: u64, deps: Vec<TaskId>) -> TaskId {
        g.push("t", dev, stream, DurNs(dur), TaskKind::Generic, deps)
    }

    #[test]
    fn serial_chain_on_one_stream() {
        let mut g = TaskGraph::new(1);
        push(&mut g, 0, Stream::Compute, 10, vec![]);
        push(&mut g, 0, Stream::Compute, 20, vec![]);
        let r = simulate(&g).unwrap();
        assert_eq!(r.makespan(), TimeNs(30));
        assert_eq!(r.span(TaskId(1)).start, TimeNs(10));
    }

    #[test]
    fn dependency_across_devices() {
        let mut g = TaskGraph::new(2);
        let a = push(&mut g, 0, Stream::Compute, 10, vec![]);
        push(&mut g, 1, Stream::Compute, 5, vec![a]);
        let r = simulate(&g).unwrap();
        assert_eq!(r.span(TaskId(1)).start, TimeNs(10));
        assert_eq!(r.makespan(), TimeNs(15));
    }

    #[test]
    fn streams_run_concurrently() {
        let mut g = TaskGraph::new(1);
        push(&mut g, 0, Stream::Compute, 10, vec![]);
        push(&mut g, 0, Stream::TpComm, 10, vec![]);
        let r = simulate(&g).unwrap();
        assert_eq!(r.makespan(), TimeNs(10));
    }

    #[test]
    fn fifo_head_of_line_blocking_creates_bubble() {
        // Compute queue: [k1, k2]; k2 depends on a comm task that starts
        // after k1. The compute stream idles (TP bubble) while comm runs.
        let mut g = TaskGraph::new(1);
        let k1 = push(&mut g, 0, Stream::Compute, 10, vec![]);
        let comm = push(&mut g, 0, Stream::TpComm, 7, vec![k1]);
        push(&mut g, 0, Stream::Compute, 5, vec![comm]);
        let r = simulate(&g).unwrap();
        assert_eq!(r.span(TaskId(2)).start, TimeNs(17));
        assert_eq!(r.makespan(), TimeNs(22));
    }

    #[test]
    fn late_dependency_edge_is_honoured() {
        // Dependency added after both tasks exist (two-phase construction).
        let mut g = TaskGraph::new(2);
        let a = push(&mut g, 0, Stream::Compute, 10, vec![]);
        let b = push(&mut g, 1, Stream::Compute, 5, vec![]);
        g.add_dep(a, b); // a now waits for b
        let r = simulate(&g).unwrap();
        assert_eq!(r.span(a).start, TimeNs(5));
    }

    #[test]
    fn deadlock_detected() {
        // Crossed FIFO heads: compute queue [k1(dep c2), k2] and TpComm
        // queue [c1(dep k2), c2]. k1 blocks k2, c1 blocks c2, k1 waits on
        // c2, c1 waits on k2 — a cycle through queue order.
        let mut g = TaskGraph::new(1);
        let k1 = push(&mut g, 0, Stream::Compute, 1, vec![]);
        let k2 = push(&mut g, 0, Stream::Compute, 1, vec![]);
        let c1 = push(&mut g, 0, Stream::TpComm, 1, vec![k2]);
        let c2 = push(&mut g, 0, Stream::TpComm, 1, vec![]);
        g.add_dep(k1, c2);
        let _ = c1;
        let err = simulate(&g).unwrap_err();
        match err {
            SimError::Deadlock { stuck, .. } => assert_eq!(stuck.len(), 4),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn resource_busy_delays_ready_task() {
        let mut g = TaskGraph::new(1);
        push(&mut g, 0, Stream::Compute, 100, vec![]);
        // Second task is ready at t=0 but the stream is busy until 100.
        push(&mut g, 0, Stream::Compute, 1, vec![]);
        let r = simulate(&g).unwrap();
        assert_eq!(r.span(TaskId(1)).start, TimeNs(100));
    }

    #[test]
    fn busy_time_accounts_all_spans() {
        let mut g = TaskGraph::new(1);
        push(&mut g, 0, Stream::Compute, 10, vec![]);
        let c = push(&mut g, 0, Stream::TpComm, 50, vec![]);
        push(&mut g, 0, Stream::Compute, 20, vec![c]);
        let r = simulate(&g).unwrap();
        assert_eq!(r.busy_time(&g, 0, Stream::Compute), DurNs(30));
        assert_eq!(r.busy_time(&g, 0, Stream::TpComm), DurNs(50));
        assert_eq!(r.makespan(), TimeNs(70));
    }

    #[test]
    fn zero_duration_tasks_complete() {
        let mut g = TaskGraph::new(1);
        let a = push(&mut g, 0, Stream::Compute, 0, vec![]);
        push(&mut g, 0, Stream::Compute, 0, vec![a]);
        let r = simulate(&g).unwrap();
        assert_eq!(r.makespan(), TimeNs::ZERO);
    }
}

//! Bubble extraction and classification.
//!
//! A *bubble* is an idle gap on a device's compute stream. The paper (§2.2,
//! Table 1, Fig. 8) classifies them by cause:
//!
//! * **DP all-gather** — waiting for the start-of-step parameter all-gather;
//! * **PP warmup** — waiting for the first forward activation to arrive;
//! * **TP** — compute stalled on a tensor-parallel collective;
//! * **PP other** — stalled on pipeline sends/receives mid-step;
//! * **PP cooldown** — idle after this stage's last backward, before the
//!   gradient reduce-scatter;
//! * **DP reduce-scatter** — the end-of-step gradient reduce-scatter itself.

use optimus_cluster::{DurNs, TimeNs};

use crate::engine::SimResult;
use crate::task::{Stream, TaskGraph, TaskKind};

/// Cause classification of one bubble, matching Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BubbleKind {
    /// Waiting on the start-of-step DP parameter all-gather.
    DpAllGather,
    /// End-of-step DP gradient reduce-scatter.
    DpReduceScatter,
    /// Pipeline warmup: waiting for the first forward to arrive.
    PpWarmup,
    /// Pipeline cooldown: idle after the stage's last backward.
    PpCooldown,
    /// Mid-step pipeline dependency stalls.
    PpOther,
    /// Compute stalled on a tensor-parallel collective.
    Tp,
}

impl BubbleKind {
    /// All kinds in Table 1 order.
    pub const ALL: [BubbleKind; 6] = [
        BubbleKind::DpAllGather,
        BubbleKind::DpReduceScatter,
        BubbleKind::PpWarmup,
        BubbleKind::PpCooldown,
        BubbleKind::PpOther,
        BubbleKind::Tp,
    ];

    /// Table-1 row label.
    pub fn label(self) -> &'static str {
        match self {
            BubbleKind::DpAllGather => "DP bubble (all-gather)",
            BubbleKind::DpReduceScatter => "DP bubble (reduce-scatter)",
            BubbleKind::PpWarmup => "PP bubbles (warmup)",
            BubbleKind::PpCooldown => "PP bubbles (cooldown)",
            BubbleKind::PpOther => "PP bubbles (other)",
            BubbleKind::Tp => "TP bubble",
        }
    }
}

/// One idle interval on a device's compute stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bubble {
    /// Device whose compute stream idles.
    pub device: u32,
    /// Gap start.
    pub start: TimeNs,
    /// Gap end.
    pub end: TimeNs,
    /// Classified cause.
    pub kind: BubbleKind,
}

impl Bubble {
    /// Bubble length.
    pub fn duration(&self) -> DurNs {
        self.end.since(self.start)
    }
}

/// Extracts and classifies all bubbles of one device.
pub fn device_bubbles(graph: &TaskGraph, result: &SimResult, device: u32) -> Vec<Bubble> {
    let compute = result.stream_spans(graph, device, Stream::Compute);
    let makespan = result.makespan();
    let mut bubbles = Vec::new();

    // Locate the device's DP collectives, if present.
    let dp_ag_end = graph
        .tasks()
        .iter()
        .filter(|t| t.device == device && t.kind == TaskKind::DpAllGather)
        .map(|t| result.span(t.id).end)
        .max();
    let dp_rs = graph
        .tasks()
        .iter()
        .filter(|t| t.device == device && t.kind == TaskKind::DpReduceScatter)
        .map(|t| result.span(t.id))
        .max_by_key(|s| s.end);

    // TP-collective spans for interior-gap classification.
    let tp_spans: Vec<(TimeNs, TimeNs)> = graph
        .tasks()
        .iter()
        .filter(|t| {
            t.device == device && matches!(t.kind, TaskKind::LlmTpComm | TaskKind::EncTpComm)
        })
        .map(|t| {
            let s = result.span(t.id);
            (s.start, s.end)
        })
        .collect();

    if compute.is_empty() {
        if makespan > TimeNs::ZERO {
            bubbles.push(Bubble {
                device,
                start: TimeNs::ZERO,
                end: makespan,
                kind: BubbleKind::PpWarmup,
            });
        }
        return bubbles;
    }

    // Leading gap: DP all-gather portion, then PP warmup.
    let first_start = compute[0].start;
    if first_start > TimeNs::ZERO {
        let split = dp_ag_end.unwrap_or(TimeNs::ZERO).min(first_start);
        if split > TimeNs::ZERO {
            bubbles.push(Bubble {
                device,
                start: TimeNs::ZERO,
                end: split,
                kind: BubbleKind::DpAllGather,
            });
        }
        if first_start > split {
            bubbles.push(Bubble {
                device,
                start: split,
                end: first_start,
                kind: BubbleKind::PpWarmup,
            });
        }
    }

    // Interior gaps: the portion of a gap that coincides with a TP
    // collective is a TP bubble; the remainder (waiting on pipeline
    // send/receive) is a PP bubble. A single gap often contains both — the
    // layer's trailing reduce-scatter runs first, then the rank starves.
    let mut tp_merged = tp_spans.clone();
    tp_merged.sort_unstable();
    for w in compute.windows(2) {
        let (gap_start, gap_end) = (w[0].end, w[1].start);
        if gap_end <= gap_start {
            continue;
        }
        let mut cursor = gap_start;
        for &(ts, te) in &tp_merged {
            let (os, oe) = (ts.max(cursor), te.min(gap_end));
            if oe <= os {
                continue;
            }
            if os > cursor {
                bubbles.push(Bubble {
                    device,
                    start: cursor,
                    end: os,
                    kind: BubbleKind::PpOther,
                });
            }
            bubbles.push(Bubble {
                device,
                start: os,
                end: oe,
                kind: BubbleKind::Tp,
            });
            cursor = oe;
            if cursor >= gap_end {
                break;
            }
        }
        if cursor < gap_end {
            bubbles.push(Bubble {
                device,
                start: cursor,
                end: gap_end,
                kind: BubbleKind::PpOther,
            });
        }
    }

    // Trailing gap: PP cooldown until the reduce-scatter begins, the
    // reduce-scatter itself, then (on ranks that finish early) more cooldown
    // while the slowest stage completes the step.
    let last_end = compute.last().map(|s| s.end).unwrap_or(TimeNs::ZERO);
    if makespan > last_end {
        match dp_rs {
            Some(rs) if rs.start >= last_end => {
                if rs.start > last_end {
                    bubbles.push(Bubble {
                        device,
                        start: last_end,
                        end: rs.start,
                        kind: BubbleKind::PpCooldown,
                    });
                }
                let rs_end = rs.end.min(makespan);
                bubbles.push(Bubble {
                    device,
                    start: rs.start,
                    end: rs_end,
                    kind: BubbleKind::DpReduceScatter,
                });
                if makespan > rs_end {
                    bubbles.push(Bubble {
                        device,
                        start: rs_end,
                        end: makespan,
                        kind: BubbleKind::PpCooldown,
                    });
                }
            }
            _ => {
                bubbles.push(Bubble {
                    device,
                    start: last_end,
                    end: makespan,
                    kind: BubbleKind::PpCooldown,
                });
            }
        }
    }

    bubbles
}

/// Extracts bubbles for every device.
pub fn all_bubbles(graph: &TaskGraph, result: &SimResult) -> Vec<Bubble> {
    (0..graph.num_devices())
        .flat_map(|d| device_bubbles(graph, result, d))
        .collect()
}

/// Aggregate bubble statistics across devices — the reproduction of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct BubbleBreakdown {
    /// Mean (per-device) bubble time for each kind, Table 1 order.
    pub per_kind: [(BubbleKind, DurNs); 6],
    /// Training-step time.
    pub step_time: DurNs,
    /// Number of devices aggregated.
    pub num_devices: u32,
}

impl BubbleBreakdown {
    /// Builds the breakdown from a simulation.
    pub fn measure(graph: &TaskGraph, result: &SimResult) -> BubbleBreakdown {
        let n = graph.num_devices().max(1);
        let mut totals = [DurNs::ZERO; 6];
        for b in all_bubbles(graph, result) {
            let idx = BubbleKind::ALL.iter().position(|&k| k == b.kind).unwrap();
            totals[idx] += b.duration();
        }
        let per_kind = std::array::from_fn(|i| (BubbleKind::ALL[i], totals[i] / n as u64));
        BubbleBreakdown {
            per_kind,
            step_time: result.makespan().since(TimeNs::ZERO),
            num_devices: n,
        }
    }

    /// Mean bubble time of one kind.
    pub fn time(&self, kind: BubbleKind) -> DurNs {
        self.per_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, d)| *d)
            .unwrap_or(DurNs::ZERO)
    }

    /// Fraction of the step occupied by one bubble kind (device mean).
    pub fn fraction(&self, kind: BubbleKind) -> f64 {
        if self.step_time.is_zero() {
            return 0.0;
        }
        self.time(kind).as_secs_f64() / self.step_time.as_secs_f64()
    }

    /// Total bubble fraction across all kinds.
    pub fn total_fraction(&self) -> f64 {
        BubbleKind::ALL.iter().map(|&k| self.fraction(k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;

    /// Builds a miniature step with every bubble category present:
    /// AG → warmup wait → compute, TP stall, PP stall, cooldown, RS.
    fn toy_step() -> (TaskGraph, SimResult) {
        let mut g = TaskGraph::new(1);
        let ag = g.push(
            "dp_ag",
            0,
            Stream::DpComm,
            DurNs(100),
            TaskKind::DpAllGather,
            vec![],
        );
        // Remote producer modeled as a P2p transfer finishing at t=150.
        let recv = g.push(
            "recv",
            0,
            Stream::P2p,
            DurNs(150),
            TaskKind::PpFwdTransfer { microbatch: 0 },
            vec![],
        );
        let k1 = g.push(
            "fwd",
            0,
            Stream::Compute,
            DurNs(50),
            TaskKind::LlmFwd {
                chunk: 0,
                microbatch: 0,
            },
            vec![ag, recv],
        );
        let tp = g.push(
            "tp",
            0,
            Stream::TpComm,
            DurNs(30),
            TaskKind::LlmTpComm,
            vec![k1],
        );
        let k2 = g.push(
            "fwd2",
            0,
            Stream::Compute,
            DurNs(40),
            TaskKind::LlmFwd {
                chunk: 0,
                microbatch: 0,
            },
            vec![tp],
        );
        let recv2 = g.push(
            "recv2",
            0,
            Stream::P2p,
            DurNs(120),
            TaskKind::PpBwdTransfer { microbatch: 0 },
            vec![k1],
        );
        let k3 = g.push(
            "bwd",
            0,
            Stream::Compute,
            DurNs(60),
            TaskKind::LlmBwd {
                chunk: 0,
                microbatch: 0,
            },
            vec![recv2, k2],
        );
        // A straggling peer delays the reduce-scatter, leaving a cooldown gap
        // between the last backward and the collective.
        let straggler = g.push(
            "straggler",
            0,
            Stream::P2p,
            DurNs(450),
            TaskKind::Generic,
            vec![],
        );
        g.push(
            "dp_rs",
            0,
            Stream::DpComm,
            DurNs(200),
            TaskKind::DpReduceScatter,
            vec![k3, straggler],
        );
        let r = simulate(&g).unwrap();
        (g, r)
    }

    #[test]
    fn every_category_detected() {
        let (g, r) = toy_step();
        let bubbles = device_bubbles(&g, &r, 0);
        let kinds: Vec<BubbleKind> = bubbles.iter().map(|b| b.kind).collect();
        for k in BubbleKind::ALL {
            assert!(kinds.contains(&k), "missing {k:?} in {kinds:?}");
        }
    }

    #[test]
    fn bubble_intervals_partition_idle_time() {
        let (g, r) = toy_step();
        let bubbles = device_bubbles(&g, &r, 0);
        let idle: DurNs = bubbles.iter().map(|b| b.duration()).sum();
        let busy = r.busy_time(&g, 0, Stream::Compute);
        assert_eq!(idle + busy, r.makespan().since(TimeNs::ZERO));
    }

    #[test]
    fn breakdown_fractions_sum_to_idle_fraction() {
        let (g, r) = toy_step();
        let bd = BubbleBreakdown::measure(&g, &r);
        let busy = r.busy_time(&g, 0, Stream::Compute).as_secs_f64();
        let expect = 1.0 - busy / r.makespan().as_secs_f64();
        assert!((bd.total_fraction() - expect).abs() < 1e-9);
    }

    #[test]
    fn tp_gap_classified_by_overlap() {
        let (g, r) = toy_step();
        let bubbles = device_bubbles(&g, &r, 0);
        // Gap between k1 (ends 200) and k2 (starts 230) overlaps the TP
        // collective: must be a TP bubble of 30 ns.
        let tp: Vec<&Bubble> = bubbles
            .iter()
            .filter(|b| b.kind == BubbleKind::Tp)
            .collect();
        assert_eq!(tp.len(), 1);
        assert_eq!(tp[0].duration(), DurNs(30));
    }

    #[test]
    fn idle_device_is_one_big_bubble() {
        let mut g = TaskGraph::new(2);
        g.push(
            "work",
            0,
            Stream::Compute,
            DurNs(100),
            TaskKind::Generic,
            vec![],
        );
        let r = simulate(&g).unwrap();
        let b = device_bubbles(&g, &r, 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].duration(), DurNs(100));
    }

    #[test]
    fn labels_match_table1() {
        assert_eq!(BubbleKind::DpAllGather.label(), "DP bubble (all-gather)");
        assert_eq!(BubbleKind::Tp.label(), "TP bubble");
    }
}

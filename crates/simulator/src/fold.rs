//! Certificate-driven folded simulation.
//!
//! In a 3D-parallel layout most devices are *rank-symmetric*: every device
//! of one (PP stage) equivalence class replays the same per-stream task
//! pattern with the same durations, so simulating all of them walks the
//! same timeline `tp × dp` times over. Folded simulation executes the
//! discrete-event engine over one representative device per class and
//! replicates the representative's spans to every class member, producing a
//! full-size [`SimResult`] that is bit-identical to [`simulate`] on the
//! whole graph — *provided the fold plan is sound*.
//!
//! Soundness is not this module's job: a [`FoldPlan`] is supposed to come
//! from a `SymmetryCertificate` issued by the static certifier in
//! `optimus-lint` (`certify_symmetry`), which proves class-wide timeline
//! isomorphism before any folding happens. This module re-checks only the
//! *structural* facts its own timing computation relies on — queue shapes
//! and durations match position-wise, and no dependency edge folds onto its
//! own dependent — and refuses to fold ([`SimError::Fold`]) otherwise, so a
//! forged or stale plan degrades loudly instead of silently mis-simulating.
//!
//! The task-level witness renaming is *positional*: the `i`-th task of a
//! member device's `(device, stream)` FIFO queue maps to the `i`-th task of
//! the representative's queue for the same stream. The certifier verifies
//! that this renaming is a timeline isomorphism; the fold engine merely
//! replays it.

use optimus_cluster::{DurNs, TimeNs};

use crate::engine::{simulate, SimResult, TaskSpan};
use crate::error::SimError;
use crate::task::{Stream, TaskGraph, TaskId};

/// A device-folding plan: for every device, the representative device whose
/// timeline it mirrors. Representatives map to themselves.
///
/// This is the minimal bridge between the static symmetry certifier (which
/// lives above this crate) and the engine: the certifier's task-level
/// witness renaming is recomputed here from queue positions, so the plan
/// itself stays a flat `device → representative` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldPlan {
    /// `rep_of[d]` is the representative device of device `d`.
    pub rep_of: Vec<u32>,
}

impl FoldPlan {
    /// The identity plan: every device is its own representative (folded
    /// simulation degenerates to full simulation).
    pub fn identity(num_devices: u32) -> FoldPlan {
        FoldPlan {
            rep_of: (0..num_devices).collect(),
        }
    }

    /// True when no device folds onto another.
    pub fn is_identity(&self) -> bool {
        self.rep_of.iter().enumerate().all(|(d, &r)| d as u32 == r)
    }

    /// Number of devices the plan covers.
    pub fn num_devices(&self) -> u32 {
        self.rep_of.len() as u32
    }

    /// Number of representative devices (devices actually simulated).
    pub fn num_representatives(&self) -> usize {
        self.rep_of
            .iter()
            .enumerate()
            .filter(|&(d, &r)| d as u32 == r)
            .count()
    }

    fn validate(&self, graph: &TaskGraph) -> Result<(), SimError> {
        if self.rep_of.len() != graph.num_devices() as usize {
            return Err(SimError::Fold {
                reason: format!(
                    "fold plan covers {} devices but the graph has {}",
                    self.rep_of.len(),
                    graph.num_devices()
                ),
            });
        }
        for (d, &r) in self.rep_of.iter().enumerate() {
            if r as usize >= self.rep_of.len() {
                return Err(SimError::Fold {
                    reason: format!("device {d} folds onto unknown device {r}"),
                });
            }
            if self.rep_of[r as usize] != r {
                return Err(SimError::Fold {
                    reason: format!("device {d} folds onto {r}, which is not a representative"),
                });
            }
        }
        Ok(())
    }
}

/// Size accounting of one folded simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldStats {
    /// Devices in the full graph.
    pub devices: u32,
    /// Representative devices actually simulated.
    pub devices_simulated: usize,
    /// Tasks in the full graph.
    pub tasks: usize,
    /// Tasks actually simulated.
    pub tasks_simulated: usize,
}

impl FoldStats {
    /// Device-level fold factor (`devices / devices_simulated`).
    pub fn fold_factor(&self) -> f64 {
        if self.devices_simulated == 0 {
            1.0
        } else {
            f64::from(self.devices) / self.devices_simulated as f64
        }
    }
}

fn resource_index(device: u32, stream: Stream) -> usize {
    device as usize * Stream::COUNT + stream.index()
}

/// Simulates only the representative devices of `plan` and replicates their
/// timelines to every folded device, returning a full-size [`SimResult`].
///
/// For a sound plan (one derived from a valid symmetry certificate) the
/// result is bit-identical to [`simulate`] on the whole graph: same spans,
/// same makespan.
///
/// # Errors
///
/// * [`SimError::Fold`] when the plan is structurally unusable: a folded
///   device's queue shape or task durations diverge from its
///   representative's, or a dependency edge maps onto its own dependent
///   (an asymmetric collective). Callers are expected to fall back to full
///   simulation.
/// * [`SimError::Deadlock`] when the reduced graph deadlocks — the full
///   graph would too.
pub fn simulate_folded(
    graph: &TaskGraph,
    plan: &FoldPlan,
) -> Result<(SimResult, FoldStats), SimError> {
    plan.validate(graph)?;

    // Per-(device, stream) queue positions for every task, with the FIFO
    // queues themselves materialized only for representative devices — the
    // only queues the positional renaming ever indexes into.
    let n_res = graph.num_devices() as usize * Stream::COUNT;
    let mut counters = vec![0u32; n_res];
    let mut queues: Vec<Vec<TaskId>> = vec![Vec::new(); n_res];
    let mut pos = vec![0u32; graph.len()];
    for t in graph.tasks() {
        let r = resource_index(t.device, t.stream);
        pos[t.id.index()] = counters[r];
        counters[r] += 1;
        if plan.rep_of[t.device as usize] == t.device {
            queues[r].push(t.id);
        }
    }

    // Positional witness renaming: task → image on its representative.
    // Cluster-expanded graphs list the copies of one base task consecutively,
    // so a one-entry cache resolves most images without touching the
    // representative queue again.
    let mut image = vec![TaskId(0); graph.len()];
    let mut last: Option<(usize, u32, TaskId, DurNs)> = None;
    for t in graph.tasks() {
        let rep = plan.rep_of[t.device as usize];
        if rep == t.device {
            image[t.id.index()] = t.id;
            continue;
        }
        let r = resource_index(rep, t.stream);
        let p = pos[t.id.index()];
        if let Some((lr, lp, img, dur)) = last {
            if lr == r && lp == p && dur == t.duration {
                image[t.id.index()] = img;
                continue;
            }
        }
        let rep_queue = &queues[r];
        let Some(&img) = rep_queue.get(p as usize) else {
            return Err(SimError::Fold {
                reason: format!(
                    "device {} has {} tasks on stream {:?} position {} but its \
                     representative {} has a shorter queue",
                    t.device,
                    counters[resource_index(t.device, t.stream)],
                    t.stream,
                    pos[t.id.index()],
                    rep
                ),
            });
        };
        if graph.task(img).duration != t.duration {
            return Err(SimError::Fold {
                reason: format!(
                    "task `{}` on device {} runs {:?} but its representative image \
                     `{}` on device {} runs {:?}",
                    t.label,
                    t.device,
                    t.duration,
                    graph.task(img).label,
                    rep,
                    graph.task(img).duration
                ),
            });
        }
        image[t.id.index()] = img;
        last = Some((r, p, img, t.duration));
    }

    // Reduced graph: representative-device tasks only, dependencies remapped
    // through the witness renaming. Same device indices (non-representative
    // devices simply own no tasks), so resource semantics are unchanged.
    let mut reduced = TaskGraph::new(graph.num_devices());
    const UNMAPPED: u32 = u32::MAX;
    let mut reduced_id = vec![UNMAPPED; graph.len()];
    for t in graph.tasks() {
        if plan.rep_of[t.device as usize] == t.device {
            let id = reduced.push(t.label, t.device, t.stream, t.duration, t.kind, vec![]);
            reduced_id[t.id.index()] = id.0;
        }
    }
    for t in graph.tasks() {
        if plan.rep_of[t.device as usize] != t.device {
            continue;
        }
        let rt = TaskId(reduced_id[t.id.index()]);
        for &dep in &t.deps {
            let folded_dep = image[dep.index()];
            if folded_dep == t.id {
                return Err(SimError::Fold {
                    reason: format!(
                        "dependency `{}` of task `{}` on device {} folds onto its own \
                         dependent — asymmetric collective endpoints",
                        graph.task(dep).label,
                        t.label,
                        t.device
                    ),
                });
            }
            debug_assert_eq!(
                plan.rep_of[graph.task(folded_dep).device as usize],
                graph.task(folded_dep).device,
                "witness image must land on a representative device"
            );
            reduced.add_dep(rt, TaskId(reduced_id[folded_dep.index()]));
        }
    }

    let reduced_result = simulate(&reduced)?;

    // Replicate representative spans to every folded task. The makespan is
    // the reduced makespan: every folded span mirrors a representative span.
    let rep_spans: Vec<_> = (0..reduced.len())
        .map(|i| {
            let s = reduced_result.span(TaskId(i as u32));
            (s.start, s.end)
        })
        .collect();
    // Consecutive tasks overwhelmingly share an image (copies of one base
    // task), so cache the last resolved span.
    let mut last_span = (TaskId(u32::MAX), TimeNs::ZERO, TimeNs::ZERO);
    let spans: Vec<TaskSpan> = (0..graph.len())
        .map(|i| {
            let img = image[i];
            if img != last_span.0 {
                let (start, end) = rep_spans[reduced_id[img.index()] as usize];
                last_span = (img, start, end);
            }
            TaskSpan {
                task: TaskId(i as u32),
                start: last_span.1,
                end: last_span.2,
            }
        })
        .collect();
    let stats = FoldStats {
        devices: graph.num_devices(),
        devices_simulated: plan.num_representatives(),
        tasks: graph.len(),
        tasks_simulated: reduced.len(),
    };
    Ok((
        SimResult::from_parts(spans, reduced_result.makespan()),
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;
    use optimus_cluster::DurNs;

    /// Two identical replicas of a two-stage pipeline, tied together by a
    /// per-stage all-to-all reduce-scatter (every replica's collective
    /// depends on both replicas' compute).
    fn symmetric_pair() -> TaskGraph {
        let mut g = TaskGraph::new(4); // device = replica * 2 + stage
        let mut compute = Vec::new();
        for rep in 0..2u32 {
            for stage in 0..2u32 {
                let dev = rep * 2 + stage;
                let c = g.push(
                    "w",
                    dev,
                    Stream::Compute,
                    DurNs(100 + u64::from(stage) * 50),
                    TaskKind::Generic,
                    vec![],
                );
                compute.push(c);
            }
        }
        for rep in 0..2u32 {
            for stage in 0..2u32 {
                let dev = rep * 2 + stage;
                let deps = vec![compute[stage as usize], compute[(2 + stage) as usize]];
                g.push(
                    "rs",
                    dev,
                    Stream::DpComm,
                    DurNs(30),
                    TaskKind::DpReduceScatter,
                    deps,
                );
            }
        }
        g
    }

    fn pair_plan() -> FoldPlan {
        FoldPlan {
            rep_of: vec![0, 1, 0, 1],
        }
    }

    #[test]
    fn folded_matches_full_bit_for_bit() {
        let g = symmetric_pair();
        let full = simulate(&g).unwrap();
        let (folded, stats) = simulate_folded(&g, &pair_plan()).unwrap();
        assert_eq!(folded.makespan(), full.makespan());
        assert_eq!(folded.spans(), full.spans());
        assert_eq!(stats.devices_simulated, 2);
        assert_eq!(stats.tasks_simulated, 4);
        assert_eq!(stats.tasks, 8);
        assert!((stats.fold_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn identity_plan_is_full_simulation() {
        let g = symmetric_pair();
        let plan = FoldPlan::identity(4);
        assert!(plan.is_identity());
        let full = simulate(&g).unwrap();
        let (folded, stats) = simulate_folded(&g, &plan).unwrap();
        assert_eq!(folded.spans(), full.spans());
        assert_eq!(stats.tasks_simulated, stats.tasks);
    }

    #[test]
    fn duration_divergence_refuses_to_fold() {
        let g = symmetric_pair().with_durations(|t| {
            if t.device == 2 && t.stream == Stream::Compute {
                DurNs(t.duration.0 * 3)
            } else {
                t.duration
            }
        });
        let err = simulate_folded(&g, &pair_plan()).unwrap_err();
        assert!(matches!(err, SimError::Fold { .. }), "{err}");
    }

    #[test]
    fn queue_shape_divergence_refuses_to_fold() {
        let mut g = symmetric_pair();
        g.push(
            "extra",
            2,
            Stream::Compute,
            DurNs(1),
            TaskKind::Generic,
            vec![],
        );
        let err = simulate_folded(&g, &pair_plan()).unwrap_err();
        assert!(matches!(err, SimError::Fold { .. }), "{err}");
    }

    #[test]
    fn non_representative_target_rejected() {
        let g = symmetric_pair();
        let plan = FoldPlan {
            rep_of: vec![0, 1, 3, 1], // 2 → 3, but 3 → 1
        };
        let err = simulate_folded(&g, &plan).unwrap_err();
        assert!(matches!(err, SimError::Fold { .. }), "{err}");
    }

    #[test]
    fn self_folding_edge_rejected() {
        // Device 1 folds onto device 0; an edge between queue-position peers
        // of the same class folds onto its own dependent.
        let mut g = TaskGraph::new(2);
        let a = g.push(
            "a",
            0,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![],
        );
        let b = g.push(
            "b",
            1,
            Stream::Compute,
            DurNs(10),
            TaskKind::DpAllGather,
            vec![],
        );
        g.add_dep(a, b);
        let plan = FoldPlan { rep_of: vec![0, 0] };
        let err = simulate_folded(&g, &plan).unwrap_err();
        assert!(matches!(err, SimError::Fold { .. }), "{err}");
    }

    #[test]
    fn singleton_demotion_keeps_fold_sound() {
        // Device 2 is a straggler: demote it to its own representative; the
        // rest still folds and the result stays bit-identical to full.
        let g = symmetric_pair().with_durations(|t| {
            if t.device == 2 && t.stream == Stream::Compute {
                DurNs(t.duration.0 * 3)
            } else {
                t.duration
            }
        });
        // Stage-0 symmetry is broken (device 2 diverges, and device 0's
        // collective syncs with it), so both stage-0 devices are singletons;
        // stage-1 devices (1, 3) fold only if their timelines truly match —
        // they do not here (replica 1's reduce-scatter waits on the
        // straggler), so everything is singleton: identity fold.
        let plan = FoldPlan::identity(4);
        let full = simulate(&g).unwrap();
        let (folded, _) = simulate_folded(&g, &plan).unwrap();
        assert_eq!(folded.spans(), full.spans());
    }
}

//! Simulation errors.

use std::error::Error;
use std::fmt;

use crate::task::TaskId;

/// Errors produced by the discrete-event engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The schedule deadlocked: some tasks can never start because a stream's
    /// FIFO head waits (transitively) on a task queued behind another blocked
    /// head.
    Deadlock {
        /// Tasks that never executed.
        stuck: Vec<TaskId>,
        /// Label of the first stuck task, for diagnostics.
        first_label: &'static str,
    },
    /// A folded simulation refused to run: the fold plan's structural
    /// premises (queue shapes, durations, dependency images) do not hold on
    /// this graph. Callers fall back to full simulation.
    Fold {
        /// What diverged.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { stuck, first_label } => write!(
                f,
                "schedule deadlock: {} tasks never executed (first: {first_label})",
                stuck.len()
            ),
            SimError::Fold { reason } => write!(f, "refusing to fold: {reason}"),
        }
    }
}

impl Error for SimError {}

//! Deterministic discrete-event simulator for distributed training steps.
//!
//! This crate is the stand-in for the paper's production cluster + CUDA
//! profiler: pipeline schedules are lowered to [`TaskGraph`]s whose tasks
//! occupy per-device streams (compute, TP collectives, P2P, DP collectives)
//! under FIFO semantics; [`simulate`] executes them and the [`bubble`] module
//! extracts and classifies the idle gaps exactly as the paper's Table 1 does
//! from profiled timelines.
//!
//! # Examples
//!
//! ```
//! use optimus_cluster::DurNs;
//! use optimus_sim::{simulate, Stream, TaskGraph, TaskKind};
//!
//! let mut g = TaskGraph::new(1);
//! let k1 = g.push("fwd", 0, Stream::Compute, DurNs(1000), TaskKind::Generic, vec![]);
//! let tp = g.push("ag", 0, Stream::TpComm, DurNs(300), TaskKind::LlmTpComm, vec![k1]);
//! g.push("fwd2", 0, Stream::Compute, DurNs(1000), TaskKind::Generic, vec![tp]);
//! let r = simulate(&g).unwrap();
//! assert_eq!(r.makespan().0, 2300); // 300 ns TP bubble between the kernels
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bubble;
pub mod engine;
pub mod error;
pub mod fold;
pub mod task;

pub use analysis::{
    compute_utilization, critical_path, latest_start_times, mean_compute_utilization, slack,
};
pub use bubble::{all_bubbles, device_bubbles, Bubble, BubbleBreakdown, BubbleKind};
pub use engine::{simulate, SimResult, TaskSpan};
pub use error::SimError;
pub use fold::{simulate_folded, FoldPlan, FoldStats};
pub use task::{Stream, Task, TaskGraph, TaskId, TaskKind};

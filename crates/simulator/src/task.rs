//! Task graphs: the unit of work the discrete-event engine executes.
//!
//! A task occupies one *stream* of one simulated device for a fixed duration,
//! starting only after all its dependencies have completed and all earlier
//! tasks queued on the same stream have finished (CUDA-stream FIFO
//! semantics). Pipeline schedules are lowered to per-stream queues whose
//! order encodes the schedule; bubbles are the idle gaps that result.

use optimus_cluster::DurNs;

/// Index of a task within its [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Raw index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Execution streams of one simulated device, mirroring how Megatron-LM
/// separates compute, tensor-parallel collectives, pipeline point-to-point
/// traffic and data-parallel collectives onto distinct CUDA streams /
/// NCCL communicators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stream {
    /// Compute kernels.
    Compute,
    /// Tensor-parallel collectives (all-gather / reduce-scatter).
    TpComm,
    /// Pipeline-parallel point-to-point transfers.
    P2p,
    /// Data-parallel collectives (parameter all-gather, gradient
    /// reduce-scatter).
    DpComm,
    /// Encoder↔LLM activation/gradient transfers (kept off the pipeline P2P
    /// FIFO so encoder traffic cannot head-of-line-block pipeline receives).
    EncP2p,
}

impl Stream {
    /// All streams, in a stable order.
    pub const ALL: [Stream; 5] = [
        Stream::Compute,
        Stream::TpComm,
        Stream::P2p,
        Stream::DpComm,
        Stream::EncP2p,
    ];

    /// Number of streams per device.
    pub const COUNT: usize = 5;

    /// Stable index of this stream within a device.
    pub fn index(self) -> usize {
        match self {
            Stream::Compute => 0,
            Stream::TpComm => 1,
            Stream::P2p => 2,
            Stream::DpComm => 3,
            Stream::EncP2p => 4,
        }
    }
}

/// Who issued a task — used by bubble classification and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// LLM compute kernel (part of a forward pass).
    LlmFwd {
        /// Model chunk (virtual stage) index.
        chunk: u32,
        /// Microbatch index.
        microbatch: u32,
    },
    /// LLM compute kernel (part of a backward pass).
    LlmBwd {
        /// Model chunk (virtual stage) index.
        chunk: u32,
        /// Microbatch index.
        microbatch: u32,
    },
    /// LLM tensor-parallel collective.
    LlmTpComm,
    /// Pipeline transfer of activations (forward direction).
    PpFwdTransfer {
        /// Microbatch index.
        microbatch: u32,
    },
    /// Pipeline transfer of gradients (backward direction).
    PpBwdTransfer {
        /// Microbatch index.
        microbatch: u32,
    },
    /// Start-of-step data-parallel parameter all-gather.
    DpAllGather,
    /// End-of-step data-parallel gradient reduce-scatter.
    DpReduceScatter,
    /// Optimizer step.
    Optimizer,
    /// Encoder compute kernel (forward).
    EncFwd {
        /// Encoder pipeline index.
        pipeline: u32,
        /// Encoder pipeline stage.
        stage: u32,
        /// Microbatch index (within the encoder pipeline's allocation).
        microbatch: u32,
    },
    /// Encoder compute kernel (backward).
    EncBwd {
        /// Encoder pipeline index.
        pipeline: u32,
        /// Encoder pipeline stage.
        stage: u32,
        /// Microbatch index (within the encoder pipeline's allocation).
        microbatch: u32,
    },
    /// Encoder tensor-parallel collective.
    EncTpComm,
    /// Encoder→LLM activation or LLM→encoder gradient transfer.
    EncLlmTransfer,
    /// Anything else (tests, synthetic workloads).
    Generic,
}

impl TaskKind {
    /// True for LLM compute kernels.
    pub fn is_llm_compute(self) -> bool {
        matches!(self, TaskKind::LlmFwd { .. } | TaskKind::LlmBwd { .. })
    }

    /// True for encoder compute kernels.
    pub fn is_encoder_compute(self) -> bool {
        matches!(self, TaskKind::EncFwd { .. } | TaskKind::EncBwd { .. })
    }
}

/// One schedulable unit of work.
#[derive(Debug, Clone)]
pub struct Task {
    /// Identifier (index into the owning graph).
    pub id: TaskId,
    /// Stable label for traces and debugging.
    pub label: &'static str,
    /// Simulated device index.
    pub device: u32,
    /// Stream within the device.
    pub stream: Stream,
    /// Execution duration.
    pub duration: DurNs,
    /// Semantic tag.
    pub kind: TaskKind,
    /// Tasks that must complete before this one may start.
    pub deps: Vec<TaskId>,
}

/// A dependency graph of tasks with per-stream FIFO queues.
///
/// Queue order is *insertion order*: tasks added to the same
/// `(device, stream)` pair execute in the order they were pushed.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    num_devices: u32,
}

impl TaskGraph {
    /// Creates an empty graph over `num_devices` simulated devices.
    pub fn new(num_devices: u32) -> TaskGraph {
        TaskGraph {
            tasks: Vec::new(),
            num_devices,
        }
    }

    /// Number of simulated devices.
    pub fn num_devices(&self) -> u32 {
        self.num_devices
    }

    /// Adds a task and returns its id.
    ///
    /// Dependencies listed here must already exist; edges to tasks created
    /// later can be added afterwards with [`add_dep`](Self::add_dep)
    /// (two-phase construction, needed when lowering pipeline schedules whose
    /// cross-rank dependencies point "forward" in per-rank program order).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range or a listed dependency does not
    /// exist yet.
    pub fn push(
        &mut self,
        label: &'static str,
        device: u32,
        stream: Stream,
        duration: DurNs,
        kind: TaskKind,
        deps: Vec<TaskId>,
    ) -> TaskId {
        assert!(device < self.num_devices, "device {device} out of range");
        let id = TaskId(self.tasks.len() as u32);
        for d in &deps {
            assert!(d.0 < id.0, "dependency {:?} must precede task {:?}", d, id);
        }
        self.tasks.push(Task {
            id,
            label,
            device,
            stream,
            duration,
            kind,
            deps,
        });
        id
    }

    /// Adds a dependency edge: `task` will not start before `dep` completes.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or `task == dep`.
    pub fn add_dep(&mut self, task: TaskId, dep: TaskId) {
        assert!(task.index() < self.tasks.len(), "unknown task {task:?}");
        assert!(dep.index() < self.tasks.len(), "unknown dep {dep:?}");
        assert_ne!(task, dep, "task cannot depend on itself");
        let deps = &mut self.tasks[task.index()].deps;
        if !deps.contains(&dep) {
            deps.push(dep);
        }
    }

    /// All tasks in insertion order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Looks up a task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// All dependency edges as `(dep, task)` pairs: `task` waits for `dep`.
    /// Order is deterministic (task insertion order, then dep-list order).
    pub fn dep_edges(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        self.tasks
            .iter()
            .flat_map(|t| t.deps.iter().map(move |&d| (d, t.id)))
    }

    /// Per-`(device, stream)` FIFO queues in execution (= insertion) order.
    /// Only non-empty queues are returned; pairs are sorted by device then
    /// stream index so iteration order is deterministic.
    pub fn stream_queues(&self) -> Vec<((u32, Stream), Vec<TaskId>)> {
        let mut queues: std::collections::BTreeMap<(u32, usize), Vec<TaskId>> =
            std::collections::BTreeMap::new();
        for t in &self.tasks {
            queues
                .entry((t.device, t.stream.index()))
                .or_default()
                .push(t.id);
        }
        queues
            .into_iter()
            .map(|((dev, si), q)| ((dev, Stream::ALL[si]), q))
            .collect()
    }

    /// Removes a dependency edge, returning whether it was present. Exists
    /// for mutation testing (knock out one edge, confirm the static analyzer
    /// notices); lowering never removes edges.
    pub fn remove_dep(&mut self, task: TaskId, dep: TaskId) -> bool {
        let deps = &mut self.tasks[task.index()].deps;
        match deps.iter().position(|&d| d == dep) {
            Some(i) => {
                deps.remove(i);
                true
            }
            None => false,
        }
    }

    /// Total duration of tasks matching a predicate (work, not wall time).
    pub fn total_work<F: Fn(&Task) -> bool>(&self, pred: F) -> DurNs {
        self.tasks
            .iter()
            .filter(|t| pred(t))
            .map(|t| t.duration)
            .sum()
    }

    /// Returns a copy with every task duration replaced by `f(&task)` —
    /// the general perturbation hook fault injection builds on. Structure
    /// (devices, streams, queue order, dependency edges) is preserved, so
    /// the copy simulates under identical scheduling semantics.
    pub fn with_durations<F: FnMut(&Task) -> DurNs>(&self, mut f: F) -> TaskGraph {
        let mut g = self.clone();
        for t in &mut g.tasks {
            t.duration = f(t);
        }
        g
    }

    /// Returns a copy with every task duration scaled by an independent
    /// factor drawn by `scale` (e.g. uniform in `[1−ε, 1+ε]`) — used to
    /// study schedule robustness against CUDA kernel-runtime fluctuation
    /// (the paper's §6 "online scheduling" discussion).
    pub fn with_scaled_durations<F: FnMut(&Task) -> f64>(&self, mut scale: F) -> TaskGraph {
        self.with_durations(|t| {
            let f = scale(t).max(0.0);
            DurNs((t.duration.0 as f64 * f).round() as u64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_sequential_ids() {
        let mut g = TaskGraph::new(2);
        let a = g.push("a", 0, Stream::Compute, DurNs(5), TaskKind::Generic, vec![]);
        let b = g.push(
            "b",
            1,
            Stream::Compute,
            DurNs(5),
            TaskKind::Generic,
            vec![a],
        );
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(g.len(), 2);
        assert_eq!(g.task(b).deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_device() {
        let mut g = TaskGraph::new(1);
        g.push("a", 3, Stream::Compute, DurNs(1), TaskKind::Generic, vec![]);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn rejects_forward_dependency() {
        let mut g = TaskGraph::new(1);
        g.push(
            "a",
            0,
            Stream::Compute,
            DurNs(1),
            TaskKind::Generic,
            vec![TaskId(5)],
        );
    }

    #[test]
    fn dep_edges_and_stream_queues_enumerate_structure() {
        let mut g = TaskGraph::new(2);
        let a = g.push("a", 0, Stream::Compute, DurNs(1), TaskKind::Generic, vec![]);
        let b = g.push(
            "b",
            0,
            Stream::Compute,
            DurNs(1),
            TaskKind::Generic,
            vec![a],
        );
        let c = g.push("c", 1, Stream::TpComm, DurNs(1), TaskKind::Generic, vec![a]);
        g.add_dep(b, c);
        let edges: Vec<_> = g.dep_edges().collect();
        assert_eq!(edges, vec![(a, b), (c, b), (a, c)]);
        let queues = g.stream_queues();
        assert_eq!(
            queues,
            vec![
                ((0, Stream::Compute), vec![a, b]),
                ((1, Stream::TpComm), vec![c]),
            ]
        );
    }

    #[test]
    fn remove_dep_knocks_out_one_edge() {
        let mut g = TaskGraph::new(1);
        let a = g.push("a", 0, Stream::Compute, DurNs(1), TaskKind::Generic, vec![]);
        let b = g.push(
            "b",
            0,
            Stream::Compute,
            DurNs(1),
            TaskKind::Generic,
            vec![a],
        );
        assert!(g.remove_dep(b, a));
        assert!(!g.remove_dep(b, a), "second removal is a no-op");
        assert!(g.task(b).deps.is_empty());
    }

    #[test]
    fn total_work_filters() {
        let mut g = TaskGraph::new(1);
        g.push("a", 0, Stream::Compute, DurNs(5), TaskKind::Generic, vec![]);
        g.push(
            "b",
            0,
            Stream::TpComm,
            DurNs(7),
            TaskKind::LlmTpComm,
            vec![],
        );
        assert_eq!(g.total_work(|t| t.stream == Stream::Compute), DurNs(5));
        assert_eq!(g.total_work(|_| true), DurNs(12));
    }
}

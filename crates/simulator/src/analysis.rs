//! Post-simulation analysis: utilization, critical-path slack.
//!
//! The slack analysis implements the Fig. 12 warmup adjustment in its general
//! form: for every task we compute the *latest* start time that leaves the
//! end-to-end makespan unchanged. Rank-0 chunk-0 forward passes with positive
//! slack are exactly the forward dependency points the paper defers.

use optimus_cluster::{DurNs, TimeNs};

use crate::engine::SimResult;
use crate::task::{Stream, TaskGraph, TaskId};

/// Fraction of the makespan each device's compute stream is busy.
pub fn compute_utilization(graph: &TaskGraph, result: &SimResult, device: u32) -> f64 {
    let total = result.makespan().as_secs_f64();
    if total == 0.0 {
        return 0.0;
    }
    result
        .busy_time(graph, device, Stream::Compute)
        .as_secs_f64()
        / total
}

/// Mean compute utilization over all devices.
pub fn mean_compute_utilization(graph: &TaskGraph, result: &SimResult) -> f64 {
    let n = graph.num_devices();
    if n == 0 {
        return 0.0;
    }
    (0..n)
        .map(|d| compute_utilization(graph, result, d))
        .sum::<f64>()
        / n as f64
}

/// Latest start time of every task such that the makespan is unchanged.
///
/// Successor edges are (a) explicit dependencies and (b) FIFO order on each
/// `(device, stream)` resource. Tasks are processed in reverse execution
/// order, which is a valid reverse-topological order because every edge goes
/// forward in simulated time.
pub fn latest_start_times(graph: &TaskGraph, result: &SimResult) -> Vec<TimeNs> {
    let n = graph.len();
    let makespan = result.makespan();

    // latest finish initialised to the makespan.
    let mut latest_finish = vec![makespan; n];

    // Build successor lists: dependency successors...
    let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for t in graph.tasks() {
        for &d in &t.deps {
            succs[d.index()].push(t.id);
        }
    }
    // ...and FIFO-order successors per resource.
    for device in 0..graph.num_devices() {
        for stream in Stream::ALL {
            let spans = result.stream_spans(graph, device, stream);
            for w in spans.windows(2) {
                succs[w[0].task.index()].push(w[1].task);
            }
        }
    }

    // Reverse execution order (by start time, descending; ties by id).
    let mut order: Vec<TaskId> = graph.tasks().iter().map(|t| t.id).collect();
    order.sort_by_key(|&id| {
        let s = result.span(id);
        (std::cmp::Reverse(s.start), std::cmp::Reverse(id))
    });

    let mut latest_start = vec![makespan; n];
    for id in order {
        let i = id.index();
        let dur = graph.task(id).duration;
        for &s in &succs[i] {
            latest_finish[i] = latest_finish[i].min(latest_start[s.index()]);
        }
        latest_start[i] = latest_finish[i] - dur;
    }
    latest_start
}

/// Extracts one critical path: a chain of zero-slack tasks from a step-start
/// task to a step-end task, following dependency and FIFO edges. Useful for
/// diagnosing what bounds a training step.
pub fn critical_path(graph: &TaskGraph, result: &SimResult) -> Vec<TaskId> {
    let sl = slack(graph, result);
    // Start from the zero-slack task that finishes last (ties: smallest id),
    // then walk backwards through zero-slack predecessors that abut in time.
    let mut current = graph
        .tasks()
        .iter()
        .filter(|t| sl[t.id.index()].is_zero())
        .max_by_key(|t| (result.span(t.id).end, std::cmp::Reverse(t.id)))
        .map(|t| t.id);
    let mut path = Vec::new();
    // Predecessor candidates: explicit deps + FIFO predecessor on the
    // resource.
    let fifo_pred = |id: TaskId| -> Option<TaskId> {
        let t = graph.task(id);
        let spans = result.stream_spans(graph, t.device, t.stream);
        let pos = spans.iter().position(|s| s.task == id)?;
        pos.checked_sub(1).map(|p| spans[p].task)
    };
    while let Some(id) = current {
        path.push(id);
        let start = result.span(id).start;
        let mut next = None;
        for cand in graph.task(id).deps.iter().copied().chain(fifo_pred(id)) {
            if sl[cand.index()].is_zero() && result.span(cand).end == start {
                next = Some(cand);
                break;
            }
        }
        current = next;
    }
    path.reverse();
    path
}

/// Slack of one task: latest start minus actual start.
pub fn slack(graph: &TaskGraph, result: &SimResult) -> Vec<DurNs> {
    let ls = latest_start_times(graph, result);
    graph
        .tasks()
        .iter()
        .map(|t| ls[t.id.index()].since(result.span(t.id).start))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::task::TaskKind;

    #[test]
    fn utilization_of_fully_busy_device_is_one() {
        let mut g = TaskGraph::new(1);
        g.push(
            "a",
            0,
            Stream::Compute,
            DurNs(50),
            TaskKind::Generic,
            vec![],
        );
        g.push(
            "b",
            0,
            Stream::Compute,
            DurNs(50),
            TaskKind::Generic,
            vec![],
        );
        let r = simulate(&g).unwrap();
        assert!((compute_utilization(&g, &r, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_has_zero_slack() {
        // chain a(10) -> b(20) on one stream: both critical.
        let mut g = TaskGraph::new(1);
        let a = g.push(
            "a",
            0,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![],
        );
        g.push(
            "b",
            0,
            Stream::Compute,
            DurNs(20),
            TaskKind::Generic,
            vec![a],
        );
        let r = simulate(&g).unwrap();
        let s = slack(&g, &r);
        assert_eq!(s, vec![DurNs::ZERO, DurNs::ZERO]);
    }

    #[test]
    fn off_critical_task_has_slack() {
        // Device 0: long task (100). Device 1: short task (10), no deps.
        // The short task could start as late as t=90.
        let mut g = TaskGraph::new(2);
        g.push(
            "long",
            0,
            Stream::Compute,
            DurNs(100),
            TaskKind::Generic,
            vec![],
        );
        g.push(
            "short",
            1,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![],
        );
        let r = simulate(&g).unwrap();
        let s = slack(&g, &r);
        assert_eq!(s[1], DurNs(90));
        assert_eq!(s[0], DurNs::ZERO);
    }

    #[test]
    fn fifo_order_constrains_slack() {
        // Two queued tasks (10, 10) on one stream + a parallel long task
        // (100) elsewhere. Task 1 must finish before task 2 starts, so its
        // latest start is 80, not 90.
        let mut g = TaskGraph::new(2);
        g.push(
            "q1",
            0,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![],
        );
        g.push(
            "q2",
            0,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![],
        );
        g.push(
            "long",
            1,
            Stream::Compute,
            DurNs(100),
            TaskKind::Generic,
            vec![],
        );
        let r = simulate(&g).unwrap();
        let ls = latest_start_times(&g, &r);
        assert_eq!(ls[0], TimeNs(80));
        assert_eq!(ls[1], TimeNs(90));
    }

    #[test]
    fn critical_path_spans_the_makespan() {
        // chain a(10) -> b(20) with a parallel short task: path = [a, b].
        let mut g = TaskGraph::new(2);
        let a = g.push(
            "a",
            0,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![],
        );
        let b = g.push(
            "b",
            0,
            Stream::Compute,
            DurNs(20),
            TaskKind::Generic,
            vec![a],
        );
        g.push(
            "short",
            1,
            Stream::Compute,
            DurNs(5),
            TaskKind::Generic,
            vec![],
        );
        let r = simulate(&g).unwrap();
        let path = crate::analysis::critical_path(&g, &r);
        assert_eq!(path, vec![a, b]);
        // The path is contiguous in time from 0 to the makespan.
        assert_eq!(r.span(path[0]).start.0, 0);
        assert_eq!(r.span(*path.last().unwrap()).end, r.makespan());
        let covered: u64 = path.iter().map(|&t| r.span(t).duration().0).sum();
        assert_eq!(covered, r.makespan().0);
    }

    #[test]
    fn critical_path_crosses_devices() {
        let mut g = TaskGraph::new(2);
        let a = g.push(
            "a",
            0,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![],
        );
        let b = g.push(
            "b",
            1,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![a],
        );
        let c = g.push(
            "c",
            0,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![b],
        );
        let r = simulate(&g).unwrap();
        let path = crate::analysis::critical_path(&g, &r);
        assert_eq!(path, vec![a, b, c]);
    }

    #[test]
    fn dependency_constrains_predecessor_slack() {
        // a(10) on dev0; b(10) on dev1 depends on a; long(100) on dev2.
        // b latest start 90 → a latest finish 90 → a latest start 80.
        let mut g = TaskGraph::new(3);
        let a = g.push(
            "a",
            0,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![],
        );
        g.push(
            "b",
            1,
            Stream::Compute,
            DurNs(10),
            TaskKind::Generic,
            vec![a],
        );
        g.push(
            "long",
            2,
            Stream::Compute,
            DurNs(100),
            TaskKind::Generic,
            vec![],
        );
        let r = simulate(&g).unwrap();
        let ls = latest_start_times(&g, &r);
        assert_eq!(ls[0], TimeNs(80));
    }
}

//! optimus-calibrate — trace ingestion, hardware-model calibration, and
//! simulator-fidelity validation.
//!
//! Every planning decision in this workspace rides on two analytic cost
//! models: the roofline [`GpuProfile`](optimus_cluster::GpuProfile) and the
//! α–β ring [`CommCostModel`](optimus_cluster::CommCostModel). This crate
//! closes the loop between those models and observed executions in three
//! layers:
//!
//! 1. **Ingestion** ([`ingest`], [`samples`]) — parse Chrome-trace JSON
//!    (round-tripping the traces `optimus-trace` writes, or profiler output
//!    shaped the same way) into per-device busy/idle timelines compatible
//!    with the planner's [`DeviceProfile`](optimus_core::DeviceProfile)
//!    view, and parse JSONL kernel logs pairing each observation with its
//!    workload footprint. All malformed input maps to typed
//!    [`CalibrateError`]s.
//! 2. **Fitting** ([`fit`]) — closed-form deterministic least squares that
//!    recovers per-kernel-class efficiencies and per-link-class α–β
//!    parameters, producing a [`Calibration`] whose
//!    [`context`](Calibration::context) plugs straight into `run_optimus`
//!    and the adaptive re-planning loop.
//! 3. **Fidelity validation** ([`fidelity`]) — re-simulate under a model
//!    and compare against the observed timeline: per-stream makespan error,
//!    per-interval overlap error, and bubble-structure agreement, reported
//!    as JSON or a rendered table.
//! 4. **MTBF fitting** ([`mtbf`]) — recover per-component failure rates
//!    (GPU fail-stop, NIC/link fault, host loss) from the fault-event
//!    track via the censored-exponential MLE, feeding the fleet-scale
//!    resilience what-if engine.
//!
//! [`synth`] provides the deterministic ground-truth generator used by the
//! closed-loop recovery tests and the `calibrate_fidelity` bench.

pub mod error;
pub mod fidelity;
pub mod fit;
pub mod ingest;
pub mod mtbf;
pub mod samples;
pub mod synth;

pub use error::CalibrateError;
pub use fidelity::{DeviceBubbles, FidelityReport, StreamFidelity};
pub use fit::{fit, Calibration, FittedParam};
pub use ingest::{IngestedAnnotation, IngestedSpan, IngestedTrace};
pub use mtbf::{fit_mtbf, ComponentRate, MtbfCalibration};
pub use samples::{CommOp, CommSample, KernelLog, KernelSample};
pub use synth::{apply_profiles, closed_loop_input, perturb_topology, synth_log};

//! Simulator-fidelity validation: how closely does a (re-)simulated
//! timeline match an observed one?
//!
//! A [`FidelityReport`] compares two [`IngestedTrace`]s — typically an
//! *observed* trace (ingested from a profiler capture, or the simulation
//! under the true hardware) against a *predicted* one (the simulation under
//! a hardware model). Three families of metrics:
//!
//! * **per-stream makespan error** — relative error of each `(device,
//!   stream)` track's end time, plus the global step makespan error;
//! * **per-interval overlap error** — `1 − |O ∩ P| / |O ∪ P|` over the
//!   merged busy-interval sets of each track (Jaccard distance on busy
//!   time): 0 when the timelines coincide exactly, 1 when they never
//!   overlap;
//! * **bubble-structure agreement** — per device, how well the compute
//!   track's interior-gap count and total gap time agree, averaged into a
//!   single `[0, 1]` score.
//!
//! All metrics are pure integer/f64 arithmetic over the traces — comparing
//! twice yields bit-identical reports.

use optimus_core::Ts;
use optimus_json::Json;
use optimus_trace::TextTable;

use crate::ingest::{stream_name, IngestedSpan, IngestedTrace};

/// Fidelity of one `(device, stream)` track.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamFidelity {
    /// Device of the track.
    pub device: u32,
    /// Track id (stream index).
    pub tid: u32,
    /// Observed busy time (ns).
    pub observed_busy: Ts,
    /// Predicted busy time (ns).
    pub predicted_busy: Ts,
    /// Relative error of the track's makespan (last span end).
    pub makespan_rel_err: f64,
    /// Jaccard distance between observed and predicted busy-interval sets.
    pub overlap_err: f64,
}

/// Bubble-structure agreement of one device's compute track.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceBubbles {
    /// The device.
    pub device: u32,
    /// Interior-gap count in the observed timeline.
    pub observed: usize,
    /// Interior-gap count in the predicted timeline.
    pub predicted: usize,
    /// Relative error of total interior-gap time.
    pub time_rel_err: f64,
    /// Combined `[0, 1]` agreement score (count × time similarity).
    pub agreement: f64,
}

/// The complete fidelity comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityReport {
    /// Per-track fidelity, ordered by `(device, tid)`.
    pub streams: Vec<StreamFidelity>,
    /// Per-device bubble agreement, ordered by device.
    pub bubbles: Vec<DeviceBubbles>,
    /// Observed step makespan (ns).
    pub observed_makespan: Ts,
    /// Predicted step makespan (ns).
    pub predicted_makespan: Ts,
    /// Relative error of the step makespan.
    pub makespan_rel_err: f64,
    /// Mean per-track overlap error.
    pub mean_overlap_err: f64,
    /// Mean per-device bubble agreement in `[0, 1]` (1 = identical
    /// bubble structure).
    pub bubble_agreement: f64,
}

fn rel_err(observed: Ts, predicted: Ts) -> f64 {
    (predicted - observed).abs() as f64 / (observed.max(1)) as f64
}

/// Merges spans into a sorted, disjoint interval set.
fn merged(spans: &[IngestedSpan]) -> Vec<(Ts, Ts)> {
    let mut iv: Vec<(Ts, Ts)> = spans
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| (s.start, s.end))
        .collect();
    iv.sort_unstable();
    let mut out: Vec<(Ts, Ts)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn total(iv: &[(Ts, Ts)]) -> Ts {
    iv.iter().map(|&(s, e)| e - s).sum()
}

/// Total intersection length of two disjoint sorted interval sets.
fn intersection(a: &[(Ts, Ts)], b: &[(Ts, Ts)]) -> Ts {
    let (mut i, mut j, mut acc) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            acc += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

/// Interior gaps of a merged interval set (between first start and last end).
fn gaps(iv: &[(Ts, Ts)]) -> Vec<(Ts, Ts)> {
    iv.windows(2)
        .filter(|w| w[1].0 > w[0].1)
        .map(|w| (w[0].1, w[1].0))
        .collect()
}

/// Similarity of two non-negative magnitudes: `min/max`, 1 when both zero.
fn similarity(a: f64, b: f64) -> f64 {
    let hi = a.max(b);
    if hi <= 0.0 {
        return 1.0;
    }
    a.min(b) / hi
}

impl FidelityReport {
    /// Compares a predicted timeline against an observed one.
    pub fn compare(observed: &IngestedTrace, predicted: &IngestedTrace) -> FidelityReport {
        let mut keys: Vec<(u32, u32)> = observed
            .tracks
            .keys()
            .chain(predicted.tracks.keys())
            .copied()
            .collect();
        keys.sort_unstable();
        keys.dedup();

        let mut streams = Vec::with_capacity(keys.len());
        for (device, tid) in keys.iter().copied() {
            let o = merged(observed.track(device, tid));
            let p = merged(predicted.track(device, tid));
            let o_end = o.last().map(|&(_, e)| e).unwrap_or(0);
            let p_end = p.last().map(|&(_, e)| e).unwrap_or(0);
            let inter = intersection(&o, &p);
            let union = total(&o) + total(&p) - inter;
            let overlap_err = if union == 0 {
                0.0
            } else {
                1.0 - inter as f64 / union as f64
            };
            streams.push(StreamFidelity {
                device,
                tid,
                observed_busy: total(&o),
                predicted_busy: total(&p),
                makespan_rel_err: rel_err(o_end, p_end),
                overlap_err,
            });
        }

        let mut devices: Vec<u32> = keys.iter().map(|&(d, _)| d).collect();
        devices.dedup();
        let mut bubbles = Vec::with_capacity(devices.len());
        for device in devices {
            let o = gaps(&merged(observed.track(device, 0)));
            let p = gaps(&merged(predicted.track(device, 0)));
            let (ot, pt) = (total(&o) as f64, total(&p) as f64);
            bubbles.push(DeviceBubbles {
                device,
                observed: o.len(),
                predicted: p.len(),
                time_rel_err: (pt - ot).abs() / ot.max(1.0),
                agreement: similarity(o.len() as f64, p.len() as f64) * similarity(ot, pt),
            });
        }

        let observed_makespan = observed.makespan();
        let predicted_makespan = predicted.makespan();
        let mean_overlap_err = if streams.is_empty() {
            0.0
        } else {
            streams.iter().map(|s| s.overlap_err).sum::<f64>() / streams.len() as f64
        };
        let bubble_agreement = if bubbles.is_empty() {
            1.0
        } else {
            bubbles.iter().map(|b| b.agreement).sum::<f64>() / bubbles.len() as f64
        };

        FidelityReport {
            streams,
            bubbles,
            observed_makespan,
            predicted_makespan,
            makespan_rel_err: rel_err(observed_makespan, predicted_makespan),
            mean_overlap_err,
            bubble_agreement,
        }
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("observed_makespan_ns", Json::from(self.observed_makespan)),
            ("predicted_makespan_ns", Json::from(self.predicted_makespan)),
            ("makespan_rel_err", Json::Num(self.makespan_rel_err)),
            ("mean_overlap_err", Json::Num(self.mean_overlap_err)),
            ("bubble_agreement", Json::Num(self.bubble_agreement)),
            (
                "streams",
                Json::Arr(
                    self.streams
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("device", Json::from(s.device)),
                                ("stream", Json::from(stream_name(s.tid))),
                                ("observed_busy_ns", Json::from(s.observed_busy)),
                                ("predicted_busy_ns", Json::from(s.predicted_busy)),
                                ("makespan_rel_err", Json::Num(s.makespan_rel_err)),
                                ("overlap_err", Json::Num(s.overlap_err)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "bubbles",
                Json::Arr(
                    self.bubbles
                        .iter()
                        .map(|b| {
                            Json::obj(vec![
                                ("device", Json::from(b.device)),
                                ("observed", Json::from(b.observed as u64)),
                                ("predicted", Json::from(b.predicted as u64)),
                                ("time_rel_err", Json::Num(b.time_rel_err)),
                                ("agreement", Json::Num(b.agreement)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rendered per-track fidelity table plus summary lines.
    pub fn table(&self) -> String {
        let mut t = TextTable::new(vec![
            "Device",
            "Stream",
            "Obs busy (ms)",
            "Pred busy (ms)",
            "Makespan err",
            "Overlap err",
        ]);
        for s in &self.streams {
            t.row(vec![
                s.device.to_string(),
                stream_name(s.tid).to_string(),
                format!("{:.3}", s.observed_busy as f64 / 1e6),
                format!("{:.3}", s.predicted_busy as f64 / 1e6),
                format!("{:.2}%", s.makespan_rel_err * 100.0),
                format!("{:.2}%", s.overlap_err * 100.0),
            ]);
        }
        format!(
            "{}\nmakespan: observed {:.3}ms, predicted {:.3}ms ({:.2}% error)\n\
             mean overlap error {:.2}%, bubble agreement {:.2}\n",
            t.render(),
            self.observed_makespan as f64 / 1e6,
            self.predicted_makespan as f64 / 1e6,
            self.makespan_rel_err * 100.0,
            self.mean_overlap_err * 100.0,
            self.bubble_agreement
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    type Track = ((u32, u32), Vec<(Ts, Ts)>);

    fn trace(tracks: Vec<Track>) -> IngestedTrace {
        let mut map = BTreeMap::new();
        for ((d, tid), spans) in tracks {
            map.insert(
                (d, tid),
                spans
                    .into_iter()
                    .map(|(start, end)| IngestedSpan {
                        label: "k".into(),
                        cat: "compute".into(),
                        start,
                        end,
                    })
                    .collect(),
            );
        }
        IngestedTrace {
            tracks: map,
            annotations: Vec::new(),
        }
    }

    #[test]
    fn identical_traces_have_zero_error() {
        let t = trace(vec![((0, 0), vec![(0, 100), (150, 300)])]);
        let r = FidelityReport::compare(&t, &t.clone());
        assert_eq!(r.makespan_rel_err, 0.0);
        assert_eq!(r.mean_overlap_err, 0.0);
        assert_eq!(r.bubble_agreement, 1.0);
        assert_eq!(r.streams[0].observed_busy, 250);
    }

    #[test]
    fn disjoint_traces_have_full_overlap_error() {
        let a = trace(vec![((0, 0), vec![(0, 100)])]);
        let b = trace(vec![((0, 0), vec![(100, 200)])]);
        let r = FidelityReport::compare(&a, &b);
        assert_eq!(r.streams[0].overlap_err, 1.0);
        assert_eq!(r.makespan_rel_err, 1.0);
    }

    #[test]
    fn half_overlap_is_measured() {
        let a = trace(vec![((0, 0), vec![(0, 100)])]);
        let b = trace(vec![((0, 0), vec![(50, 150)])]);
        let r = FidelityReport::compare(&a, &b);
        // |∩| = 50, |∪| = 150 → error 2/3.
        assert!((r.streams[0].overlap_err - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bubble_structure_compared_per_device() {
        // Observed: two gaps totalling 100ns; predicted: one gap of 50ns.
        let a = trace(vec![((0, 0), vec![(0, 10), (60, 70), (120, 130)])]);
        let b = trace(vec![((0, 0), vec![(0, 10), (60, 130)])]);
        let r = FidelityReport::compare(&a, &b);
        let bub = &r.bubbles[0];
        assert_eq!((bub.observed, bub.predicted), (2, 1));
        assert!((bub.agreement - 0.5 * 0.5).abs() < 1e-12);
        assert!(bub.time_rel_err > 0.0);
    }

    #[test]
    fn missing_track_counts_as_empty() {
        let a = trace(vec![((0, 0), vec![(0, 100)]), ((0, 1), vec![(0, 10)])]);
        let b = trace(vec![((0, 0), vec![(0, 100)])]);
        let r = FidelityReport::compare(&a, &b);
        assert_eq!(r.streams.len(), 2);
        let tp = r.streams.iter().find(|s| s.tid == 1).unwrap();
        assert_eq!(tp.predicted_busy, 0);
        assert_eq!(tp.overlap_err, 1.0);
    }

    #[test]
    fn json_and_table_render() {
        let a = trace(vec![((0, 0), vec![(0, 100)])]);
        let b = trace(vec![((0, 0), vec![(0, 110)])]);
        let r = FidelityReport::compare(&a, &b);
        let js = r.to_json().to_compact();
        assert!(js.contains("makespan_rel_err"));
        let table = r.table();
        assert!(table.contains("compute"), "{table}");
        assert!(table.contains("makespan"), "{table}");
    }
}

//! Deterministic least-squares fitting of hardware-model parameters.
//!
//! Every fitted parameter enters its cost model *linearly* once the model is
//! algebraically inverted, so each fit is a closed-form normal-equation
//! solve — no iterative optimiser, no randomness, no tolerance knobs:
//!
//! * **Compute efficiencies** — the roofline charges
//!   `d = overhead + max(flops/(peak·eff), bytes/(hbm_bw·membw_eff))`.
//!   For samples where the compute term dominates, `d − overhead = flops·x`
//!   with `x = 1/(peak·eff)`; least squares gives `x = Σf·y / Σf²` and
//!   `eff = 1/(peak·x)`. Memory-bound samples fit `membw_eff` the same way
//!   with bytes in place of FLOPs. Dominance is decided against the current
//!   estimate and the solve repeated once, so a badly mis-set default cannot
//!   misroute samples. `kernel_overhead` is taken from the base profile
//!   (it is not identifiable separately from a pure-rate term with the
//!   sample shapes a profiler emits, and it is a launch constant, not a
//!   hardware health parameter).
//!
//! * **Link α–β** — a ring collective costs
//!   `d = passes·(α·(g−1) + bytes·(g−1)/(g·β))` and a P2P transfer
//!   `d = α + bytes/β`; both are linear in `(α, 1/β)`, so each link class is
//!   one 2×2 normal-equation solve over its samples. When the samples cannot
//!   separate latency from bandwidth (all the same shape — singular normal
//!   matrix), α is pinned to the base profile and bandwidth fitted alone.
//!
//! Determinism: sample order is the log's record order, every accumulation
//! is a sequential `f64` fold, and no threading is involved — identical
//! inputs produce bit-identical parameters on every run, independent of the
//! planner's `search_workers` setting.

use optimus_baselines::common::SystemContext;
use optimus_cluster::{
    ClusterTopology, Fingerprint, FpHasher, GpuProfile, KernelClass, LinkClass, LinkProfile,
};
use optimus_json::Json;
use optimus_trace::TextTable;

use crate::error::CalibrateError;
use crate::samples::{CommOp, KernelLog};

/// One fitted parameter with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedParam {
    /// Stable parameter name (e.g. `"matmul_efficiency"`).
    pub name: &'static str,
    /// The fitted value (equal to `base` when no samples informed it).
    pub value: f64,
    /// The base-model value the fit started from.
    pub base: f64,
    /// Number of samples that informed the fit.
    pub samples: usize,
}

impl FittedParam {
    /// Relative change of the fitted value against the base model.
    pub fn rel_change(&self) -> f64 {
        if self.base == 0.0 {
            return 0.0;
        }
        (self.value - self.base).abs() / self.base.abs()
    }
}

/// The result of fitting: a calibrated hardware model plus the parameter
/// vector with provenance, in a fixed order (the golden-regression contract).
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// GPU profile with fitted efficiency factors.
    pub gpu: GpuProfile,
    /// Fitted intra-node link profile.
    pub nvlink: LinkProfile,
    /// Fitted inter-node link profile.
    pub rdma: LinkProfile,
    /// Every fitted parameter, in stable order.
    pub params: Vec<FittedParam>,
}

impl Calibration {
    /// Applies the calibration to a base topology: same shape (node count,
    /// GPUs per node), calibrated GPU and link profiles.
    pub fn topology(&self, base: &ClusterTopology) -> ClusterTopology {
        let mut t = base
            .with_link_profile(LinkClass::NvLink, self.nvlink)
            .with_link_profile(LinkClass::Rdma, self.rdma);
        t.gpu = self.gpu.clone();
        t
    }

    /// Applies the calibration to a system context, rebinding its
    /// communication model to the calibrated topology with a fresh cost
    /// cache — the calibrated context plugs straight into `run_optimus`
    /// and the adaptive re-planning loop.
    pub fn context(&self, base: &SystemContext) -> SystemContext {
        base.with_topology(self.topology(&base.topo))
    }

    /// Canonical content fingerprint of the fitted parameter vector: names
    /// and exact f64 bit patterns in the stable golden order. Two
    /// calibrations with the same fingerprint price every kernel and link
    /// identically, so a plan cached under one is valid under the other.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new("calibration/v1");
        h.fold_u64(self.params.len() as u64);
        for p in &self.params {
            h.fold_str(p.name).fold_f64(p.value);
        }
        h.finish()
    }

    /// The parameter vector as `(name, value)` pairs in stable order.
    pub fn param_vector(&self) -> Vec<(&'static str, f64)> {
        self.params.iter().map(|p| (p.name, p.value)).collect()
    }

    /// Byte-stable text encoding of the parameter vector: one
    /// `name <f64-bit-pattern-hex> <decimal>` line per parameter. The hex
    /// bit pattern makes golden comparisons exact; the decimal is for the
    /// human reviewing a regen diff.
    pub fn golden_text(&self) -> String {
        let mut out = String::new();
        for p in &self.params {
            out.push_str(&format!(
                "{} {:016x} {:e}\n",
                p.name,
                p.value.to_bits(),
                p.value
            ));
        }
        out
    }

    /// The calibration as a JSON document (parameters with provenance).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "params",
            Json::Arr(
                self.params
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("name", Json::from(p.name)),
                            ("value", Json::Num(p.value)),
                            ("base", Json::Num(p.base)),
                            ("samples", Json::from(p.samples as u64)),
                            ("rel_change", Json::Num(p.rel_change())),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// Rendered parameter table.
    pub fn table(&self) -> String {
        let mut t = TextTable::new(vec!["Parameter", "Base", "Fitted", "Change", "Samples"]);
        for p in &self.params {
            t.row(vec![
                p.name.to_string(),
                format!("{:.4e}", p.base),
                format!("{:.4e}", p.value),
                format!("{:+.2}%", (p.value / p.base - 1.0) * 100.0),
                p.samples.to_string(),
            ]);
        }
        t.render()
    }
}

/// Least-squares slope through the origin: `y ≈ a·x` → `a = Σx·y / Σx²`.
/// Returns `None` when the inputs cannot determine a positive slope.
fn slope_through_origin(rows: &[(f64, f64)]) -> Option<f64> {
    let sxx: f64 = rows.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = rows.iter().map(|(x, y)| x * y).sum();
    if sxx <= 0.0 || sxy <= 0.0 {
        return None;
    }
    Some(sxy / sxx)
}

fn fit_efficiency(est: &GpuProfile, log: &KernelLog, class: KernelClass) -> (Option<f64>, usize) {
    // Rows (work, observed duration net of overhead) for samples of `class`
    // where the relevant roofline term dominates under the current estimate.
    let o = est.kernel_overhead.as_secs_f64();
    let mut rows = Vec::new();
    for k in &log.kernels {
        if k.class != class {
            continue;
        }
        let compute_s = k.flops / est.effective_flops(class);
        let memory_s = k.bytes / (est.hbm_bandwidth * est.membw_efficiency);
        let (work, dominant) = match class {
            KernelClass::MemoryBound => (k.bytes, memory_s >= compute_s),
            _ => (k.flops, compute_s >= memory_s),
        };
        if dominant && work > 0.0 {
            rows.push((work, (k.dur.as_secs_f64() - o).max(0.0)));
        }
    }
    let n = rows.len();
    // The slope is x = 1/(ceiling·eff); invert against the class's ceiling.
    let ceiling = match class {
        KernelClass::MemoryBound => est.hbm_bandwidth,
        _ => est.peak_flops,
    };
    let eff = slope_through_origin(&rows).map(|x| (1.0 / (ceiling * x)).clamp(1e-6, 1.0));
    (eff, n)
}

fn fit_link(base: LinkProfile, rows: &[(f64, f64, f64)]) -> Option<LinkProfile> {
    // Rows are (a, b, d) with model d = α·a + (1/β)·b. Solve the 2×2 normal
    // equations; fall back to pinning α at the base latency when the samples
    // cannot separate the two terms.
    if rows.is_empty() {
        return None;
    }
    let (mut saa, mut sab, mut sbb, mut sad, mut sbd) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(a, b, d) in rows {
        saa += a * a;
        sab += a * b;
        sbb += b * b;
        sad += a * d;
        sbd += b * d;
    }
    let det = saa * sbb - sab * sab;
    if det > 1e-9 * saa * sbb {
        let alpha = (sad * sbb - sbd * sab) / det;
        let binv = (sbd * saa - sad * sab) / det;
        if alpha >= 0.0 && binv > 0.0 {
            return Some(LinkProfile {
                bandwidth: 1.0 / binv,
                latency: alpha,
            });
        }
    }
    // Degenerate sample shapes: fit bandwidth only, α from the base profile.
    let residual_rows: Vec<(f64, f64)> = rows
        .iter()
        .map(|&(a, b, d)| (b, (d - base.latency * a).max(0.0)))
        .collect();
    slope_through_origin(&residual_rows).map(|binv| LinkProfile {
        bandwidth: 1.0 / binv,
        latency: base.latency,
    })
}

fn link_rows(log: &KernelLog, class: LinkClass) -> Vec<(f64, f64, f64)> {
    log.comms
        .iter()
        .filter(|c| c.link == class)
        .map(|c| {
            let d = c.dur.as_secs_f64();
            match c.op {
                CommOp::P2p => (1.0, c.bytes as f64, d),
                _ => {
                    let g = f64::from(c.group);
                    let p = c.op.passes();
                    (p * (g - 1.0), p * c.bytes as f64 * (g - 1.0) / g, d)
                }
            }
        })
        .collect()
}

/// Fits hardware-model parameters from a kernel log, starting from the base
/// topology's parameters. Parameters with no informing samples keep their
/// base values (reported with `samples: 0`).
///
/// The fit is deterministic: identical logs produce bit-identical
/// calibrations across runs and worker counts.
pub fn fit(base: &ClusterTopology, log: &KernelLog) -> Result<Calibration, CalibrateError> {
    if log.is_empty() {
        return Err(CalibrateError::NoSamples {
            what: "kernel or comm samples".into(),
        });
    }

    // Two dominance-classification passes: the first against the base
    // profile, the second against the first pass's estimate.
    let mut gpu = base.gpu.clone();
    let mut counts = [0usize; 3];
    for _ in 0..2 {
        let (m, nm) = fit_efficiency(&gpu, log, KernelClass::Matmul);
        let (a, na) = fit_efficiency(&gpu, log, KernelClass::Attention);
        let (b, nb) = fit_efficiency(&gpu, log, KernelClass::MemoryBound);
        if let Some(v) = m {
            gpu.matmul_efficiency = v;
        }
        if let Some(v) = a {
            gpu.attention_efficiency = v;
        }
        if let Some(v) = b {
            gpu.membw_efficiency = v;
        }
        counts = [nm, na, nb];
    }

    let nv_rows = link_rows(log, LinkClass::NvLink);
    let rd_rows = link_rows(log, LinkClass::Rdma);
    let nvlink = fit_link(base.nvlink, &nv_rows).unwrap_or(base.nvlink);
    let rdma = fit_link(base.rdma, &rd_rows).unwrap_or(base.rdma);

    let params = vec![
        FittedParam {
            name: "matmul_efficiency",
            value: gpu.matmul_efficiency,
            base: base.gpu.matmul_efficiency,
            samples: counts[0],
        },
        FittedParam {
            name: "attention_efficiency",
            value: gpu.attention_efficiency,
            base: base.gpu.attention_efficiency,
            samples: counts[1],
        },
        FittedParam {
            name: "membw_efficiency",
            value: gpu.membw_efficiency,
            base: base.gpu.membw_efficiency,
            samples: counts[2],
        },
        FittedParam {
            name: "nvlink_bandwidth",
            value: nvlink.bandwidth,
            base: base.nvlink.bandwidth,
            samples: nv_rows.len(),
        },
        FittedParam {
            name: "nvlink_latency",
            value: nvlink.latency,
            base: base.nvlink.latency,
            samples: nv_rows.len(),
        },
        FittedParam {
            name: "rdma_bandwidth",
            value: rdma.bandwidth,
            base: base.rdma.bandwidth,
            samples: rd_rows.len(),
        },
        FittedParam {
            name: "rdma_latency",
            value: rdma.latency,
            base: base.rdma.latency,
            samples: rd_rows.len(),
        },
    ];

    Ok(Calibration {
        gpu,
        nvlink,
        rdma,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::{CommSample, KernelSample};
    use optimus_cluster::DurNs;

    fn base() -> ClusterTopology {
        ClusterTopology::hopper_cluster(16).unwrap()
    }

    /// Synthesises noiseless kernel samples from a known profile and checks
    /// the fit inverts them exactly (up to integer-ns duration rounding).
    #[test]
    fn recovers_known_efficiencies() {
        let mut truth = base();
        truth.gpu.matmul_efficiency = 0.61;
        truth.gpu.attention_efficiency = 0.24;
        truth.gpu.membw_efficiency = 0.66;
        let mut log = KernelLog::default();
        for i in 1..=20u32 {
            let flops = 1e10 * f64::from(i);
            log.kernels.push(KernelSample {
                class: KernelClass::Matmul,
                flops,
                bytes: 0.0,
                dur: truth.gpu.kernel_time(KernelClass::Matmul, flops, 0.0),
            });
            log.kernels.push(KernelSample {
                class: KernelClass::Attention,
                flops: flops / 4.0,
                bytes: 0.0,
                dur: truth
                    .gpu
                    .kernel_time(KernelClass::Attention, flops / 4.0, 0.0),
            });
            let bytes = 2e8 * f64::from(i);
            log.kernels.push(KernelSample {
                class: KernelClass::MemoryBound,
                flops: 0.0,
                bytes,
                dur: truth.gpu.kernel_time(KernelClass::MemoryBound, 0.0, bytes),
            });
        }
        let cal = fit(&base(), &log).unwrap();
        assert!((cal.gpu.matmul_efficiency - 0.61).abs() / 0.61 < 1e-4);
        assert!((cal.gpu.attention_efficiency - 0.24).abs() / 0.24 < 1e-4);
        assert!((cal.gpu.membw_efficiency - 0.66).abs() / 0.66 < 1e-4);
        // Links had no samples: base values, zero sample count.
        let nv = cal
            .params
            .iter()
            .find(|p| p.name == "nvlink_bandwidth")
            .unwrap();
        assert_eq!(nv.value, base().nvlink.bandwidth);
        assert_eq!(nv.samples, 0);
    }

    #[test]
    fn recovers_known_link_profile() {
        let truth = LinkProfile {
            bandwidth: 273e9,
            latency: 5.5e-6,
        };
        let mut log = KernelLog::default();
        for i in 0..24u32 {
            let bytes = 1u64 << (10 + i % 16);
            let group = [2u32, 4, 8][(i % 3) as usize];
            let op = [CommOp::AllGather, CommOp::AllReduce, CommOp::P2p][(i % 3) as usize];
            let g = f64::from(group);
            let secs = match op {
                CommOp::P2p => truth.latency + bytes as f64 / truth.bandwidth,
                _ => {
                    op.passes()
                        * (truth.latency * (g - 1.0)
                            + bytes as f64 * (g - 1.0) / (g * truth.bandwidth))
                }
            };
            log.comms.push(CommSample {
                op,
                bytes,
                group,
                link: LinkClass::NvLink,
                dur: DurNs::from_secs_f64(secs),
            });
        }
        let cal = fit(&base(), &log).unwrap();
        assert!(
            (cal.nvlink.bandwidth - truth.bandwidth).abs() / truth.bandwidth < 1e-3,
            "bw {}",
            cal.nvlink.bandwidth
        );
        assert!(
            (cal.nvlink.latency - truth.latency).abs() / truth.latency < 1e-3,
            "lat {}",
            cal.nvlink.latency
        );
        assert_eq!(cal.rdma, base().rdma);
    }

    #[test]
    fn degenerate_link_samples_pin_latency() {
        // Every sample has the same (group, bytes) shape: α and β cannot be
        // separated, so α stays at base and bandwidth absorbs the rest.
        let mut log = KernelLog::default();
        for _ in 0..8 {
            log.comms.push(CommSample {
                op: CommOp::AllGather,
                bytes: 1 << 24,
                group: 8,
                link: LinkClass::Rdma,
                dur: DurNs(5_000_000),
            });
        }
        let cal = fit(&base(), &log).unwrap();
        assert_eq!(cal.rdma.latency, base().rdma.latency);
        assert!(cal.rdma.bandwidth > 0.0);
    }

    #[test]
    fn empty_log_is_a_typed_error() {
        assert!(matches!(
            fit(&base(), &KernelLog::default()),
            Err(CalibrateError::NoSamples { .. })
        ));
    }

    #[test]
    fn fit_is_deterministic() {
        let mut log = KernelLog::default();
        for i in 1..=10u32 {
            let flops = 3.3e10 * f64::from(i);
            log.kernels.push(KernelSample {
                class: KernelClass::Matmul,
                flops,
                bytes: 1e7,
                dur: DurNs(100_000 * u64::from(i) + 17),
            });
        }
        let a = fit(&base(), &log).unwrap();
        let b = fit(&base(), &log).unwrap();
        assert_eq!(a.golden_text(), b.golden_text());
        for (x, y) in a.param_vector().iter().zip(b.param_vector()) {
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
        // The fingerprint is as exact as the golden text.
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.params[0].value += 1e-12;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn calibrated_context_plans_against_fitted_links() {
        let mut log = KernelLog::default();
        for i in 0..12u32 {
            let bytes = 1u64 << (12 + i);
            // A link at half the default NVLink bandwidth.
            let secs = 3e-6 + bytes as f64 / 200e9;
            log.comms.push(CommSample {
                op: CommOp::P2p,
                bytes,
                group: 2,
                link: LinkClass::NvLink,
                dur: DurNs::from_secs_f64(secs),
            });
        }
        let cal = fit(&base(), &log).unwrap();
        let ctx = SystemContext::hopper(16).unwrap();
        let cctx = cal.context(&ctx);
        assert!((cctx.topo.nvlink.bandwidth - 200e9).abs() / 200e9 < 1e-2);
        // Fresh cost model bound to the calibrated topology.
        assert_eq!(cctx.comm.topology().nvlink, cctx.topo.nvlink);
        assert_eq!(cctx.comm.cache_len(), 0);
    }
}

//! JSONL kernel-log ingestion: the fitting input format.
//!
//! A Chrome trace shows *when* kernels ran but not *what* they did; fitting
//! the hardware model needs each observation paired with its workload
//! footprint. The kernel log is one JSON object per line:
//!
//! ```text
//! {"type":"kernel","class":"matmul","flops":2.1e11,"bytes":0,"dur_ns":412345}
//! {"type":"comm","op":"all_gather","bytes":16777216,"group":8,"link":"nvlink","dur_ns":73500}
//! {"type":"comm","op":"p2p","bytes":4194304,"link":"rdma","dur_ns":95880}
//! ```
//!
//! `kernel` lines carry a [`KernelClass`], FLOP count, HBM byte count, and
//! the observed duration; `comm` lines carry the operation, payload, group
//! size (collectives only), bottleneck link class, and the observed
//! duration. Blank lines are skipped; anything else is a typed error.

use optimus_cluster::{CollectiveKind, DurNs, KernelClass, LinkClass};
use optimus_json::Json;

use crate::error::{format_err, CalibrateError};

/// A communication operation observed in a kernel log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// Ring all-gather (one pass).
    AllGather,
    /// Ring reduce-scatter (one pass).
    ReduceScatter,
    /// Ring all-reduce (two passes).
    AllReduce,
    /// Broadcast (one pass).
    Broadcast,
    /// Point-to-point transfer.
    P2p,
}

impl CommOp {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            CommOp::AllGather => "all_gather",
            CommOp::ReduceScatter => "reduce_scatter",
            CommOp::AllReduce => "all_reduce",
            CommOp::Broadcast => "broadcast",
            CommOp::P2p => "p2p",
        }
    }

    /// Number of ring passes the α–β model charges for this op.
    pub fn passes(self) -> f64 {
        match self {
            CommOp::AllReduce => 2.0,
            _ => 1.0,
        }
    }

    /// The collective kind this op maps to, when it is a collective.
    pub fn collective_kind(self) -> Option<CollectiveKind> {
        match self {
            CommOp::AllGather => Some(CollectiveKind::AllGather),
            CommOp::ReduceScatter => Some(CollectiveKind::ReduceScatter),
            CommOp::AllReduce => Some(CollectiveKind::AllReduce),
            CommOp::Broadcast => Some(CollectiveKind::Broadcast),
            CommOp::P2p => None,
        }
    }

    fn parse(s: &str) -> Option<CommOp> {
        match s {
            "all_gather" => Some(CommOp::AllGather),
            "reduce_scatter" => Some(CommOp::ReduceScatter),
            "all_reduce" => Some(CommOp::AllReduce),
            "broadcast" => Some(CommOp::Broadcast),
            "p2p" => Some(CommOp::P2p),
            _ => None,
        }
    }
}

fn class_name(class: KernelClass) -> &'static str {
    match class {
        KernelClass::Matmul => "matmul",
        KernelClass::Attention => "attention",
        KernelClass::MemoryBound => "memory_bound",
    }
}

fn parse_class(s: &str) -> Option<KernelClass> {
    match s {
        "matmul" => Some(KernelClass::Matmul),
        "attention" => Some(KernelClass::Attention),
        "memory_bound" => Some(KernelClass::MemoryBound),
        _ => None,
    }
}

fn link_name(link: LinkClass) -> &'static str {
    match link {
        LinkClass::Loopback => "loopback",
        LinkClass::NvLink => "nvlink",
        LinkClass::Rdma => "rdma",
        LinkClass::Storage => "storage",
    }
}

fn parse_link(s: &str) -> Option<LinkClass> {
    match s {
        "nvlink" => Some(LinkClass::NvLink),
        "rdma" => Some(LinkClass::Rdma),
        "storage" => Some(LinkClass::Storage),
        _ => None,
    }
}

/// One observed compute kernel with its workload footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSample {
    /// Kernel class (selects the efficiency parameter being fitted).
    pub class: KernelClass,
    /// FLOPs executed.
    pub flops: f64,
    /// HBM bytes moved.
    pub bytes: f64,
    /// Observed wall-clock duration.
    pub dur: DurNs,
}

/// One observed communication operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CommSample {
    /// The operation.
    pub op: CommOp,
    /// Total payload in bytes.
    pub bytes: u64,
    /// Communicator group size (ignored for [`CommOp::P2p`]).
    pub group: u32,
    /// Bottleneck link class of the group / transfer.
    pub link: LinkClass,
    /// Observed wall-clock duration.
    pub dur: DurNs,
}

/// A parsed kernel log: the complete fitting input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelLog {
    /// Compute kernel observations.
    pub kernels: Vec<KernelSample>,
    /// Communication observations.
    pub comms: Vec<CommSample>,
}

impl KernelLog {
    /// Parses a JSONL kernel log. Blank lines are skipped.
    pub fn parse_jsonl(text: &str) -> Result<KernelLog, CalibrateError> {
        let mut log = KernelLog::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rec = Json::parse(line).map_err(|e| CalibrateError::Format {
                context: format!("line {}: {e}", lineno + 1),
            })?;
            let ctx = |e: optimus_json::JsonError| CalibrateError::Format {
                context: format!("line {}: {e}", lineno + 1),
            };
            let ty = rec.field("type").and_then(|v| v.as_str()).map_err(ctx)?;
            match ty {
                "kernel" => {
                    let class_s = rec.field("class").and_then(|v| v.as_str()).map_err(ctx)?;
                    let Some(class) = parse_class(class_s) else {
                        return format_err(format!(
                            "line {}: unknown kernel class `{class_s}`",
                            lineno + 1
                        ));
                    };
                    let flops = rec.field("flops").and_then(|v| v.as_f64()).map_err(ctx)?;
                    let bytes = rec.field("bytes").and_then(|v| v.as_f64()).map_err(ctx)?;
                    let dur = rec.field("dur_ns").and_then(|v| v.as_u64()).map_err(ctx)?;
                    if flops < 0.0 || bytes < 0.0 {
                        return format_err(format!(
                            "line {}: flops/bytes must be non-negative",
                            lineno + 1
                        ));
                    }
                    log.kernels.push(KernelSample {
                        class,
                        flops,
                        bytes,
                        dur: DurNs(dur),
                    });
                }
                "comm" => {
                    let op_s = rec.field("op").and_then(|v| v.as_str()).map_err(ctx)?;
                    let Some(op) = CommOp::parse(op_s) else {
                        return format_err(format!(
                            "line {}: unknown comm op `{op_s}`",
                            lineno + 1
                        ));
                    };
                    let bytes = rec.field("bytes").and_then(|v| v.as_u64()).map_err(ctx)?;
                    let group = match op {
                        CommOp::P2p => 2,
                        _ => {
                            let g = rec.field("group").and_then(|v| v.as_u32()).map_err(ctx)?;
                            if g < 2 {
                                return format_err(format!(
                                    "line {}: collective group size must be >= 2, got {g}",
                                    lineno + 1
                                ));
                            }
                            g
                        }
                    };
                    let link_s = rec.field("link").and_then(|v| v.as_str()).map_err(ctx)?;
                    let Some(link) = parse_link(link_s) else {
                        return format_err(format!(
                            "line {}: unknown link class `{link_s}`",
                            lineno + 1
                        ));
                    };
                    let dur = rec.field("dur_ns").and_then(|v| v.as_u64()).map_err(ctx)?;
                    log.comms.push(CommSample {
                        op,
                        bytes,
                        group,
                        link,
                        dur: DurNs(dur),
                    });
                }
                other => {
                    return format_err(format!(
                        "line {}: unknown record type `{other}`",
                        lineno + 1
                    ));
                }
            }
        }
        Ok(log)
    }

    /// Serialises the log back to JSONL (the inverse of
    /// [`parse_jsonl`](Self::parse_jsonl), byte-stable for golden fixtures).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for k in &self.kernels {
            let rec = Json::obj(vec![
                ("type", Json::from("kernel")),
                ("class", Json::from(class_name(k.class))),
                ("flops", Json::Num(k.flops)),
                ("bytes", Json::Num(k.bytes)),
                ("dur_ns", Json::Num(k.dur.0 as f64)),
            ]);
            out.push_str(&rec.to_compact());
            out.push('\n');
        }
        for c in &self.comms {
            let mut fields = vec![
                ("type", Json::from("comm")),
                ("op", Json::from(c.op.name())),
                ("bytes", Json::Num(c.bytes as f64)),
            ];
            if c.op != CommOp::P2p {
                fields.push(("group", Json::Num(f64::from(c.group))));
            }
            fields.push(("link", Json::from(link_name(c.link))));
            fields.push(("dur_ns", Json::Num(c.dur.0 as f64)));
            out.push_str(&Json::obj(fields).to_compact());
            out.push('\n');
        }
        out
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.kernels.len() + self.comms.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty() && self.comms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> KernelLog {
        KernelLog {
            kernels: vec![
                KernelSample {
                    class: KernelClass::Matmul,
                    flops: 2.5e11,
                    bytes: 0.0,
                    dur: DurNs(490_000),
                },
                KernelSample {
                    class: KernelClass::MemoryBound,
                    flops: 0.0,
                    bytes: 1.5e9,
                    dur: DurNs(600_000),
                },
            ],
            comms: vec![
                CommSample {
                    op: CommOp::AllGather,
                    bytes: 1 << 24,
                    group: 8,
                    link: LinkClass::NvLink,
                    dur: DurNs(57_000),
                },
                CommSample {
                    op: CommOp::P2p,
                    bytes: 1 << 22,
                    group: 2,
                    link: LinkClass::Rdma,
                    dur: DurNs(95_880),
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let log = sample_log();
        let text = log.to_jsonl();
        let parsed = KernelLog::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, log);
        // Byte-stable: re-serialising the parse reproduces the text.
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text =
            "\n{\"type\":\"kernel\",\"class\":\"matmul\",\"flops\":1,\"bytes\":0,\"dur_ns\":5}\n\n";
        let log = KernelLog::parse_jsonl(text).unwrap();
        assert_eq!(log.kernels.len(), 1);
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for bad in [
            "{\"type\":\"kernel\"}",                  // missing fields
            "{\"type\":\"warp\"}",                    // unknown record type
            "{\"type\":\"kernel\",\"class\":\"fft\",\"flops\":1,\"bytes\":0,\"dur_ns\":1}",
            "{\"type\":\"comm\",\"op\":\"gossip\",\"bytes\":1,\"group\":2,\"link\":\"nvlink\",\"dur_ns\":1}",
            "{\"type\":\"comm\",\"op\":\"all_gather\",\"bytes\":1,\"group\":1,\"link\":\"nvlink\",\"dur_ns\":1}",
            "{\"type\":\"comm\",\"op\":\"all_gather\",\"bytes\":1,\"group\":4,\"link\":\"carrier_pigeon\",\"dur_ns\":1}",
            "not json at all",
        ] {
            let err = KernelLog::parse_jsonl(bad).unwrap_err();
            assert!(
                matches!(err, CalibrateError::Format { .. }),
                "{bad}: {err:?}"
            );
            // Errors carry the 1-based line number.
            assert!(err.to_string().contains("line 1"), "{err}");
        }
    }

    #[test]
    fn p2p_lines_need_no_group() {
        let text =
            "{\"type\":\"comm\",\"op\":\"p2p\",\"bytes\":1024,\"link\":\"nvlink\",\"dur_ns\":3100}";
        let log = KernelLog::parse_jsonl(text).unwrap();
        assert_eq!(log.comms[0].group, 2);
    }
}

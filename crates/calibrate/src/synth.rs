//! Synthetic ground truth for closed-loop calibration tests and benches.
//!
//! The recovery experiment needs a cluster whose parameters are *known but
//! not the defaults*: perturb the base topology deterministically, generate
//! a kernel log by evaluating the perturbed ("true") cost models over a
//! spread of workload shapes, then check that [`fit`](crate::fit::fit)
//! starting from the unperturbed base recovers every parameter. All
//! randomness flows through `optimus-detrand`, so a seed fully determines
//! the truth and the log.

use optimus_cluster::{
    ClusterTopology, CommCostModel, DeviceId, KernelClass, LinkClass, ProcessGroup,
};
use optimus_detrand::{rngs::StdRng, RngExt, SeedableRng};

use crate::samples::{CommOp, CommSample, KernelLog, KernelSample};

/// Deterministically perturbs every fitted parameter of a topology:
/// efficiencies by ±20%, link bandwidths by −40%/+40%, link latencies by
/// ×0.8–×2.0. The result plays the role of the "real" cluster a profiler
/// would observe.
pub fn perturb_topology(base: &ClusterTopology, seed: u64) -> ClusterTopology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = base.clone();
    t.gpu.matmul_efficiency = (t.gpu.matmul_efficiency * rng.random_range(0.8..1.2)).min(1.0);
    t.gpu.attention_efficiency = (t.gpu.attention_efficiency * rng.random_range(0.8..1.2)).min(1.0);
    t.gpu.membw_efficiency = (t.gpu.membw_efficiency * rng.random_range(0.8..1.2)).min(1.0);
    t.nvlink.bandwidth *= rng.random_range(0.6..1.4);
    t.nvlink.latency *= rng.random_range(0.8..2.0);
    t.rdma.bandwidth *= rng.random_range(0.6..1.4);
    t.rdma.latency *= rng.random_range(0.8..2.0);
    t
}

/// Copies the calibratable parameters (GPU profile and link profiles) of
/// `truth` onto the shape (node count, GPUs per node) of `base` — how a
/// truth fitted on one cluster size is replayed on another.
pub fn apply_profiles(base: &ClusterTopology, truth: &ClusterTopology) -> ClusterTopology {
    let mut t = base.clone();
    t.gpu = truth.gpu.clone();
    t.nvlink = truth.nvlink;
    t.rdma = truth.rdma;
    t
}

/// Generates a noiseless kernel log by evaluating `truth`'s cost models
/// over a seeded spread of kernel and collective shapes. `truth` must span
/// at least two nodes so RDMA groups exist.
///
/// Kernel samples cycle the three [`KernelClass`]es with FLOP counts (or
/// HBM byte counts for memory-bound kernels) spread over ~1.5 decades;
/// comm samples cycle all-gather / reduce-scatter / all-reduce / p2p over
/// both link classes, with group sizes 2–8 intra-node and 2–4 across nodes
/// and payloads from 1 KiB to 128 MiB.
pub fn synth_log(truth: &ClusterTopology, seed: u64, kernels: usize, comms: usize) -> KernelLog {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let comm = CommCostModel::new(truth.clone());
    let mut log = KernelLog::default();

    for i in 0..kernels {
        let class = [
            KernelClass::Matmul,
            KernelClass::Attention,
            KernelClass::MemoryBound,
        ][i % 3];
        let (flops, bytes) = match class {
            KernelClass::MemoryBound => (0.0, rng.random_range(1e8..5e9)),
            _ => (rng.random_range(1e10..5e11), 0.0),
        };
        log.kernels.push(KernelSample {
            class,
            flops,
            bytes,
            dur: truth.gpu.kernel_time(class, flops, bytes),
        });
    }

    for i in 0..comms {
        let op = [
            CommOp::AllGather,
            CommOp::ReduceScatter,
            CommOp::AllReduce,
            CommOp::P2p,
        ][i % 4];
        let link = [LinkClass::NvLink, LinkClass::Rdma][(i / 4) % 2];
        let bytes = 1u64 << rng.random_range(10..=27u32);
        let (group, dur) = match op {
            CommOp::P2p => {
                let (src, dst) = match link {
                    LinkClass::Rdma => (DeviceId(0), DeviceId(truth.gpus_per_node)),
                    _ => (DeviceId(0), DeviceId(1)),
                };
                (2, comm.p2p_time(bytes, src, dst))
            }
            _ => {
                let kind = op.collective_kind().expect("collective op");
                let group = match link {
                    // Contiguous ranks inside node 0.
                    LinkClass::Rdma => {
                        let g = [2u32, 4][i % 2];
                        ProcessGroup::new(
                            (0..g).map(|r| DeviceId(r * truth.gpus_per_node)).collect(),
                        )
                        .expect("strided group")
                    }
                    _ => {
                        let g = [2u32, 4, 8][i % 3].min(truth.gpus_per_node);
                        ProcessGroup::contiguous(0, g).expect("contiguous group")
                    }
                };
                (group.size(), comm.collective_time(kind, bytes, &group))
            }
        };
        log.comms.push(CommSample {
            op,
            bytes,
            group,
            link,
            dur,
        });
    }

    log
}

/// Convenience: perturb, synthesise, and return `(truth, log)` in one call —
/// the front half of the closed loop.
pub fn closed_loop_input(
    base: &ClusterTopology,
    seed: u64,
    kernels: usize,
    comms: usize,
) -> (ClusterTopology, KernelLog) {
    let truth = perturb_topology(base, seed);
    let log = synth_log(&truth, seed, kernels, comms);
    (truth, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ClusterTopology {
        ClusterTopology::hopper_cluster(32).unwrap()
    }

    #[test]
    fn perturbation_is_deterministic_and_nontrivial() {
        let a = perturb_topology(&base(), 7);
        let b = perturb_topology(&base(), 7);
        assert_eq!(a, b);
        let c = perturb_topology(&base(), 8);
        assert_ne!(a, c);
        // Every parameter actually moved.
        assert_ne!(a.gpu.matmul_efficiency, base().gpu.matmul_efficiency);
        assert_ne!(a.nvlink.bandwidth, base().nvlink.bandwidth);
        assert_ne!(a.rdma.latency, base().rdma.latency);
        // Efficiencies stay physical.
        assert!(a.gpu.matmul_efficiency <= 1.0 && a.gpu.matmul_efficiency > 0.0);
        assert!(a.gpu.membw_efficiency <= 1.0);
    }

    #[test]
    fn synth_log_covers_all_parameters() {
        let (_, log) = closed_loop_input(&base(), 3, 30, 40);
        assert_eq!(log.len(), 70);
        for class in [
            KernelClass::Matmul,
            KernelClass::Attention,
            KernelClass::MemoryBound,
        ] {
            assert!(log.kernels.iter().any(|k| k.class == class));
        }
        for link in [LinkClass::NvLink, LinkClass::Rdma] {
            assert!(log
                .comms
                .iter()
                .any(|c| c.link == link && c.op == CommOp::P2p));
            assert!(log
                .comms
                .iter()
                .any(|c| c.link == link && c.op != CommOp::P2p));
        }
        // Deterministic: same seed, same log (bit-for-bit via JSONL text).
        let (_, again) = closed_loop_input(&base(), 3, 30, 40);
        assert_eq!(again.to_jsonl(), log.to_jsonl());
    }

    #[test]
    fn apply_profiles_keeps_shape() {
        let truth = perturb_topology(&base(), 11);
        let small = ClusterTopology::hopper_cluster(8).unwrap();
        let applied = apply_profiles(&small, &truth);
        assert_eq!(applied.num_gpus(), 8);
        assert_eq!(applied.gpu, truth.gpu);
        assert_eq!(applied.nvlink, truth.nvlink);
        assert_eq!(applied.rdma, truth.rdma);
    }
}

//! MTBF calibration from the chrome-trace fault-event track.
//!
//! The fleet what-if engine consumes per-component failure rates; this
//! module recovers them from observed traces, closing the same
//! profile→model loop the kernel/link fits close. Input is the instant
//! annotations of any trace `optimus-trace` writes (category `fault`) —
//! including the graphless [`optimus_trace::write_fault_event_trace`]
//! output a fleet logger would emit.
//!
//! The estimator is the censored-exponential maximum likelihood: observing
//! a pooled (fleet-level) failure stream over a window of length `T` with
//! `n` events, the MLE of the rate is `λ = n/T` regardless of where the
//! censoring cuts the last inter-arrival, so the fleet MTBF is `T/n` and
//! the per-device MTBF is `T·D/n` for `D` devices. Like every fit in this
//! crate it is closed-form and sequential — identical input bytes produce
//! bit-identical parameters.

use optimus_faults::Component;
use optimus_json::Json;

use crate::error::{format_err, CalibrateError};
use crate::ingest::IngestedAnnotation;

/// The fitted failure rate of one component class.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentRate {
    /// The component class.
    pub component: Component,
    /// Fault events attributed to this class in the window.
    pub events: usize,
    /// Fleet-level MTBF estimate `T/n` (infinite when no events landed).
    pub mtbf_fleet_ns: f64,
    /// Per-device MTBF estimate `T·D/n` (infinite when no events landed).
    pub mtbf_device_ns: f64,
}

/// Per-component MTBF estimates recovered from a fault-event track.
#[derive(Debug, Clone, PartialEq)]
pub struct MtbfCalibration {
    /// Observation window the events were pooled over.
    pub horizon_ns: u64,
    /// Devices the pooled stream superposes.
    pub num_devices: u32,
    /// One entry per [`Component`] class, in [`Component::ALL`] order.
    pub rates: Vec<ComponentRate>,
}

/// Maps a fault-track label to its component class. Accepts both the
/// component labels the fleet generator emits (`gpu`, `nic_link`, `host`)
/// and the scenario labels the per-step fault writers use (`fail_stop`,
/// `degraded_*`, `device_loss`).
fn component_of_label(label: &str) -> Option<Component> {
    if let Some(c) = Component::parse(label) {
        return Some(c);
    }
    match label {
        "fail_stop" => Some(Component::Gpu),
        "device_loss" => Some(Component::Host),
        l if l.starts_with("degraded_") => Some(Component::NicLink),
        _ => None,
    }
}

/// Fits per-component MTBF from the fault-track annotations of an ingested
/// trace. Annotations with category other than `fault`, or labels that map
/// to no component class (jitter, stragglers, stalls), are ignored. Events
/// outside `[0, horizon_ns)` are rejected — they would bias the censored
/// MLE silently.
pub fn fit_mtbf(
    annotations: &[IngestedAnnotation],
    horizon_ns: u64,
    num_devices: u32,
) -> Result<MtbfCalibration, CalibrateError> {
    if horizon_ns == 0 || num_devices == 0 {
        return format_err("mtbf fit needs horizon > 0 and num_devices > 0");
    }
    let mut counts = [0usize; Component::ALL.len()];
    for a in annotations {
        if a.cat != "fault" {
            continue;
        }
        let Some(c) = component_of_label(&a.label) else {
            continue;
        };
        if a.at < 0 || a.at as u64 >= horizon_ns {
            return format_err(format!(
                "fault event '{}' at {} ns falls outside the {} ns observation window",
                a.label, a.at, horizon_ns
            ));
        }
        counts[Component::ALL.iter().position(|&x| x == c).unwrap()] += 1;
    }
    let rates = Component::ALL
        .iter()
        .zip(counts)
        .map(|(&component, events)| {
            let mtbf_fleet_ns = if events == 0 {
                f64::INFINITY
            } else {
                horizon_ns as f64 / events as f64
            };
            ComponentRate {
                component,
                events,
                mtbf_fleet_ns,
                mtbf_device_ns: mtbf_fleet_ns * f64::from(num_devices),
            }
        })
        .collect();
    Ok(MtbfCalibration {
        horizon_ns,
        num_devices,
        rates,
    })
}

impl MtbfCalibration {
    /// The rate of one component class.
    pub fn rate(&self, c: Component) -> &ComponentRate {
        self.rates
            .iter()
            .find(|r| r.component == c)
            .expect("rates cover every component class")
    }

    /// Byte-stable text encoding: one
    /// `mtbf_device_<class> <f64-bit-pattern-hex> <decimal> events=<n>`
    /// line per class, same contract as [`crate::Calibration::golden_text`].
    pub fn golden_text(&self) -> String {
        let mut out = String::new();
        for r in &self.rates {
            out.push_str(&format!(
                "mtbf_device_{} {:016x} {:e} events={}\n",
                r.component.label(),
                r.mtbf_device_ns.to_bits(),
                r.mtbf_device_ns,
                r.events
            ));
        }
        out
    }

    /// The calibration as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("horizon_ns", Json::from(self.horizon_ns)),
            ("num_devices", Json::from(self.num_devices)),
            (
                "rates",
                Json::Arr(
                    self.rates
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("component", Json::from(r.component.label())),
                                ("events", Json::from(r.events as u64)),
                                ("mtbf_fleet_ns", Json::from(r.mtbf_fleet_ns)),
                                ("mtbf_device_ns", Json::from(r.mtbf_device_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::IngestedTrace;
    use optimus_recovery::{ClassedTrace, ComponentSpec};
    use optimus_trace::{write_fault_event_trace, TraceAnnotation};

    /// End-to-end round trip: plant per-device MTBFs, generate the classed
    /// fleet trace, serialise it through the graphless fault-event writer,
    /// ingest the chrome JSON back, fit — and recover the planted rates.
    #[test]
    fn round_trips_planted_truth_rates() {
        let mtbf_gpu: u64 = 1_000_000_000;
        let devices: u32 = 16;
        let horizon: u64 = 50_000_000_000;
        let specs = ComponentSpec::standard_mix(
            mtbf_gpu,
            optimus_cluster::DurNs(5_000),
            optimus_cluster::DurNs(500_000),
        );
        let trace = ClassedTrace::generate(99, horizon, devices, &specs).expect("classed trace");
        assert!(trace.len() > 500, "want a statistically useful trace");

        let faults: Vec<TraceAnnotation> = trace
            .events()
            .iter()
            .map(|e| TraceAnnotation {
                label: e.component.label().into(),
                device: e.failure.device,
                at_us: e.failure.at.0 as f64 / 1000.0,
                detail: String::new(),
            })
            .collect();
        let mut buf = Vec::new();
        write_fault_event_trace(&faults, &[], &mut buf).expect("write");
        let ingested =
            IngestedTrace::parse_chrome(std::str::from_utf8(&buf).unwrap()).expect("ingest");
        assert_eq!(ingested.annotations.len(), trace.len());

        let cal = fit_mtbf(&ingested.annotations, horizon, devices).expect("fit");
        for spec in &specs {
            let fitted = cal.rate(spec.component).mtbf_device_ns;
            let truth = spec.mtbf_device_ns as f64;
            let rel = (fitted - truth).abs() / truth;
            // Statistical tolerance scales with 1/√n: the rarest class
            // (host) sees the fewest events.
            let events = cal.rate(spec.component).events as f64;
            let tol = 4.0 / events.sqrt();
            assert!(
                rel < tol,
                "{}: fitted {fitted} vs planted {truth} (rel {rel:.3}, tol {tol:.3}, n {events})",
                spec.component.label()
            );
        }
    }

    #[test]
    fn fit_is_deterministic_and_stable_text() {
        let anns = vec![
            IngestedAnnotation {
                label: "gpu".into(),
                cat: "fault".into(),
                device: 0,
                at: 1_000,
                detail: String::new(),
            },
            IngestedAnnotation {
                label: "fail_stop".into(),
                cat: "fault".into(),
                device: 1,
                at: 2_000,
                detail: String::new(),
            },
            IngestedAnnotation {
                label: "degraded_rdma".into(),
                cat: "fault".into(),
                device: 2,
                at: 3_000,
                detail: String::new(),
            },
            // Ignored: wrong category, unmapped label.
            IngestedAnnotation {
                label: "gpu".into(),
                cat: "recovery".into(),
                device: 0,
                at: 4_000,
                detail: String::new(),
            },
            IngestedAnnotation {
                label: "kernel_jitter".into(),
                cat: "fault".into(),
                device: 0,
                at: 5_000,
                detail: String::new(),
            },
        ];
        let a = fit_mtbf(&anns, 10_000, 4).expect("fit");
        let b = fit_mtbf(&anns, 10_000, 4).expect("fit");
        assert_eq!(a, b);
        assert_eq!(a.rate(Component::Gpu).events, 2);
        assert_eq!(a.rate(Component::NicLink).events, 1);
        assert_eq!(a.rate(Component::Host).events, 0);
        assert_eq!(a.rate(Component::Gpu).mtbf_fleet_ns, 5_000.0);
        assert_eq!(a.rate(Component::Gpu).mtbf_device_ns, 20_000.0);
        assert!(a.rate(Component::Host).mtbf_fleet_ns.is_infinite());
        let text = a.golden_text();
        assert_eq!(text, b.golden_text());
        assert!(text.contains("mtbf_device_gpu"));
        assert!(text.contains("events=2"));
        assert_eq!(text.lines().count(), Component::ALL.len());
        // JSON encodes every class.
        let json = a.to_json().to_compact();
        assert!(json.contains("\"nic_link\""));
    }

    #[test]
    fn fit_rejects_degenerate_windows_and_stray_events() {
        assert!(fit_mtbf(&[], 0, 4).is_err());
        assert!(fit_mtbf(&[], 1_000, 0).is_err());
        let out_of_window = [IngestedAnnotation {
            label: "gpu".into(),
            cat: "fault".into(),
            device: 0,
            at: 2_000,
            detail: String::new(),
        }];
        assert!(fit_mtbf(&out_of_window, 1_000, 4).is_err());
        let empty = fit_mtbf(&[], 1_000, 4).expect("empty fit");
        assert!(empty.rates.iter().all(|r| r.events == 0));
    }
}

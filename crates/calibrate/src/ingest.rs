//! Chrome-trace ingestion: parse a trace JSON array back into per-device,
//! per-stream busy timelines.
//!
//! The ingester accepts any trace in the subset of the Chrome-trace format
//! that `optimus_trace::write_chrome_trace_with_annotations` emits — complete
//! (`"ph":"X"`) duration events on stream tracks plus thread-scoped instant
//! (`"ph":"i"`) events on the annotation track — and is the round-trip
//! inverse of that writer: timestamps are µs floats in the file and are
//! recovered to the exact integer nanosecond (for any timeline shorter than
//! ~26 days, `round(ns/1000.0 * 1000.0) == ns` in f64).
//!
//! Malformed input returns a typed [`CalibrateError`] instead of panicking:
//! truncated JSON, non-array roots, missing fields, unknown phases, negative
//! timestamps, and per-track timestamp inversions are all rejected.

use std::collections::BTreeMap;

use optimus_core::{DeviceProfile, FreeInterval, Ts};
use optimus_json::Json;
use optimus_sim::{SimResult, Stream, TaskGraph};

use crate::error::{format_err, CalibrateError};

/// One busy span recovered from a trace, in integer nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestedSpan {
    /// Event name (the task label).
    pub label: String,
    /// Event category (the stream name, e.g. `"compute"`).
    pub cat: String,
    /// Span start in nanoseconds.
    pub start: Ts,
    /// Span end in nanoseconds.
    pub end: Ts,
}

impl IngestedSpan {
    /// Span length.
    pub fn len(&self) -> Ts {
        self.end - self.start
    }

    /// True for zero-length spans.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// One instant annotation recovered from a trace's fault or recovery track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestedAnnotation {
    /// Annotation label.
    pub label: String,
    /// Event category (`"fault"`, `"recovery"`; empty on traces written
    /// before the recovery track existed).
    pub cat: String,
    /// Device the annotation is attached to.
    pub device: u32,
    /// Instant in nanoseconds.
    pub at: Ts,
    /// Detail text from the event's `args`.
    pub detail: String,
}

/// A reconstructed timeline: busy spans per `(device, track)` in track
/// (FIFO issue) order, plus instant annotations.
///
/// Track ids follow the writer's convention: `0..Stream::COUNT` are the
/// stream tracks ([`Stream::index`]), `Stream::COUNT` is the annotation
/// track.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestedTrace {
    /// Busy spans keyed by `(device, tid)`, each list in issue order.
    pub tracks: BTreeMap<(u32, u32), Vec<IngestedSpan>>,
    /// Instant annotations in file order.
    pub annotations: Vec<IngestedAnnotation>,
}

/// Converts a trace timestamp in microseconds to integer nanoseconds.
fn ns(us: f64) -> Ts {
    (us * 1000.0).round() as Ts
}

fn get_f64(ev: &Json, key: &str, index: usize) -> Result<f64, CalibrateError> {
    ev.field(key)
        .and_then(|v| v.as_f64())
        .map_err(|e| CalibrateError::Format {
            context: format!("event {index}: {e}"),
        })
}

fn get_u32(ev: &Json, key: &str, index: usize) -> Result<u32, CalibrateError> {
    ev.field(key)
        .and_then(|v| v.as_u32())
        .map_err(|e| CalibrateError::Format {
            context: format!("event {index}: {e}"),
        })
}

fn get_str(ev: &Json, key: &str, index: usize) -> Result<String, CalibrateError> {
    ev.field(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .map_err(|e| CalibrateError::Format {
            context: format!("event {index}: {e}"),
        })
}

impl IngestedTrace {
    /// Parses a Chrome-trace JSON array (the format written by
    /// `optimus_trace::write_chrome_trace_with_annotations`).
    pub fn parse_chrome(text: &str) -> Result<IngestedTrace, CalibrateError> {
        let root = Json::parse(text)?;
        let events = root.as_arr().map_err(|_| CalibrateError::Format {
            context: "trace root must be a JSON array of events".into(),
        })?;
        let mut trace = IngestedTrace::default();
        for (index, ev) in events.iter().enumerate() {
            let phase = get_str(ev, "ph", index)?;
            match phase.as_str() {
                "X" => {
                    let ts = get_f64(ev, "ts", index)?;
                    let dur = get_f64(ev, "dur", index)?;
                    if ts < 0.0 || dur < 0.0 || !ts.is_finite() || !dur.is_finite() {
                        return format_err(format!(
                            "event {index}: ts/dur must be finite and non-negative \
                             (ts {ts}, dur {dur})"
                        ));
                    }
                    let device = get_u32(ev, "pid", index)?;
                    let tid = get_u32(ev, "tid", index)?;
                    let span = IngestedSpan {
                        label: get_str(ev, "name", index)?,
                        cat: get_str(ev, "cat", index)?,
                        start: ns(ts),
                        end: ns(ts) + ns(dur),
                    };
                    let track = trace.tracks.entry((device, tid)).or_default();
                    if let Some(prev) = track.last() {
                        if span.start < prev.end {
                            return Err(CalibrateError::OutOfOrder {
                                device,
                                tid,
                                index,
                                prev_end_ns: prev.end,
                                start_ns: span.start,
                            });
                        }
                    }
                    track.push(span);
                }
                "i" => {
                    let ts = get_f64(ev, "ts", index)?;
                    if ts < 0.0 || !ts.is_finite() {
                        return format_err(format!(
                            "event {index}: instant ts must be finite and non-negative ({ts})"
                        ));
                    }
                    let detail = ev
                        .get("args")
                        .and_then(|a| a.get("detail"))
                        .and_then(|d| d.as_str().ok())
                        .unwrap_or_default()
                        .to_string();
                    // Lenient: traces written before the recovery track
                    // carried no meaningful instant category.
                    let cat = ev
                        .get("cat")
                        .and_then(|c| c.as_str().ok())
                        .unwrap_or_default()
                        .to_string();
                    trace.annotations.push(IngestedAnnotation {
                        label: get_str(ev, "name", index)?,
                        cat,
                        device: get_u32(ev, "pid", index)?,
                        at: ns(ts),
                        detail,
                    });
                }
                other => {
                    return Err(CalibrateError::UnknownPhase {
                        phase: other.to_string(),
                        index,
                    });
                }
            }
        }
        Ok(trace)
    }

    /// Builds the timeline directly from a simulation — the ground truth the
    /// chrome round-trip is checked against, and the cheap path when the
    /// graph is already in memory (fidelity comparisons).
    pub fn from_simulation(graph: &TaskGraph, result: &SimResult) -> IngestedTrace {
        let mut trace = IngestedTrace::default();
        for t in graph.tasks() {
            let span = result.span(t.id);
            trace
                .tracks
                .entry((t.device, t.stream.index() as u32))
                .or_default()
                .push(IngestedSpan {
                    label: t.label.to_string(),
                    cat: stream_name(t.stream.index() as u32).to_string(),
                    start: span.start.0 as Ts,
                    end: span.end.0 as Ts,
                });
        }
        trace
    }

    /// Total number of busy spans across all tracks.
    pub fn num_spans(&self) -> usize {
        self.tracks.values().map(Vec::len).sum()
    }

    /// Busy spans of one `(device, tid)` track, if present.
    pub fn track(&self, device: u32, tid: u32) -> &[IngestedSpan] {
        self.tracks
            .get(&(device, tid))
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Devices present in the trace, ascending.
    pub fn devices(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.tracks.keys().map(|&(d, _)| d).collect();
        out.dedup();
        out
    }

    /// End of the last span on any track — the step makespan.
    pub fn makespan(&self) -> Ts {
        self.tracks
            .values()
            .flat_map(|spans| spans.iter().map(|s| s.end))
            .max()
            .unwrap_or(0)
    }

    /// Reconstructs one device's bubble profile from its compute and TP-comm
    /// tracks, mirroring how `optimus_core` extracts profiles from a
    /// simulation: interior bubbles are gaps between consecutive compute
    /// spans (tagged `tp` when overlapping TP-comm traffic), comm windows are
    /// compute spans minus TP-comm busy time, and anchors index the next
    /// kernel on the owning stream's queue.
    pub fn device_profile(&self, device: u32, makespan: Ts) -> DeviceProfile {
        let mut compute: Vec<(Ts, Ts)> = self
            .track(device, Stream::Compute.index() as u32)
            .iter()
            .map(|s| (s.start, s.end))
            .collect();
        compute.sort_unstable();
        let mut tp_sorted: Vec<(Ts, Ts)> = self
            .track(device, Stream::TpComm.index() as u32)
            .iter()
            .map(|s| (s.start, s.end))
            .collect();
        tp_sorted.sort_unstable();
        let overlaps_tp = |a: Ts, b: Ts| tp_sorted.iter().any(|&(s, e)| s < b && a < e);

        if compute.is_empty() {
            return DeviceProfile {
                leading_end: makespan,
                trailing_start: makespan,
                interior: Vec::new(),
                comm_windows: Vec::new(),
            };
        }

        let leading_end = compute[0].0;
        let trailing_start = compute.last().unwrap().1;

        let mut interior = Vec::new();
        for (i, w) in compute.windows(2).enumerate() {
            let (a, b) = (w[0].1, w[1].0);
            if b > a {
                interior.push(FreeInterval {
                    start: a,
                    end: b,
                    tp: overlaps_tp(a, b),
                    anchor: (i + 1) as u32,
                });
            }
        }

        let tp_anchor = |t: Ts| tp_sorted.partition_point(|&(s, _)| s < t) as u32;
        let mut comm_windows = Vec::new();
        for &(start, b) in &compute {
            let mut a = start;
            for &(ts, te) in &tp_sorted {
                if te <= a || ts >= b {
                    continue;
                }
                if ts > a {
                    comm_windows.push(FreeInterval {
                        start: a,
                        end: ts,
                        tp: false,
                        anchor: tp_anchor(a),
                    });
                }
                a = a.max(te);
            }
            if b > a {
                comm_windows.push(FreeInterval {
                    start: a,
                    end: b,
                    tp: false,
                    anchor: tp_anchor(a),
                });
            }
        }

        DeviceProfile {
            leading_end,
            trailing_start,
            interior,
            comm_windows,
        }
    }
}

/// Stream/track display name used in trace categories and fidelity tables.
pub fn stream_name(tid: u32) -> &'static str {
    match tid {
        0 => "compute",
        1 => "tp_comm",
        2 => "p2p",
        3 => "dp_comm",
        4 => "enc_p2p",
        5 => "annot",
        6 => "recovery",
        7 => "fill",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_cluster::DurNs;
    use optimus_sim::{simulate, TaskKind};

    fn two_device_graph() -> (TaskGraph, SimResult) {
        let mut g = TaskGraph::new(2);
        let a = g.push(
            "fwd",
            0,
            Stream::Compute,
            DurNs(1_000),
            TaskKind::Generic,
            vec![],
        );
        let b = g.push(
            "recv",
            1,
            Stream::P2p,
            DurNs(500),
            TaskKind::Generic,
            vec![a],
        );
        g.push(
            "bwd",
            1,
            Stream::Compute,
            DurNs(2_000),
            TaskKind::Generic,
            vec![b],
        );
        let r = simulate(&g).unwrap();
        (g, r)
    }

    #[test]
    fn round_trips_own_chrome_output() {
        let (g, r) = two_device_graph();
        let mut buf = Vec::new();
        optimus_trace::write_chrome_trace(&g, &r, &mut buf).unwrap();
        let parsed = IngestedTrace::parse_chrome(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, IngestedTrace::from_simulation(&g, &r));
        assert_eq!(parsed.num_spans(), g.len());
        assert_eq!(parsed.makespan(), r.makespan().0 as Ts);
    }

    #[test]
    fn truncated_json_is_a_typed_error() {
        let (g, r) = two_device_graph();
        let mut buf = Vec::new();
        optimus_trace::write_chrome_trace(&g, &r, &mut buf).unwrap();
        let text = std::str::from_utf8(&buf).unwrap();
        let truncated = &text[..text.len() - 10];
        assert!(matches!(
            IngestedTrace::parse_chrome(truncated),
            Err(CalibrateError::Json(_))
        ));
    }

    #[test]
    fn unknown_phase_is_a_typed_error() {
        let text = r#"[{"name":"x","cat":"compute","ph":"B","ts":0,"pid":0,"tid":0}]"#;
        match IngestedTrace::parse_chrome(text) {
            Err(CalibrateError::UnknownPhase { phase, index }) => {
                assert_eq!(phase, "B");
                assert_eq!(index, 0);
            }
            other => panic!("expected UnknownPhase, got {other:?}"),
        }
    }

    #[test]
    fn out_of_order_track_is_a_typed_error() {
        let text = r#"[
            {"name":"a","cat":"compute","ph":"X","ts":5,"dur":2,"pid":0,"tid":0},
            {"name":"b","cat":"compute","ph":"X","ts":1,"dur":1,"pid":0,"tid":0}
        ]"#;
        match IngestedTrace::parse_chrome(text) {
            Err(CalibrateError::OutOfOrder {
                device,
                tid,
                index,
                prev_end_ns,
                start_ns,
            }) => {
                assert_eq!((device, tid, index), (0, 0, 1));
                assert_eq!(prev_end_ns, 7_000);
                assert_eq!(start_ns, 1_000);
            }
            other => panic!("expected OutOfOrder, got {other:?}"),
        }
    }

    #[test]
    fn different_tracks_may_interleave() {
        // Out-of-order is per-track: a later event on a *different* track may
        // start earlier.
        let text = r#"[
            {"name":"a","cat":"compute","ph":"X","ts":5,"dur":2,"pid":0,"tid":0},
            {"name":"b","cat":"tp_comm","ph":"X","ts":1,"dur":1,"pid":0,"tid":1},
            {"name":"c","cat":"compute","ph":"X","ts":3,"dur":1,"pid":1,"tid":0}
        ]"#;
        let t = IngestedTrace::parse_chrome(text).unwrap();
        assert_eq!(t.num_spans(), 3);
        assert_eq!(t.track(0, 1)[0].start, 1_000);
    }

    #[test]
    fn negative_and_missing_fields_are_format_errors() {
        let neg = r#"[{"name":"a","cat":"c","ph":"X","ts":-1,"dur":1,"pid":0,"tid":0}]"#;
        assert!(matches!(
            IngestedTrace::parse_chrome(neg),
            Err(CalibrateError::Format { .. })
        ));
        let missing = r#"[{"name":"a","ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]"#;
        assert!(matches!(
            IngestedTrace::parse_chrome(missing),
            Err(CalibrateError::Format { .. })
        ));
        let root = r#"{"not":"an array"}"#;
        assert!(matches!(
            IngestedTrace::parse_chrome(root),
            Err(CalibrateError::Format { .. })
        ));
    }

    #[test]
    fn annotations_are_recovered_with_detail() {
        let (g, r) = two_device_graph();
        let ann = [optimus_trace::TraceAnnotation {
            label: "straggler".into(),
            device: 1,
            at_us: 0.75,
            detail: "slowdown 1.5x".into(),
        }];
        let mut buf = Vec::new();
        optimus_trace::write_chrome_trace_with_annotations(&g, &r, &ann, &mut buf).unwrap();
        let t = IngestedTrace::parse_chrome(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(t.annotations.len(), 1);
        let a = &t.annotations[0];
        assert_eq!(a.label, "straggler");
        assert_eq!(a.cat, "fault");
        assert_eq!(a.device, 1);
        assert_eq!(a.at, 750);
        assert_eq!(a.detail, "slowdown 1.5x");
    }

    #[test]
    fn recovery_instants_keep_their_category() {
        let (g, r) = two_device_graph();
        let faults = [optimus_trace::TraceAnnotation {
            label: "fail_stop".into(),
            device: 0,
            at_us: 0.1,
            detail: "restart".into(),
        }];
        let recovery = [optimus_trace::TraceAnnotation {
            label: "rollback".into(),
            device: 0,
            at_us: 0.3,
            detail: "to ckpt 2".into(),
        }];
        let mut buf = Vec::new();
        optimus_trace::write_chrome_trace_with_recovery(&g, &r, &faults, &recovery, &mut buf)
            .unwrap();
        let t = IngestedTrace::parse_chrome(std::str::from_utf8(&buf).unwrap()).unwrap();
        let cats: Vec<&str> = t.annotations.iter().map(|a| a.cat.as_str()).collect();
        assert_eq!(cats, vec!["fault", "recovery"]);
        // A category-less instant (pre-recovery trace) still parses.
        let legacy = r#"[{"name":"x","ph":"i","s":"t","ts":1,"pid":0,"tid":5}]"#;
        let t = IngestedTrace::parse_chrome(legacy).unwrap();
        assert_eq!(t.annotations[0].cat, "");
        assert_eq!(stream_name(6), "recovery");
    }

    #[test]
    fn zero_duration_spans_survive() {
        let text = r#"[
            {"name":"a","cat":"compute","ph":"X","ts":1,"dur":0,"pid":0,"tid":0},
            {"name":"b","cat":"compute","ph":"X","ts":1,"dur":2,"pid":0,"tid":0}
        ]"#;
        let t = IngestedTrace::parse_chrome(text).unwrap();
        assert_eq!(t.num_spans(), 2);
        assert!(t.track(0, 0)[0].is_empty());
        assert_eq!(t.track(0, 0)[1].len(), 2_000);
    }
}

//! Typed errors for trace ingestion and parameter fitting.
//!
//! Ingestion must never panic on hostile input — truncated files, unknown
//! event phases, reordered events — because traces come from outside the
//! simulator (real profilers, hand-edited captures). Every malformed input
//! maps to a variant that names what was wrong and where.

use std::fmt;

use optimus_json::JsonError;

/// Why a trace or kernel log could not be ingested, or a fit could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrateError {
    /// The input was not well-formed JSON (truncated file, stray bytes, ...).
    Json(JsonError),
    /// The JSON was well-formed but structurally wrong for the format
    /// (missing field, wrong type, negative timestamp, unknown enum tag).
    Format {
        /// Human-readable description of the violation and its location.
        context: String,
    },
    /// A Chrome-trace event carried a phase the ingester does not model.
    UnknownPhase {
        /// The `ph` value encountered.
        phase: String,
        /// Index of the offending event in the trace array.
        index: usize,
    },
    /// Within one `(pid, tid)` track, an event started before the previous
    /// event on that track ended — FIFO stream semantics forbid this, so the
    /// trace cannot come from a well-formed timeline.
    OutOfOrder {
        /// Device (`pid`) of the track.
        device: u32,
        /// Track (`tid`) within the device.
        tid: u32,
        /// Index of the offending event in the trace array.
        index: usize,
        /// End of the previous span on the track, in nanoseconds.
        prev_end_ns: i64,
        /// Start of the offending span, in nanoseconds.
        start_ns: i64,
    },
    /// The fit was asked to run with no usable samples at all.
    NoSamples {
        /// What the fit needed ("kernel samples", "comm samples").
        what: String,
    },
}

impl fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrateError::Json(e) => write!(f, "trace is not valid JSON: {e}"),
            CalibrateError::Format { context } => write!(f, "malformed trace: {context}"),
            CalibrateError::UnknownPhase { phase, index } => {
                write!(f, "event {index}: unknown chrome-trace phase `{phase}`")
            }
            CalibrateError::OutOfOrder {
                device,
                tid,
                index,
                prev_end_ns,
                start_ns,
            } => write!(
                f,
                "event {index}: out-of-order timestamp on device {device} track {tid}: \
                 span starts at {start_ns}ns before the previous span ends at {prev_end_ns}ns"
            ),
            CalibrateError::NoSamples { what } => {
                write!(f, "nothing to fit: the log contains no {what}")
            }
        }
    }
}

impl std::error::Error for CalibrateError {}

impl From<JsonError> for CalibrateError {
    fn from(e: JsonError) -> CalibrateError {
        CalibrateError::Json(e)
    }
}

/// Shorthand for [`CalibrateError::Format`].
pub(crate) fn format_err<T>(context: impl Into<String>) -> Result<T, CalibrateError> {
    Err(CalibrateError::Format {
        context: context.into(),
    })
}

//! GPU memory estimation for model states and activations.
//!
//! Follows the paper's accounting (§4.5): resident model states cost
//! `k = 6` bytes/parameter (bf16 parameters + fp32 gradients) while Adam
//! optimizer states (fp32 master weights + two moments, 12 bytes/parameter)
//! are sharded across data-parallel ranks by the distributed optimizer.
//! Activation memory follows Korthikanti et al. ("Reducing activation
//! recomputation in large transformer models"), the analysis the model
//! planner draws on when pruning parallel plans (§4.1).

use crate::config::TransformerConfig;

/// Bytes per resident parameter: bf16 weights (2) + fp32 gradients (4).
pub const RESIDENT_BYTES_PER_PARAM: u64 = 6;

/// Bytes per parameter of Adam state: fp32 master + m + v.
pub const OPTIMIZER_BYTES_PER_PARAM: u64 = 12;

/// Memory for the *model states* of `params` parameters held on one GPU,
/// with optimizer state sharded over `dp` ranks.
pub fn model_state_bytes(params: u64, dp: u64) -> u64 {
    params * RESIDENT_BYTES_PER_PARAM + params * OPTIMIZER_BYTES_PER_PARAM / dp.max(1)
}

/// Activation-recomputation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recompute {
    /// Store all activations.
    None,
    /// Selective recomputation: recompute attention score/softmax
    /// activations, store the rest (Megatron-LM default at scale).
    Selective,
    /// Full recomputation: store only layer inputs.
    Full,
}

/// Activation bytes for one transformer layer processing one microbatch of
/// `batch` sequences × `seq` tokens under tensor parallelism `tp` with
/// sequence parallelism enabled.
pub fn activation_bytes_per_layer(
    cfg: &TransformerConfig,
    batch: u64,
    seq: u64,
    tp: u64,
    recompute: Recompute,
) -> u64 {
    let t = tp.max(1) as f64;
    let (b, s, h) = (batch as f64, seq as f64, cfg.hidden as f64);
    let a = cfg.heads as f64;
    // Korthikanti et al. eq. (2): per-layer activation bytes with sequence
    // parallelism = s·b·h·(34/t) plus the attention term 5·a·s²·b/t.
    let base = s * b * h * 34.0 / t;
    let attn = 5.0 * a * s * s * b / t;
    let per_layer = match recompute {
        Recompute::None => base + attn,
        Recompute::Selective => base,
        Recompute::Full => 2.0 * s * b * h / t,
    };
    per_layer as u64
}

/// Activation bytes per layer *without* sequence parallelism (Korthikanti
/// et al. eq. (1)): the `10·s·b·h` term (layernorm inputs, dropout masks,
/// residuals) is replicated on every TP rank instead of sharded. Systems
/// that lack sequence parallelism (Alpa, vanilla tensor parallelism) pay
/// this overhead — one of the paper's reasons Alpa needs more memory than
/// optimized Megatron-LM (§7).
pub fn activation_bytes_no_seqpar(
    cfg: &TransformerConfig,
    batch: u64,
    seq: u64,
    tp: u64,
    recompute: Recompute,
) -> u64 {
    let t = tp.max(1) as f64;
    let (b, s, h) = (batch as f64, seq as f64, cfg.hidden as f64);
    let a = cfg.heads as f64;
    let base = s * b * h * (10.0 + 24.0 / t);
    let attn = 5.0 * a * s * s * b / t;
    let per_layer = match recompute {
        Recompute::None => base + attn,
        Recompute::Selective => base,
        Recompute::Full => 2.0 * s * b * h,
    };
    per_layer as u64
}

/// Peak activation memory on the worst pipeline stage.
///
/// Under 1F1B, stage `i` of `pp` stages keeps activations for up to
/// `pp − i` in-flight microbatches; the first stage is the peak with
/// `min(pp, n_microbatches)` microbatches resident across its
/// `layers_on_stage` layers.
pub fn pipeline_peak_activation_bytes(
    per_layer_bytes: u64,
    layers_on_stage: u64,
    pp: u64,
    n_microbatches: u64,
) -> u64 {
    let inflight = pp.min(n_microbatches).max(1);
    per_layer_bytes * layers_on_stage * inflight
}

/// A full memory estimate for one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryEstimate {
    /// Resident weights + gradients.
    pub model_states: u64,
    /// Sharded optimizer states.
    pub optimizer: u64,
    /// Peak activations.
    pub activations: u64,
    /// Fixed overhead: CUDA context, NCCL buffers, fragmentation headroom.
    pub overhead: u64,
}

impl MemoryEstimate {
    /// Default fixed overhead (~4 GiB: CUDA context, NCCL buffers,
    /// fragmentation headroom).
    pub const DEFAULT_OVERHEAD: u64 = 4 << 30;

    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.model_states + self.optimizer + self.activations + self.overhead
    }

    /// True when the estimate fits in a GPU of `capacity` bytes.
    pub fn fits(&self, capacity: u64) -> bool {
        self.total() <= capacity
    }

    /// Total in GiB for reporting.
    pub fn total_gib(&self) -> f64 {
        self.total() as f64 / (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_state_accounting_matches_k6() {
        // 1B parameters, DP=8: 6 GB resident + 1.5 GB optimizer shard.
        let b = model_state_bytes(1_000_000_000, 8);
        assert_eq!(b, 6_000_000_000 + 1_500_000_000);
    }

    #[test]
    fn dp1_optimizer_unsharded() {
        let b = model_state_bytes(100, 1);
        assert_eq!(b, 100 * 18);
    }

    #[test]
    fn recompute_orders_memory() {
        let cfg = TransformerConfig::gpt_175b();
        let none = activation_bytes_per_layer(&cfg, 2, 2048, 8, Recompute::None);
        let sel = activation_bytes_per_layer(&cfg, 2, 2048, 8, Recompute::Selective);
        let full = activation_bytes_per_layer(&cfg, 2, 2048, 8, Recompute::Full);
        assert!(none > sel && sel > full);
    }

    #[test]
    fn tp_divides_activations() {
        let cfg = TransformerConfig::gpt_175b();
        let t1 = activation_bytes_per_layer(&cfg, 2, 2048, 1, Recompute::Selective);
        let t8 = activation_bytes_per_layer(&cfg, 2, 2048, 8, Recompute::Selective);
        assert_eq!(t1 / t8, 8);
    }

    #[test]
    fn first_stage_holds_most_microbatches() {
        let peak = pipeline_peak_activation_bytes(1 << 20, 12, 8, 16);
        // 12 layers × 8 in-flight microbatches × 1 MiB.
        assert_eq!(peak, (1 << 20) * 12 * 8);
        // Fewer microbatches than stages: bounded by n_mb.
        assert_eq!(
            pipeline_peak_activation_bytes(1 << 20, 12, 8, 4),
            (1 << 20) * 12 * 4
        );
    }

    #[test]
    fn no_seqpar_costs_more_than_seqpar() {
        let cfg = TransformerConfig::gpt_175b();
        for r in [Recompute::None, Recompute::Selective] {
            let with = activation_bytes_per_layer(&cfg, 2, 2048, 8, r);
            let without = activation_bytes_no_seqpar(&cfg, 2, 2048, 8, r);
            assert!(without > with, "{r:?}");
        }
        // At TP=1 the two models agree on the sharded-term structure
        // (34 = 10 + 24).
        let with = activation_bytes_per_layer(&cfg, 2, 2048, 1, Recompute::Selective);
        let without = activation_bytes_no_seqpar(&cfg, 2, 2048, 1, Recompute::Selective);
        assert_eq!(with, without);
    }

    #[test]
    fn estimate_totals_and_fits() {
        let e = MemoryEstimate {
            model_states: 40 << 30,
            optimizer: 10 << 30,
            activations: 20 << 30,
            overhead: 4 << 30,
        };
        assert_eq!(e.total(), 74 << 30);
        assert!(e.fits(80 << 30));
        assert!(!e.fits(64 << 30));
        assert!((e.total_gib() - 74.0).abs() < 1e-9);
    }
}

//! Multimodal LLM assembly: one or more modality encoders feeding an LLM
//! backbone through an input projector (§2.1, Fig. 1).
//!
//! Per the paper, the input projector's compute is negligible and is treated
//! as the final layer of its encoder; we fold its parameters into the encoder
//! totals and ignore its FLOPs.

use crate::config::TransformerConfig;
use optimus_cluster::FpHasher;

/// A complete multimodal LLM: encoders + projectors + LLM backbone.
#[derive(Debug, Clone, PartialEq)]
pub struct MllmConfig {
    /// Model name, e.g. `"Model D"`.
    pub name: String,
    /// Modality encoders (one per branch; §4.4 covers multi-branch models).
    pub encoders: Vec<TransformerConfig>,
    /// LLM backbone.
    pub llm: TransformerConfig,
    /// LLM sequence length in tokens (2048 in every paper experiment).
    pub llm_seq: u64,
    /// Visual tokens produced per sample by each encoder (24×24 patch grid).
    pub encoder_seq: u64,
}

impl MllmConfig {
    /// Builds a single-encoder MLLM with the paper's sequence lengths.
    pub fn new(name: &str, encoder: TransformerConfig, llm: TransformerConfig) -> MllmConfig {
        MllmConfig {
            name: name.to_string(),
            encoders: vec![encoder],
            llm,
            llm_seq: 2048,
            encoder_seq: 576,
        }
    }

    /// Builds a multi-encoder MLLM (Table 6 DualEnc configurations).
    pub fn multi(
        name: &str,
        encoders: Vec<TransformerConfig>,
        llm: TransformerConfig,
    ) -> MllmConfig {
        MllmConfig {
            name: name.to_string(),
            encoders,
            llm,
            llm_seq: 2048,
            encoder_seq: 576,
        }
    }

    /// Folds the full MLLM assembly into a fingerprint hasher. Encoder order
    /// is semantic (branch `i` feeds stage slot `i` of the colocation
    /// layout), so encoders are folded in declaration order.
    pub fn fold_into(&self, h: &mut FpHasher) {
        h.fold_str("mllm/v1").fold_str(&self.name);
        h.fold_u64(self.encoders.len() as u64);
        for e in &self.encoders {
            e.fold_into(h);
        }
        self.llm.fold_into(h);
        h.fold_u64(self.llm_seq).fold_u64(self.encoder_seq);
    }

    /// Projector parameters for one encoder (a linear map from encoder width
    /// to LLM width, folded into the encoder's final layer).
    pub fn projector_params(&self, encoder: &TransformerConfig) -> u64 {
        encoder.hidden * self.llm.hidden + self.llm.hidden
    }

    /// Total parameters of all encoders including projectors.
    pub fn encoder_params(&self) -> u64 {
        self.encoders
            .iter()
            .map(|e| e.total_params() + self.projector_params(e))
            .sum()
    }

    /// Total parameters of the full MLLM.
    pub fn total_params(&self) -> u64 {
        self.encoder_params() + self.llm.total_params()
    }

    /// True when the model has more than one encoder branch.
    pub fn is_multi_branch(&self) -> bool {
        self.encoders.len() > 1
    }

    // ---- Paper evaluation presets --------------------------------------

    /// Model A: ViT-11B + LLAMA-70B (Table 3, 64 GPUs, batch 32).
    pub fn model_a() -> MllmConfig {
        MllmConfig::new(
            "Model A",
            TransformerConfig::vit_11b(),
            TransformerConfig::llama_70b(),
        )
    }

    /// Model B: ViT-22B + LLAMA-70B (Table 3, 128 GPUs, batch 64).
    pub fn model_b() -> MllmConfig {
        MllmConfig::new(
            "Model B",
            TransformerConfig::vit_22b(),
            TransformerConfig::llama_70b(),
        )
    }

    /// Model C: ViT-11B + GPT-175B (Table 3, 256 GPUs, batch 128).
    pub fn model_c() -> MllmConfig {
        MllmConfig::new(
            "Model C",
            TransformerConfig::vit_11b(),
            TransformerConfig::gpt_175b(),
        )
    }

    /// Model D: ViT-22B + GPT-175B (Table 3, 512 GPUs, batch 256; also the
    /// strong-scaling model of Table 5).
    pub fn model_d() -> MllmConfig {
        MllmConfig::new(
            "Model D",
            TransformerConfig::vit_22b(),
            TransformerConfig::gpt_175b(),
        )
    }

    /// Small model of Appendix C: ViT-3B + GPT-11B on 8 GPUs.
    pub fn small() -> MllmConfig {
        MllmConfig::new(
            "ViT-3B+GPT-11B",
            TransformerConfig::vit_3b(),
            TransformerConfig::gpt_11b(),
        )
    }

    /// DualEnc(11B, 5B): ViT-11B + ViT-5B + GPT-175B (Table 6).
    pub fn dual_enc_11_5() -> MllmConfig {
        MllmConfig::multi(
            "DualEnc(11B, 5B)",
            vec![TransformerConfig::vit_11b(), TransformerConfig::vit_5b()],
            TransformerConfig::gpt_175b(),
        )
    }

    /// DualEnc(22B, 5B): ViT-22B + ViT-5B + GPT-175B (Table 6).
    pub fn dual_enc_22_5() -> MllmConfig {
        MllmConfig::multi(
            "DualEnc(22B, 5B)",
            vec![TransformerConfig::vit_22b(), TransformerConfig::vit_5b()],
            TransformerConfig::gpt_175b(),
        )
    }

    /// DualEnc(22B, 11B): ViT-22B + ViT-11B + GPT-175B (Table 6).
    pub fn dual_enc_22_11() -> MllmConfig {
        MllmConfig::multi(
            "DualEnc(22B, 11B)",
            vec![TransformerConfig::vit_22b(), TransformerConfig::vit_11b()],
            TransformerConfig::gpt_175b(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llm_dominates_parameters() {
        // §2.1: "the LLM backbone has a significantly larger number of
        // parameters compared to other components".
        for m in [
            MllmConfig::model_a(),
            MllmConfig::model_b(),
            MllmConfig::model_c(),
            MllmConfig::model_d(),
        ] {
            assert!(m.llm.total_params() > 2 * m.encoder_params(), "{}", m.name);
        }
    }

    #[test]
    fn projector_folded_into_encoder() {
        let m = MllmConfig::model_d();
        let proj = m.projector_params(&m.encoders[0]);
        assert_eq!(proj, 6144 * 12288 + 12288);
        assert!(m.encoder_params() > m.encoders[0].total_params());
    }

    #[test]
    fn dual_encoder_counts_both() {
        let d = MllmConfig::dual_enc_22_11();
        assert!(d.is_multi_branch());
        let single = MllmConfig::model_d();
        assert!(d.encoder_params() > single.encoder_params());
    }

    #[test]
    fn paper_sequence_lengths() {
        let m = MllmConfig::model_d();
        assert_eq!(m.llm_seq, 2048);
        assert_eq!(m.encoder_seq, 576);
    }
}

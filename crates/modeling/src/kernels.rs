//! Kernel-level decomposition of transformer layers.
//!
//! Optimus schedules encoder work at *kernel* granularity so that it fits
//! inside sub-millisecond TP bubbles (§2.3 Challenge 3, Design Decision 3).
//! This module decomposes one layer forward/backward into the same kernel
//! sequence Megatron-LM issues under tensor parallelism with sequence
//! parallelism: two all-gathers and two reduce-scatters per layer pass
//! interleaved with the compute kernels (Korthikanti et al., §2.2 Fig. 3).

use optimus_cluster::{
    CollectiveKind, CommCostModel, DurNs, GpuProfile, KernelClass, ProcessGroup,
};

use crate::config::TransformerConfig;

/// Direction of a layer pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Forward propagation.
    Forward,
    /// Backward propagation (≈2× forward FLOPs).
    Backward,
}

/// The work performed by one kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelBody {
    /// A compute kernel occupying the GPU compute stream.
    Compute {
        /// Roofline class.
        class: KernelClass,
        /// FLOPs executed on this rank.
        flops: f64,
        /// HBM bytes moved on this rank.
        bytes: f64,
    },
    /// A tensor-parallel collective occupying the communication stream.
    TpComm {
        /// Which collective.
        kind: CollectiveKind,
        /// Full activation payload in bytes (pre-sharding).
        bytes: u64,
    },
}

/// One kernel in a layer's execution sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Stable kernel name for traces and tests.
    pub name: &'static str,
    /// The work it performs.
    pub body: KernelBody,
}

impl KernelSpec {
    /// True for compute-stream kernels.
    pub fn is_compute(&self) -> bool {
        matches!(self.body, KernelBody::Compute { .. })
    }
}

const BF16: f64 = 2.0;

/// Produces the ordered kernel sequence of one layer pass on one
/// tensor-parallel rank.
///
/// `batch` is the microbatch size (sequences), `seq` the tokens per sequence,
/// `tp` the tensor-parallel degree. Compute FLOPs are divided by `tp`;
/// collective payloads are the full activation size `batch·seq·hidden·2` bytes
/// (bf16), matching Megatron's sequence-parallel all-gather/reduce-scatter.
pub fn layer_kernels(
    cfg: &TransformerConfig,
    batch: u64,
    seq: u64,
    tp: u64,
    pass: Pass,
) -> Vec<KernelSpec> {
    let t = tp.max(1) as f64;
    let (b, s, h) = (batch as f64, seq as f64, cfg.hidden as f64);
    let f = cfg.ffn_hidden as f64;
    let kv_dim = (cfg.kv_heads * cfg.head_dim) as f64;
    let attn_dim = (cfg.heads * cfg.head_dim) as f64;
    let act_bytes = (b * s * h * BF16) as u64;
    // Backward matmuls do roughly twice the forward work (dgrad + wgrad).
    let scale = match pass {
        Pass::Forward => 1.0,
        Pass::Backward => 2.0,
    };

    let comp = |name: &'static str, class: KernelClass, flops: f64, bytes: f64| KernelSpec {
        name,
        body: KernelBody::Compute {
            class,
            flops: flops * scale / t,
            bytes: bytes * scale / t,
        },
    };
    let comm = |name: &'static str, kind: CollectiveKind| KernelSpec {
        name,
        body: KernelBody::TpComm {
            kind,
            bytes: act_bytes,
        },
    };

    let qkv_flops = 2.0 * b * s * h * (h + 2.0 * kv_dim);
    let attn_flops = 2.0 * b * s * s * attn_dim;
    let out_flops = 2.0 * b * s * h * h;
    let fc1_flops = 2.0 * b * s * h * f * if cfg.gated_mlp { 2.0 } else { 1.0 };
    let fc2_flops = 2.0 * b * s * h * f;
    let ln_bytes = 4.0 * b * s * h * BF16;
    let act_fn_bytes = 3.0 * b * s * f * BF16;

    match pass {
        Pass::Forward => vec![
            comm("tp_allgather_attn", CollectiveKind::AllGather),
            comp("layernorm1", KernelClass::MemoryBound, 0.0, ln_bytes),
            comp("qkv_proj", KernelClass::Matmul, qkv_flops, 0.0),
            comp("attn_score", KernelClass::Attention, attn_flops, 0.0),
            comp("attn_context", KernelClass::Attention, attn_flops, 0.0),
            comp("out_proj", KernelClass::Matmul, out_flops, 0.0),
            comm("tp_reducescatter_attn", CollectiveKind::ReduceScatter),
            comm("tp_allgather_mlp", CollectiveKind::AllGather),
            comp("layernorm2", KernelClass::MemoryBound, 0.0, ln_bytes),
            comp("fc1", KernelClass::Matmul, fc1_flops, 0.0),
            comp("act_fn", KernelClass::MemoryBound, 0.0, act_fn_bytes),
            comp("fc2", KernelClass::Matmul, fc2_flops, 0.0),
            comm("tp_reducescatter_mlp", CollectiveKind::ReduceScatter),
        ],
        Pass::Backward => vec![
            comm("tp_allgather_mlp_bwd", CollectiveKind::AllGather),
            comp("fc2_bwd", KernelClass::Matmul, fc2_flops, 0.0),
            comp("act_fn_bwd", KernelClass::MemoryBound, 0.0, act_fn_bytes),
            comp("fc1_bwd", KernelClass::Matmul, fc1_flops, 0.0),
            comp("layernorm2_bwd", KernelClass::MemoryBound, 0.0, ln_bytes),
            comm("tp_reducescatter_mlp_bwd", CollectiveKind::ReduceScatter),
            comm("tp_allgather_attn_bwd", CollectiveKind::AllGather),
            comp("out_proj_bwd", KernelClass::Matmul, out_flops, 0.0),
            comp("attn_context_bwd", KernelClass::Attention, attn_flops, 0.0),
            comp("attn_score_bwd", KernelClass::Attention, attn_flops, 0.0),
            comp("qkv_proj_bwd", KernelClass::Matmul, qkv_flops, 0.0),
            comp("layernorm1_bwd", KernelClass::MemoryBound, 0.0, ln_bytes),
            comm("tp_reducescatter_attn_bwd", CollectiveKind::ReduceScatter),
        ],
    }
}

/// Evaluates kernel durations against a hardware profile and a TP group.
#[derive(Debug, Clone)]
pub struct KernelTimer {
    gpu: GpuProfile,
    comm: CommCostModel,
    tp_group: ProcessGroup,
}

impl KernelTimer {
    /// Binds a timer to a GPU profile, communication model and the TP group
    /// whose collectives the layer issues.
    pub fn new(gpu: GpuProfile, comm: CommCostModel, tp_group: ProcessGroup) -> KernelTimer {
        KernelTimer {
            gpu,
            comm,
            tp_group,
        }
    }

    /// Duration of one kernel.
    pub fn duration(&self, kernel: &KernelSpec) -> DurNs {
        match &kernel.body {
            KernelBody::Compute {
                class,
                flops,
                bytes,
            } => self.gpu.kernel_time(*class, *flops, *bytes),
            KernelBody::TpComm { kind, bytes } => {
                self.comm.collective_time(*kind, *bytes, &self.tp_group)
            }
        }
    }

    /// Total duration of a kernel sequence, assuming serial execution (the
    /// compute stream stalls on TP collectives — exactly the TP bubble).
    pub fn total(&self, kernels: &[KernelSpec]) -> DurNs {
        kernels.iter().map(|k| self.duration(k)).sum()
    }

    /// Sum of compute-kernel time only (the part that can fill LLM bubbles).
    pub fn compute_total(&self, kernels: &[KernelSpec]) -> DurNs {
        kernels
            .iter()
            .filter(|k| k.is_compute())
            .map(|k| self.duration(k))
            .sum()
    }

    /// Sum of communication-kernel time only.
    pub fn comm_total(&self, kernels: &[KernelSpec]) -> DurNs {
        kernels
            .iter()
            .filter(|k| !k.is_compute())
            .map(|k| self.duration(k))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_cluster::ClusterTopology;

    fn timer(tp: u32) -> KernelTimer {
        let topo = ClusterTopology::hopper_cluster(8).unwrap();
        let comm = CommCostModel::new(topo);
        let group = ProcessGroup::contiguous(0, tp).unwrap();
        KernelTimer::new(GpuProfile::h100(), comm, group)
    }

    #[test]
    fn forward_has_two_allgathers_and_two_reducescatters() {
        for pass in [Pass::Forward, Pass::Backward] {
            let ks = layer_kernels(&TransformerConfig::gpt_175b(), 1, 2048, 8, pass);
            let ag = ks
                .iter()
                .filter(|k| {
                    matches!(
                        k.body,
                        KernelBody::TpComm {
                            kind: CollectiveKind::AllGather,
                            ..
                        }
                    )
                })
                .count();
            let rs = ks
                .iter()
                .filter(|k| {
                    matches!(
                        k.body,
                        KernelBody::TpComm {
                            kind: CollectiveKind::ReduceScatter,
                            ..
                        }
                    )
                })
                .count();
            assert_eq!((ag, rs), (2, 2), "{pass:?}");
        }
    }

    #[test]
    fn tp_bubble_duration_matches_paper_anchor() {
        // §2.3: TP bubbles average ≈300 µs for GPT-175B layers. With
        // microbatch size 2 and seq 2048, one all-gather of the activation
        // over 8 NVLink ranks should land in the 100–400 µs range.
        let t = timer(8);
        let ks = layer_kernels(&TransformerConfig::gpt_175b(), 2, 2048, 8, Pass::Forward);
        let ag = ks.iter().find(|k| k.name == "tp_allgather_attn").unwrap();
        let d = t.duration(ag).as_micros_f64();
        assert!((100.0..400.0).contains(&d), "all-gather {d:.0}us");
    }

    #[test]
    fn vit22b_layer_time_matches_paper_anchor() {
        // §2.3: one ViT-22B layer ≈1.4 ms forward / ≈2.0 ms backward.
        // Without TP and with one image (576 visual tokens) the compute time
        // must land in the right regime (sub-3 ms, fwd < bwd).
        let t = timer(1);
        let fwd = layer_kernels(&TransformerConfig::vit_22b(), 1, 576, 1, Pass::Forward);
        let bwd = layer_kernels(&TransformerConfig::vit_22b(), 1, 576, 1, Pass::Backward);
        let tf = t.compute_total(&fwd).as_millis_f64();
        let tb = t.compute_total(&bwd).as_millis_f64();
        assert!((0.5..3.0).contains(&tf), "fwd {tf:.2}ms");
        assert!(tb > tf);
        assert!((1.0..5.0).contains(&tb), "bwd {tb:.2}ms");
    }

    #[test]
    fn tensor_parallelism_divides_compute() {
        let t1 = timer(1);
        let t8 = timer(8);
        let cfg = TransformerConfig::gpt_175b();
        let k1 = layer_kernels(&cfg, 2, 2048, 1, Pass::Forward);
        let k8 = layer_kernels(&cfg, 2, 2048, 8, Pass::Forward);
        let c1 = t1.compute_total(&k1).as_secs_f64();
        let c8 = t8.compute_total(&k8).as_secs_f64();
        // Compute shrinks by ~8× (modulo fixed kernel overheads).
        assert!(c1 / c8 > 6.0, "c1 {c1} c8 {c8}");
        // TP=1 has zero communication time.
        assert!(t1.comm_total(&k1).is_zero());
        assert!(!t8.comm_total(&k8).is_zero());
    }

    #[test]
    fn backward_compute_roughly_twice_forward() {
        let t = timer(8);
        let cfg = TransformerConfig::gpt_175b();
        let f = t.compute_total(&layer_kernels(&cfg, 2, 2048, 8, Pass::Forward));
        let b = t.compute_total(&layer_kernels(&cfg, 2, 2048, 8, Pass::Backward));
        let ratio = b.as_secs_f64() / f.as_secs_f64();
        assert!((1.6..2.2).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn gated_mlp_increases_fc1_work() {
        let plain = TransformerConfig::gpt_175b();
        let gated = TransformerConfig::llama_70b();
        let kp = layer_kernels(&plain, 1, 2048, 1, Pass::Forward);
        let kg = layer_kernels(&gated, 1, 2048, 1, Pass::Forward);
        let flops_of =
            |ks: &[KernelSpec], name: &str| match &ks.iter().find(|k| k.name == name).unwrap().body
            {
                KernelBody::Compute { flops, .. } => *flops,
                _ => unreachable!(),
            };
        // Gated fc1 fuses gate+up: 2× the single-matrix FLOPs at equal dims.
        assert!(flops_of(&kg, "fc1") / (2.0 * 2048.0) > 0.0);
        assert!(flops_of(&kp, "fc1") > 0.0);
    }
}

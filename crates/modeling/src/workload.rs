//! Training workload descriptions and step reports shared by every system
//! (baselines and Optimus).

use crate::mllm::MllmConfig;
use optimus_cluster::{Fingerprint, FpHasher};

/// One training job: model + cluster size + batching.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The MLLM being trained.
    pub mllm: MllmConfig,
    /// Total GPUs.
    pub num_gpus: u32,
    /// Global batch size (samples per step).
    pub global_batch: u32,
    /// Sequences per microbatch.
    pub microbatch_size: u32,
}

impl Workload {
    /// Builds a workload.
    pub fn new(
        mllm: MllmConfig,
        num_gpus: u32,
        global_batch: u32,
        microbatch_size: u32,
    ) -> Workload {
        Workload {
            mllm,
            num_gpus,
            global_batch,
            microbatch_size,
        }
    }

    /// Canonical content fingerprint of this workload: the full model
    /// architecture plus cluster size and batching. Two workloads with the
    /// same fingerprint present the identical problem to the plan search.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new("workload/v1");
        self.mllm.fold_into(&mut h);
        h.fold_u32(self.num_gpus)
            .fold_u32(self.global_batch)
            .fold_u32(self.microbatch_size);
        h.finish()
    }

    /// Microbatches per data-parallel pipeline for a DP degree.
    ///
    /// Returns `None` when the batch does not divide evenly.
    pub fn microbatches(&self, dp: u32) -> Option<u32> {
        let per_rank = self.global_batch.checked_div(dp)?;
        if per_rank == 0
            || !self.global_batch.is_multiple_of(dp)
            || per_rank % self.microbatch_size != 0
        {
            return None;
        }
        Some(per_rank / self.microbatch_size)
    }

    /// The weak-scaling experiments of Table 3 (with Appendix D.1 microbatch
    /// size 1), as (workload, megatron plan `(dp, pp, tp)`, balanced `V`).
    pub fn weak_scaling() -> Vec<(Workload, (u32, u32, u32), u32)> {
        vec![
            (
                Workload::new(MllmConfig::model_a(), 64, 32, 1),
                (2, 4, 8),
                6,
            ),
            (
                Workload::new(MllmConfig::model_b(), 128, 64, 1),
                (4, 4, 8),
                6,
            ),
            (
                Workload::new(MllmConfig::model_c(), 256, 128, 1),
                (4, 8, 8),
                12,
            ),
            (
                Workload::new(MllmConfig::model_d(), 512, 256, 1),
                (8, 8, 8),
                12,
            ),
        ]
    }

    /// The strong-scaling experiments of Table 5 / Appendix D.2: Model D,
    /// batch 1536, microbatch size 2, at 1536/2048/3072 GPUs.
    pub fn strong_scaling() -> Vec<(Workload, (u32, u32, u32), u32)> {
        vec![
            (
                Workload::new(MllmConfig::model_d(), 1536, 1536, 2),
                (24, 8, 8),
                12,
            ),
            (
                Workload::new(MllmConfig::model_d(), 2048, 1536, 2),
                (32, 8, 8),
                12,
            ),
            (
                Workload::new(MllmConfig::model_d(), 3072, 1536, 2),
                (48, 8, 8),
                12,
            ),
        ]
    }

    /// Multi-encoder experiments of Table 6: 512 GPUs, batch 256,
    /// (DP=8, PP=8, TP=8), microbatch size 2 (Appendix D.3).
    pub fn multi_encoder() -> Vec<(Workload, (u32, u32, u32))> {
        vec![
            (
                Workload::new(MllmConfig::dual_enc_11_5(), 512, 256, 2),
                (8, 8, 8),
            ),
            (
                Workload::new(MllmConfig::dual_enc_22_5(), 512, 256, 2),
                (8, 8, 8),
            ),
            (
                Workload::new(MllmConfig::dual_enc_22_11(), 512, 256, 2),
                (8, 8, 8),
            ),
        ]
    }

    /// The Appendix C small-model comparison: ViT-3B + GPT-11B, 8 A100s,
    /// batch 16.
    pub fn small_model() -> Workload {
        Workload::new(MllmConfig::small(), 8, 16, 1)
    }
}

/// Outcome of one simulated training step under one system.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// System name ("Megatron-LM", "Optimus", ...).
    pub system: String,
    /// Iteration time in seconds.
    pub iteration_secs: f64,
    /// Model FLOPs Utilization.
    pub mfu: f64,
    /// Aggregate achieved PFLOP/s across the cluster.
    pub aggregate_pflops: f64,
    /// Peak per-GPU memory in GiB.
    pub peak_memory_gib: f64,
    /// True when the configuration does not fit (OOM / infeasible); timing
    /// fields are then meaningless.
    pub oom: bool,
}

impl StepReport {
    /// A report for a configuration that failed to fit.
    pub fn oom(system: &str, peak_memory_gib: f64) -> StepReport {
        StepReport {
            system: system.to_string(),
            iteration_secs: f64::INFINITY,
            mfu: 0.0,
            aggregate_pflops: 0.0,
            peak_memory_gib,
            oom: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbatch_counts_match_table7() {
        // Table 7: 32 / 24 / 16 microbatches at 1536 / 2048 / 3072 GPUs.
        let expected = [32u32, 24, 16];
        for ((w, (dp, _, _), _), want) in Workload::strong_scaling().into_iter().zip(expected) {
            assert_eq!(w.microbatches(dp), Some(want));
        }
    }

    #[test]
    fn weak_scaling_microbatches_divisible_by_pp() {
        for (w, (dp, pp, _), _) in Workload::weak_scaling() {
            let n = w.microbatches(dp).unwrap();
            assert_eq!(n % pp, 0, "{}", w.mllm.name);
        }
    }

    #[test]
    fn uneven_batch_rejected() {
        let w = Workload::new(MllmConfig::small(), 8, 16, 1);
        assert_eq!(w.microbatches(3), None);
        assert_eq!(w.microbatches(32), None); // fewer samples than ranks
        assert_eq!(w.microbatches(16), Some(1));
    }

    #[test]
    fn fingerprint_tracks_model_and_batching() {
        let a = Workload::new(MllmConfig::model_d(), 512, 256, 2);
        let b = Workload::new(MllmConfig::model_d(), 512, 256, 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other_model = Workload::new(MllmConfig::model_c(), 512, 256, 2);
        assert_ne!(a.fingerprint(), other_model.fingerprint());
        let other_batch = Workload::new(MllmConfig::model_d(), 512, 256, 1);
        assert_ne!(a.fingerprint(), other_batch.fingerprint());
        // Encoder order is semantic for multi-branch models.
        let mut dual = MllmConfig::dual_enc_22_11();
        let fwd = Workload::new(dual.clone(), 512, 256, 2).fingerprint();
        dual.encoders.reverse();
        let rev = Workload::new(dual, 512, 256, 2).fingerprint();
        assert_ne!(fwd, rev);
    }

    #[test]
    fn oom_report_is_marked() {
        let r = StepReport::oom("FSDP", 153.0);
        assert!(r.oom);
        assert!(r.iteration_secs.is_infinite());
    }
}

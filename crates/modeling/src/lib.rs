//! Model zoo and analytic cost model for the Optimus reproduction.
//!
//! Provides every model configuration used in the paper's evaluation
//! (Appendix A), FLOP accounting for layers and full training steps, the
//! kernel-level decomposition of transformer layers that the bubble scheduler
//! packs into sub-millisecond bubbles, and the memory model the planner uses
//! to prune parallel plans.
//!
//! # Examples
//!
//! ```
//! use optimus_modeling::{MllmConfig, TransformerConfig};
//!
//! let model = MllmConfig::model_d();
//! assert_eq!(model.llm.name, "GPT-175B");
//! let vit = TransformerConfig::vit_22b();
//! assert!(vit.total_params() > 20_000_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod flops;
pub mod kernels;
pub mod memory;
pub mod mllm;
pub mod traces;
pub mod workload;

pub use config::TransformerConfig;
pub use kernels::{layer_kernels, KernelBody, KernelSpec, KernelTimer, Pass};
pub use memory::{MemoryEstimate, Recompute};
pub use mllm::MllmConfig;
pub use traces::{ResolutionTier, TraceConfig};
pub use workload::{StepReport, Workload};

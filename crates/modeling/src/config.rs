//! Transformer model configurations, including every model used in the
//! paper's evaluation (Appendix A, Tables 8 and 9).

use optimus_cluster::FpHasher;

/// Architecture of one transformer stack (encoder or LLM backbone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Human-readable name, e.g. `"ViT-22B"`.
    pub name: String,
    /// Hidden width `h`.
    pub hidden: u64,
    /// Number of transformer layers.
    pub layers: u64,
    /// MLP intermediate dimension `f`.
    pub ffn_hidden: u64,
    /// Number of attention (query) heads.
    pub heads: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// Number of key/value heads (`heads` unless grouped-query attention).
    pub kv_heads: u64,
    /// Whether the MLP is gated (three matrices, LLaMA-style) rather than a
    /// plain two-matrix FFN.
    pub gated_mlp: bool,
    /// Vocabulary size for token models; 0 for patch-embedding encoders.
    pub vocab: u64,
}

impl TransformerConfig {
    /// Builds a plain (non-gated, full-KV) configuration.
    pub fn new(
        name: &str,
        hidden: u64,
        layers: u64,
        ffn_hidden: u64,
        heads: u64,
        head_dim: u64,
    ) -> TransformerConfig {
        TransformerConfig {
            name: name.to_string(),
            hidden,
            layers,
            ffn_hidden,
            heads,
            head_dim,
            kv_heads: heads,
            gated_mlp: false,
            vocab: 0,
        }
    }

    /// Folds every architecture field into a fingerprint hasher in canonical
    /// order (part of [`crate::Workload::fingerprint`]).
    pub fn fold_into(&self, h: &mut FpHasher) {
        h.fold_str("transformer/v1")
            .fold_str(&self.name)
            .fold_u64(self.hidden)
            .fold_u64(self.layers)
            .fold_u64(self.ffn_hidden)
            .fold_u64(self.heads)
            .fold_u64(self.head_dim)
            .fold_u64(self.kv_heads)
            .fold_bool(self.gated_mlp)
            .fold_u64(self.vocab);
    }

    /// Parameter count of the attention block of one layer.
    pub fn attn_params_per_layer(&self) -> u64 {
        let kv_dim = self.kv_heads * self.head_dim;
        // Q and output projections are h×h; K and V are h×kv_dim.
        self.hidden * self.hidden * 2 + self.hidden * kv_dim * 2
    }

    /// Parameter count of the MLP block of one layer.
    pub fn mlp_params_per_layer(&self) -> u64 {
        let mats = if self.gated_mlp { 3 } else { 2 };
        self.hidden * self.ffn_hidden * mats
    }

    /// Parameter count of one transformer layer (attention + MLP + norms).
    pub fn params_per_layer(&self) -> u64 {
        self.attn_params_per_layer() + self.mlp_params_per_layer() + 4 * self.hidden
    }

    /// Embedding / unembedding parameters.
    pub fn embedding_params(&self) -> u64 {
        if self.vocab > 0 {
            // Tied input/output embeddings are rare at this scale; count both.
            2 * self.vocab * self.hidden
        } else {
            // Patch embedding + positional embedding, negligible but nonzero.
            (3 * 14 * 14 + 1024) * self.hidden
        }
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.layers * self.params_per_layer() + self.embedding_params()
    }

    // ---- Encoder presets (Table 8) ------------------------------------

    /// ViT-3B (width 2304, depth 48, MLP 9216, 18 heads).
    pub fn vit_3b() -> TransformerConfig {
        TransformerConfig::new("ViT-3B", 2304, 48, 9216, 18, 128)
    }

    /// ViT-5B (width 3072, depth 48, MLP 12288, 24 heads).
    pub fn vit_5b() -> TransformerConfig {
        TransformerConfig::new("ViT-5B", 3072, 48, 12288, 24, 128)
    }

    /// ViT-10B (width 4096, depth 48, MLP 16384, 32 heads).
    pub fn vit_10b() -> TransformerConfig {
        TransformerConfig::new("ViT-10B", 4096, 48, 16384, 32, 128)
    }

    /// ViT-11B — the paper describes it as a scaled-down ViT-22B with a
    /// smaller hidden size; width 4352 yields ≈11 B parameters.
    pub fn vit_11b() -> TransformerConfig {
        TransformerConfig::new("ViT-11B", 4352, 48, 17408, 34, 128)
    }

    /// ViT-22B (width 6144, depth 48, MLP 24576, 48 heads) [Dehghani et al.].
    pub fn vit_22b() -> TransformerConfig {
        TransformerConfig::new("ViT-22B", 6144, 48, 24576, 48, 128)
    }

    // ---- LLM backbone presets (Table 9) --------------------------------

    /// GPT-11B (width 3072, depth 80, 24 heads).
    pub fn gpt_11b() -> TransformerConfig {
        let mut c = TransformerConfig::new("GPT-11B", 3072, 80, 12288, 24, 128);
        c.vocab = 51200;
        c
    }

    /// LLAMA-70B (width 8192, depth 80, 64 heads, GQA, gated MLP).
    pub fn llama_70b() -> TransformerConfig {
        let mut c = TransformerConfig::new("LLAMA-70B", 8192, 80, 28672, 64, 128);
        c.kv_heads = 8;
        c.gated_mlp = true;
        c.vocab = 32000;
        c
    }

    /// GPT-175B (width 12288, depth 96, 96 heads) [Brown et al.].
    pub fn gpt_175b() -> TransformerConfig {
        let mut c = TransformerConfig::new("GPT-175B", 12288, 96, 49152, 96, 128);
        c.vocab = 51200;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn billions(p: u64) -> f64 {
        p as f64 / 1e9
    }

    #[test]
    fn preset_param_counts_match_paper_names() {
        // Each named model must land within ~12% of its nominal size.
        // Exception: Table 9's GPT-11B dimensions (width 3072, depth 80,
        // ffn 4h) actually give ≈9.4B parameters; we keep the paper's dims
        // and accept the wider gap for that preset.
        let cases: Vec<(TransformerConfig, f64, f64)> = vec![
            (TransformerConfig::vit_3b(), 3.0, 0.12),
            (TransformerConfig::vit_5b(), 5.5, 0.12),
            (TransformerConfig::vit_10b(), 10.0, 0.12),
            (TransformerConfig::vit_11b(), 11.0, 0.12),
            (TransformerConfig::vit_22b(), 22.0, 0.12),
            (TransformerConfig::gpt_11b(), 11.0, 0.16),
            (TransformerConfig::llama_70b(), 70.0, 0.12),
            (TransformerConfig::gpt_175b(), 175.0, 0.12),
        ];
        for (cfg, nominal, tol) in cases {
            let b = billions(cfg.total_params());
            let rel = (b - nominal).abs() / nominal;
            assert!(rel < tol, "{}: {b:.1}B vs nominal {nominal}B", cfg.name);
        }
    }

    #[test]
    fn gqa_shrinks_attention_params() {
        let llama = TransformerConfig::llama_70b();
        let mut full = llama.clone();
        full.kv_heads = full.heads;
        assert!(llama.attn_params_per_layer() < full.attn_params_per_layer());
    }

    #[test]
    fn gated_mlp_has_three_matrices() {
        let llama = TransformerConfig::llama_70b();
        assert_eq!(llama.mlp_params_per_layer(), 3 * 8192 * 28672);
    }
}

//! Synthetic multimodal data traces.
//!
//! The paper trains on ByteDance production multimodal data, which is not
//! available; per the substitution rule we generate the closest synthetic
//! equivalent: batches mixing text-only samples with samples carrying a
//! variable number of images at different resolution tiers. What the
//! scheduler ultimately consumes is the *encoder load per microbatch* —
//! the number of visual tokens relative to the uniform one-image-per-sample
//! assumption — so the generator's output is a per-microbatch load scale
//! vector.

use optimus_cluster::{Fingerprint, FpHasher};
use optimus_detrand as rand;
use rand::{RngExt, SeedableRng};

/// One image-resolution tier: a relative frequency and the visual-token
/// multiplier versus the base resolution (e.g. tiling a high-resolution
/// image into four base tiles → multiplier 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolutionTier {
    /// Relative sampling weight.
    pub weight: f64,
    /// Visual tokens relative to the base tier.
    pub token_multiplier: f64,
}

/// Configuration of the synthetic multimodal data distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Fraction of samples that carry at least one image.
    pub image_sample_ratio: f64,
    /// Maximum images attached to one sample (uniform in `1..=max`).
    pub max_images_per_sample: u32,
    /// Resolution tiers (weights need not sum to 1).
    pub tiers: Vec<ResolutionTier>,
}

impl TraceConfig {
    /// A LLaVA-style instruction-tuning mix: most samples carry one base-
    /// resolution image, a minority are text-only or multi-image, and a
    /// small high-resolution tier quadruples the visual tokens.
    pub fn llava_style() -> TraceConfig {
        TraceConfig {
            image_sample_ratio: 0.85,
            max_images_per_sample: 2,
            tiers: vec![
                ResolutionTier {
                    weight: 0.8,
                    token_multiplier: 1.0,
                },
                ResolutionTier {
                    weight: 0.2,
                    token_multiplier: 4.0,
                },
            ],
        }
    }

    /// An interleaved web-document mix (MMC4/OBELICS-like): images are
    /// rarer per sample but burstier, with wide resolution spread.
    pub fn web_interleaved() -> TraceConfig {
        TraceConfig {
            image_sample_ratio: 0.6,
            max_images_per_sample: 6,
            tiers: vec![
                ResolutionTier {
                    weight: 0.6,
                    token_multiplier: 1.0,
                },
                ResolutionTier {
                    weight: 0.3,
                    token_multiplier: 2.0,
                },
                ResolutionTier {
                    weight: 0.1,
                    token_multiplier: 4.0,
                },
            ],
        }
    }

    /// Canonical content fingerprint of the trace distribution. Tier order
    /// is semantic (sampling walks cumulative weights in declaration order),
    /// so tiers are folded in order; reordering tiers genuinely changes
    /// which multiplier a given random draw lands on.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new("trace-config/v1");
        h.fold_f64(self.image_sample_ratio)
            .fold_u32(self.max_images_per_sample)
            .fold_u64(self.tiers.len() as u64);
        for t in &self.tiers {
            h.fold_f64(t.weight).fold_f64(t.token_multiplier);
        }
        h.finish()
    }

    /// Validates the configuration.
    pub fn check(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.image_sample_ratio) {
            return Err(format!(
                "image_sample_ratio {} outside [0,1]",
                self.image_sample_ratio
            ));
        }
        if self.max_images_per_sample == 0 {
            return Err("max_images_per_sample must be >= 1".into());
        }
        if self.tiers.is_empty()
            || self
                .tiers
                .iter()
                .any(|t| t.weight < 0.0 || t.token_multiplier <= 0.0)
        {
            return Err(
                "tiers must be non-empty with non-negative weights and positive multipliers".into(),
            );
        }
        if self.tiers.iter().map(|t| t.weight).sum::<f64>() <= 0.0 {
            return Err("tier weights must not all be zero".into());
        }
        Ok(())
    }

    /// Expected visual-token load per sample, relative to one base image.
    pub fn mean_load(&self) -> f64 {
        let wsum: f64 = self.tiers.iter().map(|t| t.weight).sum();
        let mean_mult: f64 = self
            .tiers
            .iter()
            .map(|t| t.weight * t.token_multiplier)
            .sum::<f64>()
            / wsum;
        let mean_images = (1.0 + f64::from(self.max_images_per_sample)) / 2.0;
        self.image_sample_ratio * mean_images * mean_mult
    }

    /// Draws the visual-token load of one sample (relative to one base
    /// image; 0.0 for text-only samples).
    fn sample_load<R: rand::Rng>(&self, rng: &mut R) -> f64 {
        if rng.random_range(0.0..1.0) >= self.image_sample_ratio {
            return 0.0;
        }
        let images = rng.random_range(1..=self.max_images_per_sample);
        let wsum: f64 = self.tiers.iter().map(|t| t.weight).sum();
        let mut load = 0.0;
        for _ in 0..images {
            let mut pick = rng.random_range(0.0..wsum);
            let mut mult = self.tiers.last().map(|t| t.token_multiplier).unwrap_or(1.0);
            for t in &self.tiers {
                if pick < t.weight {
                    mult = t.token_multiplier;
                    break;
                }
                pick -= t.weight;
            }
            load += mult;
        }
        load
    }

    /// Generates per-microbatch encoder load scales for `n_microbatches`
    /// microbatches of `microbatch_size` samples each, normalised to mean 1
    /// (so total encoder work matches the uniform assumption the cost model
    /// is calibrated for). Deterministic in `seed`.
    pub fn microbatch_scales(
        &self,
        n_microbatches: u32,
        microbatch_size: u32,
        seed: u64,
    ) -> Result<Vec<f64>, String> {
        self.check()?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut scales: Vec<f64> = (0..n_microbatches)
            .map(|_| {
                (0..microbatch_size.max(1))
                    .map(|_| self.sample_load(&mut rng))
                    .sum::<f64>()
            })
            .collect();
        let mean = scales.iter().sum::<f64>() / f64::from(n_microbatches.max(1));
        if mean <= 0.0 {
            return Err("trace produced zero total encoder load".into());
        }
        // Floor at a small positive value: a text-only microbatch still runs
        // the (empty-ish) encoder pass in real systems.
        for s in &mut scales {
            *s = (*s / mean).max(0.05);
        }
        Ok(scales)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        TraceConfig::llava_style().check().unwrap();
        TraceConfig::web_interleaved().check().unwrap();
    }

    #[test]
    fn scales_normalised_and_deterministic() {
        let cfg = TraceConfig::llava_style();
        let a = cfg.microbatch_scales(32, 2, 9).unwrap();
        let b = cfg.microbatch_scales(32, 2, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        let mean = a.iter().sum::<f64>() / 32.0;
        // The text-only floor can push the mean slightly above 1.
        assert!((0.95..1.1).contains(&mean), "mean {mean}");
        assert!(a.iter().all(|&x| x >= 0.05));
    }

    #[test]
    fn web_mix_is_burstier_than_llava() {
        let spread = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let llava = TraceConfig::llava_style()
            .microbatch_scales(64, 1, 3)
            .unwrap();
        let web = TraceConfig::web_interleaved()
            .microbatch_scales(64, 1, 3)
            .unwrap();
        assert!(
            spread(&web) > spread(&llava),
            "web {} llava {}",
            spread(&web),
            spread(&llava)
        );
    }

    #[test]
    fn larger_microbatches_smooth_the_load() {
        let cfg = TraceConfig::web_interleaved();
        let spread = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let small = cfg.microbatch_scales(64, 1, 5).unwrap();
        let big = cfg.microbatch_scales(64, 16, 5).unwrap();
        assert!(spread(&big) < spread(&small));
    }

    #[test]
    fn fingerprint_tracks_distribution() {
        let a = TraceConfig::llava_style();
        assert_eq!(a.fingerprint(), TraceConfig::llava_style().fingerprint());
        assert_ne!(
            a.fingerprint(),
            TraceConfig::web_interleaved().fingerprint()
        );
        let mut shifted = TraceConfig::llava_style();
        shifted.image_sample_ratio += 1e-9;
        assert_ne!(a.fingerprint(), shifted.fingerprint());
        let mut reordered = TraceConfig::web_interleaved();
        reordered.tiers.reverse();
        assert_ne!(
            TraceConfig::web_interleaved().fingerprint(),
            reordered.fingerprint(),
            "tier order is semantic"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = TraceConfig::llava_style();
        c.image_sample_ratio = 1.5;
        assert!(c.check().is_err());
        let mut c = TraceConfig::llava_style();
        c.max_images_per_sample = 0;
        assert!(c.check().is_err());
        let mut c = TraceConfig::llava_style();
        c.tiers.clear();
        assert!(c.check().is_err());
    }

    #[test]
    fn mean_load_formula_consistent() {
        let cfg = TraceConfig::llava_style();
        // 0.85 ratio × mean 1.5 images × mean multiplier 1.6 = 2.04.
        assert!((cfg.mean_load() - 0.85 * 1.5 * 1.6).abs() < 1e-12);
    }
}

//! Analytic FLOP counts for transformer layers and full models.
//!
//! These counts feed two consumers: kernel-duration estimation (together with
//! the hardware roofline) and the Model FLOPs Utilization (MFU) metric the
//! paper reports in Table 5.

use crate::config::TransformerConfig;

/// FLOPs for one *forward* pass of one transformer layer over a `batch` of
/// sequences of length `seq` (full model, before tensor-parallel division).
pub fn layer_fwd_flops(cfg: &TransformerConfig, batch: u64, seq: u64) -> f64 {
    let (b, s, h) = (batch as f64, seq as f64, cfg.hidden as f64);
    let kv_dim = (cfg.kv_heads * cfg.head_dim) as f64;
    let f = cfg.ffn_hidden as f64;
    let attn_dim = (cfg.heads * cfg.head_dim) as f64;

    // Projections: Q (h→h), K,V (h→kv_dim each), output (h→h).
    let proj = 2.0 * b * s * h * (2.0 * h + 2.0 * kv_dim);
    // Attention score + context batched matmuls: 2 × (2·b·s²·attn_dim).
    let attn = 2.0 * 2.0 * b * s * s * attn_dim;
    // MLP: two (or three, gated) h×f matmuls.
    let mats = if cfg.gated_mlp { 3.0 } else { 2.0 };
    let mlp = mats * 2.0 * b * s * h * f;
    proj + attn + mlp
}

/// FLOPs for one *backward* pass of one layer (standard 2× forward: gradients
/// w.r.t. both inputs and weights).
pub fn layer_bwd_flops(cfg: &TransformerConfig, batch: u64, seq: u64) -> f64 {
    2.0 * layer_fwd_flops(cfg, batch, seq)
}

/// Model FLOPs for one full training step (forward + backward) of the whole
/// stack over `batch` sequences of `seq` tokens.
///
/// This is the numerator of the MFU metric: only "useful" model FLOPs count,
/// no recomputation or communication.
pub fn model_step_flops(cfg: &TransformerConfig, batch: u64, seq: u64) -> f64 {
    let per_layer = layer_fwd_flops(cfg, batch, seq) + layer_bwd_flops(cfg, batch, seq);
    let logits = if cfg.vocab > 0 {
        // Output projection fwd+bwd: 3 × 2·b·s·h·V.
        3.0 * 2.0 * (batch * seq) as f64 * (cfg.hidden * cfg.vocab) as f64
    } else {
        0.0
    };
    cfg.layers as f64 * per_layer + logits
}

/// Model FLOPs Utilization: achieved model FLOPs per second divided by the
/// aggregate peak of the cluster.
pub fn mfu(model_flops: f64, step_seconds: f64, num_gpus: u64, peak_flops_per_gpu: f64) -> f64 {
    model_flops / (step_seconds * num_gpus as f64 * peak_flops_per_gpu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_step_flops_matches_6nd_rule() {
        // For dense GPT models, fwd+bwd model FLOPs ≈ 6·params·tokens
        // (ignoring the attention s² term which adds a few percent at s=2048).
        let cfg = TransformerConfig::gpt_175b();
        let (batch, seq) = (1536u64, 2048u64);
        let tokens = (batch * seq) as f64;
        let approx = 6.0 * cfg.total_params() as f64 * tokens;
        let exact = model_step_flops(&cfg, batch, seq);
        let rel = (exact - approx).abs() / approx;
        assert!(
            rel < 0.15,
            "exact {exact:.3e} vs 6ND {approx:.3e} (rel {rel:.3})"
        );
    }

    #[test]
    fn backward_is_twice_forward() {
        let cfg = TransformerConfig::vit_22b();
        assert_eq!(
            layer_bwd_flops(&cfg, 4, 576),
            2.0 * layer_fwd_flops(&cfg, 4, 576)
        );
    }

    #[test]
    fn flops_scale_linearly_in_batch() {
        let cfg = TransformerConfig::llama_70b();
        let one = layer_fwd_flops(&cfg, 1, 2048);
        let eight = layer_fwd_flops(&cfg, 8, 2048);
        assert!((eight / one - 8.0).abs() < 1e-9);
    }

    #[test]
    fn attention_term_grows_quadratically_in_seq() {
        let cfg = TransformerConfig::gpt_175b();
        let short = layer_fwd_flops(&cfg, 1, 1024);
        let long = layer_fwd_flops(&cfg, 1, 2048);
        // Doubling seq more than doubles FLOPs (s² attention term).
        assert!(long > 2.0 * short);
        assert!(long < 4.0 * short);
    }

    #[test]
    fn mfu_basic() {
        // 1 PFLOP of work in 1 s on 1 GPU of 2 PFLOP/s peak = 50% MFU.
        assert!((mfu(1e15, 1.0, 1, 2e15) - 0.5).abs() < 1e-12);
    }
}

//! Deterministic, dependency-free random number generation.
//!
//! The workspace must build with no registry access, so this crate replaces
//! the `rand` crate for the few call sites that need seeded randomness
//! (synthetic data traces, jitter studies, partition sampling). The call
//! surface mirrors `rand` 0.10 (`SeedableRng::seed_from_u64`,
//! `RngExt::random_range`, `rngs::StdRng`) so call sites only swap the crate
//! name, typically via `use optimus_detrand as rand;`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` family uses — and is fully deterministic
//! across platforms: every draw is pure 64-bit integer arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod math;

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// The next raw 64-bit word from the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {self:?}");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range {self:?}");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {self:?}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_ranges!(u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<G: Rng + ?Sized> RngExt for G {}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: u32 = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = r.random_range(1..=4);
            assert!((1..=4).contains(&y));
            let f: f64 = r.random_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let g: f64 = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn range_draws_cover_support() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.random_range(0u32..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

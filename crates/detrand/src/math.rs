//! Deterministic transcendental functions.
//!
//! `f64::ln` / `f64::exp` route through the platform libm, whose results are
//! *not* guaranteed bit-identical across platforms — which would break the
//! workspace's seeded-draw determinism contract the moment a sampler needs a
//! non-uniform distribution (exponential or Weibull inter-arrival gaps, for
//! instance). The functions here are built exclusively from IEEE-754 basic
//! operations (`+ - * /`, `sqrt`, and bit manipulation), all of which are
//! correctly rounded and therefore identical on every conforming platform,
//! with fixed-length polynomial evaluations — no tables, no platform
//! dispatch, no FMA contraction (Rust never auto-contracts).
//!
//! Accuracy is a few ULP short of libm (relative error ≲ 1e-14), which is
//! far below the modelling error of anything the workspace samples; the
//! value these functions buy is *reproducibility*, not precision.

/// Deterministic natural logarithm.
///
/// `ln(x)` for finite positive `x`; returns `f64::NAN` for negative inputs
/// and NaN, `f64::NEG_INFINITY` for `0`, and `f64::INFINITY` for `+inf`.
pub fn ln(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x.is_infinite() {
        return f64::INFINITY;
    }
    // Decompose x = m · 2^e with m ∈ [1, 2).
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = if e == -1023 {
        // Subnormal: scale up by 2^54 first.
        let scaled = x * (1u64 << 54) as f64;
        let sb = scaled.to_bits();
        e = ((sb >> 52) & 0x7ff) as i64 - 1023 - 54;
        f64::from_bits((sb & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000)
    } else {
        f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000)
    };
    // Center m on 1: fold [√2, 2) down to [√2/2, √2) so |z| stays small.
    if m > core::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    // ln m = 2·atanh(z) with z = (m−1)/(m+1), |z| ≤ (√2−1)/(√2+1) ≈ 0.1716.
    let z = (m - 1.0) / (m + 1.0);
    let z2 = z * z;
    // Fixed 10-term odd series: truncation ≤ z²¹/21 ≈ 4e-17 relative.
    let mut sum = 0.0;
    let mut k = 19i32;
    while k >= 1 {
        sum = sum * z2 + 1.0 / k as f64;
        k -= 2;
    }
    2.0 * z * sum + e as f64 * core::f64::consts::LN_2
}

/// Deterministic exponential.
///
/// `exp(x)` for finite `x`; saturates to `0` / `f64::INFINITY` outside the
/// representable range and returns NaN for NaN.
pub fn exp(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x > 709.8 {
        return f64::INFINITY;
    }
    if x < -745.2 {
        return 0.0;
    }
    // Range-reduce: x = k·ln2 + r with |r| ≤ ln2/2.
    let k = (x / core::f64::consts::LN_2).round();
    // Two-part ln2 keeps k·ln2 exact to well below 1 ULP of r.
    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // exp(r) by fixed 13-term Taylor (Horner): error ≤ r¹⁴/14! ≈ 4e-18.
    let mut p = 1.0;
    let mut n = 13i32;
    while n >= 1 {
        p = p * r / n as f64 + 1.0;
        n -= 1;
    }
    // Scale by 2^k via exponent bits (ldexp).
    let ki = k as i64;
    if ki >= 1024 {
        return f64::INFINITY;
    }
    if ki < -1074 {
        return 0.0;
    }
    if ki >= -1022 {
        p * f64::from_bits(((1023 + ki) as u64) << 52)
    } else {
        // Subnormal result: scale in two steps.
        p * f64::from_bits(((1023 + ki + 52) as u64) << 52) * f64::from_bits((1023u64 - 52) << 52)
    }
}

/// Deterministic power: `x^y = exp(y·ln x)` for `x > 0` (plus the trivial
/// `x == 0` / `y == 0` cases). Negative bases return NaN.
pub fn powf(x: f64, y: f64) -> f64 {
    if y == 0.0 {
        return 1.0;
    }
    if x == 0.0 {
        return if y > 0.0 { 0.0 } else { f64::INFINITY };
    }
    if x < 0.0 {
        return f64::NAN;
    }
    exp(y * ln(x))
}

/// Deterministic `ln Γ(x)` for `x > 0` (Lanczos approximation, g = 7, 9
/// coefficients — relative error below 1e-13 on the positive axis).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // Published Lanczos coefficients, quoted verbatim; the trailing digits
    // round away in f64 but keep the table recognisable.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x <= 0.0 {
        return f64::NAN;
    }
    // ln√(2π)
    const HALF_LN_TWO_PI: f64 = 0.918_938_533_204_672_7;
    let z = x - 1.0;
    let mut a = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (z + i as f64);
    }
    let t = z + G + 0.5;
    HALF_LN_TWO_PI + (z + 0.5) * ln(t) - t + ln(a)
}

/// Deterministic Γ(x) for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    exp(ln_gamma(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            (a - b).abs() / b.abs()
        }
    }

    #[test]
    fn ln_matches_libm_closely() {
        for &x in &[
            1e-300,
            1e-9,
            0.1,
            0.5,
            0.9999,
            1.0,
            1.0001,
            2.0,
            core::f64::consts::E,
            10.0,
            1e5,
            1e300,
        ] {
            assert!(
                rel(ln(x), x.ln()) < 1e-13,
                "ln({x}) = {} vs {}",
                ln(x),
                x.ln()
            );
        }
        assert_eq!(ln(1.0), 0.0);
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
        assert_eq!(ln(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn exp_matches_libm_closely() {
        for &x in &[
            -700.0, -20.0, -1.0, -1e-12, 0.0, 1e-12, 0.5, 1.0, 2.0, 20.0, 700.0,
        ] {
            assert!(
                rel(exp(x), x.exp()) < 1e-13,
                "exp({x}) = {} vs {}",
                exp(x),
                x.exp()
            );
        }
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp(1000.0), f64::INFINITY);
    }

    #[test]
    fn exp_ln_round_trip() {
        for i in 1..200u32 {
            let x = f64::from(i) * 0.37;
            assert!(rel(exp(ln(x)), x) < 1e-12, "{x}");
        }
    }

    #[test]
    fn powf_matches_libm_closely() {
        for &(x, y) in &[
            (2.0, 10.0),
            (10.0, -3.0),
            (0.5, 0.5),
            (1.7, 3.3),
            (123.0, 0.25),
        ] {
            assert!(
                rel(powf(x, y), x.powf(y)) < 1e-12,
                "powf({x},{y}) = {} vs {}",
                powf(x, y),
                x.powf(y)
            );
        }
        assert_eq!(powf(5.0, 0.0), 1.0);
        assert_eq!(powf(0.0, 2.0), 0.0);
        assert!(powf(-2.0, 0.5).is_nan());
    }

    #[test]
    fn gamma_hits_known_values() {
        // Γ(n) = (n−1)!
        assert!(rel(gamma(1.0), 1.0) < 1e-12);
        assert!(rel(gamma(2.0), 1.0) < 1e-12);
        assert!(rel(gamma(5.0), 24.0) < 1e-12);
        // Γ(1/2) = √π
        assert!(rel(gamma(0.5), core::f64::consts::PI.sqrt()) < 1e-12);
        // Weibull normalisation range: Γ(1 + 1/k) for k ∈ [0.5, 5].
        for &k in &[0.5, 0.7, 1.0, 1.5, 2.0, 5.0] {
            let g = gamma(1.0 + 1.0 / k);
            assert!(g.is_finite() && g > 0.0, "k={k}");
        }
        assert!(ln_gamma(-1.0).is_nan());
    }

    #[test]
    fn results_are_bitwise_stable() {
        // The whole point: repeated evaluation is bit-identical.
        for i in 1..50u32 {
            let x = f64::from(i) * 0.173;
            assert_eq!(ln(x).to_bits(), ln(x).to_bits());
            assert_eq!(exp(-x).to_bits(), exp(-x).to_bits());
            assert_eq!(powf(x, 1.0 / 3.0).to_bits(), powf(x, 1.0 / 3.0).to_bits());
            assert_eq!(ln_gamma(x).to_bits(), ln_gamma(x).to_bits());
        }
    }
}

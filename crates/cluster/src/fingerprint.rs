//! Canonical content fingerprints.
//!
//! The plan service keys its content-addressed cache by *what the planner
//! actually reads*: the cluster topology, the model/workload configuration,
//! and the realised trace distribution. Each of those is reduced to a
//! [`Fingerprint`] — a 128-bit hash with a byte-stable, platform-independent
//! definition, so the same configuration always maps to the same cache
//! entry across runs, machines, and orderings of unordered inputs.
//!
//! The hasher is a little-endian FNV-1a over a canonical byte encoding:
//!
//! * integers are folded as fixed-width little-endian bytes, tagged by
//!   width, so `1u32` and `1u64` never collide;
//! * floats are folded as their IEEE-754 bit patterns (`f64::to_bits`), so
//!   fingerprints are exact — two configs differing in the last ulp are
//!   different configs;
//! * strings and byte slices are length-prefixed;
//! * every composite value starts with a caller-chosen `label`, which acts
//!   as a domain separator between types sharing field shapes.
//!
//! This module deliberately has no dependencies: it lives in the lowest
//! crate of the workspace so `cluster`, `modeling`, `calibrate`, and the
//! plan service all share one definition instead of growing ad-hoc
//! format-string keys (the pre-existing collective-cost memo key and the
//! chaos re-plan memo key are both re-based onto it).

use std::fmt;

/// A 128-bit canonical content hash.
///
/// Displayed and parsed as 32 lowercase hex digits. The all-zero value is
/// reserved as "absent" (e.g. a v1 saved schedule that predates
/// fingerprints) and is never produced by [`FpHasher::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The reserved "absent" fingerprint.
    pub const ABSENT: Fingerprint = Fingerprint(0);

    /// True when this is the reserved absent value.
    pub fn is_absent(self) -> bool {
        self.0 == 0
    }

    /// Renders the fingerprint as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses 32 hex digits back into a fingerprint.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental canonical hasher producing a [`Fingerprint`].
///
/// Call the typed `fold_*` methods in a fixed, documented order per type;
/// the width tags and length prefixes make the encoding prefix-free, so
/// field reordering or width changes always change the hash.
#[derive(Debug, Clone)]
pub struct FpHasher {
    state: u128,
}

impl FpHasher {
    /// Starts a hasher domain-separated by `label` (typically the type or
    /// schema name, e.g. `"cluster-topology/v1"`).
    pub fn new(label: &str) -> FpHasher {
        let mut h = FpHasher { state: FNV_OFFSET };
        h.fold_str(label);
        h
    }

    fn fold_bytes_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn tag(&mut self, t: u8) {
        self.fold_bytes_raw(&[t]);
    }

    /// Folds a length-prefixed byte slice.
    pub fn fold_bytes(&mut self, bytes: &[u8]) -> &mut FpHasher {
        self.tag(b'B');
        self.fold_bytes_raw(&(bytes.len() as u64).to_le_bytes());
        self.fold_bytes_raw(bytes);
        self
    }

    /// Folds a UTF-8 string (length-prefixed).
    pub fn fold_str(&mut self, s: &str) -> &mut FpHasher {
        self.tag(b'S');
        self.fold_bytes_raw(&(s.len() as u64).to_le_bytes());
        self.fold_bytes_raw(s.as_bytes());
        self
    }

    /// Folds a `u32`.
    pub fn fold_u32(&mut self, v: u32) -> &mut FpHasher {
        self.tag(b'4');
        self.fold_bytes_raw(&v.to_le_bytes());
        self
    }

    /// Folds a `u64`.
    pub fn fold_u64(&mut self, v: u64) -> &mut FpHasher {
        self.tag(b'8');
        self.fold_bytes_raw(&v.to_le_bytes());
        self
    }

    /// Folds an `i64`.
    pub fn fold_i64(&mut self, v: i64) -> &mut FpHasher {
        self.tag(b'i');
        self.fold_bytes_raw(&v.to_le_bytes());
        self
    }

    /// Folds a bool.
    pub fn fold_bool(&mut self, v: bool) -> &mut FpHasher {
        self.tag(b'b');
        self.fold_bytes_raw(&[u8::from(v)]);
        self
    }

    /// Folds an `f64` by IEEE-754 bit pattern (exact; `-0.0 != 0.0`, NaNs
    /// compare by payload).
    pub fn fold_f64(&mut self, v: f64) -> &mut FpHasher {
        self.tag(b'f');
        self.fold_bytes_raw(&v.to_bits().to_le_bytes());
        self
    }

    /// Folds a slice of `f64` with a length prefix.
    pub fn fold_f64_slice(&mut self, vs: &[f64]) -> &mut FpHasher {
        self.tag(b'F');
        self.fold_bytes_raw(&(vs.len() as u64).to_le_bytes());
        for &v in vs {
            self.fold_bytes_raw(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// Folds an already-computed fingerprint (for composing hierarchies).
    pub fn fold_fp(&mut self, fp: Fingerprint) -> &mut FpHasher {
        self.tag(b'H');
        self.fold_bytes_raw(&fp.0.to_le_bytes());
        self
    }

    /// Folds a set of fingerprints *order-independently* (by sorting), for
    /// collections whose order carries no meaning.
    pub fn fold_fp_set(&mut self, fps: &[Fingerprint]) -> &mut FpHasher {
        let mut sorted: Vec<Fingerprint> = fps.to_vec();
        sorted.sort_unstable();
        self.tag(b'Z');
        self.fold_bytes_raw(&(sorted.len() as u64).to_le_bytes());
        for fp in sorted {
            self.fold_bytes_raw(&fp.0.to_le_bytes());
        }
        self
    }

    /// Finishes the hash. The reserved absent value never escapes: a zero
    /// digest is remapped to the FNV offset basis.
    pub fn finish(&self) -> Fingerprint {
        if self.state == 0 {
            Fingerprint(FNV_OFFSET)
        } else {
            Fingerprint(self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        let a = FpHasher::new("t").fold_u32(7).fold_f64(1.5).finish();
        let b = FpHasher::new("t").fold_u32(7).fold_f64(1.5).finish();
        assert_eq!(a, b);
        assert!(!a.is_absent());
    }

    #[test]
    fn width_tags_separate_types() {
        let a = FpHasher::new("t").fold_u32(1).finish();
        let b = FpHasher::new("t").fold_u64(1).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn labels_domain_separate() {
        let a = FpHasher::new("alpha").fold_u32(1).finish();
        let b = FpHasher::new("beta").fold_u32(1).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn strings_are_prefix_free() {
        let a = FpHasher::new("t").fold_str("ab").fold_str("c").finish();
        let b = FpHasher::new("t").fold_str("a").fold_str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn float_bit_patterns_are_exact() {
        let a = FpHasher::new("t").fold_f64(0.1 + 0.2).finish();
        let b = FpHasher::new("t").fold_f64(0.3).finish();
        assert_ne!(a, b, "0.1+0.2 != 0.3 in IEEE-754");
        let neg = FpHasher::new("t").fold_f64(-0.0).finish();
        let pos = FpHasher::new("t").fold_f64(0.0).finish();
        assert_ne!(neg, pos);
    }

    #[test]
    fn fp_sets_are_order_independent() {
        let x = FpHasher::new("x").finish();
        let y = FpHasher::new("y").finish();
        let a = FpHasher::new("t").fold_fp_set(&[x, y]).finish();
        let b = FpHasher::new("t").fold_fp_set(&[y, x]).finish();
        assert_eq!(a, b);
        let c = FpHasher::new("t").fold_fp(x).fold_fp(y).finish();
        let d = FpHasher::new("t").fold_fp(y).fold_fp(x).finish();
        assert_ne!(c, d, "ordered folding keeps order");
    }

    #[test]
    fn hex_roundtrip() {
        let fp = FpHasher::new("t").fold_u64(42).finish();
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::parse(&hex), Some(fp));
        assert_eq!(Fingerprint::parse("xyz"), None);
        assert_eq!(format!("{fp}"), hex);
        assert!(Fingerprint::ABSENT.is_absent());
    }
}

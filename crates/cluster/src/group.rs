//! Process groups: ordered sets of GPUs participating in one collective.

use crate::error::ClusterError;
use crate::topology::{ClusterTopology, DeviceId, LinkClass};

/// An ordered set of devices participating in collectives together, analogous
/// to an NCCL communicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessGroup {
    ranks: Vec<DeviceId>,
}

impl ProcessGroup {
    /// Builds a group from an ordered rank list.
    ///
    /// The list must be non-empty and free of duplicates.
    pub fn new(ranks: Vec<DeviceId>) -> Result<ProcessGroup, ClusterError> {
        if ranks.is_empty() {
            return Err(ClusterError::InvalidGroup {
                reason: "empty rank list".into(),
            });
        }
        let mut seen = ranks.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(ClusterError::InvalidGroup {
                reason: "duplicate ranks".into(),
            });
        }
        Ok(ProcessGroup { ranks })
    }

    /// Builds a group over a contiguous device range `[start, start+len)`.
    pub fn contiguous(start: u32, len: u32) -> Result<ProcessGroup, ClusterError> {
        ProcessGroup::new((start..start + len).map(DeviceId).collect())
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// The ordered ranks.
    pub fn ranks(&self) -> &[DeviceId] {
        &self.ranks
    }

    /// The slowest (bottleneck) link class a ring over this group traverses:
    /// RDMA if the group spans nodes, NVLink if it spans GPUs inside one node,
    /// loopback for a singleton group.
    pub fn bottleneck_link(&self, topo: &ClusterTopology) -> LinkClass {
        if self.ranks.len() <= 1 {
            return LinkClass::Loopback;
        }
        let first_node = topo.node_of(self.ranks[0]);
        if self.ranks.iter().all(|&r| topo.node_of(r) == first_node) {
            LinkClass::NvLink
        } else {
            LinkClass::Rdma
        }
    }

    /// Validates that all ranks exist within the topology.
    pub fn check(&self, topo: &ClusterTopology) -> Result<(), ClusterError> {
        for &r in &self.ranks {
            topo.check_device(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_duplicates() {
        assert!(ProcessGroup::new(vec![]).is_err());
        assert!(ProcessGroup::new(vec![DeviceId(1), DeviceId(1)]).is_err());
    }

    #[test]
    fn bottleneck_detection() {
        let topo = ClusterTopology::hopper_cluster(16).unwrap();
        let intra = ProcessGroup::contiguous(0, 8).unwrap();
        let inter = ProcessGroup::new(vec![DeviceId(0), DeviceId(8)]).unwrap();
        let single = ProcessGroup::contiguous(3, 1).unwrap();
        assert_eq!(intra.bottleneck_link(&topo), LinkClass::NvLink);
        assert_eq!(inter.bottleneck_link(&topo), LinkClass::Rdma);
        assert_eq!(single.bottleneck_link(&topo), LinkClass::Loopback);
    }

    #[test]
    fn check_catches_out_of_range() {
        let topo = ClusterTopology::hopper_cluster(8).unwrap();
        let g = ProcessGroup::contiguous(6, 4).unwrap();
        assert!(g.check(&topo).is_err());
    }
}

//! Integer nanosecond time types used throughout the simulator.
//!
//! All simulation time is kept in integer nanoseconds so that event ordering
//! is total and deterministic — floating-point timestamps would make schedule
//! comparison and regression tests fragile.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since step start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeNs(pub u64);

/// A span of simulation time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DurNs(pub u64);

impl TimeNs {
    /// The zero instant (start of a training step).
    pub const ZERO: TimeNs = TimeNs(0);

    /// Largest representable instant; used as an "unreached" sentinel.
    pub const MAX: TimeNs = TimeNs(u64::MAX);

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: TimeNs) -> DurNs {
        DurNs(self.0.saturating_sub(earlier.0))
    }

    /// Converts to fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Converts to fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Converts to fractional microseconds (for reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the later of two instants.
    pub fn max(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.min(other.0))
    }
}

impl DurNs {
    /// The zero-length duration.
    pub const ZERO: DurNs = DurNs(0);

    /// Builds a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative or non-finite inputs clamp to zero: analytic cost models can
    /// produce tiny negative values from subtraction and those must not poison
    /// the integer clock.
    pub fn from_secs_f64(secs: f64) -> DurNs {
        if !secs.is_finite() || secs <= 0.0 {
            return DurNs(0);
        }
        DurNs((secs * 1e9).round() as u64)
    }

    /// Builds a duration from fractional microseconds.
    pub fn from_micros_f64(us: f64) -> DurNs {
        DurNs::from_secs_f64(us / 1e6)
    }

    /// Builds a duration from integer microseconds.
    pub const fn from_micros(us: u64) -> DurNs {
        DurNs(us * 1_000)
    }

    /// Builds a duration from integer milliseconds.
    pub const fn from_millis(ms: u64) -> DurNs {
        DurNs(ms * 1_000_000)
    }

    /// Converts to fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Converts to fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Converts to fractional microseconds (for reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True when the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: DurNs) -> DurNs {
        DurNs(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: DurNs) -> DurNs {
        DurNs(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: DurNs) -> DurNs {
        DurNs(self.0.saturating_sub(other.0))
    }
}

impl Add<DurNs> for TimeNs {
    type Output = TimeNs;
    fn add(self, rhs: DurNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign<DurNs> for TimeNs {
    fn add_assign(&mut self, rhs: DurNs) {
        self.0 += rhs.0;
    }
}

impl Sub<DurNs> for TimeNs {
    type Output = TimeNs;
    fn sub(self, rhs: DurNs) -> TimeNs {
        TimeNs(self.0.saturating_sub(rhs.0))
    }
}

impl Add for DurNs {
    type Output = DurNs;
    fn add(self, rhs: DurNs) -> DurNs {
        DurNs(self.0 + rhs.0)
    }
}

impl AddAssign for DurNs {
    fn add_assign(&mut self, rhs: DurNs) {
        self.0 += rhs.0;
    }
}

impl Sub for DurNs {
    type Output = DurNs;
    fn sub(self, rhs: DurNs) -> DurNs {
        DurNs(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for DurNs {
    fn sub_assign(&mut self, rhs: DurNs) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for DurNs {
    type Output = DurNs;
    fn mul(self, rhs: u64) -> DurNs {
        DurNs(self.0 * rhs)
    }
}

impl Div<u64> for DurNs {
    type Output = DurNs;
    fn div(self, rhs: u64) -> DurNs {
        DurNs(self.0 / rhs)
    }
}

impl Sum for DurNs {
    fn sum<I: Iterator<Item = DurNs>>(iter: I) -> DurNs {
        iter.fold(DurNs::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for DurNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.as_micros_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = TimeNs::ZERO + DurNs::from_micros(300);
        assert_eq!(t.0, 300_000);
        assert_eq!(t.since(TimeNs::ZERO), DurNs::from_micros(300));
        assert_eq!(t.since(t + DurNs(1)), DurNs::ZERO);
    }

    #[test]
    fn duration_from_secs_clamps_bad_values() {
        assert_eq!(DurNs::from_secs_f64(-1.0), DurNs::ZERO);
        assert_eq!(DurNs::from_secs_f64(f64::NAN), DurNs::ZERO);
        assert_eq!(DurNs::from_secs_f64(f64::INFINITY), DurNs::ZERO);
        assert_eq!(DurNs::from_secs_f64(1.5e-9), DurNs(2));
    }

    #[test]
    fn duration_sum_and_scale() {
        let parts = [DurNs(10), DurNs(20), DurNs(30)];
        let total: DurNs = parts.iter().copied().sum();
        assert_eq!(total, DurNs(60));
        assert_eq!(total * 2, DurNs(120));
        assert_eq!(total / 3, DurNs(20));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", DurNs::from_micros(250)), "250.0us");
        assert_eq!(format!("{}", DurNs::from_millis(3)), "3.000ms");
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(DurNs(5).saturating_sub(DurNs(9)), DurNs::ZERO);
        assert_eq!(TimeNs(5) - DurNs(9), TimeNs::ZERO);
    }
}

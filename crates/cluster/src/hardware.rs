//! Per-GPU hardware profile: compute throughput, memory bandwidth, capacity.
//!
//! The profile is the analytic stand-in for the paper's NVIDIA Hopper testbed
//! (80 GB, 989 TFLOP/s per GPU, §5.1). Kernel durations are derived from FLOP
//! counts and byte counts against these ceilings, scaled by per-kernel-class
//! efficiency factors that reflect how far real kernels sit from roofline.

use crate::fingerprint::FpHasher;
use crate::time::DurNs;

/// The class of a GPU kernel, which selects its efficiency factor.
///
/// Large GEMMs run near peak; attention batched matmuls are smaller and less
/// efficient; normalisation/activation kernels are memory-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Dense matrix multiply (QKV/output projections, MLP).
    Matmul,
    /// Attention score / context batched matmuls.
    Attention,
    /// Memory-bound elementwise or reduction kernels (layernorm, GeLU, ...).
    MemoryBound,
}

/// Static description of one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuProfile {
    /// Human-readable name, e.g. `"H100-80GB"`.
    pub name: &'static str,
    /// Peak dense bf16 throughput in FLOP/s.
    pub peak_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// HBM capacity in bytes.
    pub hbm_capacity: u64,
    /// Fraction of peak achieved by large GEMM kernels.
    pub matmul_efficiency: f64,
    /// Fraction of peak achieved by attention batched matmuls.
    pub attention_efficiency: f64,
    /// Fraction of HBM bandwidth achieved by memory-bound kernels.
    pub membw_efficiency: f64,
    /// Fixed overhead added to every kernel (launch + tail effects).
    pub kernel_overhead: DurNs,
}

impl GpuProfile {
    /// Hopper-class GPU matching the paper's testbed (§5.1): 80 GB HBM and
    /// 989 TFLOP/s bf16 peak.
    pub fn h100() -> GpuProfile {
        GpuProfile {
            name: "H100-80GB",
            peak_flops: 989e12,
            hbm_bandwidth: 3.35e12,
            hbm_capacity: 80 * (1 << 30),
            matmul_efficiency: 0.52,
            attention_efficiency: 0.30,
            membw_efficiency: 0.75,
            kernel_overhead: DurNs(4_000),
        }
    }

    /// Ampere-class GPU used in the paper's Alpa/FSDP comparison (Appendix C).
    pub fn a100() -> GpuProfile {
        GpuProfile {
            name: "A100-80GB",
            peak_flops: 312e12,
            hbm_bandwidth: 2.0e12,
            hbm_capacity: 80 * (1 << 30),
            matmul_efficiency: 0.55,
            attention_efficiency: 0.32,
            membw_efficiency: 0.75,
            kernel_overhead: DurNs(4_000),
        }
    }

    /// Folds every roofline-visible field into a fingerprint hasher in
    /// canonical order (part of [`crate::ClusterTopology::fingerprint`]).
    pub fn fold_into(&self, h: &mut FpHasher) {
        h.fold_str("gpu-profile/v1")
            .fold_str(self.name)
            .fold_f64(self.peak_flops)
            .fold_f64(self.hbm_bandwidth)
            .fold_u64(self.hbm_capacity)
            .fold_f64(self.matmul_efficiency)
            .fold_f64(self.attention_efficiency)
            .fold_f64(self.membw_efficiency)
            .fold_u64(self.kernel_overhead.0);
    }

    /// Effective FLOP/s for a kernel class.
    pub fn effective_flops(&self, class: KernelClass) -> f64 {
        match class {
            KernelClass::Matmul => self.peak_flops * self.matmul_efficiency,
            KernelClass::Attention => self.peak_flops * self.attention_efficiency,
            KernelClass::MemoryBound => self.peak_flops,
        }
    }

    /// Duration of a compute kernel given its FLOP and HBM traffic footprint.
    ///
    /// The kernel is modeled as the max of its compute-limited and
    /// bandwidth-limited times (a simple roofline), plus launch overhead.
    pub fn kernel_time(&self, class: KernelClass, flops: f64, bytes: f64) -> DurNs {
        let compute_s = flops / self.effective_flops(class);
        let memory_s = bytes / (self.hbm_bandwidth * self.membw_efficiency);
        self.kernel_overhead + DurNs::from_secs_f64(compute_s.max(memory_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_matches_paper_testbed() {
        let g = GpuProfile::h100();
        assert_eq!(g.peak_flops, 989e12);
        assert_eq!(g.hbm_capacity, 80 * (1 << 30));
    }

    #[test]
    fn matmul_faster_classes_ordered() {
        let g = GpuProfile::h100();
        assert!(g.effective_flops(KernelClass::Matmul) > g.effective_flops(KernelClass::Attention));
    }

    #[test]
    fn kernel_time_roofline_picks_bottleneck() {
        let g = GpuProfile::h100();
        // Compute-bound: lots of FLOPs, no bytes.
        let tc = g.kernel_time(KernelClass::Matmul, 1e12, 0.0);
        // Memory-bound: same-ish duration from bytes alone.
        let tm = g.kernel_time(KernelClass::MemoryBound, 0.0, 1e10);
        assert!(tc > g.kernel_overhead);
        assert!(tm > g.kernel_overhead);
        // The compute-bound kernel at 1 TFLOP on ~514 TFLOP/s should take ~2 ms.
        let expected_ms = 1e12 / (989e12 * 0.52) * 1e3;
        assert!((tc.as_millis_f64() - expected_ms).abs() < 0.1);
    }

    #[test]
    fn zero_work_kernel_costs_only_overhead() {
        let g = GpuProfile::h100();
        assert_eq!(
            g.kernel_time(KernelClass::Matmul, 0.0, 0.0),
            g.kernel_overhead
        );
    }
}

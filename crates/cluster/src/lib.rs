//! Simulated GPU-cluster substrate for the Optimus reproduction.
//!
//! The Optimus paper evaluates on a production cluster of NVIDIA Hopper GPUs
//! connected by NVLink (intra-server) and RDMA (inter-server). This crate is
//! the analytic stand-in for that hardware: GPU roofline profiles, cluster
//! topology, process groups and an α–β cost model for the collectives and
//! point-to-point transfers the training stack issues.
//!
//! Everything upstream (kernel decomposition, pipeline schedules, the bubble
//! scheduler) consumes *durations* produced here, exactly as the real system
//! consumes durations from offline CUDA profiling.
//!
//! # Examples
//!
//! ```
//! use optimus_cluster::{ClusterTopology, CommCostModel, CollectiveKind, ProcessGroup};
//!
//! let topo = ClusterTopology::hopper_cluster(16).unwrap();
//! let comm = CommCostModel::new(topo);
//! let tp_group = ProcessGroup::contiguous(0, 8).unwrap();
//! let t = comm.collective_time(CollectiveKind::AllGather, 64 << 20, &tp_group);
//! assert!(t.as_micros_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collective;
pub mod error;
pub mod fingerprint;
pub mod group;
pub mod hardware;
pub mod time;
pub mod topology;

pub use collective::{CollectiveKind, CommCostModel};
pub use error::ClusterError;
pub use fingerprint::{Fingerprint, FpHasher};
pub use group::ProcessGroup;
pub use hardware::{GpuProfile, KernelClass};
pub use time::{DurNs, TimeNs};
pub use topology::{storage_default, ClusterTopology, DeviceId, LinkClass, LinkProfile};

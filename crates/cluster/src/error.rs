//! Error type for cluster construction and communication-group queries.

use std::error::Error;
use std::fmt;

/// Errors produced while describing a cluster or a process group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A cluster must contain at least one GPU and one GPU per node.
    EmptyCluster,
    /// GPU count does not tile into whole nodes.
    UnevenNodes {
        /// Requested number of GPUs.
        num_gpus: u32,
        /// GPUs per node.
        gpus_per_node: u32,
    },
    /// A device id referenced a GPU outside the cluster.
    UnknownDevice {
        /// The offending device index.
        device: u32,
        /// Cluster size.
        num_gpus: u32,
    },
    /// A process group was constructed with no ranks or duplicate ranks.
    InvalidGroup {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyCluster => write!(f, "cluster must contain at least one GPU"),
            ClusterError::UnevenNodes {
                num_gpus,
                gpus_per_node,
            } => write!(
                f,
                "{num_gpus} GPUs do not tile into whole nodes of {gpus_per_node}"
            ),
            ClusterError::UnknownDevice { device, num_gpus } => {
                write!(f, "device {device} outside cluster of {num_gpus} GPUs")
            }
            ClusterError::InvalidGroup { reason } => write!(f, "invalid process group: {reason}"),
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ClusterError::UnevenNodes {
            num_gpus: 12,
            gpus_per_node: 8,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("8"));
    }
}

//! Cluster topology: nodes of GPUs joined by NVLink inside a node and RDMA
//! across nodes (§5.1: "intra-server connection is NVLink, and the inter-server
//! connection is a high-bandwidth RDMA network").

use crate::error::ClusterError;
use crate::fingerprint::{Fingerprint, FpHasher};
use crate::hardware::GpuProfile;

/// Global identifier of one GPU in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Returns the raw index as `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A point-to-point link class between two GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Same-GPU "link" — zero-cost loopback.
    Loopback,
    /// Intra-node NVLink.
    NvLink,
    /// Inter-node RDMA NIC.
    Rdma,
    /// GPU ↔ durable checkpoint storage (parallel filesystem / object store).
    Storage,
}

impl LinkClass {
    /// Stable short label, used in fingerprints and human-readable keys.
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::Loopback => "loopback",
            LinkClass::NvLink => "nvlink",
            LinkClass::Rdma => "rdma",
            LinkClass::Storage => "storage",
        }
    }
}

/// Bandwidth/latency description of one link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Unidirectional bandwidth in bytes/s available to one GPU.
    pub bandwidth: f64,
    /// One-way message latency in seconds.
    pub latency: f64,
}

impl LinkProfile {
    /// This profile with its bandwidth multiplied by `bandwidth_factor`
    /// (`(0, 1]` — lane failures, congestion) and its latency multiplied by
    /// `latency_factor` (`>= 1`) — how fault injection models a sick link.
    pub fn degraded(self, bandwidth_factor: f64, latency_factor: f64) -> LinkProfile {
        LinkProfile {
            bandwidth: self.bandwidth * bandwidth_factor,
            latency: self.latency * latency_factor,
        }
    }
}

/// Description of the whole training cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTopology {
    /// Profile shared by every GPU.
    pub gpu: GpuProfile,
    /// Number of servers.
    pub num_nodes: u32,
    /// GPUs per server (8 for DGX/HGX-style nodes).
    pub gpus_per_node: u32,
    /// Intra-node NVLink link profile.
    pub nvlink: LinkProfile,
    /// Inter-node RDMA link profile.
    pub rdma: LinkProfile,
    /// Per-rank durable-storage link profile (checkpoint writes/reads).
    pub storage: LinkProfile,
}

impl ClusterTopology {
    /// Hopper production-cluster profile used throughout the evaluation:
    /// 8-GPU NVLink nodes, 400 Gb/s-class RDMA per GPU.
    pub fn hopper_cluster(num_gpus: u32) -> Result<ClusterTopology, ClusterError> {
        ClusterTopology::new(
            GpuProfile::h100(),
            num_gpus,
            8,
            nvlink_default(),
            rdma_default(),
        )
    }

    /// Ampere cluster for the Appendix C small-model comparison (8×A100).
    pub fn ampere_node(num_gpus: u32) -> Result<ClusterTopology, ClusterError> {
        ClusterTopology::new(
            GpuProfile::a100(),
            num_gpus,
            8,
            nvlink_default(),
            rdma_default(),
        )
    }

    /// Builds a topology of `num_gpus` GPUs packed into nodes of
    /// `gpus_per_node`; `num_gpus` must divide evenly into nodes.
    pub fn new(
        gpu: GpuProfile,
        num_gpus: u32,
        gpus_per_node: u32,
        nvlink: LinkProfile,
        rdma: LinkProfile,
    ) -> Result<ClusterTopology, ClusterError> {
        if num_gpus == 0 || gpus_per_node == 0 {
            return Err(ClusterError::EmptyCluster);
        }
        if !num_gpus.is_multiple_of(gpus_per_node) && num_gpus > gpus_per_node {
            return Err(ClusterError::UnevenNodes {
                num_gpus,
                gpus_per_node,
            });
        }
        let (nodes, per_node) = if num_gpus <= gpus_per_node {
            (1, num_gpus)
        } else {
            (num_gpus / gpus_per_node, gpus_per_node)
        };
        Ok(ClusterTopology {
            gpu,
            num_nodes: nodes,
            gpus_per_node: per_node,
            nvlink,
            rdma,
            storage: storage_default(),
        })
    }

    /// This topology with the durable-storage link profile replaced.
    pub fn with_storage(&self, profile: LinkProfile) -> ClusterTopology {
        let mut t = self.clone();
        t.storage = profile;
        t
    }

    /// Total number of GPUs in the cluster.
    pub fn num_gpus(&self) -> u32 {
        self.num_nodes * self.gpus_per_node
    }

    /// Node index hosting the given device.
    pub fn node_of(&self, dev: DeviceId) -> u32 {
        dev.0 / self.gpus_per_node
    }

    /// True when both devices sit in the same server.
    pub fn same_node(&self, a: DeviceId, b: DeviceId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Link class connecting two devices.
    pub fn link_class(&self, a: DeviceId, b: DeviceId) -> LinkClass {
        if a == b {
            LinkClass::Loopback
        } else if self.same_node(a, b) {
            LinkClass::NvLink
        } else {
            LinkClass::Rdma
        }
    }

    /// Link profile for a link class. `Loopback` reports infinite bandwidth
    /// and zero latency.
    pub fn link_profile(&self, class: LinkClass) -> LinkProfile {
        match class {
            LinkClass::Loopback => LinkProfile {
                bandwidth: f64::INFINITY,
                latency: 0.0,
            },
            LinkClass::NvLink => self.nvlink,
            LinkClass::Rdma => self.rdma,
            LinkClass::Storage => self.storage,
        }
    }

    /// This topology with the profile of one link class replaced — used to
    /// build the degraded topology a fault-aware re-planner prices against.
    /// Replacing `Loopback` is a no-op (loopback is always free).
    pub fn with_link_profile(&self, class: LinkClass, profile: LinkProfile) -> ClusterTopology {
        let mut t = self.clone();
        match class {
            LinkClass::Loopback => {}
            LinkClass::NvLink => t.nvlink = profile,
            LinkClass::Rdma => t.rdma = profile,
            LinkClass::Storage => t.storage = profile,
        }
        t
    }

    /// Canonical content fingerprint of this topology: GPU profile, node
    /// hierarchy, and all three link-class profiles. Two topologies with the
    /// same fingerprint price every collective and transfer identically, so
    /// the plan cache may key on it.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new("cluster-topology/v1");
        self.gpu.fold_into(&mut h);
        h.fold_u32(self.num_nodes).fold_u32(self.gpus_per_node);
        for (class, p) in [
            (LinkClass::NvLink, self.nvlink),
            (LinkClass::Rdma, self.rdma),
            (LinkClass::Storage, self.storage),
        ] {
            h.fold_str(class.label())
                .fold_f64(p.bandwidth)
                .fold_f64(p.latency);
        }
        h.finish()
    }

    /// True when the plan search can read the profile of `class` for this
    /// topology. `Loopback` is always free and `Storage` is never consulted
    /// by planning (no [`crate::ProcessGroup`] bottlenecks on it; only the
    /// checkpoint path prices it), and `Rdma` is reachable only when the
    /// cluster spans more than one node — on a single node every peer pair
    /// classifies as NVLink and point-to-point costs take the intra-node
    /// path. A delta confined to an unread class provably cannot change the
    /// plan, which is what licenses zero-search incremental re-planning.
    pub fn planning_reads(&self, class: LinkClass) -> bool {
        match class {
            LinkClass::Loopback | LinkClass::Storage => false,
            LinkClass::NvLink => true,
            LinkClass::Rdma => self.num_nodes > 1,
        }
    }

    /// Validates that a device id belongs to this cluster.
    pub fn check_device(&self, dev: DeviceId) -> Result<(), ClusterError> {
        if dev.0 < self.num_gpus() {
            Ok(())
        } else {
            Err(ClusterError::UnknownDevice {
                device: dev.0,
                num_gpus: self.num_gpus(),
            })
        }
    }
}

/// Default NVLink profile: 400 GB/s effective per-GPU, ~3 µs latency.
pub fn nvlink_default() -> LinkProfile {
    LinkProfile {
        bandwidth: 400e9,
        latency: 3e-6,
    }
}

/// Default RDMA profile: 400 Gb/s (~50 GB/s) per GPU NIC, ~12 µs latency.
pub fn rdma_default() -> LinkProfile {
    LinkProfile {
        bandwidth: 50e9,
        latency: 12e-6,
    }
}

/// Default durable-storage profile: parallel-filesystem checkpoint lane,
/// ~2 GB/s sustained per rank and ~500 µs open/commit latency.
pub fn storage_default() -> LinkProfile {
    LinkProfile {
        bandwidth: 2e9,
        latency: 500e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_expected_node_count() {
        let t = ClusterTopology::hopper_cluster(3072).unwrap();
        assert_eq!(t.num_nodes, 384);
        assert_eq!(t.num_gpus(), 3072);
    }

    #[test]
    fn small_cluster_fits_one_node() {
        let t = ClusterTopology::hopper_cluster(4).unwrap();
        assert_eq!(t.num_nodes, 1);
        assert_eq!(t.gpus_per_node, 4);
    }

    #[test]
    fn rejects_uneven_layout() {
        assert!(matches!(
            ClusterTopology::hopper_cluster(12),
            Err(ClusterError::UnevenNodes { .. })
        ));
        assert!(matches!(
            ClusterTopology::hopper_cluster(0),
            Err(ClusterError::EmptyCluster)
        ));
    }

    #[test]
    fn link_classification() {
        let t = ClusterTopology::hopper_cluster(16).unwrap();
        assert_eq!(t.link_class(DeviceId(0), DeviceId(0)), LinkClass::Loopback);
        assert_eq!(t.link_class(DeviceId(0), DeviceId(7)), LinkClass::NvLink);
        assert_eq!(t.link_class(DeviceId(0), DeviceId(8)), LinkClass::Rdma);
    }

    #[test]
    fn storage_link_is_part_of_the_topology() {
        let t = ClusterTopology::hopper_cluster(8).unwrap();
        assert_eq!(t.link_profile(LinkClass::Storage), storage_default());
        let slow = storage_default().degraded(0.25, 2.0);
        let t2 = t.with_link_profile(LinkClass::Storage, slow);
        assert_eq!(t2.storage, slow);
        assert_eq!(t.with_storage(slow).storage, slow);
        // Peer link classification never yields the storage class.
        assert_ne!(t.link_class(DeviceId(0), DeviceId(1)), LinkClass::Storage);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = ClusterTopology::hopper_cluster(16).unwrap();
        let b = ClusterTopology::hopper_cluster(16).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any planning-visible change moves the hash.
        let wider = ClusterTopology::hopper_cluster(32).unwrap();
        assert_ne!(a.fingerprint(), wider.fingerprint());
        let sick = a.with_link_profile(LinkClass::Rdma, rdma_default().degraded(0.5, 1.0));
        assert_ne!(a.fingerprint(), sick.fingerprint());
        let slow_store = a.with_storage(storage_default().degraded(0.5, 1.0));
        assert_ne!(a.fingerprint(), slow_store.fingerprint());
        let ampere = ClusterTopology::ampere_node(16).unwrap();
        assert_ne!(a.fingerprint(), ampere.fingerprint());
    }

    #[test]
    fn planning_read_set() {
        let single = ClusterTopology::hopper_cluster(8).unwrap();
        assert!(single.planning_reads(LinkClass::NvLink));
        assert!(
            !single.planning_reads(LinkClass::Rdma),
            "one node: all P2P is NVLink"
        );
        assert!(!single.planning_reads(LinkClass::Storage));
        assert!(!single.planning_reads(LinkClass::Loopback));
        let multi = ClusterTopology::hopper_cluster(16).unwrap();
        assert!(multi.planning_reads(LinkClass::Rdma));
    }

    #[test]
    fn device_validation() {
        let t = ClusterTopology::hopper_cluster(8).unwrap();
        assert!(t.check_device(DeviceId(7)).is_ok());
        assert!(t.check_device(DeviceId(8)).is_err());
    }
}

//! Analytic cost model for collective and point-to-point communication.
//!
//! Collectives use the standard ring-algorithm α–β model: a ring pass over a
//! group of `g` ranks moving `S` bytes costs `α·(g−1) + S·(g−1)/(g·β)` where
//! `β` is the bandwidth of the slowest link on the ring. This matches how
//! NCCL ring collectives scale and is the model used by Megatron-LM-style
//! planners when estimating communication time.

use crate::group::ProcessGroup;
use crate::time::DurNs;
use crate::topology::{ClusterTopology, DeviceId};

/// The collective operations the training stack issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Gather shards from all ranks to all ranks (parameter unsharding).
    AllGather,
    /// Reduce then scatter shards (gradient aggregation).
    ReduceScatter,
    /// Full reduction visible on all ranks.
    AllReduce,
    /// One-to-all copy.
    Broadcast,
}

/// Communication cost model bound to one cluster topology.
#[derive(Debug, Clone)]
pub struct CommCostModel {
    topo: ClusterTopology,
    /// Multiplier (> 1.0) applied to the end-of-step reduce-scatter to model
    /// straggler synchronisation delay (§2.2 footnote 1).
    pub straggler_factor: f64,
}

impl CommCostModel {
    /// Builds a cost model with the default straggler factor observed in the
    /// paper's production traces (reduce-scatter ≫ all-gather bubble).
    pub fn new(topo: ClusterTopology) -> CommCostModel {
        CommCostModel {
            topo,
            straggler_factor: 1.35,
        }
    }

    /// The bound topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// Ring-collective time for `bytes` total payload over `group`.
    ///
    /// `bytes` is the full tensor size: each rank contributes/receives
    /// `bytes / g`. All-reduce costs two ring passes (reduce-scatter +
    /// all-gather); the others cost one.
    pub fn collective_time(&self, kind: CollectiveKind, bytes: u64, group: &ProcessGroup) -> DurNs {
        let g = group.size() as f64;
        if group.size() <= 1 {
            return DurNs::ZERO;
        }
        let link = self.topo.link_profile(group.bottleneck_link(&self.topo));
        let passes = match kind {
            CollectiveKind::AllReduce => 2.0,
            CollectiveKind::AllGather
            | CollectiveKind::ReduceScatter
            | CollectiveKind::Broadcast => 1.0,
        };
        let alpha = link.latency * (g - 1.0) * passes;
        let beta = bytes as f64 * (g - 1.0) / (g * link.bandwidth) * passes;
        DurNs::from_secs_f64(alpha + beta)
    }

    /// Same as [`collective_time`](Self::collective_time) but with the
    /// straggler factor applied — used for the end-of-step gradient
    /// reduce-scatter, which waits on the slowest DP replica.
    pub fn straggled_collective_time(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        group: &ProcessGroup,
    ) -> DurNs {
        let base = self.collective_time(kind, bytes, group);
        DurNs::from_secs_f64(base.as_secs_f64() * self.straggler_factor)
    }

    /// Point-to-point transfer time for `bytes` between two devices.
    pub fn p2p_time(&self, bytes: u64, src: DeviceId, dst: DeviceId) -> DurNs {
        let link = self.topo.link_profile(self.topo.link_class(src, dst));
        if link.bandwidth.is_infinite() {
            return DurNs::ZERO;
        }
        DurNs::from_secs_f64(link.latency + bytes as f64 / link.bandwidth)
    }

    /// P2P time assuming the worst link class present between pipeline
    /// stages (used when the concrete device placement is abstracted away:
    /// adjacent pipeline stages usually live on different nodes at scale).
    pub fn p2p_time_internode(&self, bytes: u64) -> DurNs {
        let link = self.topo.rdma;
        DurNs::from_secs_f64(link.latency + bytes as f64 / link.bandwidth)
    }

    /// P2P time over NVLink (adjacent stages colocated in one server).
    pub fn p2p_time_intranode(&self, bytes: u64) -> DurNs {
        let link = self.topo.nvlink;
        DurNs::from_secs_f64(link.latency + bytes as f64 / link.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(gpus: u32) -> CommCostModel {
        CommCostModel::new(ClusterTopology::hopper_cluster(gpus).unwrap())
    }

    #[test]
    fn singleton_group_is_free() {
        let m = model(8);
        let g = ProcessGroup::contiguous(0, 1).unwrap();
        assert_eq!(
            m.collective_time(CollectiveKind::AllGather, 1 << 30, &g),
            DurNs::ZERO
        );
    }

    #[test]
    fn allreduce_costs_two_passes() {
        let m = model(8);
        let g = ProcessGroup::contiguous(0, 8).unwrap();
        let ar = m.collective_time(CollectiveKind::AllReduce, 1 << 30, &g);
        let ag = m.collective_time(CollectiveKind::AllGather, 1 << 30, &g);
        let ratio = ar.as_secs_f64() / ag.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn internode_group_slower_than_intranode() {
        let m = model(16);
        let intra = ProcessGroup::contiguous(0, 8).unwrap();
        let inter = ProcessGroup::new((0..8).map(|i| DeviceId(i * 2)).collect()).unwrap();
        let ti = m.collective_time(CollectiveKind::AllGather, 1 << 30, &intra);
        let te = m.collective_time(CollectiveKind::AllGather, 1 << 30, &inter);
        assert!(te > ti * 4, "inter {te} intra {ti}");
    }

    #[test]
    fn straggler_inflates_reduce_scatter() {
        let m = model(8);
        let g = ProcessGroup::contiguous(0, 8).unwrap();
        let base = m.collective_time(CollectiveKind::ReduceScatter, 1 << 28, &g);
        let strag = m.straggled_collective_time(CollectiveKind::ReduceScatter, 1 << 28, &g);
        assert!(strag > base);
    }

    #[test]
    fn p2p_scales_with_bytes_and_link() {
        let m = model(16);
        let near = m.p2p_time(1 << 26, DeviceId(0), DeviceId(1));
        let far = m.p2p_time(1 << 26, DeviceId(0), DeviceId(9));
        assert!(far > near);
        assert_eq!(m.p2p_time(1 << 20, DeviceId(3), DeviceId(3)), DurNs::ZERO);
        // 64 MiB over 50 GB/s RDMA ≈ 1.34 ms.
        assert!((far.as_millis_f64() - 1.34).abs() < 0.1, "far {far}");
    }

    #[test]
    fn collective_time_grows_with_group_size_bytes_fixed() {
        let m = model(64);
        let small = ProcessGroup::contiguous(0, 16).unwrap();
        let large = ProcessGroup::contiguous(0, 64).unwrap();
        let ts = m.collective_time(CollectiveKind::AllGather, 1 << 30, &small);
        let tl = m.collective_time(CollectiveKind::AllGather, 1 << 30, &large);
        // (g-1)/g grows with g, so the larger ring is slightly slower.
        assert!(tl > ts);
    }
}

//! Analytic cost model for collective and point-to-point communication.
//!
//! Collectives use the standard ring-algorithm α–β model: a ring pass over a
//! group of `g` ranks moving `S` bytes costs `α·(g−1) + S·(g−1)/(g·β)` where
//! `β` is the bandwidth of the slowest link on the ring. This matches how
//! NCCL ring collectives scale and is the model used by Megatron-LM-style
//! planners when estimating communication time.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::fingerprint::{Fingerprint, FpHasher};
use crate::group::ProcessGroup;
use crate::time::DurNs;
use crate::topology::{ClusterTopology, DeviceId, LinkClass};

/// The collective operations the training stack issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Gather shards from all ranks to all ranks (parameter unsharding).
    AllGather,
    /// Reduce then scatter shards (gradient aggregation).
    ReduceScatter,
    /// Full reduction visible on all ranks.
    AllReduce,
    /// One-to-all copy.
    Broadcast,
}

impl CollectiveKind {
    /// Stable short label, used in fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            CollectiveKind::AllGather => "allgather",
            CollectiveKind::ReduceScatter => "reducescatter",
            CollectiveKind::AllReduce => "allreduce",
            CollectiveKind::Broadcast => "broadcast",
        }
    }
}

/// Memo key for one ring-collective query: the canonical fingerprint of the
/// four values the α–β cost depends on (kind, group size, payload,
/// bottleneck link class) — not the concrete rank list. Keying on the shared
/// [`Fingerprint`] type keeps this memo on the same canonical hashing as the
/// plan cache instead of a bespoke tuple encoding.
type CollectiveKey = Fingerprint;

fn collective_key(
    kind: CollectiveKind,
    group_size: u32,
    bytes: u64,
    class: LinkClass,
) -> Fingerprint {
    FpHasher::new("collective-query/v1")
        .fold_str(kind.label())
        .fold_u32(group_size)
        .fold_u64(bytes)
        .fold_str(class.label())
        .finish()
}

/// Hit/miss counters of the collective cost cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the memo table.
    pub hits: u64,
    /// Queries that computed and inserted a fresh entry.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Concurrent memo table for ring-collective costs.
///
/// The planner's search re-queries the same (kind, group size, payload,
/// link class) tuples thousands of times per candidate sweep; after warmup
/// every query is a shared read lock plus a hash probe. Cloning the owning
/// [`CommCostModel`] shares the table, so parallel search workers populate
/// one memo.
#[derive(Default)]
pub struct CollectiveCostCache {
    table: RwLock<HashMap<CollectiveKey, DurNs>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CollectiveCostCache {
    fn get_or_insert_with(&self, key: CollectiveKey, compute: impl FnOnce() -> DurNs) -> DurNs {
        if let Some(&dur) = self.table.read().expect("cost cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return dur;
        }
        // Recompute outside any lock; the model is pure, so a racing insert
        // of the same key writes the identical value.
        let dur = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.table
            .write()
            .expect("cost cache poisoned")
            .insert(key, dur);
        dur
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn clear(&self) {
        self.table.write().expect("cost cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    fn len(&self) -> usize {
        self.table.read().expect("cost cache poisoned").len()
    }
}

impl fmt::Debug for CollectiveCostCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectiveCostCache")
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Communication cost model bound to one cluster topology.
#[derive(Debug, Clone)]
pub struct CommCostModel {
    topo: ClusterTopology,
    /// Multiplier (> 1.0) applied to the end-of-step reduce-scatter to model
    /// straggler synchronisation delay (§2.2 footnote 1).
    pub straggler_factor: f64,
    cache: Arc<CollectiveCostCache>,
}

impl CommCostModel {
    /// Builds a cost model with the default straggler factor observed in the
    /// paper's production traces (reduce-scatter ≫ all-gather bubble).
    pub fn new(topo: ClusterTopology) -> CommCostModel {
        CommCostModel {
            topo,
            straggler_factor: 1.35,
            cache: Arc::new(CollectiveCostCache::default()),
        }
    }

    /// The bound topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// Rebinds the model to a different topology (e.g. one with degraded
    /// links), preserving the straggler factor but starting from an empty
    /// memo table: cached entries are keyed by link *class* only, so entries
    /// priced against the old link profiles must not leak into the new model.
    pub fn with_topology(&self, topo: ClusterTopology) -> CommCostModel {
        CommCostModel {
            topo,
            straggler_factor: self.straggler_factor,
            cache: Arc::new(CollectiveCostCache::default()),
        }
    }

    /// Hit/miss counters of the collective memo table.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of memoised collective costs.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Empties the memo table and resets the counters.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Ring-collective time for `bytes` total payload over `group`.
    ///
    /// `bytes` is the full tensor size: each rank contributes/receives
    /// `bytes / g`. All-reduce costs two ring passes (reduce-scatter +
    /// all-gather); the others cost one.
    ///
    /// Results are memoised per (kind, group size, payload, bottleneck link
    /// class) — the only inputs the α–β model reads — behind a concurrent
    /// read path shared by clones of this model.
    pub fn collective_time(&self, kind: CollectiveKind, bytes: u64, group: &ProcessGroup) -> DurNs {
        if group.size() <= 1 {
            return DurNs::ZERO;
        }
        let class = group.bottleneck_link(&self.topo);
        self.cache
            .get_or_insert_with(collective_key(kind, group.size(), bytes, class), || {
                self.compute_collective_time(kind, bytes, group.size(), class)
            })
    }

    fn compute_collective_time(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        group_size: u32,
        class: LinkClass,
    ) -> DurNs {
        let g = f64::from(group_size);
        let link = self.topo.link_profile(class);
        let passes = match kind {
            CollectiveKind::AllReduce => 2.0,
            CollectiveKind::AllGather
            | CollectiveKind::ReduceScatter
            | CollectiveKind::Broadcast => 1.0,
        };
        let alpha = link.latency * (g - 1.0) * passes;
        let beta = bytes as f64 * (g - 1.0) / (g * link.bandwidth) * passes;
        DurNs::from_secs_f64(alpha + beta)
    }

    /// Same as [`collective_time`](Self::collective_time) but with the
    /// straggler factor applied — used for the end-of-step gradient
    /// reduce-scatter, which waits on the slowest DP replica.
    pub fn straggled_collective_time(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        group: &ProcessGroup,
    ) -> DurNs {
        let base = self.collective_time(kind, bytes, group);
        DurNs::from_secs_f64(base.as_secs_f64() * self.straggler_factor)
    }

    /// Point-to-point transfer time for `bytes` between two devices.
    pub fn p2p_time(&self, bytes: u64, src: DeviceId, dst: DeviceId) -> DurNs {
        let link = self.topo.link_profile(self.topo.link_class(src, dst));
        if link.bandwidth.is_infinite() {
            return DurNs::ZERO;
        }
        DurNs::from_secs_f64(link.latency + bytes as f64 / link.bandwidth)
    }

    /// P2P time assuming the worst link class present between pipeline
    /// stages (used when the concrete device placement is abstracted away:
    /// adjacent pipeline stages usually live on different nodes at scale).
    pub fn p2p_time_internode(&self, bytes: u64) -> DurNs {
        let link = self.topo.rdma;
        DurNs::from_secs_f64(link.latency + bytes as f64 / link.bandwidth)
    }

    /// P2P time over NVLink (adjacent stages colocated in one server).
    pub fn p2p_time_intranode(&self, bytes: u64) -> DurNs {
        let link = self.topo.nvlink;
        DurNs::from_secs_f64(link.latency + bytes as f64 / link.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(gpus: u32) -> CommCostModel {
        CommCostModel::new(ClusterTopology::hopper_cluster(gpus).unwrap())
    }

    #[test]
    fn singleton_group_is_free() {
        let m = model(8);
        let g = ProcessGroup::contiguous(0, 1).unwrap();
        assert_eq!(
            m.collective_time(CollectiveKind::AllGather, 1 << 30, &g),
            DurNs::ZERO
        );
    }

    #[test]
    fn allreduce_costs_two_passes() {
        let m = model(8);
        let g = ProcessGroup::contiguous(0, 8).unwrap();
        let ar = m.collective_time(CollectiveKind::AllReduce, 1 << 30, &g);
        let ag = m.collective_time(CollectiveKind::AllGather, 1 << 30, &g);
        let ratio = ar.as_secs_f64() / ag.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn internode_group_slower_than_intranode() {
        let m = model(16);
        let intra = ProcessGroup::contiguous(0, 8).unwrap();
        let inter = ProcessGroup::new((0..8).map(|i| DeviceId(i * 2)).collect()).unwrap();
        let ti = m.collective_time(CollectiveKind::AllGather, 1 << 30, &intra);
        let te = m.collective_time(CollectiveKind::AllGather, 1 << 30, &inter);
        assert!(te > ti * 4, "inter {te} intra {ti}");
    }

    #[test]
    fn straggler_inflates_reduce_scatter() {
        let m = model(8);
        let g = ProcessGroup::contiguous(0, 8).unwrap();
        let base = m.collective_time(CollectiveKind::ReduceScatter, 1 << 28, &g);
        let strag = m.straggled_collective_time(CollectiveKind::ReduceScatter, 1 << 28, &g);
        assert!(strag > base);
    }

    #[test]
    fn p2p_scales_with_bytes_and_link() {
        let m = model(16);
        let near = m.p2p_time(1 << 26, DeviceId(0), DeviceId(1));
        let far = m.p2p_time(1 << 26, DeviceId(0), DeviceId(9));
        assert!(far > near);
        assert_eq!(m.p2p_time(1 << 20, DeviceId(3), DeviceId(3)), DurNs::ZERO);
        // 64 MiB over 50 GB/s RDMA ≈ 1.34 ms.
        assert!((far.as_millis_f64() - 1.34).abs() < 0.1, "far {far}");
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let m = model(16);
        let g = ProcessGroup::contiguous(0, 8).unwrap();
        assert_eq!(m.cache_stats(), CacheStats::default());
        let first = m.collective_time(CollectiveKind::AllGather, 1 << 20, &g);
        assert_eq!(m.cache_stats(), CacheStats { hits: 0, misses: 1 });
        let second = m.collective_time(CollectiveKind::AllGather, 1 << 20, &g);
        assert_eq!(first, second);
        assert_eq!(m.cache_stats(), CacheStats { hits: 1, misses: 1 });
        // A different payload, kind, or link class is a distinct entry.
        m.collective_time(CollectiveKind::AllGather, 1 << 21, &g);
        m.collective_time(CollectiveKind::AllReduce, 1 << 20, &g);
        let inter = ProcessGroup::new((0..8).map(|i| DeviceId(i * 2)).collect()).unwrap();
        m.collective_time(CollectiveKind::AllGather, 1 << 20, &inter);
        assert_eq!(m.cache_stats(), CacheStats { hits: 1, misses: 4 });
        assert_eq!(m.cache_len(), 4);
        assert!((m.cache_stats().hit_rate() - 0.2).abs() < 1e-12);
        m.clear_cache();
        assert_eq!(m.cache_stats(), CacheStats::default());
        assert_eq!(m.cache_len(), 0);
    }

    #[test]
    fn cached_groups_with_same_shape_share_entries() {
        // Two distinct rank lists with identical (size, link class) must hit
        // the same memo entry — the α–β model cannot tell them apart.
        let m = model(16);
        let a = ProcessGroup::contiguous(0, 4).unwrap();
        let b = ProcessGroup::contiguous(4, 4).unwrap();
        let ta = m.collective_time(CollectiveKind::ReduceScatter, 1 << 24, &a);
        let tb = m.collective_time(CollectiveKind::ReduceScatter, 1 << 24, &b);
        assert_eq!(ta, tb);
        assert_eq!(m.cache_stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn clones_share_one_cache() {
        let m = model(8);
        let g = ProcessGroup::contiguous(0, 8).unwrap();
        let clone = m.clone();
        m.collective_time(CollectiveKind::AllGather, 1 << 20, &g);
        clone.collective_time(CollectiveKind::AllGather, 1 << 20, &g);
        assert_eq!(m.cache_stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn singleton_groups_bypass_the_cache() {
        let m = model(8);
        let g = ProcessGroup::contiguous(0, 1).unwrap();
        m.collective_time(CollectiveKind::AllGather, 1 << 30, &g);
        assert_eq!(m.cache_stats(), CacheStats::default());
    }

    #[test]
    fn cache_is_consistent_across_threads() {
        let m = model(64);
        let uncached = CommCostModel::new(m.topology().clone());
        let payloads: Vec<u64> = (0..32).map(|i| 1u64 << (10 + i % 16)).collect();
        let kinds = [
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
            CollectiveKind::AllReduce,
        ];
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let g = ProcessGroup::contiguous(0, 16).unwrap();
                    for &bytes in &payloads {
                        for kind in kinds {
                            let cached = m.collective_time(kind, bytes, &g);
                            let fresh = uncached.compute_collective_time(
                                kind,
                                bytes,
                                g.size(),
                                g.bottleneck_link(uncached.topology()),
                            );
                            assert_eq!(cached, fresh);
                        }
                    }
                });
            }
        });
        let stats = m.cache_stats();
        // 8 threads × 32 payloads × 3 kinds = 768 queries over ≤ 96 distinct
        // keys (racing threads may each take the miss path for one key, so
        // the miss count can exceed the final entry count slightly).
        assert_eq!(stats.hits + stats.misses, 768);
        let entries = m.cache_len() as u64;
        assert!(entries <= 96 && stats.misses >= entries, "{stats:?}");
        assert!(stats.hits >= 768 - stats.misses);
    }

    #[test]
    fn rebinding_topology_starts_a_fresh_cache() {
        let m = model(16);
        let g = ProcessGroup::contiguous(0, 8).unwrap();
        let base = m.collective_time(CollectiveKind::AllGather, 1 << 26, &g);
        // Halve NVLink bandwidth; the same query must be re-priced, not
        // served from the old model's memo table.
        let degraded = m
            .topology()
            .with_link_profile(LinkClass::NvLink, m.topology().nvlink.degraded(0.5, 1.0));
        let m2 = m.with_topology(degraded);
        assert_eq!(m2.cache_stats(), CacheStats::default());
        let slow = m2.collective_time(CollectiveKind::AllGather, 1 << 26, &g);
        assert!(slow > base, "degraded {slow} vs {base}");
        assert_eq!(m2.straggler_factor, m.straggler_factor);
    }

    #[test]
    fn collective_time_grows_with_group_size_bytes_fixed() {
        let m = model(64);
        let small = ProcessGroup::contiguous(0, 16).unwrap();
        let large = ProcessGroup::contiguous(0, 64).unwrap();
        let ts = m.collective_time(CollectiveKind::AllGather, 1 << 30, &small);
        let tl = m.collective_time(CollectiveKind::AllGather, 1 << 30, &large);
        // (g-1)/g grows with g, so the larger ring is slightly slower.
        assert!(tl > ts);
    }
}

//! Criterion microbenchmarks of the hot paths: the discrete-event engine,
//! the bubble scheduler's per-partition packing, and the balanced
//! partitioner.

use criterion::{criterion_group, criterion_main, Criterion};
use optimus_baselines::common::SystemContext;
use optimus_cluster::DurNs;
use optimus_core::{BubbleScheduler, EncoderWork, LlmProfile};
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::{ColocationLayout, ParallelPlan};
use optimus_pipeline::balance_layers;
use optimus_sim::{simulate, Stream, TaskGraph, TaskKind};

fn bench_engine(c: &mut Criterion) {
    // A 4-device pipeline-shaped graph with ~4k tasks.
    let mut g = TaskGraph::new(4);
    let mut prev: Vec<Option<optimus_sim::TaskId>> = vec![None; 4];
    for i in 0..1000u64 {
        for d in 0..4u32 {
            let deps = prev[d as usize].map(|t| vec![t]).unwrap_or_default();
            let id = g.push(
                "k",
                d,
                Stream::Compute,
                DurNs(1000 + i % 7),
                TaskKind::Generic,
                deps,
            );
            prev[d as usize] = Some(id);
        }
    }
    c.bench_function("engine_simulate_4k_tasks", |b| {
        b.iter(|| simulate(&g).unwrap())
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let w = Workload::new(MllmConfig::small(), 8, 16, 1);
    let llm_plan = ParallelPlan::new(2, 2, 2).unwrap();
    let enc_plan = ParallelPlan::new(4, 1, 2).unwrap();
    let ctx = SystemContext::hopper(8).unwrap();
    let profile = LlmProfile::build(&w, &llm_plan, &ctx).unwrap();
    let work = EncoderWork::build(&w.mllm, &enc_plan, 1, &ctx).unwrap();
    let layout = ColocationLayout::new(llm_plan, enc_plan).unwrap();
    let s = BubbleScheduler::new(&profile, &work, &layout).unwrap();
    c.bench_function("bubble_scheduler_one_partition", |b| {
        b.iter(|| s.schedule_partition(&[4, 4], true).unwrap())
    });
    c.bench_function("bubble_scheduler_search_64_partitions", |b| {
        b.iter(|| s.schedule(64, true).unwrap())
    });
}

fn bench_balance(c: &mut Criterion) {
    let times: Vec<DurNs> = (0..144)
        .map(|i| DurNs(1_000_000 + (i % 13) * 50_000))
        .collect();
    c.bench_function("balanced_partition_144_layers_96_stages", |b| {
        b.iter(|| balance_layers(&times, 96).unwrap())
    });
}

criterion_group!(benches, bench_engine, bench_scheduler, bench_balance);
criterion_main!(benches);

//! Microbenchmarks of the hot paths: the discrete-event engine, the bubble
//! scheduler's per-partition packing, and the balanced partitioner.
//!
//! Runs under `cargo bench` with a plain `Instant`-based harness (no
//! registry dependencies): each case is warmed up, then timed over enough
//! iterations to smooth scheduler noise, reporting the per-iteration median
//! of several batches.

use std::time::Instant;

use optimus_baselines::common::SystemContext;
use optimus_cluster::DurNs;
use optimus_core::{BubbleScheduler, EncoderWork, LlmProfile};
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::{ColocationLayout, ParallelPlan};
use optimus_pipeline::balance_layers;
use optimus_sim::{simulate, Stream, TaskGraph, TaskKind};
use optimus_trace::quantile;

/// Times `f` over `batches` batches of `iters` iterations; reports the
/// median per-iteration time in microseconds.
fn bench<F: FnMut()>(name: &str, batches: usize, iters: usize, mut f: F) {
    for _ in 0..iters.min(3) {
        f(); // warmup
    }
    let mut per_iter_us: Vec<f64> = (0..batches)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e6 / iters as f64
        })
        .collect();
    per_iter_us.sort_by(f64::total_cmp);
    println!(
        "{name:<44} {:>12.2} µs/iter (median of {batches}×{iters})",
        quantile(&per_iter_us, 0.5)
    );
}

fn bench_engine() {
    // A 4-device pipeline-shaped graph with ~4k tasks.
    let mut g = TaskGraph::new(4);
    let mut prev: Vec<Option<optimus_sim::TaskId>> = vec![None; 4];
    for i in 0..1000u64 {
        for d in 0..4u32 {
            let deps = prev[d as usize].map(|t| vec![t]).unwrap_or_default();
            let id = g.push(
                "k",
                d,
                Stream::Compute,
                DurNs(1000 + i % 7),
                TaskKind::Generic,
                deps,
            );
            prev[d as usize] = Some(id);
        }
    }
    bench("engine_simulate_4k_tasks", 7, 20, || {
        simulate(&g).unwrap();
    });
}

fn bench_scheduler() {
    let w = Workload::new(MllmConfig::small(), 8, 16, 1);
    let llm_plan = ParallelPlan::new(2, 2, 2).unwrap();
    let enc_plan = ParallelPlan::new(4, 1, 2).unwrap();
    let ctx = SystemContext::hopper(8).unwrap();
    let profile = LlmProfile::build(&w, &llm_plan, &ctx).unwrap();
    let work = EncoderWork::build(&w.mllm, &enc_plan, 1, &ctx).unwrap();
    let layout = ColocationLayout::new(llm_plan, enc_plan).unwrap();
    let s = BubbleScheduler::new(&profile, &work, &layout).unwrap();
    bench("bubble_scheduler_one_partition", 7, 50, || {
        s.schedule_partition(&[4, 4], true).unwrap();
    });
    bench("bubble_scheduler_search_64_partitions", 5, 5, || {
        s.schedule(64, true).unwrap();
    });
}

fn bench_balance() {
    let times: Vec<DurNs> = (0..144)
        .map(|i| DurNs(1_000_000 + (i % 13) * 50_000))
        .collect();
    bench("balanced_partition_144_layers_96_stages", 7, 20, || {
        balance_layers(&times, 96).unwrap();
    });
}

fn main() {
    bench_engine();
    bench_scheduler();
    bench_balance();
}

//! Figure 15: weak-scaling comparison on the Table 3 models.
//!
//! Paper result: Optimus up to 1.22× over Megatron-LM and 1.18× over
//! Megatron-LM balanced; Alpa and FSDP hit OOM on every model.

use optimus_baselines::{alpa, common::SystemContext, fsdp, megatron_balanced, megatron_lm};
use optimus_core::{run_optimus, OptimusConfig};
use optimus_modeling::Workload;
use optimus_parallel::ParallelPlan;
use optimus_trace::TextTable;

/// One row of measured results.
#[derive(Debug, Clone)]
pub struct WeakRow {
    /// Model name.
    pub model: String,
    /// Megatron-LM iteration seconds.
    pub megatron: f64,
    /// Balanced iteration seconds.
    pub balanced: f64,
    /// Optimus iteration seconds.
    pub optimus: f64,
    /// True when Alpa failed (OOM).
    pub alpa_oom: bool,
    /// True when FSDP failed (OOM / infeasible).
    pub fsdp_oom: bool,
}

/// Runs the weak-scaling sweep; returns (report, rows).
pub fn run() -> (String, Vec<WeakRow>) {
    let mut out =
        String::from("== Figure 15: weak scaling (Table 3 models, Appendix D.1 configs) ==\n\n");
    let mut t = TextTable::new(vec![
        "Model",
        "GPUs",
        "Megatron (s)",
        "Balanced (s)",
        "Optimus (s)",
        "vs Meg",
        "vs Bal",
        "Alpa",
        "FSDP",
    ]);
    let mut rows = Vec::new();
    for (w, plan, v) in Workload::weak_scaling() {
        let ctx = SystemContext::hopper(w.num_gpus).expect("cluster");
        let meg = megatron_lm(&w, plan, &ctx).expect("megatron");
        let bal = megatron_balanced(&w, plan, v, &ctx).expect("balanced");
        let llm_plan = ParallelPlan::with_vpp(plan.0, plan.1, plan.2, v).expect("plan");
        let opt = run_optimus(&w, &OptimusConfig::new(llm_plan), &ctx).expect("optimus");
        let alpa_run = alpa(&w, &ctx).expect("alpa");
        let fsdp_oom = match fsdp(&w, &ctx) {
            Ok(r) => r.oom,
            Err(_) => true,
        };
        let row = WeakRow {
            model: w.mllm.name.clone(),
            megatron: meg.report.iteration_secs,
            balanced: bal.report.iteration_secs,
            optimus: opt.report.iteration_secs,
            alpa_oom: alpa_run.report.oom,
            fsdp_oom,
        };
        t.row(vec![
            row.model.clone(),
            w.num_gpus.to_string(),
            format!("{:.3}", row.megatron),
            format!("{:.3}", row.balanced),
            format!("{:.3}", row.optimus),
            format!("{:.2}x", row.megatron / row.optimus),
            format!("{:.2}x", row.balanced / row.optimus),
            if row.alpa_oom {
                "OOM".into()
            } else {
                "ok".to_string()
            },
            if row.fsdp_oom {
                "OOM".into()
            } else {
                "ok".to_string()
            },
        ]);
        rows.push(row);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: Optimus up to 1.22x vs Megatron-LM, 1.18x vs balanced; Alpa/FSDP OOM on all models\n");
    (out, rows)
}

//! Planner-search strong scaling: throughput of the parallel plan-search
//! engine on the Table 5 strong-scaling config (ViT-22B + GPT-175B at
//! 3072 GPUs) as the worker count grows.
//!
//! Reports wall-clock, candidates/s, and speedup vs one worker, and checks
//! the engine's determinism contract: every worker count must select the
//! same encoder plan with the same latency.

use std::time::Duration;

use optimus_baselines::common::SystemContext;
use optimus_core::{run_optimus, OptimusConfig};
use optimus_modeling::Workload;
use optimus_parallel::ParallelPlan;
use optimus_trace::{planner_search_table, SearchTiming, TextTable};

/// Measured search timings at one worker count.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Search workers used.
    pub workers: usize,
    /// Candidates offered to the search.
    pub candidates: usize,
    /// Search wall-clock.
    pub wall: Duration,
    /// Candidates evaluated per second.
    pub throughput: f64,
    /// Wall-clock speedup vs the 1-worker sweep.
    pub speedup: f64,
    /// Chosen encoder plan (must match across rows).
    pub enc_plan: ParallelPlan,
    /// Chosen schedule latency in ns (must match across rows).
    pub latency: i64,
}

/// Worker counts swept by the experiment.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the planner-scaling sweep; returns (report, rows).
pub fn run() -> (String, Vec<ScalingRow>) {
    let (w, plan, v) = Workload::strong_scaling()
        .pop()
        .expect("strong-scaling configs");
    let ctx = SystemContext::hopper(w.num_gpus).expect("cluster");
    let llm_plan = ParallelPlan::with_vpp(plan.0, plan.1, plan.2, v).expect("plan");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "== Planner search scaling: {} @ {} GPUs, LLM plan (dp={}, pp={}, tp={}, vpp={}) ==\n\
         host cores: {cores} — wall-clock speedup is bounded by physical parallelism;\n\
         on a 1-core host all worker counts degenerate to sequential throughput.\n\n",
        w.mllm.name, w.num_gpus, plan.0, plan.1, plan.2, v
    );
    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut per_worker_reports = String::new();
    for workers in WORKER_COUNTS {
        let cfg = OptimusConfig::new(llm_plan).with_search_workers(workers);
        let run = run_optimus(&w, &cfg, &ctx).expect("optimus");
        let st = &run.search;
        let base_wall = rows
            .first()
            .map(|r| r.wall)
            .unwrap_or(st.wall)
            .as_secs_f64();
        rows.push(ScalingRow {
            workers: st.workers,
            candidates: st.candidates,
            wall: st.wall,
            throughput: st.throughput(),
            speedup: base_wall / st.wall.as_secs_f64().max(1e-12),
            enc_plan: run.enc_plan,
            latency: run.outcome.latency,
        });
        let timings: Vec<SearchTiming> = st
            .per_worker
            .iter()
            .map(|t| SearchTiming {
                worker: t.worker,
                candidates: t.candidates,
                busy_us: t.busy.as_secs_f64() * 1e6,
            })
            .collect();
        per_worker_reports.push_str(&format!("-- {workers} worker(s) --\n"));
        per_worker_reports.push_str(&planner_search_table(
            st.candidates,
            st.wall.as_secs_f64() * 1e6,
            &timings,
        ));
        per_worker_reports.push('\n');
    }

    let mut t = TextTable::new(vec![
        "Workers",
        "Candidates",
        "Wall (ms)",
        "Cand/s",
        "Speedup",
        "Enc plan (pp,tp,dp)",
    ]);
    for r in &rows {
        t.row(vec![
            r.workers.to_string(),
            r.candidates.to_string(),
            format!("{:.2}", r.wall.as_secs_f64() * 1e3),
            format!("{:.1}", r.throughput),
            format!("{:.2}x", r.speedup),
            format!("({}, {}, {})", r.enc_plan.pp, r.enc_plan.tp, r.enc_plan.dp),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&per_worker_reports);

    let identical = rows
        .windows(2)
        .all(|p| p[0].enc_plan == p[1].enc_plan && p[0].latency == p[1].latency);
    out.push_str(&format!(
        "plan selection identical across worker counts: {}\n",
        if identical {
            "yes"
        } else {
            "NO — DETERMINISM BUG"
        }
    ));
    (out, rows)
}

//! Table 4 / Table 10: small-model comparison with Alpa and FSDP.
//!
//! Paper setting: ViT-3B + GPT-11B, 8×A100, global batch 16, seq 2048.
//! Paper numbers: Alpa 8.61 s, FSDP 3.20 s, Megatron-LM 3.42 s,
//! Megatron-LM balanced 3.04 s, Optimus 2.78 s.

use optimus_baselines::{alpa, common::SystemContext, fsdp, megatron_balanced, megatron_lm};
use optimus_core::{run_optimus, OptimusConfig};
use optimus_modeling::Workload;
use optimus_parallel::ParallelPlan;
use optimus_trace::TextTable;

/// Measured iteration seconds per system.
#[derive(Debug, Clone, Copy)]
pub struct SmallModelRow {
    /// Alpa-like baseline.
    pub alpa: f64,
    /// FSDP baseline.
    pub fsdp: f64,
    /// Megatron-LM.
    pub megatron: f64,
    /// Megatron-LM balanced.
    pub balanced: f64,
    /// Optimus.
    pub optimus: f64,
}

/// Runs the Table 4 comparison; returns (report, row).
pub fn run() -> (String, SmallModelRow) {
    let w = Workload::small_model();
    let ctx = SystemContext::ampere(8).expect("cluster");
    let plan = (2, 2, 2);
    let a = alpa(&w, &ctx).expect("alpa");
    let f = fsdp(&w, &ctx).expect("fsdp");
    let m = megatron_lm(&w, plan, &ctx).expect("megatron");
    let b = megatron_balanced(&w, plan, 2, &ctx).expect("balanced");
    let llm_plan = ParallelPlan::with_vpp(plan.0, plan.1, plan.2, 2).expect("plan");
    let o = run_optimus(&w, &OptimusConfig::new(llm_plan), &ctx).expect("optimus");

    let row = SmallModelRow {
        alpa: a.report.iteration_secs,
        fsdp: f.iteration_secs,
        megatron: m.report.iteration_secs,
        balanced: b.report.iteration_secs,
        optimus: o.report.iteration_secs,
    };

    let mut out = String::from("== Table 4: ViT-3B + GPT-11B on 8xA100, batch 16 ==\n\n");
    let mut t = TextTable::new(vec![
        "",
        "Alpa",
        "FSDP",
        "Megatron-LM",
        "Megatron-LM balanced",
        "Optimus",
    ]);
    t.row(vec![
        "paper (s)".to_string(),
        "8.61".to_string(),
        "3.20".to_string(),
        "3.42".to_string(),
        "3.04".to_string(),
        "2.78".to_string(),
    ]);
    t.row(vec![
        "measured (s)".to_string(),
        format!("{:.2}", row.alpa),
        format!("{:.2}", row.fsdp),
        format!("{:.2}", row.megatron),
        format!("{:.2}", row.balanced),
        format!("{:.2}", row.optimus),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nOptimus speedup: {:.2}x vs Alpa (paper 3.09x), {:.1}% vs FSDP (paper 15.1%)\n",
        row.alpa / row.optimus,
        (row.fsdp / row.optimus - 1.0) * 100.0
    ));
    (out, row)
}

//! Table 1: bubble-type breakdown of a large MLLM step under Megatron-LM.
//!
//! Paper setting: ViT-22B + GPT-175B class model, >3000 Hopper GPUs, with
//! DP-AG 3.3%, DP-RS 8.9%, PP-warmup 5.0%, PP-cooldown 9.2%, PP-other 8.7%,
//! TP 11.2% of a 5.12 s step (≈46% total).

use optimus_baselines::{common::SystemContext, megatron_lm};
use optimus_modeling::{MllmConfig, Workload};
use optimus_sim::{BubbleBreakdown, BubbleKind};
use optimus_trace::{bubble_table, TextTable};

/// Paper reference percentages, Table 1 order.
pub const PAPER_PERCENT: [(BubbleKind, f64); 6] = [
    (BubbleKind::DpAllGather, 3.3),
    (BubbleKind::DpReduceScatter, 8.9),
    (BubbleKind::PpWarmup, 5.0),
    (BubbleKind::PpCooldown, 9.2),
    (BubbleKind::PpOther, 8.7),
    (BubbleKind::Tp, 11.2),
];

/// Runs the Table 1 reproduction; returns (report text, measured breakdown).
pub fn run() -> (String, BubbleBreakdown) {
    let w = Workload::new(MllmConfig::model_d(), 3072, 1536, 2);
    let ctx = SystemContext::hopper(3072).expect("cluster");
    let run = megatron_lm(&w, (48, 8, 8), &ctx).expect("megatron run");
    let bd = BubbleBreakdown::measure(&run.lowered.graph, &run.result);

    let mut out = String::from(
        "== Table 1: bubble breakdown, Megatron-LM, ViT-22B+GPT-175B, 3072 GPUs ==\n\n",
    );
    out.push_str(&bubble_table(&bd));
    out.push('\n');
    let mut t = TextTable::new(vec!["Bubble type", "paper %", "measured %"]);
    for (kind, paper) in PAPER_PERCENT {
        t.row(vec![
            kind.label().to_string(),
            format!("{paper:.1}"),
            format!("{:.1}", bd.fraction(kind) * 100.0),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        format!("{:.1}", PAPER_PERCENT.iter().map(|(_, p)| p).sum::<f64>()),
        format!("{:.1}", bd.total_fraction() * 100.0),
    ]);
    out.push_str(&t.render());
    (out, bd)
}

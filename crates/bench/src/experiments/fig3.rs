//! Figure 3: zoom-in on TP bubbles during two GPT-175B layer forwards.
//!
//! Paper observation: the compute stream idles during the per-layer
//! all-gather / reduce-scatter kernels; TP bubbles average ≈300 µs.

use optimus_cluster::{ClusterTopology, CommCostModel, GpuProfile, ProcessGroup};
use optimus_modeling::{layer_kernels, KernelTimer, Pass, TransformerConfig};
use optimus_trace::TextTable;

/// Runs the Fig. 3 reproduction; returns (report, mean TP-bubble µs).
pub fn run() -> (String, f64) {
    let topo = ClusterTopology::hopper_cluster(8).expect("cluster");
    let comm = CommCostModel::new(topo);
    let timer = KernelTimer::new(
        GpuProfile::h100(),
        comm,
        ProcessGroup::contiguous(0, 8).unwrap(),
    );
    let cfg = TransformerConfig::gpt_175b();
    let kernels = layer_kernels(&cfg, 2, 2048, 8, Pass::Forward);

    let mut out = String::from(
        "== Figure 3: kernel timeline of one GPT-175B layer forward (TP=8, microbatch 2) ==\n\n",
    );
    let mut t = TextTable::new(vec!["kernel", "stream", "duration (us)"]);
    let mut tp_total = 0.0;
    let mut tp_count = 0u32;
    for k in &kernels {
        let d = timer.duration(k).as_micros_f64();
        let stream = if k.is_compute() { "compute" } else { "tp-comm" };
        if !k.is_compute() {
            tp_total += d;
            tp_count += 1;
        }
        t.row(vec![
            k.name.to_string(),
            stream.to_string(),
            format!("{d:.1}"),
        ]);
    }
    out.push_str(&t.render());
    let mean = tp_total / f64::from(tp_count.max(1));
    out.push_str(&format!(
        "\nmean TP collective duration: {mean:.0} us (paper: TP bubbles average ≈300 us)\n\
         two layer forwards issue {} TP collectives ({} compute kernels each layer)\n",
        2 * tp_count,
        kernels.iter().filter(|k| k.is_compute()).count(),
    ));
    (out, mean)
}

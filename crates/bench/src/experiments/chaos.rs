//! Adversarial chaos search over the reference schedule, with shrinking.
//!
//! Runs the coordinate-descent chaos search against the spliceable
//! reference plan, then minimizes three curated counterexamples — one per
//! failure surface the probes score — and packages them as replayable
//! fixtures. The smoke configuration asserts the planted counterexamples
//! are found and that shrinking strictly reduces perturbation size while
//! the failure keeps reproducing.

use std::fmt::Write as _;
use std::path::Path;

use optimus_chaos::{
    chaos_search, shrink, ChaosFindings, ChaosFixture, ChaosHarness, ChaosPredicate,
    ChaosSearchConfig, ChaosSettings, DegradedClass, FailureSpec, Perturbation, ShrinkResult,
};

/// One minted counterexample: predicate, shrink trajectory, fixture.
pub struct Mint {
    /// The property the counterexample violates.
    pub predicate: ChaosPredicate,
    /// The shrink run (original = padded start, shrunk = minimal form).
    pub shrink: ShrinkResult,
    /// The replayable fixture built from the shrunk form.
    pub fixture: ChaosFixture,
}

/// Everything the chaos study produced.
pub struct ChaosStudy {
    /// Fault-free makespan of the probed plan, ns.
    pub baseline_ns: i64,
    /// The search findings (worst offenders first).
    pub findings: ChaosFindings,
    /// The curated, minimized counterexamples.
    pub mints: Vec<Mint>,
}

/// The regret floor a fixture-worthy counterexample must clear: 0.5% of
/// the fault-free makespan.
pub fn regret_floor(baseline_ns: i64) -> i64 {
    baseline_ns / 200
}

/// The curated counterexample starts, before padding. Each is planted
/// inside the search ladders, so the search finds its class on its own;
/// minting from fixed starts keeps fixture names and predicates stable.
fn curated(baseline_ns: i64) -> Vec<(&'static str, &'static str, ChaosPredicate, Perturbation)> {
    let mut straggler = Perturbation::zero(1);
    straggler.straggler_device = 0;
    straggler.straggler_pct = 100;

    let mut jitter = Perturbation::zero(2);
    jitter.jitter_pct = 60;

    let mut link = Perturbation::zero(3);
    link.link_class = DegradedClass::NvLink;
    link.link_bw_drop_pct = 80;
    link.link_lat_pct = 300;

    vec![
        (
            "straggler-escapes-bubbles",
            "A straggler device stretches relocated encoder kernels past \
             their proven-idle bubbles (OPT005). The reference harness \
             plans with a 2% bubble-slack margin, so the shrunk \
             counterexample sits just past it.",
            ChaosPredicate::LintErrors,
            straggler,
        ),
        (
            "jitter-escapes-bubbles",
            "Cluster-wide kernel jitter stretches bubble inserts out of \
             their claimed windows (OPT005). The reference harness plans \
             with a 2% bubble-slack margin, so the shrunk counterexample \
             sits just past it.",
            ChaosPredicate::LintErrors,
            jitter,
        ),
        (
            "nvlink-degradation-regret",
            "A degraded NVLink leaves makespan on the table versus a \
             re-plan that prices the slower collectives.",
            ChaosPredicate::RegretAtLeast(regret_floor(baseline_ns)),
            link,
        ),
    ]
}

/// Pads a counterexample with perturbation mass that cannot cure the
/// failure (an extra transient failure never *fixes* a lint or regret
/// violation), so the shrinker provably has something to remove.
fn pad(p: &Perturbation) -> Perturbation {
    let mut padded = p.clone();
    padded.failures.push(FailureSpec {
        device: 1,
        at_pct: 50,
        downtime_ms: 40,
        permanent: false,
    });
    padded
}

/// Runs the chaos study. `smoke` shrinks the search budget for CI.
pub fn run(smoke: bool) -> (String, ChaosStudy) {
    let harness = ChaosHarness::reference(ChaosSettings::default()).expect("harness");
    let baseline_ns = harness.baseline_ns();
    let cfg = if smoke {
        ChaosSearchConfig {
            restarts: 2,
            sweeps: 1,
            workers: 0,
            keep: 6,
            seed: 1,
        }
    } else {
        ChaosSearchConfig {
            restarts: 4,
            sweeps: 2,
            workers: 0,
            keep: 12,
            seed: 1,
        }
    };
    let findings = chaos_search(&harness, &cfg).expect("search");

    let mut mints = Vec::new();
    for (name, description, predicate, start) in curated(baseline_ns) {
        let padded = pad(&start);
        let result = shrink(&harness, predicate, &padded).expect("shrink");
        let fixture = ChaosFixture::from_report(name, description, predicate, &result.shrunk)
            .expect("fixture");
        mints.push(Mint {
            predicate,
            shrink: result,
            fixture,
        });
    }

    let mut out = String::new();
    let _ = writeln!(out, "Chaos search over the reference schedule");
    let _ = writeln!(
        out,
        "  baseline {:.3} ms, {} distinct probes",
        baseline_ns as f64 / 1e6,
        findings.probes
    );
    let _ = writeln!(out, "  worst offenders:");
    for r in &findings.offenders {
        let _ = writeln!(
            out,
            "    size {:>5}  ledger {:>2}  lint {:>4}  regret {:>9.3} ms  {}",
            r.perturbation.size(),
            r.score.ledger_violations,
            r.score.lint_errors,
            r.score.regret_ns as f64 / 1e6,
            r.perturbation.describe()
        );
    }
    let _ = writeln!(out, "  minted counterexamples:");
    for m in &mints {
        let _ = writeln!(
            out,
            "    {:<28} {:<18} size {} -> {} ({} steps, {} probes): {}",
            m.fixture.name,
            m.predicate.label(),
            m.shrink.original.perturbation.size(),
            m.shrink.shrunk.perturbation.size(),
            m.shrink.steps,
            m.shrink.probes,
            m.shrink.shrunk.perturbation.describe()
        );
    }

    (
        out,
        ChaosStudy {
            baseline_ns,
            findings,
            mints,
        },
    )
}

/// Writes every minted fixture into `dir` (the committed
/// `tests/golden/chaos/` when called from the bin with `--mint`).
pub fn write_fixtures(study: &ChaosStudy, dir: &Path) -> Vec<std::path::PathBuf> {
    study
        .mints
        .iter()
        .map(|m| m.fixture.save(dir).expect("write fixture"))
        .collect()
}

//! Extension: pipeline-schedule family comparison (§6 "other pipeline
//! schedules" names Chimera and the zero-bubble pipeline).
//!
//! One GPT-175B pipeline (PP=8, TP=8, 16 microbatches — the 3072-GPU
//! strong-scaling shape) lowered under four schedules; same total compute,
//! different bubble structure.

use optimus_baselines::common::{llm_stages, SystemContext};
use optimus_cluster::DurNs;
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_pipeline::{
    interleaved_1f1b, one_f_one_b, simulate_bidirectional, simulate_pipeline, zero_bubble_h1,
    BidirSpec, PipelineSpec, StageSpec,
};
use optimus_sim::{mean_compute_utilization, BubbleBreakdown};
use optimus_trace::TextTable;

/// Runs the schedule comparison; returns (report, (schedule name, seconds,
/// utilization) rows).
pub fn run() -> (String, Vec<(String, f64, f64)>) {
    let w = Workload::new(MllmConfig::model_d(), 3072, 1536, 2);
    let ctx = SystemContext::hopper(3072).expect("cluster");
    let plan = ParallelPlan::new(48, 8, 8).expect("plan");
    let n_mb = w.microbatches(plan.dp).expect("microbatches");
    let timer = ctx.timer(plan.tp).expect("timer");
    let mb = u64::from(w.microbatch_size);

    let base_stages = llm_stages(&w.mllm.llm, &plan, mb, w.mllm.llm_seq, &timer);
    let max_params = base_stages
        .iter()
        .map(|s| s.params_per_gpu)
        .max()
        .unwrap_or(0);
    let (dp_ag, dp_rs) = ctx
        .dp_comm(max_params, 1, plan.dp, plan.pp * plan.tp)
        .expect("dp");
    let act = base_stages
        .iter()
        .map(|s| s.activation_bytes)
        .max()
        .unwrap_or(0);
    let p2p = ctx.p2p(act);

    let spec = |stages: Vec<StageSpec>, vpp: u32| PipelineSpec {
        pp: plan.pp,
        vpp,
        n_microbatches: n_mb,
        stages,
        dp_allgather: dp_ag,
        dp_reducescatter: dp_rs,
        p2p,
    };

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut record = |name: &str, g: &optimus_sim::TaskGraph, r: &optimus_sim::SimResult| {
        rows.push((
            name.to_string(),
            r.makespan().as_secs_f64(),
            mean_compute_utilization(g, r),
        ));
        BubbleBreakdown::measure(g, r).total_fraction()
    };
    let mut bubbles = Vec::new();

    // 1F1B.
    let (l, r) = simulate_pipeline(
        &spec(base_stages.clone(), 1),
        &one_f_one_b(plan.pp, n_mb).unwrap(),
        &[],
    )
    .expect("1f1b");
    bubbles.push(record("1F1B", &l.graph, &r));

    // Interleaved 1F1B, V=12.
    let vplan = ParallelPlan::with_vpp(plan.dp, plan.pp, plan.tp, 12).expect("vplan");
    let vstages = llm_stages(&w.mllm.llm, &vplan, mb, w.mllm.llm_seq, &timer);
    let (l, r) = simulate_pipeline(
        &spec(vstages, 12),
        &interleaved_1f1b(plan.pp, 12, n_mb, None).unwrap(),
        &[],
    )
    .expect("interleaved");
    bubbles.push(record("interleaved 1F1B (V=12)", &l.graph, &r));

    // Zero-bubble (split backward).
    let zb_stages: Vec<StageSpec> = plan
        .layer_split(w.mllm.llm.layers as u32)
        .into_iter()
        .map(|n| {
            StageSpec::transformer_layers_split(
                &w.mllm.llm,
                n,
                mb,
                w.mllm.llm_seq,
                u64::from(plan.tp),
                &timer,
            )
        })
        .collect();
    let (l, r) = simulate_pipeline(
        &spec(zb_stages, 1),
        &zero_bubble_h1(plan.pp, n_mb).unwrap(),
        &[],
    )
    .expect("zb");
    bubbles.push(record("zero-bubble (split backward)", &l.graph, &r));

    // Chimera (bidirectional; doubles weight memory).
    let bidir = BidirSpec {
        pp: plan.pp,
        n_microbatches: n_mb,
        stages_down: base_stages.clone(),
        stages_up: base_stages,
        dp_allgather: dp_ag,
        dp_reducescatter: DurNs(dp_rs.0),
        p2p,
    };
    let (g, r) = simulate_bidirectional(&bidir).expect("chimera");
    bubbles.push(record("Chimera (bidirectional)", &g, &r));

    let mut out = String::from(
        "== Extension: pipeline-schedule families on GPT-175B (PP=8, TP=8, 16 microbatches) ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "schedule",
        "LLM-only step (s)",
        "compute util",
        "bubble frac",
    ]);
    for ((name, secs, util), bf) in rows.iter().zip(&bubbles) {
        t.row(vec![
            name.clone(),
            format!("{secs:.3}"),
            format!("{:.1}%", util * 100.0),
            format!("{:.1}%", bf * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nall four schedules are substrates Optimus can profile and fill (§6: the bubble \
         scheduling is orthogonal); Chimera trades 2x weight memory for its fill/drain savings\n",
    );
    (out, rows)
}

//! Figure 17: GPU memory usage of Optimus and Megatron-based baselines on
//! the Table 3 models.
//!
//! Paper: Optimus's colocation overhead is at most ≈12% versus the most
//! memory-efficient baseline, and Optimus can even use *less* memory than a
//! baseline whose balanced layer placement creates memory imbalance.

use optimus_baselines::{common::SystemContext, megatron_balanced, megatron_lm};
use optimus_core::{run_optimus, OptimusConfig};
use optimus_modeling::Workload;
use optimus_parallel::ParallelPlan;
use optimus_trace::TextTable;

/// One model's memory measurements (GiB, worst GPU).
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Model name.
    pub model: String,
    /// Megatron-LM peak GiB.
    pub megatron: f64,
    /// Balanced peak GiB.
    pub balanced: f64,
    /// Optimus peak GiB.
    pub optimus: f64,
}

/// Runs the memory comparison; returns (report, rows).
pub fn run() -> (String, Vec<MemoryRow>) {
    let mut out = String::from("== Figure 17: per-GPU memory usage (Table 3 models) ==\n\n");
    let mut t = TextTable::new(vec![
        "Model",
        "Megatron (GiB)",
        "Balanced (GiB)",
        "Optimus (GiB)",
        "overhead vs best",
    ]);
    let mut rows = Vec::new();
    for (w, plan, v) in Workload::weak_scaling() {
        let ctx = SystemContext::hopper(w.num_gpus).expect("cluster");
        let meg = megatron_lm(&w, plan, &ctx).expect("megatron");
        let bal = megatron_balanced(&w, plan, v, &ctx).expect("balanced");
        let llm_plan = ParallelPlan::with_vpp(plan.0, plan.1, plan.2, v).expect("plan");
        let opt = run_optimus(&w, &OptimusConfig::new(llm_plan), &ctx).expect("optimus");
        let row = MemoryRow {
            model: w.mllm.name.clone(),
            megatron: meg.report.peak_memory_gib,
            balanced: bal.report.peak_memory_gib,
            optimus: opt.report.peak_memory_gib,
        };
        let best = row.megatron.min(row.balanced);
        t.row(vec![
            row.model.clone(),
            format!("{:.1}", row.megatron),
            format!("{:.1}", row.balanced),
            format!("{:.1}", row.optimus),
            format!("{:+.1}%", (row.optimus / best - 1.0) * 100.0),
        ]);
        rows.push(row);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: Optimus overhead at most ~12% vs the most memory-efficient baseline\n");
    (out, rows)
}

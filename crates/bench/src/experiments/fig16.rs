//! Figure 16: multi-encoder MLLM training (Table 6 DualEnc configurations,
//! 512 GPUs, batch 256).
//!
//! Paper: Optimus achieves up to 1.25× / 1.26× / 1.27× over Megatron-LM —
//! larger than single-encoder speedups because Megatron-LM stacks *all*
//! encoders into the first pipeline stage, worsening imbalance.

use optimus_baselines::{common::SystemContext, megatron_lm};
use optimus_core::{run_optimus, OptimusConfig};
use optimus_modeling::Workload;
use optimus_parallel::ParallelPlan;
use optimus_trace::TextTable;

/// One DualEnc measurement.
#[derive(Debug, Clone)]
pub struct MultiEncRow {
    /// Model name.
    pub model: String,
    /// Megatron-LM iteration seconds.
    pub megatron: f64,
    /// Optimus iteration seconds.
    pub optimus: f64,
}

/// Paper speedups for the three DualEnc configurations.
pub const PAPER_SPEEDUP: [f64; 3] = [1.25, 1.26, 1.27];

/// Runs the multi-encoder sweep; returns (report, rows).
pub fn run() -> (String, Vec<MultiEncRow>) {
    let mut out = String::from("== Figure 16: multi-encoder MLLMs, 512 GPUs, batch 256 ==\n\n");
    let mut t = TextTable::new(vec![
        "Model",
        "Megatron (s)",
        "Optimus (s)",
        "speedup",
        "paper",
    ]);
    let mut rows = Vec::new();
    for ((w, plan), paper) in Workload::multi_encoder().into_iter().zip(PAPER_SPEEDUP) {
        let ctx = SystemContext::hopper(w.num_gpus).expect("cluster");
        let meg = megatron_lm(&w, plan, &ctx).expect("megatron");
        // The balanced baseline is excluded (its DP only handles linear
        // models, §5.2.3); Optimus uses the interleaved plan directly.
        let llm_plan = ParallelPlan::with_vpp(plan.0, plan.1, plan.2, 12).expect("plan");
        let opt = run_optimus(&w, &OptimusConfig::new(llm_plan), &ctx).expect("optimus");
        let row = MultiEncRow {
            model: w.mllm.name.clone(),
            megatron: meg.report.iteration_secs,
            optimus: opt.report.iteration_secs,
        };
        t.row(vec![
            row.model.clone(),
            format!("{:.3}", row.megatron),
            format!("{:.3}", row.optimus),
            format!("{:.2}x", row.megatron / row.optimus),
            format!("{paper:.2}x"),
        ]);
        rows.push(row);
    }
    out.push_str(&t.render());
    (out, rows)
}

//! Extension: heterogeneous encoder loads (variable images per sample).
//!
//! The paper assumes uniform microbatch cost; real multimodal data mixes
//! text-only and many-image samples (the heterogeneity DistTrain targets,
//! discussed in §6/§7). Our scheduler accepts per-microbatch load scales:
//! the microbatch-partition search then earns its keep — under skewed loads
//! the balanced split is no longer optimal.

use optimus_baselines::common::SystemContext;
use optimus_core::scheduler::sample_load_scales;
use optimus_core::{run_optimus, BubbleScheduler, EncoderWork, LlmProfile, OptimusConfig};
use optimus_modeling::{MllmConfig, TraceConfig, Workload};
use optimus_parallel::{ColocationLayout, Compositions, ParallelPlan};
use optimus_trace::TextTable;

/// Runs the heterogeneity study; returns (report, rows of
/// (spread, balanced-partition secs, searched-partition secs)).
pub fn run() -> (String, Vec<(f64, f64, f64)>) {
    let w = Workload::new(MllmConfig::small(), 8, 16, 1);
    let ctx = SystemContext::hopper(8).expect("cluster");
    let llm_plan = ParallelPlan::new(2, 2, 2).expect("plan");
    let enc_plan = ParallelPlan::new(4, 1, 2).expect("enc plan");
    let profile = LlmProfile::build(&w, &llm_plan, &ctx).expect("profile");
    let work = EncoderWork::build(&w.mllm, &enc_plan, 1, &ctx).expect("work");
    let layout = ColocationLayout::new(llm_plan, enc_plan).expect("layout");
    let n_mb = profile.n_microbatches();
    let m = layout.pipelines_per_llm_pipeline();

    let mut out = String::from(
        "== Extension: heterogeneous encoder loads (variable images/sample) ==\n\n\
         ViT-3B+GPT-11B, 8 GPUs; encoder plan (DP=4, PP=1, TP=2), 2 encoder pipelines\n\n",
    );
    let mut t = TextTable::new(vec![
        "load spread",
        "balanced partition (s)",
        "searched partition (s)",
        "search gain",
        "chosen partition",
    ]);
    let mut rows = Vec::new();
    for spread in [0.0, 0.3, 0.6, 0.9] {
        let scales = sample_load_scales(n_mb, spread, 7);
        let sched = BubbleScheduler::new(&profile, &work, &layout)
            .expect("scheduler")
            .with_scales(scales)
            .expect("scales");
        let balanced_part = Compositions::balanced(n_mb, m).expect("balanced");
        let balanced = sched
            .schedule_partition(&balanced_part, true)
            .expect("balanced schedule");
        let best = sched.schedule(64, true).expect("search");
        t.row(vec![
            format!("{:.0}%", spread * 100.0),
            format!("{:.4}", balanced.latency_secs()),
            format!("{:.4}", best.latency_secs()),
            format!(
                "{:+.2}%",
                (balanced.latency_secs() / best.latency_secs() - 1.0) * 100.0
            ),
            format!("{:?}", best.partition),
        ]);
        rows.push((spread, balanced.latency_secs(), best.latency_secs()));
    }
    out.push_str(&t.render());

    // Realistic synthetic data mixes (see modeling::traces).
    out.push('\n');
    let mut t2 = TextTable::new(vec![
        "data mix",
        "balanced partition (s)",
        "searched partition (s)",
        "chosen partition",
    ]);
    for (name, cfg) in [
        ("LLaVA-style", TraceConfig::llava_style()),
        ("web-interleaved", TraceConfig::web_interleaved()),
    ] {
        let scales = cfg
            .microbatch_scales(n_mb, w.microbatch_size, 11)
            .expect("trace scales");
        let sched = BubbleScheduler::new(&profile, &work, &layout)
            .expect("scheduler")
            .with_scales(scales)
            .expect("scales");
        let balanced_part = Compositions::balanced(n_mb, m).expect("balanced");
        let balanced = sched
            .schedule_partition(&balanced_part, true)
            .expect("balanced schedule");
        let best = sched.schedule(64, true).expect("search");
        t2.row(vec![
            name.to_string(),
            format!("{:.4}", balanced.latency_secs()),
            format!("{:.4}", best.latency_secs()),
            format!("{:?}", best.partition),
        ]);
    }
    out.push_str(&t2.render());

    // End-to-end: Optimus with heterogeneous loads still beats its own
    // uniform-equivalent by searching the partition space.
    let mut cfg = OptimusConfig::new(llm_plan);
    cfg.mb_scales = Some(sample_load_scales(n_mb, 0.6, 7));
    let hetero = run_optimus(&w, &cfg, &ctx).expect("hetero optimus");
    out.push_str(&format!(
        "\nend-to-end Optimus under 60% load spread: {:.4}s (Eff_fine {:.1}%, partition {:?})\n",
        hetero.report.iteration_secs,
        hetero.eff_fine * 100.0,
        hetero.outcome.partition
    ));
    (out, rows)
}

//! Table 7: bubble-scheduler scheduling efficiency and algorithm runtime on
//! the strong-scaling configurations.
//!
//! Paper: at 1536/2048/3072 GPUs (32/24/16 microbatches) Eff_coarse rises
//! 34.3% → 68.7% and Eff_fine 57.5% → 85.0% (fine up to 1.67× coarse);
//! scheduler runtime *drops* with fewer microbatches (fewer partitions).

use std::time::Instant;

use optimus_baselines::common::SystemContext;
use optimus_core::{run_optimus, OptimusConfig};
use optimus_modeling::Workload;
use optimus_parallel::ParallelPlan;
use optimus_trace::TextTable;

/// One scheduler measurement.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerRow {
    /// GPUs.
    pub gpus: u32,
    /// Microbatches per pipeline.
    pub microbatches: u32,
    /// Coarse-only efficiency.
    pub eff_coarse: f64,
    /// Fine-grained efficiency.
    pub eff_fine: f64,
    /// Wall-clock scheduler runtime in seconds.
    pub runtime_secs: f64,
}

/// Paper reference rows: (gpus, microbatches, eff_coarse, eff_fine, runtime s).
pub const PAPER: [(u32, u32, f64, f64, f64); 3] = [
    (1536, 32, 0.343, 0.575, 322.2),
    (2048, 24, 0.458, 0.693, 89.6),
    (3072, 16, 0.687, 0.850, 15.1),
];

/// Runs the scheduler microbenchmark; returns (report, rows).
pub fn run() -> (String, Vec<SchedulerRow>) {
    let mut out = String::from(
        "== Table 7: bubble-scheduler efficiency & runtime (ViT-22B+GPT-175B, batch 1536) ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "GPUs",
        "#Microbatch",
        "Eff_coarse",
        "paper",
        "Eff_fine",
        "paper",
        "Runtime (s)",
        "paper (s)",
    ]);
    let mut rows = Vec::new();
    for ((w, plan, v), paper) in Workload::strong_scaling().into_iter().zip(PAPER) {
        let ctx = SystemContext::hopper(w.num_gpus).expect("cluster");
        let llm_plan = ParallelPlan::with_vpp(plan.0, plan.1, plan.2, v).expect("plan");
        let start = Instant::now();
        let opt = run_optimus(&w, &OptimusConfig::new(llm_plan), &ctx).expect("optimus");
        let runtime = start.elapsed().as_secs_f64();
        let n_mb = w.microbatches(plan.0).unwrap();
        let row = SchedulerRow {
            gpus: w.num_gpus,
            microbatches: n_mb,
            eff_coarse: opt.eff_coarse,
            eff_fine: opt.eff_fine,
            runtime_secs: runtime,
        };
        t.row(vec![
            row.gpus.to_string(),
            row.microbatches.to_string(),
            format!("{:.1}%", row.eff_coarse * 100.0),
            format!("{:.1}%", paper.2 * 100.0),
            format!("{:.1}%", row.eff_fine * 100.0),
            format!("{:.1}%", paper.3 * 100.0),
            format!("{:.1}", row.runtime_secs),
            format!("{:.1}", paper.4),
        ]);
        rows.push(row);
    }
    out.push_str(&t.render());
    out.push_str("\nnote: absolute runtimes differ (our scheduler samples partitions and runs on faster per-partition packing); the paper's trends — efficiency rises and runtime falls as microbatches shrink — are the comparison targets\n");
    (out, rows)
}

//! One module per paper table/figure; each `run()` returns a printable
//! report plus structured results for assertions.

pub mod ablations;
pub mod calibrate_fidelity;
pub mod chaos;
pub mod extension_hetero;
pub mod extension_schedules;
pub mod extension_zb;
pub mod fig12;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig3;
pub mod fill;
pub mod fleet;
pub mod lint_sweep;
pub mod planner_scaling;
pub mod plansvc;
pub mod recovery;
pub mod resilience;
pub mod symmetry;
pub mod table1;
pub mod table4;
pub mod table5;
pub mod table7;

//! Static-analysis sweep: lint the lowered task graph of every pipeline
//! schedule family plus full Optimus runs over example configurations.
//!
//! The companion bin (`lint_schedules`) runs this in deny mode: any
//! error-severity diagnostic on a graph the repository ships as an example
//! fails the process, which is the CI configuration.

use optimus_baselines::common::SystemContext;
use optimus_cluster::DurNs;
use optimus_core::{run_optimus, OptimusConfig};
use optimus_lint::{Analyzer, CollectiveSpec, LintReport};
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_pipeline::{
    gpipe, interleaved_1f1b, lower, one_f_one_b, zero_bubble_h1, PipelineSchedule, PipelineSpec,
    StageSpec, TimedKernel,
};
use optimus_trace::lint_table;

/// One linted artifact.
pub struct LintRow {
    /// Artifact name.
    pub name: String,
    /// The report.
    pub report: LintReport,
}

impl LintRow {
    /// True when no error-severity diagnostic fired.
    pub fn passes(&self) -> bool {
        !self.report.has_errors()
    }
}

fn uniform_spec(pp: u32, vpp: u32, n: u32) -> PipelineSpec {
    let stage = StageSpec {
        fwd: vec![
            TimedKernel {
                label: "attn_f",
                dur: DurNs(60_000),
                comm: false,
            },
            TimedKernel {
                label: "ag",
                dur: DurNs(8_000),
                comm: true,
            },
            TimedKernel {
                label: "mlp_f",
                dur: DurNs(40_000),
                comm: false,
            },
        ],
        bwd: vec![
            TimedKernel {
                label: "mlp_b",
                dur: DurNs(80_000),
                comm: false,
            },
            TimedKernel {
                label: "rs",
                dur: DurNs(8_000),
                comm: true,
            },
            TimedKernel {
                label: "attn_b",
                dur: DurNs(120_000),
                comm: false,
            },
        ],
        ..StageSpec::default()
    };
    PipelineSpec {
        pp,
        vpp,
        n_microbatches: n,
        stages: vec![stage; (pp * vpp) as usize],
        dp_allgather: DurNs(30_000),
        dp_reducescatter: DurNs(50_000),
        p2p: DurNs(5_000),
    }
}

fn lint_lowered(name: &str, spec: &PipelineSpec, schedule: &PipelineSchedule) -> LintRow {
    let lowered = lower(spec, schedule, &[]).expect("lowering example schedule");
    let report = Analyzer::new()
        .graph(&lowered.graph)
        .collectives(CollectiveSpec::from_graph(&lowered.graph))
        .namer(|id| lowered.describe(id))
        .analyze();
    LintRow {
        name: name.into(),
        report,
    }
}

fn lint_optimus(name: &str, w: &Workload, cfg: &OptimusConfig, ctx: &SystemContext) -> LintRow {
    let report = match run_optimus(w, cfg, ctx) {
        Ok(run) => run.lint,
        Err(e) => LintReport {
            diagnostics: vec![optimus_lint::Diagnostic::new(
                optimus_lint::DiagCode::BubbleInsertOverlap,
                format!("run failed before lint: {e}"),
                vec![],
            )],
        },
    };
    LintRow {
        name: name.into(),
        report,
    }
}

/// Lints every example schedule family and Optimus configuration.
/// `smoke` keeps only the fast half (the CI configuration).
pub fn run(smoke: bool) -> (String, Vec<LintRow>) {
    let mut rows = Vec::new();

    // Pipeline schedule families over a uniform 4-stage spec.
    let spec = uniform_spec(4, 1, 8);
    rows.push(lint_lowered(
        "1f1b pp=4 n=8",
        &spec,
        &one_f_one_b(4, 8).unwrap(),
    ));
    rows.push(lint_lowered("gpipe pp=4 n=8", &spec, &gpipe(4, 8).unwrap()));
    // Zero-bubble wants the backward split into input- and weight-gradient
    // halves so its deferred W ops carry real kernels.
    let mut zspec = uniform_spec(4, 1, 8);
    for st in &mut zspec.stages {
        st.bwd_weight = vec![TimedKernel {
            label: "wgrad",
            dur: DurNs(60_000),
            comm: false,
        }];
    }
    rows.push(lint_lowered(
        "zero-bubble pp=4 n=8",
        &zspec,
        &zero_bubble_h1(4, 8).unwrap(),
    ));
    let vspec = uniform_spec(4, 2, 8);
    rows.push(lint_lowered(
        "interleaved pp=4 vpp=2 n=8",
        &vspec,
        &interleaved_1f1b(4, 2, 8, None).unwrap(),
    ));

    // Full Optimus runs (lint mode deny is the default: run_optimus would
    // already have failed on an error diagnostic; the report lands in rows
    // for the table regardless).
    let w = Workload::new(MllmConfig::small(), 8, 16, 1);
    let ctx = SystemContext::hopper(8).unwrap();
    let cfg = OptimusConfig::new(ParallelPlan::new(2, 2, 2).unwrap());
    rows.push(lint_optimus("optimus small (2,2,2)", &w, &cfg, &ctx));

    if !smoke {
        let mut zb = OptimusConfig::new(ParallelPlan::new(2, 2, 2).unwrap());
        zb.llm_schedule = optimus_core::LlmScheduleKind::ZeroBubble;
        rows.push(lint_optimus("optimus small zero-bubble", &w, &zb, &ctx));

        let mut frozen = OptimusConfig::new(ParallelPlan::new(2, 2, 2).unwrap());
        frozen.frozen_encoder = true;
        rows.push(lint_optimus(
            "optimus small frozen-encoder",
            &w,
            &frozen,
            &ctx,
        ));

        let cfg4 = OptimusConfig::new(ParallelPlan::new(1, 4, 2).unwrap());
        rows.push(lint_optimus("optimus small (1,4,2)", &w, &cfg4, &ctx));
    }

    let mut out = String::from("Static schedule analysis (deny mode)\n\n");
    for r in &rows {
        out.push_str(&format!(
            "{:<32} {}\n",
            r.name,
            if r.report.is_clean() {
                "clean".to_string()
            } else {
                format!(
                    "{} diagnostic(s), {} error(s)",
                    r.report.diagnostics.len(),
                    r.report.errors().count()
                )
            }
        ));
        if !r.report.is_clean() {
            out.push_str(&lint_table(&r.report));
            out.push('\n');
        }
    }
    (out, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean() {
        let (report, rows) = run(true);
        assert!(rows.iter().all(LintRow::passes), "{report}");
        assert!(report.contains("1f1b"), "{report}");
    }
}

//! Table 5: strong scaling of ViT-22B + GPT-175B, batch 1536, at
//! 1536 / 2048 / 3072 GPUs.
//!
//! Paper: Optimus reduces iteration time by up to 21.3% vs Megatron-LM and
//! 20.5% vs balanced; Optimus MFU stays ≈34.5% while baselines drop with
//! scale (31.6 → 28.5%).

use optimus_baselines::{common::SystemContext, megatron_balanced, megatron_lm};
use optimus_core::{run_optimus, OptimusConfig};
use optimus_modeling::{StepReport, Workload};
use optimus_parallel::ParallelPlan;
use optimus_trace::TextTable;

/// Measured results at one GPU count.
#[derive(Debug, Clone)]
pub struct StrongRow {
    /// Number of GPUs.
    pub gpus: u32,
    /// Megatron-LM report.
    pub megatron: StepReport,
    /// Balanced report.
    pub balanced: StepReport,
    /// Optimus report.
    pub optimus: StepReport,
}

/// Paper Table 5 values: (gpus, megatron s, balanced s, optimus s,
/// megatron MFU, balanced MFU, optimus MFU).
pub const PAPER: [(u32, f64, f64, f64, f64, f64, f64); 3] = [
    (1536, 10.65, 10.43, 9.80, 0.316, 0.323, 0.344),
    (2048, 8.26, 8.06, 7.29, 0.306, 0.313, 0.346),
    (3072, 5.91, 5.87, 4.87, 0.285, 0.287, 0.346),
];

/// Runs the strong-scaling sweep; returns (report, rows).
pub fn run() -> (String, Vec<StrongRow>) {
    let mut out = String::from(
        "== Table 5: strong scaling, ViT-22B + GPT-175B, batch 1536 (Appendix D.2 configs) ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "GPUs",
        "Method",
        "Iter (s)",
        "paper (s)",
        "MFU",
        "paper MFU",
        "PFlops/s",
    ]);
    let mut rows = Vec::new();
    for ((w, plan, v), paper) in Workload::strong_scaling().into_iter().zip(PAPER) {
        let ctx = SystemContext::hopper(w.num_gpus).expect("cluster");
        let meg = megatron_lm(&w, plan, &ctx).expect("megatron");
        let bal = megatron_balanced(&w, plan, v, &ctx).expect("balanced");
        let llm_plan = ParallelPlan::with_vpp(plan.0, plan.1, plan.2, v).expect("plan");
        let opt = run_optimus(&w, &OptimusConfig::new(llm_plan), &ctx).expect("optimus");

        for (name, rep, ps, pm) in [
            ("Megatron-LM", &meg.report, paper.1, paper.4),
            ("Megatron balanced", &bal.report, paper.2, paper.5),
            ("Optimus", &opt.report, paper.3, paper.6),
        ] {
            t.row(vec![
                w.num_gpus.to_string(),
                name.to_string(),
                format!("{:.2}", rep.iteration_secs),
                format!("{ps:.2}"),
                format!("{:.1}%", rep.mfu * 100.0),
                format!("{:.1}%", pm * 100.0),
                format!("{:.1}", rep.aggregate_pflops),
            ]);
        }
        rows.push(StrongRow {
            gpus: w.num_gpus,
            megatron: meg.report.clone(),
            balanced: bal.report.clone(),
            optimus: opt.report.clone(),
        });
    }
    out.push_str(&t.render());
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        out.push_str(&format!(
            "\nspeedup vs Megatron-LM grows with scale: {:.2}x @ {} GPUs -> {:.2}x @ {} GPUs (paper: 1.09x -> 1.21x)\n",
            first.megatron.iteration_secs / first.optimus.iteration_secs,
            first.gpus,
            last.megatron.iteration_secs / last.optimus.iteration_secs,
            last.gpus
        ));
    }
    (out, rows)
}

//! Figure 12: warmup adjustment of the interleaved 1F1B schedule defers
//! forward dependency points without hurting pipeline latency.

use optimus_baselines::common::SystemContext;
use optimus_core::LlmProfile;
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_trace::TextTable;

/// Runs the Fig. 12 demonstration; returns (report, number of deferred
/// forward points).
pub fn run() -> (String, usize) {
    // A pp=4, vpp=2, 8-microbatch pipeline — the figure's configuration —
    // instantiated with GPT-11B timings.
    let w = Workload::new(MllmConfig::small(), 16, 16, 1);
    let plan = ParallelPlan::with_vpp(2, 4, 2, 2).expect("plan");
    let ctx = SystemContext::hopper(16).expect("cluster");
    let base = LlmProfile::build_with(&w, &plan, &ctx, false).expect("profile");
    let adj = LlmProfile::build_with(&w, &plan, &ctx, true).expect("profile");

    let mut out = String::from(
        "== Figure 12: forward dependency points before/after warmup adjustment (pp=4, V=2, 8 microbatches) ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "microbatch",
        "F_i default (ms)",
        "F_i adjusted (ms)",
        "deferred by (ms)",
    ]);
    let mut deferred = 0usize;
    for i in 0..base.f_points.len() {
        let d = (adj.f_points[i] - base.f_points[i]) as f64 / 1e6;
        if d > 0.0 {
            deferred += 1;
        }
        t.row(vec![
            (i + 1).to_string(),
            format!("{:.3}", base.f_points[i] as f64 / 1e6),
            format!("{:.3}", adj.f_points[i] as f64 / 1e6),
            format!("{d:+.3}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n{} of {} forward points deferred; pipeline makespan unchanged at {:.3} ms\n\
         (paper: the last microbatches' F points can be deferred with no latency impact)\n",
        deferred,
        base.f_points.len(),
        base.makespan as f64 / 1e6
    ));
    (out, deferred)
}

//! Plan-service study: what a content-addressed plan cache buys over
//! re-running the engine, measured on one ViT-5B + GPT-11B cluster.
//!
//! Four phases, each pinned by the smoke gate:
//!
//! * **hit** — a cached, re-verified answer must be orders of magnitude
//!   faster than the cold search that produced it, and bit-identical to a
//!   fresh engine run;
//! * **warm** — on a near-miss (mild NVLink degradation), the search is
//!   seeded from the nearest cache entries and must sweep *strictly fewer*
//!   work items and candidates than the cold sweep while returning the
//!   identical winner;
//! * **incremental** — a planning-invisible delta (RDMA congestion on a
//!   single node) is served from the baseline entry with zero search work,
//!   and must equal a full re-plan bit-for-bit;
//! * **throughput** — a warmed service answers a batch of repeat what-if
//!   queries from cache; the sustained queries/sec is the headline number
//!   `--write` records in `BENCH_plansvc.json`.

use std::time::Instant;

use optimus_baselines::common::SystemContext;
use optimus_cluster::LinkClass;
use optimus_core::run_optimus;
use optimus_core::OptimusConfig;
use optimus_modeling::{MllmConfig, TraceConfig, TransformerConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_plansvc::{PlanDelta, PlanService, QueryKind};
use optimus_trace::TextTable;

/// Warm-start accounting against the equivalent cold sweep.
#[derive(Debug, Clone)]
pub struct WarmPoint {
    /// Work items the cold sweep evaluates on the delta's configuration.
    pub cold_items: usize,
    /// Work items the warm-started sweep evaluated.
    pub warm_items: usize,
    /// Encoder candidates in the search space.
    pub candidates: usize,
    /// Candidates pruned by the warm-start lower bound.
    pub pruned: usize,
    /// The warm answer equals the cold run bit-for-bit.
    pub identical: bool,
}

/// Everything the study measures.
#[derive(Debug, Clone)]
pub struct Study {
    /// Cold-search service latency (the miss that populated the cache).
    pub cold_ms: f64,
    /// Cache-hit service latency for the same query.
    pub hit_us: f64,
    /// `cold / hit` speedup.
    pub hit_speedup: f64,
    /// The hit equals a fresh engine run bit-for-bit.
    pub hit_identical: bool,
    /// Warm-started search vs cold sweep on the near-miss delta.
    pub warm: WarmPoint,
    /// Search work the incremental reuse performed (must be zero).
    pub inc_evaluated: usize,
    /// The incremental answer equals a full re-plan bit-for-bit.
    pub inc_identical: bool,
    /// Queries in the throughput batch.
    pub batch_queries: usize,
    /// Worker threads serving the batch.
    pub batch_workers: usize,
    /// Sustained queries/sec over the warmed cache.
    pub qps: f64,
    /// Every query in the measured batch was a verified cache hit.
    pub batch_all_hits: bool,
}

impl Study {
    /// Renders the study as a `BENCH_plansvc.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"plan_service\",\n");
        out.push_str(&format!(
            "  \"cold_ms\": {:.3},\n  \"hit_us\": {:.3},\n",
            self.cold_ms, self.hit_us
        ));
        out.push_str(&format!(
            "  \"hit_speedup\": {:.1},\n  \"hit_identical\": {},\n",
            self.hit_speedup, self.hit_identical
        ));
        out.push_str(&format!(
            "  \"warm\": {{\"cold_items\": {}, \"warm_items\": {}, \
             \"candidates\": {}, \"pruned\": {}, \"identical\": {}}},\n",
            self.warm.cold_items,
            self.warm.warm_items,
            self.warm.candidates,
            self.warm.pruned,
            self.warm.identical
        ));
        out.push_str(&format!(
            "  \"incremental\": {{\"evaluated\": {}, \"identical\": {}}},\n",
            self.inc_evaluated, self.inc_identical
        ));
        out.push_str(&format!(
            "  \"throughput\": {{\"queries\": {}, \"workers\": {}, \
             \"qps\": {:.1}, \"all_hits\": {}}}\n}}\n",
            self.batch_queries, self.batch_workers, self.qps, self.batch_all_hits
        ));
        out
    }
}

/// Required cache-hit speedup over the cold search.
pub const SMOKE_HIT_SPEEDUP: f64 = 20.0;

/// The base scenario: the LLM plan is pp2 × tp4, where the warm-start
/// lower bound provably separates TP-heavy encoder candidates.
fn base() -> (Workload, OptimusConfig, SystemContext) {
    let mllm = MllmConfig::new(
        "ViT-5B+GPT-11B",
        TransformerConfig::vit_5b(),
        TransformerConfig::gpt_11b(),
    );
    let w = Workload::new(mllm, 8, 8, 1);
    let ctx = SystemContext::hopper(8).expect("8-GPU hopper context");
    let cfg = OptimusConfig::new(ParallelPlan::new(1, 2, 4).expect("llm plan"));
    (w, cfg, ctx)
}

/// The near-miss delta the warm phase queries: NVLink mildly degraded, so
/// the content address changes but the cached baseline stays the nearest
/// neighbour.
fn warm_delta() -> PlanDelta {
    PlanDelta::DegradedLink {
        class: LinkClass::NvLink,
        bandwidth_factor: 0.9,
        latency_factor: 1.1,
    }
}

/// The planning-invisible delta the incremental phase queries (hopper(8)
/// is a single node, so RDMA congestion cannot affect the plan).
fn inc_delta() -> PlanDelta {
    PlanDelta::DegradedLink {
        class: LinkClass::Rdma,
        bandwidth_factor: 0.5,
        latency_factor: 2.0,
    }
}

/// Runs the study. `smoke` shrinks the throughput batch; every identity
/// check still runs. Returns (report, study).
pub fn run(smoke: bool) -> (String, Study) {
    let (w, cfg, ctx) = base();
    let mut svc = PlanService::new(w.clone(), cfg.clone(), ctx.clone(), 64);

    // Phase 1: cold search, then the verified hit for the same address.
    let cold = svc.query(&PlanDelta::Baseline).expect("cold query");
    assert_eq!(cold.stats.kind, QueryKind::Miss, "first query is a miss");
    let hit = svc.query(&PlanDelta::Baseline).expect("hit query");
    assert_eq!(hit.stats.kind, QueryKind::Hit, "second query is a hit");
    let fresh = run_optimus(&w, &cfg, &ctx).expect("fresh engine run");
    let hit_identical = hit.saved.latency_ns == fresh.outcome.latency
        && hit.saved.partition == fresh.outcome.partition
        && hit.saved.enc_plan().expect("cached plan decodes") == fresh.enc_plan;
    let cold_ms = cold.stats.latency_ns as f64 / 1e6;
    let hit_us = hit.stats.latency_ns as f64 / 1e3;
    let hit_speedup = cold.stats.latency_ns as f64 / hit.stats.latency_ns.max(1) as f64;

    // Phase 2: warm-started search on the near-miss vs the cold sweep.
    let warm_ans = svc.query(&warm_delta()).expect("warm query");
    assert_eq!(
        warm_ans.stats.kind,
        QueryKind::Warm,
        "near-miss warm-starts"
    );
    let (w2, cfg2, ctx2) = warm_delta().apply(&w, &cfg, &ctx).expect("delta applies");
    let cold2 = run_optimus(&w2, &cfg2, &ctx2).expect("cold run on delta");
    let warm = WarmPoint {
        cold_items: cold2.search.work_items,
        warm_items: warm_ans.stats.evaluated,
        candidates: warm_ans.stats.candidates,
        pruned: warm_ans.stats.pruned_by_bound,
        identical: warm_ans.saved.latency_ns == cold2.outcome.latency
            && warm_ans.saved.partition == cold2.outcome.partition
            && warm_ans.saved.enc_plan().expect("warm plan decodes") == cold2.enc_plan,
    };

    // Phase 3: incremental reuse vs a full re-plan.
    let inc = svc.query(&inc_delta()).expect("incremental query");
    assert_eq!(
        inc.stats.kind,
        QueryKind::Incremental,
        "single-node RDMA congestion is planning-invisible"
    );
    let (w3, cfg3, ctx3) = inc_delta().apply(&w, &cfg, &ctx).expect("delta applies");
    let full = run_optimus(&w3, &cfg3, &ctx3).expect("full re-plan");
    let inc_identical = inc.saved.latency_ns == full.outcome.latency
        && inc.saved.partition == full.outcome.partition
        && inc.saved.enc_plan().expect("incremental plan decodes") == full.enc_plan;

    // Phase 4: sustained throughput over the warmed cache. The batch
    // re-issues cached addresses (plus trace-refresh queries warmed up
    // beforehand), so the measured rate is the cache-serving path:
    // lookup + fingerprint + re-verification per query.
    let repeats = if smoke { 4 } else { 32 };
    let mut batch = Vec::new();
    for seed in 0..2u64 {
        batch.push(PlanDelta::TraceSeed {
            trace: TraceConfig::llava_style(),
            seed,
        });
    }
    svc.query_batch(&batch, 4).expect("throughput warmup");
    batch.push(PlanDelta::Baseline);
    batch.push(warm_delta());
    batch.push(inc_delta());
    let batch: Vec<PlanDelta> = std::iter::repeat_n(batch.iter().cloned(), repeats)
        .flatten()
        .collect();
    let workers = 4;
    let t0 = Instant::now();
    let answers = svc.query_batch(&batch, workers).expect("throughput batch");
    let elapsed = t0.elapsed().as_secs_f64();
    let batch_all_hits = answers.iter().all(|a| a.stats.kind == QueryKind::Hit);
    let qps = answers.len() as f64 / elapsed.max(1e-9);

    let study = Study {
        cold_ms,
        hit_us,
        hit_speedup,
        hit_identical,
        warm,
        inc_evaluated: inc.stats.evaluated,
        inc_identical,
        batch_queries: answers.len(),
        batch_workers: workers,
        qps,
        batch_all_hits,
    };

    let mut out = String::from(
        "== Plan service: content-addressed cache, warm start, incremental reuse ==\n\
         ViT-5B + GPT-11B, 8 GPUs, LLM plan 1x2x4; every answer bit-identical to cold\n\n",
    );
    let mut t = TextTable::new(vec!["Phase", "Result", "Search work", "Identical"]);
    t.row(vec![
        "cold miss".into(),
        format!("{:.1} ms", study.cold_ms),
        format!("{} items", cold.stats.evaluated),
        "-".into(),
    ]);
    t.row(vec![
        "cache hit".into(),
        format!("{:.1} us ({:.0}x)", study.hit_us, study.hit_speedup),
        "0 items".into(),
        study.hit_identical.to_string(),
    ]);
    t.row(vec![
        "warm start".into(),
        format!(
            "{} of {} candidates pruned",
            study.warm.pruned, study.warm.candidates
        ),
        format!(
            "{} items (cold: {})",
            study.warm.warm_items, study.warm.cold_items
        ),
        study.warm.identical.to_string(),
    ]);
    t.row(vec![
        "incremental".into(),
        "baseline reused under RDMA congestion".into(),
        format!("{} items", study.inc_evaluated),
        study.inc_identical.to_string(),
    ]);
    t.row(vec![
        "throughput".into(),
        format!("{:.0} queries/sec", study.qps),
        format!("{} queries, {} workers", study.batch_queries, workers),
        study.batch_all_hits.to_string(),
    ]);
    out.push_str(&t.render());
    out.push('\n');
    (out, study)
}

//! Multi-tenant bubble-fill study: a mixed batch of secondary jobs (eval,
//! preprocessing, best-effort sweeps) packed into the reference schedule's
//! proven-idle bubbles, arbitrated *after* the checkpoint shard writes, and
//! priced against the naive run-after-training baseline.
//!
//! This is the closed-loop demo of `optimus-fill`: the same Optimus
//! schedule, the same tenant batch — the only free variable is where the
//! fill chunks land, so the cluster-goodput delta over the naive baseline
//! is attributable to bubble exploitation, and the stretch bound shows the
//! primary job paid at most the configured slack budget for it.

use optimus_baselines::common::SystemContext;
use optimus_cluster::LinkProfile;
use optimus_core::{run_optimus, OptimusConfig, OptimusRun};
use optimus_fill::{plan_fill, ClusterGoodputReport, FillConfig, FillJob, FillPlan, PriorityClass};
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_recovery::{plan_checkpoints, CheckpointConfig, CheckpointPlan};
use optimus_trace::TextTable;

/// Checkpoint interval the fill work is arbitrated around, in steps.
pub const INTERVAL_STEPS: u32 = 4;

/// Everything the smoke assertions need.
#[derive(Debug, Clone)]
pub struct Study {
    /// The fill placement over the serial (`search_workers = 1`) plan.
    pub plan: FillPlan,
    /// Priced cluster goodput for [`Study::plan`].
    pub report: ClusterGoodputReport,
    /// Golden report text of the identical study re-planned with
    /// `search_workers = 4` — must match [`Study::report`] byte-for-byte.
    pub parallel_golden: String,
}

/// The tenant batch: a high-priority eval that fits, a stateless
/// preprocessing shard, and an oversubscribed best-effort sweep that gets
/// preempted at a bubble boundary and evicts its state.
pub fn tenant_batch() -> Vec<FillJob> {
    vec![
        FillJob {
            name: "eval-suite".into(),
            priority: PriorityClass::Eval,
            chunk_ns: 2_000_000,
            chunks: 4,
            memory_bytes: 256 << 20,
            state_bytes: 64 << 20,
        },
        FillJob {
            name: "tokenize-shard".into(),
            priority: PriorityClass::Preprocess,
            chunk_ns: 1_000_000,
            chunks: 8,
            memory_bytes: 128 << 20,
            state_bytes: 0,
        },
        FillJob {
            name: "hparam-sweep".into(),
            priority: PriorityClass::BestEffort,
            chunk_ns: 5_000_000,
            chunks: 400,
            memory_bytes: 512 << 20,
            state_bytes: 128 << 20,
        },
    ]
}

fn build_run(search_workers: usize) -> (OptimusRun, Workload, SystemContext, OptimusConfig) {
    let w = Workload::new(MllmConfig::small(), 8, 16, 1);
    let ctx = SystemContext::hopper(8).expect("cluster");
    // Fill state moves over the same node-local burst buffer the recovery
    // study checkpoints to.
    let ctx = ctx.with_topology(ctx.topo.with_storage(LinkProfile {
        bandwidth: 80e9,
        latency: 100e-6,
    }));
    let cfg = OptimusConfig::new(ParallelPlan::new(2, 2, 2).expect("plan"))
        .with_search_workers(search_workers);
    let run = run_optimus(&w, &cfg, &ctx).expect("optimus");
    (run, w, ctx, cfg)
}

fn study_at(search_workers: usize) -> (FillPlan, CheckpointPlan, Workload) {
    let (run, w, ctx, cfg) = build_run(search_workers);
    let ckpt = plan_checkpoints(
        &run,
        cfg.llm_plan,
        &ctx.topo,
        &CheckpointConfig::bubble(INTERVAL_STEPS),
    )
    .expect("checkpoint plan");
    let plan = plan_fill(
        &run,
        cfg.llm_plan,
        &ctx.topo,
        &ckpt.claims,
        &tenant_batch(),
        &FillConfig::default(),
    )
    .expect("fill plan");
    (plan, ckpt, w)
}

/// Runs the study. `smoke` is accepted for CLI symmetry with the other
/// experiment bins; the study is small and deterministic either way.
pub fn run(_smoke: bool) -> (String, Study) {
    let (plan, ckpt, w) = study_at(1);
    // The placement must survive static analysis (OPT005 + OPT008).
    let lint = plan.verify().expect("fill placement lint");
    let report = ClusterGoodputReport::from_plan(&plan);

    // Same study on a plan searched with 4 workers: the priced report must
    // be bit-identical (the CI smoke gate).
    let (parallel_plan, _, _) = study_at(4);
    let parallel_golden = ClusterGoodputReport::from_plan(&parallel_plan).golden_text();

    let mut out = format!(
        "== Bubble fill: multi-tenant secondary jobs inside the primary step \
         ({} @ {} GPUs, checkpoint every {} steps) ==\n\
         per-device bubble capacity after checkpoints {:?} us/step, slack \
         budget {} us\n\n",
        w.mllm.name,
        w.num_gpus,
        INTERVAL_STEPS,
        plan.bubble_capacity_ns
            .iter()
            .map(|&c| c / 1000)
            .collect::<Vec<_>>(),
        plan.slack_budget_ns / 1000,
    );
    let mut t = TextTable::new(vec![
        "Job",
        "Class",
        "Device",
        "Sched",
        "Evict",
        "Defer",
        "Compute (ms)",
        "Overhead (ms)",
    ]);
    for o in &plan.outcomes {
        t.row(vec![
            o.job.name.clone(),
            o.job.priority.label().to_string(),
            o.device.map_or("-".to_string(), |d| d.to_string()),
            o.scheduled_chunks.to_string(),
            o.evicted_chunks.to_string(),
            o.deferred_chunks.to_string(),
            format!("{:.2}", o.compute_ns() as f64 / 1e6),
            format!("{:.2}", o.overhead_ns() as f64 / 1e6),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nplacement lint: {} diagnostics (0 errors required); checkpoint \
         writes arbitrated first ({} claims)\n\n",
        lint.diagnostics.len(),
        ckpt.claims.len(),
    ));
    out.push_str(&report.golden_text());

    (
        out,
        Study {
            plan,
            report,
            parallel_golden,
        },
    )
}

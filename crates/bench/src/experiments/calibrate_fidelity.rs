//! Calibration closed-loop + fidelity sweep (`optimus-calibrate`).
//!
//! For each seed: perturb the Hopper hardware model (the hidden "truth"),
//! synthesise a kernel/comm log under it, refit a calibration from the log
//! alone, and score both the default and the calibrated simulator against an
//! "observed" megatron run executed under the truth. Reports worst-case
//! parameter recovery error and the makespan-fidelity gap the calibration
//! closes.

use optimus_baselines::common::SystemContext;
use optimus_baselines::megatron_lm;
use optimus_calibrate::{apply_profiles, closed_loop_input, fit, FidelityReport, IngestedTrace};
use optimus_cluster::ClusterTopology;
use optimus_modeling::{MllmConfig, Workload};
use optimus_trace::TextTable;

/// One seed's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Perturbation / log-synthesis seed.
    pub seed: u64,
    /// Worst relative recovery error across the fitted parameter vector.
    pub max_param_err: f64,
    /// Name of the worst-recovered parameter.
    pub worst_param: &'static str,
    /// Makespan error of the *uncalibrated* (default-model) prediction.
    pub base_makespan_err: f64,
    /// Makespan error of the calibrated prediction.
    pub cal_makespan_err: f64,
    /// Mean per-stream overlap error of the calibrated prediction.
    pub cal_overlap_err: f64,
    /// Compute-bubble agreement of the calibrated prediction.
    pub bubble_agreement: f64,
}

/// Log size used for every seed (kernel samples, comm samples).
pub const LOG_SIZE: (usize, usize) = (60, 64);

fn truth_params(truth: &ClusterTopology) -> [(&'static str, f64); 7] {
    [
        ("matmul_efficiency", truth.gpu.matmul_efficiency),
        ("attention_efficiency", truth.gpu.attention_efficiency),
        ("membw_efficiency", truth.gpu.membw_efficiency),
        ("nvlink_bandwidth", truth.nvlink.bandwidth),
        ("nvlink_latency", truth.nvlink.latency),
        ("rdma_bandwidth", truth.rdma.bandwidth),
        ("rdma_latency", truth.rdma.latency),
    ]
}

fn run_seed(seed: u64) -> Row {
    let base32 = ClusterTopology::hopper_cluster(32).expect("cluster");
    let (truth, log) = closed_loop_input(&base32, seed, LOG_SIZE.0, LOG_SIZE.1);
    let cal = fit(&base32, &log).expect("fit");

    let (mut max_param_err, mut worst_param) = (0.0_f64, "");
    for ((name, fitted), (_, tvalue)) in cal.param_vector().iter().zip(truth_params(&truth)) {
        let rel = (fitted - tvalue).abs() / tvalue.abs();
        if rel > max_param_err {
            max_param_err = rel;
            worst_param = name;
        }
    }

    let w = Workload::new(MllmConfig::small(), 8, 4, 1);
    let ctx = SystemContext::hopper(8).expect("cluster");
    let true_ctx = ctx.with_topology(apply_profiles(&ctx.topo, &truth));

    let observed_run = megatron_lm(&w, (2, 2, 2), &true_ctx).expect("observed run");
    let observed =
        IngestedTrace::from_simulation(&observed_run.lowered.graph, &observed_run.result);
    let base_run = megatron_lm(&w, (2, 2, 2), &ctx).expect("base run");
    let predicted_base = IngestedTrace::from_simulation(&base_run.lowered.graph, &base_run.result);
    let cal_run = megatron_lm(&w, (2, 2, 2), &cal.context(&ctx)).expect("calibrated run");
    let predicted_cal = IngestedTrace::from_simulation(&cal_run.lowered.graph, &cal_run.result);

    let report_base = FidelityReport::compare(&observed, &predicted_base);
    let report_cal = FidelityReport::compare(&observed, &predicted_cal);
    Row {
        seed,
        max_param_err,
        worst_param,
        base_makespan_err: report_base.makespan_rel_err,
        cal_makespan_err: report_cal.makespan_rel_err,
        cal_overlap_err: report_cal.mean_overlap_err,
        bubble_agreement: report_cal.bubble_agreement,
    }
}

/// Runs the sweep; `smoke` restricts it to two seeds (the CI configuration).
/// Returns (report, rows).
pub fn run(smoke: bool) -> (String, Vec<Row>) {
    let seeds: &[u64] = if smoke {
        &[7, 42]
    } else {
        &[3, 7, 11, 42, 99, 123, 500, 2024]
    };
    let rows: Vec<Row> = seeds.iter().map(|&s| run_seed(s)).collect();

    let mut out = format!(
        "== Calibration closed loop + simulator fidelity ({} kernels / {} comms per log) ==\n\
         truth = perturbed 32-GPU Hopper; observed = megatron 2x2x2 under truth;\n\
         predictions re-simulate under the default and the refitted model\n\n",
        LOG_SIZE.0, LOG_SIZE.1
    );
    let mut t = TextTable::new(vec![
        "Seed",
        "Max param err",
        "Worst param",
        "Base mksp err",
        "Cal mksp err",
        "Cal overlap err",
        "Bubble agree",
    ]);
    for r in &rows {
        t.row(vec![
            r.seed.to_string(),
            format!("{:.3}%", r.max_param_err * 100.0),
            r.worst_param.to_string(),
            format!("{:.2}%", r.base_makespan_err * 100.0),
            format!("{:.3}%", r.cal_makespan_err * 100.0),
            format!("{:.3}", r.cal_overlap_err),
            format!("{:.3}", r.bubble_agreement),
        ]);
    }
    out.push_str(&t.render());
    let worst = rows.iter().map(|r| r.max_param_err).fold(0.0_f64, f64::max);
    out.push_str(&format!(
        "\nworst parameter recovery error across {} seeds: {:.4}%\n",
        rows.len(),
        worst * 100.0
    ));
    (out, rows)
}

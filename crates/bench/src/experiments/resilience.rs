//! Resilience experiment: the fault → drift-monitor → re-plan loop
//! (`optimus-faults` + `optimus_core::resilience_study`) swept over failure
//! scenarios on the small-model workload.
//!
//! For each scenario the study reports the fault-free latency of the chosen
//! Optimus schedule, the latency of that *static* schedule executed under the
//! fault, and the latency the adaptive controller achieves by re-planning
//! with fault-adjusted costs — plus how much of the fault-induced loss the
//! re-plan recovers.

use optimus_baselines::common::SystemContext;
use optimus_cluster::{DurNs, LinkClass, TimeNs};
use optimus_core::{fault_annotations, resilience_study, run_optimus, OptimusConfig};
use optimus_core::{OptimusRun, ResilienceReport};
use optimus_faults::{FaultModel, FaultScenario};
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_recovery::{
    plan_checkpoints, simulate_lifecycle, CheckpointConfig, FailureTrace, GoodputReport,
    RecoveryParams,
};
use optimus_trace::{fault_table, TextTable};

/// One scenario's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scenario name.
    pub scenario: &'static str,
    /// The resilience study's report.
    pub report: ResilienceReport,
}

/// Drift-monitor trip point used by the sweep.
pub const DRIFT_THRESHOLD: f64 = 0.05;

fn build_run() -> (OptimusRun, Workload, SystemContext, OptimusConfig) {
    let w = Workload::new(MllmConfig::small(), 8, 16, 1);
    let ctx = SystemContext::hopper(8).expect("cluster");
    let mut cfg = OptimusConfig::new(ParallelPlan::new(2, 2, 2).expect("plan"));
    cfg.adjust_dep_points = false; // schedules must be spliceable
    let run = run_optimus(&w, &cfg, &ctx).expect("optimus");
    (run, w, ctx, cfg)
}

fn scenarios(baseline_secs: f64, smoke: bool) -> Vec<(&'static str, FaultModel)> {
    let straggler_15 = FaultModel::new(101)
        .with(FaultScenario::StragglerDevice {
            device: 0,
            slowdown: 1.5,
        })
        .expect("scenario");
    let nvlink = FaultModel::new(102)
        .with(FaultScenario::DegradedLink {
            class: LinkClass::NvLink,
            bandwidth_factor: 0.25,
            latency_factor: 2.0,
        })
        .expect("scenario");
    if smoke {
        return vec![
            ("straggler x1.5", straggler_15),
            ("degraded nvlink", nvlink),
        ];
    }
    let fail_at = TimeNs((baseline_secs * 0.3 * 1e9) as u64);
    vec![
        ("straggler x1.5", straggler_15),
        (
            "straggler x2.0",
            FaultModel::new(103)
                .with(FaultScenario::StragglerDevice {
                    device: 0,
                    slowdown: 2.0,
                })
                .expect("scenario"),
        ),
        ("degraded nvlink", nvlink),
        (
            "transient stalls",
            FaultModel::new(104)
                .with(FaultScenario::TransientStalls {
                    prob: 0.05,
                    stall: DurNs::from_micros(200),
                    device: None,
                })
                .expect("scenario"),
        ),
        (
            "fail-stop @30% +5ms",
            FaultModel::new(105)
                .with(FaultScenario::FailStop {
                    device: 0,
                    at: fail_at,
                    restart: DurNs::from_millis(5),
                })
                .expect("scenario"),
        ),
        (
            "combined",
            FaultModel::new(106)
                .with(FaultScenario::StragglerDevice {
                    device: 0,
                    slowdown: 1.5,
                })
                .expect("scenario")
                .with(FaultScenario::DegradedLink {
                    class: LinkClass::NvLink,
                    bandwidth_factor: 0.5,
                    latency_factor: 1.5,
                })
                .expect("scenario")
                .with(FaultScenario::KernelJitter { eps: 0.05 })
                .expect("scenario"),
        ),
    ]
}

/// The fail-stop + restart check run through the recovery engine: one
/// fail-stop against a bubble-checkpointed horizon, with the worst-case
/// extra wall the recovery model permits (detection + restart + restore +
/// one interval of replay). The smoke bin asserts the simulated wall stays
/// within it — i.e. the recovered goodput is within the budgeted bound.
#[derive(Debug, Clone)]
pub struct FailStopCheck {
    /// Goodput under the fail-stop.
    pub goodput: GoodputReport,
    /// Fault-free wall for the same horizon and checkpoint plan, ns.
    pub fault_free_wall_ns: i64,
    /// Worst-case extra wall the single fail-stop may cost, ns.
    pub max_extra_ns: i64,
}

fn fail_stop_check(
    run: &OptimusRun,
    cfg: &OptimusConfig,
    ctx: &SystemContext,
) -> Option<FailStopCheck> {
    // Same burst-buffer storage assumption as the recovery experiment.
    let topo = ctx.topo.with_storage(optimus_cluster::LinkProfile {
        bandwidth: 80e9,
        latency: 100e-6,
    });
    let horizon: u32 = 16;
    let restart = DurNs::from_millis(50);
    let plan = plan_checkpoints(run, cfg.llm_plan, &topo, &CheckpointConfig::bubble(4)).ok()?;
    let fail_at = TimeNs((plan.fault_free_wall_ns(horizon) * 3 / 10) as u64);
    let model = FaultModel::new(105)
        .with(FaultScenario::FailStop {
            device: 0,
            at: fail_at,
            restart,
        })
        .ok()?;
    let params = RecoveryParams::defaults();
    let outcome =
        simulate_lifecycle(&plan, &FailureTrace::from_model(&model), &params, horizon).ok()?;
    // Worst case: a truncated step, detection, respawn + restore + restart
    // delay, then replaying a full checkpoint interval.
    let max_extra_ns = plan.step_ns
        + params.detection.0 as i64
        + params.restart_overhead.0 as i64
        + plan.write_ns
        + restart.0 as i64
        + plan.interval_steps as i64 * plan.step_ns;
    Some(FailStopCheck {
        goodput: GoodputReport::from_outcome(&outcome),
        fault_free_wall_ns: plan.fault_free_wall_ns(horizon),
        max_extra_ns,
    })
}

/// Runs the sweep; `smoke` restricts it to the two headline scenarios (the
/// CI configuration). Returns (report, rows, fail-stop check).
pub fn run(smoke: bool) -> (String, Vec<Row>, Option<FailStopCheck>) {
    let (run, w, ctx, cfg) = build_run();
    let mut out = format!(
        "== Resilience: fault injection + adaptive re-planning ({} @ {} GPUs) ==\n\
         drift monitor threshold: {:.0}% busy-time over profile\n\n",
        w.mllm.name,
        w.num_gpus,
        DRIFT_THRESHOLD * 100.0
    );
    if run.enc_plan.tp != run.profile.llm_plan.tp {
        out.push_str("skipped: chosen encoder plan is not spliceable (TP_enc != TP_llm)\n");
        return (out, Vec::new(), None);
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut events_out = Vec::new();
    let baseline_guess = run.outcome.latency_secs();
    for (name, model) in scenarios(baseline_guess, smoke) {
        let report = resilience_study(&run, &w, &ctx, &cfg, &model, DRIFT_THRESHOLD)
            .expect("resilience study");
        events_out.extend(fault_annotations(&report.events));
        rows.push(Row {
            scenario: name,
            report,
        });
    }

    let mut t = TextTable::new(vec![
        "Scenario",
        "Base (ms)",
        "Static (ms)",
        "Adaptive (ms)",
        "Drift",
        "Replanned",
        "Recovery",
    ]);
    for r in &rows {
        let rep = &r.report;
        t.row(vec![
            r.scenario.to_string(),
            format!("{:.2}", rep.baseline_secs * 1e3),
            format!("{:.2}", rep.static_secs * 1e3),
            format!("{:.2}", rep.adaptive_secs * 1e3),
            format!("{:.2}x", rep.drift.max_ratio()),
            if rep.replanned {
                if rep.adopted {
                    "adopted"
                } else {
                    "rejected"
                }
            } else {
                "no"
            }
            .to_string(),
            format!("{:.0}%", rep.recovery() * 100.0),
        ]);
    }
    out.push_str(&t.render());

    let check = fail_stop_check(&run, &cfg, &ctx);
    if let Some(c) = &check {
        out.push_str(&format!(
            "\nfail-stop + restart (recovery engine, {} steps, checkpoint every 4):\n\
             goodput {:.4} | wall {:.3}s vs fault-free {:.3}s (budget +{:.3}s) | \
             p50 recovery {:.1} ms\n",
            c.goodput.horizon_steps,
            c.goodput.goodput(),
            c.goodput.wall_ns as f64 / 1e9,
            c.fault_free_wall_ns as f64 / 1e9,
            c.max_extra_ns as f64 / 1e9,
            c.goodput.recovery_p50() / 1e6,
        ));
    }

    out.push_str("\ninjected fault events:\n");
    out.push_str(&fault_table(&events_out));
    (out, rows, check)
}

//! Ablations of the design choices DESIGN.md calls out:
//!
//! * fine-grained vs coarse-only bubble exploitation (§4.2);
//! * dependency-point adjustment on/off (§4.3, Fig. 12);
//! * frozen-encoder multi-stage training (§6);
//! * robustness to kernel-runtime jitter and the bubble-margin mitigation
//!   (§6 "online scheduling").

use optimus_baselines::common::SystemContext;
use optimus_core::{drift_study, jitter_study, run_optimus, OptimusConfig};
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_trace::TextTable;

fn model_d_512() -> (Workload, SystemContext, ParallelPlan) {
    let w = Workload::new(MllmConfig::model_d(), 512, 256, 1);
    let ctx = SystemContext::hopper(512).expect("cluster");
    (w, ctx, ParallelPlan::with_vpp(8, 8, 8, 12).expect("plan"))
}

/// Fine-grained vs coarse-only exploitation across the weak-scaling models.
pub fn fine_vs_coarse() -> (String, Vec<(String, f64, f64)>) {
    let mut out =
        String::from("== Ablation: fine-grained vs coarse-only bubble exploitation ==\n\n");
    let mut t = TextTable::new(vec!["Model", "coarse-only (s)", "fine (s)", "fine gain"]);
    let mut rows = Vec::new();
    for (w, plan, v) in Workload::weak_scaling() {
        let ctx = SystemContext::hopper(w.num_gpus).expect("cluster");
        let llm_plan = ParallelPlan::with_vpp(plan.0, plan.1, plan.2, v).expect("plan");
        let mut cfg = OptimusConfig::new(llm_plan);
        cfg.fine_grained = false;
        let coarse = run_optimus(&w, &cfg, &ctx).expect("coarse");
        cfg.fine_grained = true;
        let fine = run_optimus(&w, &cfg, &ctx).expect("fine");
        t.row(vec![
            w.mllm.name.clone(),
            format!("{:.3}", coarse.report.iteration_secs),
            format!("{:.3}", fine.report.iteration_secs),
            format!(
                "{:+.1}%",
                (coarse.report.iteration_secs / fine.report.iteration_secs - 1.0) * 100.0
            ),
        ]);
        rows.push((
            w.mllm.name.clone(),
            coarse.report.iteration_secs,
            fine.report.iteration_secs,
        ));
    }
    out.push_str(&t.render());
    (out, rows)
}

/// Dependency-point adjustment on/off (Model D, 512 GPUs).
pub fn adjustment() -> (String, (f64, f64)) {
    let (w, ctx, llm_plan) = model_d_512();
    let mut cfg = OptimusConfig::new(llm_plan);
    cfg.adjust_dep_points = false;
    let unadj = run_optimus(&w, &cfg, &ctx).expect("unadjusted");
    cfg.adjust_dep_points = true;
    let adj = run_optimus(&w, &cfg, &ctx).expect("adjusted");
    let mut out =
        String::from("== Ablation: Fig. 12 dependency-point adjustment (Model D, 512 GPUs) ==\n\n");
    let mut t = TextTable::new(vec!["variant", "iteration (s)", "Eff_fine"]);
    t.row(vec![
        "default F points".to_string(),
        format!("{:.3}", unadj.report.iteration_secs),
        format!("{:.1}%", unadj.eff_fine * 100.0),
    ]);
    t.row(vec![
        "adjusted F points".to_string(),
        format!("{:.3}", adj.report.iteration_secs),
        format!("{:.1}%", adj.eff_fine * 100.0),
    ]);
    out.push_str(&t.render());
    (
        out,
        (unadj.report.iteration_secs, adj.report.iteration_secs),
    )
}

/// Frozen-encoder multi-stage training (§6) on Model D.
pub fn frozen_encoder() -> (String, (f64, f64)) {
    let (w, ctx, llm_plan) = model_d_512();
    let mut cfg = OptimusConfig::new(llm_plan);
    let full = run_optimus(&w, &cfg, &ctx).expect("full");
    cfg.frozen_encoder = true;
    let frozen = run_optimus(&w, &cfg, &ctx).expect("frozen");
    let mut out = String::from(
        "== Ablation: frozen-encoder (adapter-only backward) training, Model D ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "variant",
        "iteration (s)",
        "Eff_fine",
        "prefix (ms)",
        "suffix (ms)",
    ]);
    for (name, r) in [("full training", &full), ("frozen encoder", &frozen)] {
        t.row(vec![
            name.to_string(),
            format!("{:.3}", r.report.iteration_secs),
            format!("{:.1}%", r.eff_fine * 100.0),
            format!("{:.1}", r.outcome.prefix as f64 / 1e6),
            format!("{:.1}", r.outcome.suffix as f64 / 1e6),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nfrozen encoders skip the encoder backward, so the remaining work hides even more easily\n");
    (
        out,
        (full.report.iteration_secs, frozen.report.iteration_secs),
    )
}

/// Kernel-jitter robustness with and without a bubble safety margin.
pub fn robustness() -> (String, Vec<(f64, f64, f64)>) {
    let w = Workload::small_model();
    let ctx = SystemContext::hopper(8).expect("cluster");
    let mut out = String::from(
        "== Ablation: robustness to kernel-runtime jitter (ViT-3B+GPT-11B, 8 GPUs) ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "margin",
        "jitter",
        "baseline (s)",
        "p50 inflation",
        "p95 inflation",
    ]);
    let mut rows = Vec::new();
    for margin in [0.0, 0.15] {
        let mut cfg = OptimusConfig::new(ParallelPlan::new(2, 2, 2).expect("plan"));
        cfg.adjust_dep_points = false;
        cfg.bubble_margin = margin;
        let run = run_optimus(&w, &cfg, &ctx).expect("optimus");
        if run.enc_plan.tp != 2 {
            continue;
        }
        for jitter in [0.05, 0.10, 0.20] {
            let rep = jitter_study(&run, &w, &ctx, jitter, 15).expect("study");
            t.row(vec![
                format!("{:.0}%", margin * 100.0),
                format!("{:.0}%", jitter * 100.0),
                format!("{:.4}", rep.baseline_secs),
                format!("{:+.2}%", rep.p50_inflation() * 100.0),
                format!("{:+.2}%", rep.p95_inflation() * 100.0),
            ]);
            rows.push((margin, jitter, rep.p95_inflation()));
        }
    }
    out.push_str(&t.render());
    out.push_str("\nthe paper (§6) notes profiled-time deviations cause suboptimal schedules; dependencies keep the schedule *correct* under any jitter, and the margin knob trades mean latency for tail stability\n");
    (out, rows)
}

/// Online rescheduling under systematic encoder drift (§6).
pub fn online_rescheduling() -> (String, Vec<(f64, f64)>) {
    let w = Workload::small_model();
    let ctx = SystemContext::hopper(8).expect("cluster");
    let mut cfg = OptimusConfig::new(ParallelPlan::new(2, 2, 2).expect("plan"));
    cfg.adjust_dep_points = false;
    let run = run_optimus(&w, &cfg, &ctx).expect("optimus");
    let mut out =
        String::from("== Ablation: online rescheduling under systematic encoder drift (§6) ==\n\n");
    let mut rows = Vec::new();
    if run.enc_plan.tp != 2 {
        out.push_str("(skipped: chosen encoder plan not re-simulatable)\n");
        return (out, rows);
    }
    let mut t = TextTable::new(vec![
        "encoder drift",
        "baseline (s)",
        "stale schedule (s)",
        "rescheduled (s)",
        "recovered",
    ]);
    for drift in [1.1, 1.3, 1.6] {
        let rep = drift_study(&run, &w, &ctx, &cfg, drift).expect("drift study");
        t.row(vec![
            format!("{:+.0}%", (drift - 1.0) * 100.0),
            format!("{:.4}", rep.baseline_secs),
            format!("{:.4}", rep.stale_secs),
            format!("{:.4}", rep.rescheduled_secs),
            format!("{:.0}%", rep.recovery() * 100.0),
        ]);
        rows.push((drift, rep.recovery()));
    }
    out.push_str(&t.render());
    out.push_str(
        "\nfinding: for small drift the dependency-driven execution absorbs the error by \
         itself (a stale schedule only sets *orders*, not times); rescheduling pays off as \
         drift grows — supporting the paper's monitoring-based adjustment proposal\n",
    );
    (out, rows)
}

/// Runs all ablations.
pub fn run() -> (String, ()) {
    let mut out = String::new();
    out.push_str(&fine_vs_coarse().0);
    out.push('\n');
    out.push_str(&adjustment().0);
    out.push('\n');
    out.push_str(&frozen_encoder().0);
    out.push('\n');
    out.push_str(&robustness().0);
    out.push('\n');
    out.push_str(&online_rescheduling().0);
    (out, ())
}

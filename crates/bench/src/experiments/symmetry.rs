//! Symmetry-folding scaling study: wall-clock of the full simulator vs the
//! certificate-driven folded engine as the TP×DP grid grows from 512 to
//! 8192 GPUs around a fixed pipeline depth.
//!
//! Three phases are timed separately, mirroring how the fold is deployed:
//! `full` (simulate every device), `certify` (the one-time static symmetry
//! pass that issues the certificate), and `folded` (simulate one
//! representative per class under the certificate and replicate spans to
//! the whole cluster). Plan search re-simulates certified layouts many
//! times, so the certificate amortizes; the smoke gate therefore pins the
//! *simulation* speedup (`full / folded`) — but also requires the one-shot
//! path (`certify + folded`) to beat full simulation outright, so the fold
//! pays off even without amortization.
//!
//! Both engines must agree bit-for-bit at every scale — the folded column
//! is only allowed to be *faster*, never different.

use std::time::Instant;

use optimus_cluster::DurNs;
use optimus_core::expand_cluster;
use optimus_lint::certify_symmetry;
use optimus_pipeline::{lower, one_f_one_b, PipelineSpec, StageSpec, TimedKernel};
use optimus_sim::simulate;
use optimus_trace::TextTable;

/// One (gpus = stages × lanes × replicas) point of the sweep.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Total devices in the expanded cluster.
    pub gpus: u32,
    /// Pipeline stages (devices per TP×DP column).
    pub stages: u32,
    /// TP lanes per replica.
    pub lanes: u32,
    /// DP replicas.
    pub replicas: u32,
    /// Tasks in the expanded graph.
    pub tasks: usize,
    /// Devices the folded engine actually simulated.
    pub devices_simulated: usize,
    /// Symmetry classes in the certificate.
    pub classes: usize,
    /// Full-simulation wall-clock in milliseconds (best of two runs).
    pub full_ms: f64,
    /// One-time certificate issuance wall-clock in milliseconds (best of
    /// two).
    pub certify_ms: f64,
    /// Certificate-driven folded-simulation wall-clock in milliseconds
    /// (best of two).
    pub folded_ms: f64,
    /// Simulation speedup `full_ms / folded_ms`.
    pub speedup: f64,
    /// Folded result is bit-identical to full (spans and makespan).
    pub identical: bool,
    /// The folded engine actually ran (certificate issued and used).
    pub folded: bool,
}

/// Sweep output: one row per scale.
#[derive(Debug, Clone)]
pub struct Study {
    /// Measured points, smallest cluster first.
    pub points: Vec<ScalePoint>,
}

impl Study {
    /// The point the smoke gate is pinned to (3072 GPUs).
    pub fn smoke_point(&self) -> &ScalePoint {
        self.points
            .iter()
            .find(|p| p.gpus == SMOKE_GPUS)
            .expect("sweep includes the 3072-GPU point")
    }

    /// Renders the sweep as a `BENCH_symmetry.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from(
            "{\n  \"experiment\": \"symmetry_fold\",\n  \"unit\": \"ms\",\n  \"points\": [\n",
        );
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"gpus\": {}, \"stages\": {}, \"lanes\": {}, \"replicas\": {}, \
                 \"tasks\": {}, \"devices_simulated\": {}, \"classes\": {}, \
                 \"full_ms\": {:.3}, \"certify_ms\": {:.3}, \"folded_ms\": {:.3}, \
                 \"speedup\": {:.2}, \"identical\": {}}}{}\n",
                p.gpus,
                p.stages,
                p.lanes,
                p.replicas,
                p.tasks,
                p.devices_simulated,
                p.classes,
                p.full_ms,
                p.certify_ms,
                p.folded_ms,
                p.speedup,
                p.identical,
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// GPU count the smoke assertions are pinned to.
pub const SMOKE_GPUS: u32 = 3072;

/// Required folded speedup at [`SMOKE_GPUS`].
pub const SMOKE_SPEEDUP: f64 = 5.0;

/// The sweep grid: (stages, lanes, replicas) with stages·lanes·replicas GPUs.
pub const SCALES: [(u32, u32, u32); 3] = [
    (8, 8, 8),   // 512 GPUs
    (16, 8, 24), // 3072 GPUs — the paper's strong-scaling point
    (16, 8, 64), // 8192 GPUs
];

/// Synthetic per-stage kernel mix; scaled so the base 1F1B pipeline lowers
/// to a few thousand tasks per column.
fn spec(stages: u32, n_mb: u32) -> PipelineSpec {
    let stage = StageSpec {
        fwd: vec![
            TimedKernel {
                label: "f",
                dur: DurNs(420_000),
                comm: false,
            },
            TimedKernel {
                label: "ag",
                dur: DurNs(60_000),
                comm: true,
            },
        ],
        bwd: vec![
            TimedKernel {
                label: "b",
                dur: DurNs(830_000),
                comm: false,
            },
            TimedKernel {
                label: "rs",
                dur: DurNs(60_000),
                comm: true,
            },
        ],
        bwd_weight: vec![],
        activation_bytes: 1 << 24,
        params_per_gpu: 1 << 24,
    };
    PipelineSpec {
        pp: stages,
        vpp: 1,
        n_microbatches: n_mb,
        stages: vec![stage; stages as usize],
        dp_allgather: DurNs(500_000),
        dp_reducescatter: DurNs(700_000),
        p2p: DurNs(35_000),
    }
}

fn measure_point(stages: u32, lanes: u32, replicas: u32) -> ScalePoint {
    let n_mb = 2 * stages;
    let base = lower(
        &spec(stages, n_mb),
        &one_f_one_b(stages, n_mb).unwrap(),
        &[],
    )
    .expect("base pipeline lowers")
    .graph;
    let cluster = expand_cluster(&base, lanes, replicas);

    // Best-of-two on every phase to shave scheduler noise off the CI smoke
    // gate (the bench box is a single shared core).
    let mut full_ms = f64::INFINITY;
    let mut full = None;
    for _ in 0..2 {
        let t = Instant::now();
        let r = simulate(&cluster.graph).expect("full simulation");
        full_ms = full_ms.min(t.elapsed().as_secs_f64() * 1e3);
        full = Some(r);
    }
    let full = full.unwrap();

    let mut certify_ms = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..2 {
        let t = Instant::now();
        let o = certify_symmetry(&cluster.graph, &cluster.coords);
        certify_ms = certify_ms.min(t.elapsed().as_secs_f64() * 1e3);
        outcome = Some(o);
    }
    let outcome = outcome.unwrap();
    assert!(
        !outcome.report.has_errors(),
        "clean expansion must certify: {}",
        outcome.report
    );
    let cert = outcome
        .certificate
        .expect("clean expansion yields a certificate");
    assert!(
        cert.covers(&cluster.graph),
        "certificate must cover the graph"
    );
    let plan = cert.fold_plan();

    let mut folded_ms = f64::INFINITY;
    let mut folded = None;
    for _ in 0..2 {
        let t = Instant::now();
        let r = optimus_sim::simulate_folded(&cluster.graph, &plan).expect("folded simulation");
        folded_ms = folded_ms.min(t.elapsed().as_secs_f64() * 1e3);
        folded = Some(r);
    }
    let (folded, stats) = folded.unwrap();

    let identical = folded.spans() == full.spans() && folded.makespan() == full.makespan();
    ScalePoint {
        gpus: stages * lanes * replicas,
        stages,
        lanes,
        replicas,
        tasks: cluster.graph.tasks().len(),
        devices_simulated: stats.devices_simulated,
        classes: cert.classes.len(),
        full_ms,
        certify_ms,
        folded_ms,
        speedup: full_ms / folded_ms.max(1e-9),
        identical,
        folded: !plan.is_identity(),
    }
}

/// Runs the sweep; `smoke` stops at the 3072-GPU gate point so the CI step
/// stays cheap. Returns (report, study).
pub fn run(smoke: bool) -> (String, Study) {
    let mut points = Vec::new();
    let mut out = String::from(
        "== Symmetry folding: full vs certificate-driven folded simulation ==\n\
         fixed pipeline depth, TP×DP grid swept; folded must be bit-identical\n\n",
    );
    for (stages, lanes, replicas) in SCALES {
        if smoke && stages * lanes * replicas > SMOKE_GPUS {
            out.push_str(&format!(
                "(smoke: skipping {} GPUs)\n",
                stages * lanes * replicas
            ));
            continue;
        }
        let point = measure_point(stages, lanes, replicas);
        points.push(point);
    }

    let mut t = TextTable::new(vec![
        "GPUs",
        "Grid (pp×tp×dp)",
        "Tasks",
        "Sim'd devices",
        "Classes",
        "Full (ms)",
        "Certify (ms)",
        "Folded (ms)",
        "Speedup",
        "Identical",
    ]);
    for p in &points {
        t.row(vec![
            p.gpus.to_string(),
            format!("{}×{}×{}", p.stages, p.lanes, p.replicas),
            p.tasks.to_string(),
            p.devices_simulated.to_string(),
            p.classes.to_string(),
            format!("{:.2}", p.full_ms),
            format!("{:.2}", p.certify_ms),
            format!("{:.2}", p.folded_ms),
            format!("{:.2}x", p.speedup),
            p.identical.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    (out, Study { points })
}

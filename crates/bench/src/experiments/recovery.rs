//! Checkpoint/restart recovery study: bubble-placed snapshots vs the
//! critical-path baseline under a seeded multi-failure trace, plus the
//! elastic degraded-mode planner vs naive wait-for-restart on a device
//! loss.
//!
//! This is the closed-loop demo of `optimus-recovery`: the same Optimus
//! schedule, the same failure traces, the same detection/restart costs —
//! only the checkpoint placement (or the degraded-mode choice) differs, so
//! every goodput delta in the report is attributable to the policy.

use optimus_baselines::common::SystemContext;
use optimus_cluster::{DurNs, LinkProfile, TimeNs};
use optimus_core::{run_optimus, OptimusConfig, OptimusRun};
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_recovery::{
    engine_check, plan_checkpoints, plan_elastic, simulate_lifecycle, CheckpointConfig,
    CheckpointPlan, DegradedMode, ElasticDecision, Failure, FailureKind, FailureTrace,
    FailureTraceConfig, GoodputReport, Hazard, RecoveryParams,
};
use optimus_trace::{fault_table_with_recovery, TextTable};

/// Checkpoint interval used throughout, in steps.
pub const INTERVAL_STEPS: u32 = 4;

/// Everything the smoke assertions need.
#[derive(Debug, Clone)]
pub struct Study {
    /// Bubble-placed checkpoint plan.
    pub bubble_plan: CheckpointPlan,
    /// Critical-path baseline plan.
    pub critical_plan: CheckpointPlan,
    /// Goodput under the multi-failure trace, bubble placement.
    pub bubble: GoodputReport,
    /// Goodput under the same trace, critical-path placement.
    pub critical: GoodputReport,
    /// The elastic planner's decision for the device-loss scenario.
    pub decision: ElasticDecision,
    /// Goodput on the device-loss scenario with the chosen degraded mode.
    pub elastic: GoodputReport,
    /// Goodput on the same scenario with naive wait-for-restart.
    pub wait: GoodputReport,
}

fn build_run() -> (OptimusRun, Workload, SystemContext, OptimusConfig) {
    let w = Workload::new(MllmConfig::small(), 8, 16, 1);
    let ctx = SystemContext::hopper(8).expect("cluster");
    // Checkpoints go to a node-local NVMe burst buffer (drained to the
    // parallel filesystem asynchronously), not the 2 GB/s shared mount the
    // topology defaults to — otherwise the write dwarfs any placement.
    let ctx = ctx.with_topology(ctx.topo.with_storage(LinkProfile {
        bandwidth: 80e9,
        latency: 100e-6,
    }));
    let cfg = OptimusConfig::new(ParallelPlan::new(2, 2, 2).expect("plan"));
    let run = run_optimus(&w, &cfg, &ctx).expect("optimus");
    (run, w, ctx, cfg)
}

fn goodput_row(t: &mut TextTable, name: &str, plan: &CheckpointPlan, g: &GoodputReport) {
    t.row(vec![
        name.to_string(),
        format!("{:.2}", plan.write_ns as f64 / 1e6),
        format!("{:.2}", plan.spill_ns as f64 / 1e6),
        format!("{:.0}%", plan.hidden_fraction() * 100.0),
        g.failures.to_string(),
        format!("{:.2}", g.wall_ns as f64 / 1e9),
        format!("{:.4}", g.goodput()),
        format!("{:.2}", g.recovery_p50() / 1e6),
        format!("{:.2}", g.recovery_p99() / 1e6),
    ]);
}

/// Runs the study. `smoke` shrinks the horizon (CI configuration); results
/// are deterministic either way.
pub fn run(smoke: bool) -> (String, Study) {
    let (run, w, ctx, cfg) = build_run();
    let horizon: u32 = if smoke { 32 } else { 96 };
    let params = RecoveryParams::defaults();

    let bubble_plan = plan_checkpoints(
        &run,
        cfg.llm_plan,
        &ctx.topo,
        &CheckpointConfig::bubble(INTERVAL_STEPS),
    )
    .expect("bubble checkpoint plan");
    let critical_plan = plan_checkpoints(
        &run,
        cfg.llm_plan,
        &ctx.topo,
        &CheckpointConfig::critical_path(INTERVAL_STEPS),
    )
    .expect("critical-path checkpoint plan");
    // The placement must survive static analysis (OPT005 + OPT007).
    let lint = bubble_plan.verify(horizon).expect("bubble placement lint");

    // One seeded multi-failure trace, shared by both policies. The horizon
    // covers the slower (critical-path) timeline so both runs see failures
    // throughout.
    let horizon_ns = critical_plan.fault_free_wall_ns(horizon) * 2;
    let trace = FailureTrace::generate(&FailureTraceConfig {
        seed: 2026,
        horizon_ns: horizon_ns as u64,
        mtbf_ns: (horizon_ns / 6) as u64,
        num_devices: bubble_plan.num_ranks,
        restart: DurNs::from_millis(50),
        repair: DurNs::from_millis(500),
        permanent_every: 0,
        hazard: Hazard::Uniform,
    })
    .expect("failure trace");

    let bubble_out = simulate_lifecycle(&bubble_plan, &trace, &params, horizon).expect("lifecycle");
    let critical_out =
        simulate_lifecycle(&critical_plan, &trace, &params, horizon).expect("lifecycle");
    engine_check(&bubble_out, bubble_plan.num_ranks).expect("engine cross-check");
    engine_check(&critical_out, critical_plan.num_ranks).expect("engine cross-check");
    let bubble = GoodputReport::from_outcome(&bubble_out);
    let critical = GoodputReport::from_outcome(&critical_out);

    // Device-loss scenario: one permanent failure a third into the horizon
    // with a repair lead time worth ~24 steps of work.
    let step = bubble_plan.step_ns;
    let fail_step = horizon / 3;
    let fail_at = fail_step as i64 * step + step / 2;
    let repair_ns = 24 * step;
    let loss_trace = FailureTrace::new(vec![Failure {
        at: TimeNs(fail_at as u64),
        device: 1,
        kind: FailureKind::Permanent {
            repair: DurNs(repair_ns as u64),
        },
    }])
    .expect("loss trace");
    let decision = plan_elastic(
        &w,
        &cfg,
        &ctx,
        &run.memory,
        step,
        repair_ns,
        horizon - fail_step,
    )
    .expect("elastic decision");
    let wait_out =
        simulate_lifecycle(&bubble_plan, &loss_trace, &params, horizon).expect("lifecycle");
    let elastic_params = RecoveryParams {
        degraded: decision.chosen,
        ..params.clone()
    };
    let elastic_out =
        simulate_lifecycle(&bubble_plan, &loss_trace, &elastic_params, horizon).expect("lifecycle");
    engine_check(&wait_out, bubble_plan.num_ranks).expect("engine cross-check");
    engine_check(&elastic_out, bubble_plan.num_ranks).expect("engine cross-check");
    let wait = GoodputReport::from_outcome(&wait_out);
    let elastic = GoodputReport::from_outcome(&elastic_out);

    // Render.
    let mut out = format!(
        "== Recovery: bubble-placed checkpoints + elastic degraded modes \
         ({} @ {} GPUs, {} steps, checkpoint every {}) ==\n\
         snapshot {} MiB/rank over storage; per-device bubble capacity \
         {:?} us/step\n\n",
        w.mllm.name,
        w.num_gpus,
        horizon,
        INTERVAL_STEPS,
        bubble_plan.bytes_per_rank >> 20,
        bubble_plan
            .bubble_capacity_ns
            .iter()
            .map(|&c| c / 1000)
            .collect::<Vec<_>>(),
    );
    let mut t = TextTable::new(vec![
        "Policy",
        "Write (ms)",
        "Spill (ms)",
        "Hidden",
        "Fails",
        "Wall (s)",
        "Goodput",
        "p50 rec (ms)",
        "p99 rec (ms)",
    ]);
    goodput_row(&mut t, "bubble", &bubble_plan, &bubble);
    goodput_row(&mut t, "critical-path", &critical_plan, &critical);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nplacement lint: {} diagnostics (0 errors required)\n",
        lint.diagnostics.len()
    ));

    out.push_str(&format!(
        "\ndevice-loss scenario: dev 1 lost at step {fail_step}, repair worth {} steps\n",
        repair_ns / step
    ));
    let mut t = TextTable::new(vec!["Mode", "Eff step (ms)", "Expected wall (s)"]);
    for o in &decision.options {
        t.row(vec![
            o.mode.label().to_string(),
            format!("{:.2}", o.effective_step_ns as f64 / 1e6),
            format!("{:.3}", o.expected_wall_ns as f64 / 1e9),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "chosen: {} | simulated wall {:.3}s (elastic) vs {:.3}s (wait), \
         goodput {:.4} vs {:.4}\n",
        decision.chosen_mode().label(),
        elastic.wall_ns as f64 / 1e9,
        wait.wall_ns as f64 / 1e9,
        elastic.goodput(),
        wait.goodput(),
    ));

    out.push_str("\nfailure + recovery events (bubble policy, multi-failure trace):\n");
    let fault_events: Vec<optimus_trace::TraceAnnotation> = trace
        .failures()
        .iter()
        .map(|f| optimus_trace::TraceAnnotation {
            label: match f.kind {
                FailureKind::Transient { .. } => "fail_stop".to_string(),
                FailureKind::Permanent { .. } => "device_loss".to_string(),
            },
            device: f.device,
            at_us: f.at.0 as f64 / 1e3,
            detail: String::new(),
        })
        .collect();
    out.push_str(&fault_table_with_recovery(
        &fault_events,
        &bubble_out.events,
    ));

    (
        out,
        Study {
            bubble_plan,
            critical_plan,
            bubble,
            critical,
            decision,
            elastic,
            wait,
        },
    )
}

/// True when the elastic decision picked a non-trivial mode.
pub fn chose_degraded(decision: &ElasticDecision) -> bool {
    decision.chosen_mode() != DegradedMode::WaitForRestart
}

//! Fleet what-if study: the resilience engine end to end on the synthetic
//! month scenario.
//!
//! Four phases, each pinned by the smoke gate:
//!
//! * **calibrate** — a classed fleet failure trace is serialised through
//!   the graphless fault-event writer, ingested back as a Chrome trace,
//!   and [`optimus_calibrate::fit_mtbf`] recovers the planted per-class
//!   rates; the scenario the study prices is the *calibrated* one, closing
//!   the observe → calibrate → what-if loop;
//! * **solve** — Young/Daly, its bubble-aware self-consistent fixed point,
//!   and the exact golden-section search over the lifecycle ledger, for
//!   both checkpoint policies on one shared trace set. The headline: under
//!   bubble-packed writes the textbook Young/Daly interval (calibrated on
//!   the full write) diverges from the exact optimum by an order of
//!   magnitude, while under critical-path writes it stays tight;
//! * **frontier** — p50/p99 goodput over cluster size × MTBF × policy ×
//!   elastic mode;
//! * **determinism** — the entire report re-rendered at a different worker
//!   count must be byte-identical.

use optimus_calibrate::{fit_mtbf, IngestedTrace, MtbfCalibration};
use optimus_fleet::{
    evaluate, replica_traces, solve_on_traces, sweep_frontier, FleetReport, FleetScenario,
    FrontierConfig, SolverResult,
};
use optimus_recovery::{ClassedTrace, DegradedMode, PlacementPolicy};
use optimus_trace::{write_fault_event_trace, TextTable, TraceAnnotation};

/// Goodput of the exact optimum against halving/doubling its interval —
/// the independent local-optimality check the smoke gate asserts.
#[derive(Debug, Clone)]
pub struct OptimalityPoint {
    /// Checkpoint policy of the solve.
    pub policy: PlacementPolicy,
    /// Goodput at the exact-solved interval.
    pub exact_goodput: f64,
    /// Goodput at half the exact interval (min 1).
    pub half_goodput: f64,
    /// Goodput at double the exact interval.
    pub double_goodput: f64,
}

/// Everything the study measures.
#[derive(Debug, Clone)]
pub struct Study {
    /// The assembled what-if report (solver verdicts + frontier).
    pub report: FleetReport,
    /// Relative error of the calibrated fleet MTBF vs the planted truth.
    pub mtbf_rel_err: f64,
    /// Fault events the calibration round trip ingested.
    pub calibration_events: usize,
    /// Solver verdict under bubble placement.
    pub bubble: SolverResult,
    /// Solver verdict under critical-path placement.
    pub critical: SolverResult,
    /// Local-optimality checks, one per policy.
    pub optimality: Vec<OptimalityPoint>,
    /// The report text is byte-identical across worker counts.
    pub worker_invariant: bool,
}

impl Study {
    /// Renders the study as a `BENCH_fleet.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"fleet_whatif\",\n");
        out.push_str(&format!(
            "  \"mtbf_rel_err\": {:.4},\n  \"calibration_events\": {},\n  \
             \"worker_invariant\": {},\n",
            self.mtbf_rel_err, self.calibration_events, self.worker_invariant
        ));
        out.push_str("  \"report\": ");
        out.push_str(&self.report.to_json().to_compact());
        out.push_str("\n}\n");
        out
    }
}

/// Generates an observation trace from the truth scenario, round trips it
/// through the fault-event writer + Chrome ingestion, and fits per-class
/// MTBF. Returns the calibration and the ingested event count.
fn calibrate_from_trace(truth: &FleetScenario) -> (MtbfCalibration, usize) {
    // Observe for twice the priced horizon so even the rarest class (host
    // loss) accumulates a statistically useful event count.
    let window = truth.trace_horizon_ns();
    let classed = ClassedTrace::generate(
        truth.seed ^ 0xCA11_B4A7_E000_0000,
        window,
        truth.num_devices,
        &truth.specs,
    )
    .expect("observation trace");
    let faults: Vec<TraceAnnotation> = classed
        .events()
        .iter()
        .map(|e| TraceAnnotation {
            label: e.component.label().into(),
            device: e.failure.device,
            at_us: e.failure.at.0 as f64 / 1000.0,
            detail: String::new(),
        })
        .collect();
    let mut buf = Vec::new();
    write_fault_event_trace(&faults, &[], &mut buf).expect("fault-event trace");
    let ingested =
        IngestedTrace::parse_chrome(std::str::from_utf8(&buf).expect("utf8")).expect("ingest");
    let n = ingested.annotations.len();
    let cal = fit_mtbf(&ingested.annotations, window, truth.num_devices).expect("fit");
    (cal, n)
}

/// Prices one policy's exact interval against half and double, on the same
/// traces the solver used.
fn optimality_point(
    sc: &FleetScenario,
    solved: &SolverResult,
    traces: &[optimus_recovery::FailureTrace],
    workers: usize,
) -> OptimalityPoint {
    let goodput_at = |k: u32| {
        evaluate(
            &sc.plan(solved.policy, k),
            traces,
            &sc.recovery_params(solved.mode).expect("params"),
            sc.horizon_steps,
            workers,
        )
        .expect("evaluate")
        .summary
        .goodput_mean
    };
    OptimalityPoint {
        policy: solved.policy,
        exact_goodput: solved.exact_goodput,
        half_goodput: goodput_at((solved.exact_k / 2).max(1)),
        double_goodput: goodput_at(solved.exact_k.saturating_mul(2)),
    }
}

/// Runs the study. `smoke` shrinks the priced horizon and the replica
/// count; every phase and every invariant check still runs. Returns
/// (report, study).
pub fn run(smoke: bool) -> (String, Study) {
    let mut truth = FleetScenario::synthetic();
    if smoke {
        truth.horizon_steps = 150_000;
    }
    let replicas: u32 = if smoke { 6 } else { 24 };
    let workers = 4;

    // Phase 1: calibrate the scenario from an observed failure trace.
    let (cal, calibration_events) = calibrate_from_trace(&truth);
    let sc = truth.with_calibrated_mtbf(&cal);
    let mtbf_rel_err = (sc.fleet_mtbf_ns() - truth.fleet_mtbf_ns()).abs() / truth.fleet_mtbf_ns();

    // Phase 2: solve the checkpoint interval for both policies on one
    // shared trace set, then check local optimality independently.
    let traces = replica_traces(&sc, replicas, workers).expect("replica traces");
    let solve = |policy| {
        solve_on_traces(
            &sc,
            policy,
            DegradedMode::WaitForRestart,
            &traces,
            workers,
            4096,
        )
        .expect("solve")
    };
    let bubble = solve(PlacementPolicy::Bubble);
    let critical = solve(PlacementPolicy::CriticalPath);
    let optimality = vec![
        optimality_point(&sc, &bubble, &traces, workers),
        optimality_point(&sc, &critical, &traces, workers),
    ];

    // Phase 3: the goodput frontier over cluster size × MTBF × policy ×
    // elastic mode.
    let frontier_cfg = FrontierConfig::smoke(replicas, workers);
    let frontier = sweep_frontier(&sc, &frontier_cfg).expect("frontier");
    let report = FleetReport::new(
        &sc,
        replicas,
        vec![bubble.clone(), critical.clone()],
        frontier,
    );

    // Phase 4: re-render the whole report at a different worker count; the
    // study is a pure function of the scenario, so the text must match
    // byte for byte.
    let report_w1 = {
        let traces1 = replica_traces(&sc, replicas, 1).expect("replica traces");
        let solve1 = |policy| {
            solve_on_traces(&sc, policy, DegradedMode::WaitForRestart, &traces1, 1, 4096)
                .expect("solve")
        };
        let frontier1 = sweep_frontier(
            &sc,
            &FrontierConfig {
                workers: 1,
                ..frontier_cfg
            },
        )
        .expect("frontier");
        FleetReport::new(
            &sc,
            replicas,
            vec![
                solve1(PlacementPolicy::Bubble),
                solve1(PlacementPolicy::CriticalPath),
            ],
            frontier1,
        )
    };
    let worker_invariant = report.golden_text() == report_w1.golden_text();

    let study = Study {
        report,
        mtbf_rel_err,
        calibration_events,
        bubble,
        critical,
        optimality,
        worker_invariant,
    };

    let mut out = String::from(
        "== Fleet what-if: MTBF-calibrated Monte Carlo, checkpoint solver, goodput frontier ==\n",
    );
    out.push_str(&format!(
        "calibration: {} fault events ingested, fleet-MTBF rel err {:.2}%\n\n",
        study.calibration_events,
        study.mtbf_rel_err * 100.0
    ));
    let mut t = TextTable::new(vec![
        "Policy",
        "YD k",
        "Self k",
        "Exact k",
        "YD goodput",
        "Exact goodput",
        "Gap",
        "Evals",
    ]);
    for s in [&study.bubble, &study.critical] {
        t.row(vec![
            s.policy.label().into(),
            s.young_daly_k.to_string(),
            s.self_consistent_k.to_string(),
            s.exact_k.to_string(),
            format!("{:.4}", s.young_daly_goodput),
            format!("{:.4}", s.exact_goodput),
            format!("{:.2}%", s.gap_pct),
            s.evaluations.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&study.report.golden_text());
    out.push_str(&format!(
        "\nworker-invariant report: {}\n",
        study.worker_invariant
    ));
    (out, study)
}

//! Extension (§6 "other pipeline schedules"): Optimus atop a zero-bubble
//! pipeline.
//!
//! The paper argues its bubble scheduling is orthogonal to the pipeline
//! schedule. We demonstrate it: the LLM backbone runs under (a) plain 1F1B
//! and (b) a zero-bubble-inspired split-backward schedule; Optimus builds a
//! bubble profile from each and schedules the encoder into whatever bubbles
//! remain.

use optimus_baselines::common::SystemContext;
use optimus_core::{run_optimus, LlmProfile, LlmScheduleKind, OptimusConfig};
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_trace::TextTable;

/// Runs the zero-bubble extension study; returns (report, (llm speedup,
/// optimus-on-zb vs optimus-on-1f1b ratio)).
pub fn run() -> (String, (f64, f64)) {
    // Model D at 512 GPUs with vpp = 1 so both schedules are comparable.
    let w = Workload::new(MllmConfig::model_d(), 512, 256, 1);
    let ctx = SystemContext::hopper(512).expect("cluster");
    let plan = ParallelPlan::new(8, 8, 8).expect("plan");

    // LLM-only pipelines under both schedules.
    let p_1f1b =
        LlmProfile::build_full(&w, &plan, &ctx, true, LlmScheduleKind::OneFOneB).expect("1f1b");
    let p_zb =
        LlmProfile::build_full(&w, &plan, &ctx, true, LlmScheduleKind::ZeroBubble).expect("zb");

    // Optimus atop each.
    let mut cfg = OptimusConfig::new(plan);
    let o_1f1b = run_optimus(&w, &cfg, &ctx).expect("optimus 1f1b");
    cfg.llm_schedule = LlmScheduleKind::ZeroBubble;
    let o_zb = run_optimus(&w, &cfg, &ctx).expect("optimus zb");

    let mut out = String::from(
        "== Extension: Optimus atop a zero-bubble pipeline (Model D, 512 GPUs, vpp=1) ==\n\n",
    );
    let mut t = TextTable::new(vec![
        "configuration",
        "LLM-only (s)",
        "with Optimus (s)",
        "Eff_fine",
    ]);
    t.row(vec![
        "1F1B".to_string(),
        format!("{:.3}", p_1f1b.makespan as f64 / 1e9),
        format!("{:.3}", o_1f1b.report.iteration_secs),
        format!("{:.1}%", o_1f1b.eff_fine * 100.0),
    ]);
    t.row(vec![
        "zero-bubble (split backward)".to_string(),
        format!("{:.3}", p_zb.makespan as f64 / 1e9),
        format!("{:.3}", o_zb.report.iteration_secs),
        format!("{:.1}%", o_zb.eff_fine * 100.0),
    ]);
    out.push_str(&t.render());
    let llm_speedup = p_1f1b.makespan as f64 / p_zb.makespan as f64;
    let optimus_ratio = o_1f1b.report.iteration_secs / o_zb.report.iteration_secs;
    out.push_str(&format!(
        "\nzero-bubble shrinks the LLM-only pipeline by {:.1}% and Optimus still schedules the \
         encoder into the (smaller) remaining bubbles — the mechanisms compose\n",
        (llm_speedup - 1.0) * 100.0
    ));
    (out, (llm_speedup, optimus_ratio))
}

//! Checkpoint/restart recovery goodput study.
//!
//! Pass `--smoke` for the CI configuration (short horizon); smoke mode also
//! asserts the closed loop:
//!
//! * bubble-placed checkpointing achieves strictly higher goodput than the
//!   fixed-interval critical-path baseline under the same seeded
//!   multi-failure trace, and
//! * the elastic planner's chosen degraded mode beats naive
//!   wait-for-restart on the device-loss scenario.

use optimus_bench::experiments::recovery;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (report, study) = recovery::run(smoke);
    println!("{report}");
    if smoke {
        assert!(
            study.bubble.goodput() > study.critical.goodput(),
            "bubble-placed checkpoints must beat the critical-path baseline: {} vs {}",
            study.bubble.goodput(),
            study.critical.goodput()
        );
        assert!(
            study.bubble_plan.spill_ns < study.critical_plan.spill_ns,
            "bubble placement hid no write time"
        );
        assert!(
            recovery::chose_degraded(&study.decision),
            "elastic planner fell back to wait-for-restart"
        );
        assert!(
            study.elastic.goodput() > study.wait.goodput(),
            "elastic mode must beat wait-for-restart: {} vs {}",
            study.elastic.goodput(),
            study.wait.goodput()
        );
        eprintln!("smoke assertions passed");
    }
}

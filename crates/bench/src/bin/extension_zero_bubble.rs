//! Runs the zero-bubble pipeline extension study.

fn main() {
    let (report, _) = optimus_bench::experiments::extension_zb::run();
    println!("{report}");
}

//! Runs the design-choice ablations (fine vs coarse, Fig. 12 adjustment,
//! frozen encoders, jitter robustness).

fn main() {
    let (report, _) = optimus_bench::experiments::ablations::run();
    println!("{report}");
}

//! Regenerates the paper's table1 experiment.

fn main() {
    let (report, _) = optimus_bench::experiments::table1::run();
    println!("{report}");
}

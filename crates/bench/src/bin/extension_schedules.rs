//! Runs the pipeline-schedule family comparison.

fn main() {
    let (report, _) = optimus_bench::experiments::extension_schedules::run();
    println!("{report}");
}

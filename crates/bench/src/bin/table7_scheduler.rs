//! Regenerates the paper's table7 experiment.

fn main() {
    let (report, _) = optimus_bench::experiments::table7::run();
    println!("{report}");
}

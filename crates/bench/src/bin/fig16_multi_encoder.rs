//! Regenerates the paper's fig16 experiment.

fn main() {
    let (report, _) = optimus_bench::experiments::fig16::run();
    println!("{report}");
}

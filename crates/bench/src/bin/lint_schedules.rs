//! Deny-mode static analysis over every example schedule and config.
//!
//! Lints the lowered task graph of each pipeline schedule family (1F1B,
//! GPipe, zero-bubble, interleaved) and the reports of full Optimus runs.
//! Exits non-zero if any error-severity diagnostic fires — the CI gate.
//! Pass `--smoke` for the fast subset.

use optimus_bench::experiments::lint_sweep;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (report, rows) = lint_sweep::run(smoke);
    println!("{report}");
    let failures: Vec<&str> = rows
        .iter()
        .filter(|r| !r.passes())
        .map(|r| r.name.as_str())
        .collect();
    assert!(
        failures.is_empty(),
        "deny-mode lint failed for: {}",
        failures.join(", ")
    );
    eprintln!("deny-mode lint passed ({} artifacts clean)", rows.len());
}

//! Fault injection + adaptive re-planning resilience sweep.
//!
//! Pass `--smoke` to run only the two headline scenarios (straggler,
//! degraded NVLink) — the CI configuration. In smoke mode the bin also
//! asserts that adaptation never loses latency and that the drift monitor
//! tripped a re-plan for both scenarios.

use optimus_bench::experiments::resilience;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (report, rows) = resilience::run(smoke);
    println!("{report}");
    if smoke {
        for r in &rows {
            assert!(
                r.report.adaptive_secs <= r.report.static_secs + 1e-12,
                "{}: adaptation lost latency",
                r.scenario
            );
            assert!(
                r.report.replanned,
                "{}: drift monitor failed to trip a re-plan",
                r.scenario
            );
        }
        eprintln!("smoke assertions passed ({} scenarios)", rows.len());
    }
}

//! Fault injection + adaptive re-planning resilience sweep.
//!
//! Pass `--smoke` to run only the two headline scenarios (straggler,
//! degraded NVLink) — the CI configuration. In smoke mode the bin also
//! asserts that adaptation never loses latency and that the drift monitor
//! tripped a re-plan for both scenarios.

use optimus_bench::experiments::resilience;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (report, rows, check) = resilience::run(smoke);
    println!("{report}");
    if smoke {
        for r in &rows {
            assert!(
                r.report.adaptive_secs <= r.report.static_secs + 1e-12,
                "{}: adaptation lost latency",
                r.scenario
            );
            assert!(
                r.report.replanned,
                "{}: drift monitor failed to trip a re-plan",
                r.scenario
            );
        }
        // Fail-stop + restart: the recovery engine must bring the job back
        // within the budgeted detection/restore/replay bound, i.e. the
        // recovered goodput is no worse than the bound allows.
        let c = check.expect("fail-stop recovery check");
        assert_eq!(c.goodput.failures, 1, "fail-stop did not fire");
        assert!(
            c.goodput.wall_ns <= c.fault_free_wall_ns + c.max_extra_ns,
            "fail-stop recovery blew the budget: wall {} > {} + {}",
            c.goodput.wall_ns,
            c.fault_free_wall_ns,
            c.max_extra_ns
        );
        let bound = c.fault_free_wall_ns as f64 / (c.fault_free_wall_ns + c.max_extra_ns) as f64;
        let fault_free_goodput = c.goodput.useful_ns as f64 / c.fault_free_wall_ns as f64;
        assert!(
            c.goodput.goodput() >= fault_free_goodput * bound,
            "recovered goodput {} fell below the budgeted bound {}",
            c.goodput.goodput(),
            fault_free_goodput * bound
        );
        eprintln!(
            "smoke assertions passed ({} scenarios + fail-stop recovery bound)",
            rows.len()
        );
    }
}

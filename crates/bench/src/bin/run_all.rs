//! Runs every experiment in sequence, printing each table/figure report —
//! the source for EXPERIMENTS.md.

use optimus_bench::experiments as ex;

type Experiment = (&'static str, Box<dyn Fn() -> String>);

fn main() {
    let order: Vec<Experiment> = vec![
        ("Table 1", Box::new(|| ex::table1::run().0)),
        ("Figure 3", Box::new(|| ex::fig3::run().0)),
        ("Figure 12", Box::new(|| ex::fig12::run().0)),
        ("Table 4", Box::new(|| ex::table4::run().0)),
        ("Figure 15", Box::new(|| ex::fig15::run().0)),
        ("Table 5", Box::new(|| ex::table5::run().0)),
        ("Figure 16", Box::new(|| ex::fig16::run().0)),
        ("Figure 17", Box::new(|| ex::fig17::run().0)),
        ("Table 7", Box::new(|| ex::table7::run().0)),
        ("Planner scaling", Box::new(|| ex::planner_scaling::run().0)),
        ("Resilience", Box::new(|| ex::resilience::run(false).0)),
        ("Ablations", Box::new(|| ex::ablations::run().0)),
        (
            "Zero-bubble extension",
            Box::new(|| ex::extension_zb::run().0),
        ),
    ];
    for (name, f) in order {
        let start = std::time::Instant::now();
        println!("{}", f());
        eprintln!("[{name} done in {:.1}s]\n", start.elapsed().as_secs_f64());
    }
}

//! Multi-tenant bubble-fill study.
//!
//! Pass `--smoke` for the CI gate; smoke mode asserts the closed loop:
//!
//! * the planner actually schedules fill compute into the step's bubbles,
//! * the primary step stretches by at most the configured slack budget,
//! * cluster goodput strictly beats the naive run-after-training baseline
//!   (the same fill work appended serially after the step), and
//! * the priced report is bit-identical when the primary plan search runs
//!   with 4 workers instead of 1.

use optimus_bench::experiments::fill;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (report, study) = fill::run(smoke);
    println!("{report}");
    if smoke {
        assert!(
            study.plan.fill_compute_ns() > 0,
            "no fill compute landed in the bubbles"
        );
        assert!(
            study.plan.stretch_ns <= study.plan.slack_budget_ns,
            "fill stretched the step {} ns past the {} ns slack budget",
            study.plan.stretch_ns,
            study.plan.slack_budget_ns
        );
        assert!(
            study.report.beats_naive(),
            "bubble fill must beat the run-after-training baseline: {:.6} vs {:.6}",
            study.report.cluster_goodput(),
            study.report.naive_goodput()
        );
        assert_eq!(
            study.report.golden_text(),
            study.parallel_golden,
            "fill pricing diverged across search worker counts"
        );
        eprintln!("smoke assertions passed");
    }
}

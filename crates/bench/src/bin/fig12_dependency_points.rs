//! Regenerates the paper's fig12 experiment.

fn main() {
    let (report, _) = optimus_bench::experiments::fig12::run();
    println!("{report}");
}

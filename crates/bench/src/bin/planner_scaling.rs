//! Planner-search strong scaling on the Table 5 3072-GPU config.

fn main() {
    let (report, _) = optimus_bench::experiments::planner_scaling::run();
    println!("{report}");
}

//! Runs the heterogeneous-load extension study.

fn main() {
    let (report, _) = optimus_bench::experiments::extension_hetero::run();
    println!("{report}");
}

//! Adversarial chaos search with shrinking counterexamples.
//!
//! Pass `--smoke` for the CI configuration (small search budget); smoke
//! mode asserts the closed loop:
//!
//! * the search finds the planted counterexample classes on its own (a
//!   worst offender with lint violations and real regret),
//! * shrinking strictly reduces every minted counterexample's perturbation
//!   size while its predicate keeps holding, and
//! * each shrunk form still reproduces when replayed from its fixture.
//!
//! Pass `--mint` to (re)write the minimized fixtures into
//! `tests/golden/chaos/`, where the `chaos` integration test replays them.

use std::path::Path;

use optimus_bench::experiments::chaos;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mint = std::env::args().any(|a| a == "--mint");
    let (report, study) = chaos::run(smoke);
    println!("{report}");

    if mint {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/chaos");
        for path in chaos::write_fixtures(&study, &dir) {
            println!("wrote {}", path.display());
        }
    }

    if smoke {
        let worst = study
            .findings
            .worst()
            .expect("search found nothing above a zero score");
        assert!(
            worst.score.lint_errors > 0,
            "search missed the planted lint counterexamples: {:?}",
            worst.score
        );
        assert!(
            worst.score.regret_ns >= chaos::regret_floor(study.baseline_ns),
            "search missed the planted regret counterexamples: {:?}",
            worst.score
        );
        assert_eq!(
            worst.score.ledger_violations, 0,
            "the recovery ledger should be exact on every probe: {:?}",
            worst.ledger_notes
        );
        for m in &study.mints {
            assert!(
                m.shrink.shrunk.perturbation.size() < m.shrink.original.perturbation.size(),
                "{}: shrinking must strictly reduce size ({} -> {})",
                m.fixture.name,
                m.shrink.original.perturbation.size(),
                m.shrink.shrunk.perturbation.size()
            );
            assert!(
                m.predicate.holds(&m.shrink.shrunk),
                "{}: shrunk form no longer reproduces",
                m.fixture.name
            );
        }
        eprintln!("smoke assertions passed");
    }
}

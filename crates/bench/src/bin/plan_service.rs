//! Plan-service benchmark: cache hits vs cold search, warm-started search
//! pruning, incremental reuse, and sustained what-if query throughput.
//!
//! `--smoke` is the CI gate: the cache hit must beat the cold search by
//! more than 20x while staying bit-identical; the warm-started search must
//! sweep
//! strictly fewer work items *and* candidates than the cold sweep (the
//! lower bound must really prune) and return the identical winner; and the
//! zero-search incremental reuse must equal a full re-plan on a
//! degraded-link delta. `--write` regenerates `BENCH_plansvc.json` at the
//! repo root.

use optimus_bench::experiments::plansvc;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let write = std::env::args().any(|a| a == "--write");
    let (report, study) = plansvc::run(smoke);
    println!("{report}");

    // Identity invariants hold in every mode — the service never serves an
    // answer a cold engine run would not produce.
    assert!(study.hit_identical, "cache hit diverged from a fresh run");
    assert!(
        study.warm.identical,
        "warm-started answer diverged from cold"
    );
    assert!(
        study.inc_identical,
        "incremental reuse diverged from full re-plan"
    );
    assert_eq!(
        study.inc_evaluated, 0,
        "incremental reuse must do zero search"
    );

    if smoke {
        assert!(
            study.hit_speedup > plansvc::SMOKE_HIT_SPEEDUP,
            "cache hit must beat cold search by >{:.0}x, got {:.1}x \
             ({:.2} ms cold vs {:.1} us hit)",
            plansvc::SMOKE_HIT_SPEEDUP,
            study.hit_speedup,
            study.cold_ms,
            study.hit_us
        );
        assert!(
            study.warm.warm_items < study.warm.cold_items,
            "warm start must sweep strictly fewer work items than cold \
             ({} vs {})",
            study.warm.warm_items,
            study.warm.cold_items
        );
        assert!(
            study.warm.pruned >= 1,
            "warm start must prune at least one candidate, pruned {} of {}",
            study.warm.pruned,
            study.warm.candidates
        );
        assert!(
            study.batch_all_hits,
            "warmed batch must be served from cache"
        );
        eprintln!("smoke assertions passed");
    }
    if write {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plansvc.json");
        std::fs::write(path, study.to_json()).expect("write BENCH_plansvc.json");
        eprintln!("wrote {path}");
    }
}

//! Fleet what-if benchmark: MTBF calibration round trip, Young/Daly vs
//! exact checkpoint-interval solve for both placement policies, and the
//! goodput frontier over cluster size × MTBF × policy × elastic mode.
//!
//! `--smoke` is the CI gate: the calibrated fleet MTBF must land near the
//! planted truth; the exact interval must beat half and double itself (a
//! local-optimality check independent of the solver's own search); bubble
//! placement must beat critical-path at fleet level; Young/Daly must
//! diverge under bubble packing and stay tight under critical-path writes;
//! and the whole report must be byte-identical across worker counts.
//! `--write` regenerates `BENCH_fleet.json` at the repo root.

use optimus_bench::experiments::fleet;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let write = std::env::args().any(|a| a == "--write");
    let (report, study) = fleet::run(smoke);
    println!("{report}");

    // Determinism and solver-ordering invariants hold in every mode.
    assert!(
        study.worker_invariant,
        "worker count leaked into the report"
    );
    for s in [&study.bubble, &study.critical] {
        assert!(
            s.exact_goodput >= s.young_daly_goodput && s.exact_goodput >= s.self_consistent_goodput,
            "{}: exact optimum {} below a closed-form seed (yd {}, self {})",
            s.policy.label(),
            s.exact_goodput,
            s.young_daly_goodput,
            s.self_consistent_goodput
        );
    }
    for p in &study.optimality {
        assert!(
            p.exact_goodput >= p.half_goodput && p.exact_goodput >= p.double_goodput,
            "{}: exact interval loses to half ({} vs {}) or double ({} vs {})",
            p.policy.label(),
            p.exact_goodput,
            p.half_goodput,
            p.exact_goodput,
            p.double_goodput
        );
    }

    if smoke {
        assert!(
            study.mtbf_rel_err < 0.2,
            "calibrated fleet MTBF off by {:.1}% (>20%) over {} events",
            study.mtbf_rel_err * 100.0,
            study.calibration_events
        );
        assert!(
            study.bubble.exact_goodput > study.critical.exact_goodput,
            "bubble placement must beat critical-path at fleet level \
             ({:.4} vs {:.4})",
            study.bubble.exact_goodput,
            study.critical.exact_goodput
        );
        // The headline: Young/Daly calibrated on the full write diverges
        // once the write packs into bubbles, but stays tight when the
        // write really rides the critical path.
        assert!(
            study.bubble.young_daly_k > 5 * study.bubble.exact_k,
            "bubble packing should break Young/Daly: yd k={} vs exact k={}",
            study.bubble.young_daly_k,
            study.bubble.exact_k
        );
        assert!(
            study.bubble.gap_pct > study.critical.gap_pct,
            "Young/Daly gap must be wider under bubble packing \
             ({:.2}% vs {:.2}%)",
            study.bubble.gap_pct,
            study.critical.gap_pct
        );
        // Frontier sanity: bubble beats critical-path cell-for-cell.
        for c in &study.report.frontier {
            if c.policy == optimus_recovery::PlacementPolicy::CriticalPath {
                let twin = study
                    .report
                    .frontier
                    .iter()
                    .find(|b| {
                        b.policy == optimus_recovery::PlacementPolicy::Bubble
                            && b.devices == c.devices
                            && b.mtbf_pct == c.mtbf_pct
                            && b.mode == c.mode
                    })
                    .expect("bubble twin cell");
                assert!(
                    twin.summary.goodput_mean > c.summary.goodput_mean,
                    "cell ({}, {}%, {:?}): bubble {:.4} <= critical {:.4}",
                    c.devices,
                    c.mtbf_pct,
                    c.mode,
                    twin.summary.goodput_mean,
                    c.summary.goodput_mean
                );
            }
        }
        eprintln!("smoke assertions passed");
    }
    if write {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
        std::fs::write(path, study.to_json()).expect("write BENCH_fleet.json");
        eprintln!("wrote {path}");
    }
}

//! Regenerates the paper's fig17 experiment.

fn main() {
    let (report, _) = optimus_bench::experiments::fig17::run();
    println!("{report}");
}

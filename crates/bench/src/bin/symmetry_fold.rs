//! Symmetry-folding scaling sweep (512 → 3072 → 8192 GPUs).
//!
//! `--smoke` is the CI gate, pinned to the paper's 3072-GPU operating
//! point: the certificate-driven folded engine must deliver a >5×
//! simulation speedup over the full engine while staying bit-identical
//! (spans and makespan), and even the one-shot path — certify once, then
//! simulate folded — must beat a single full simulation outright. `--write`
//! regenerates `BENCH_symmetry.json` at the repo root from a full
//! (non-smoke) sweep.

use optimus_bench::experiments::symmetry;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let write = std::env::args().any(|a| a == "--write");
    let (report, study) = symmetry::run(smoke);
    println!("{report}");

    for p in &study.points {
        assert!(
            p.identical,
            "folded result diverged from full simulation at {} GPUs",
            p.gpus
        );
        assert!(p.folded, "clean grid must fold at {} GPUs", p.gpus);
        assert!(
            p.certify_ms + p.folded_ms < p.full_ms,
            "one-shot certify+folded ({:.2}ms + {:.2}ms) must beat one full \
             simulation ({:.2}ms) at {} GPUs",
            p.certify_ms,
            p.folded_ms,
            p.full_ms,
            p.gpus
        );
    }
    if smoke {
        let p = study.smoke_point();
        assert!(
            p.speedup > symmetry::SMOKE_SPEEDUP,
            "folded engine must beat full simulation by >{:.0}x at {} GPUs, got {:.2}x",
            symmetry::SMOKE_SPEEDUP,
            symmetry::SMOKE_GPUS,
            p.speedup
        );
        eprintln!("smoke assertions passed");
    }
    if write {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_symmetry.json");
        std::fs::write(path, study.to_json()).expect("write BENCH_symmetry.json");
        eprintln!("wrote {path}");
    }
}

//! Regenerates the paper's fig3 experiment.

fn main() {
    let (report, _) = optimus_bench::experiments::fig3::run();
    println!("{report}");
}

//! Regenerates the paper's table5 experiment.

fn main() {
    let (report, _) = optimus_bench::experiments::table5::run();
    println!("{report}");
}

//! Regenerates the paper's table4 experiment.

fn main() {
    let (report, _) = optimus_bench::experiments::table4::run();
    println!("{report}");
}

//! Calibration closed-loop + fidelity sweep.
//!
//! Pass `--smoke` to run only two seeds — the CI configuration. In smoke
//! mode the bin also asserts the ISSUE acceptance criteria: every fitted
//! parameter recovers within 2% of the perturbed truth, and the calibrated
//! model's makespan error is strictly lower than the uncalibrated default's.

use optimus_bench::experiments::calibrate_fidelity;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (report, rows) = calibrate_fidelity::run(smoke);
    println!("{report}");
    if smoke {
        for r in &rows {
            assert!(
                r.max_param_err <= 0.02,
                "seed {}: {} recovered with {:.3}% error (> 2%)",
                r.seed,
                r.worst_param,
                r.max_param_err * 100.0
            );
            assert!(
                r.cal_makespan_err < r.base_makespan_err,
                "seed {}: calibrated makespan error {:.4} not below uncalibrated {:.4}",
                r.seed,
                r.cal_makespan_err,
                r.base_makespan_err
            );
        }
        eprintln!("smoke assertions passed ({} seeds)", rows.len());
    }
}

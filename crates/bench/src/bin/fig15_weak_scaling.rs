//! Regenerates the paper's fig15 experiment.

fn main() {
    let (report, _) = optimus_bench::experiments::fig15::run();
    println!("{report}");
}

//! Benchmark harness: regenerates every table and figure of the Optimus
//! paper's evaluation against the simulated substrate.
//!
//! Each experiment lives in [`experiments`] and is exposed as a standalone
//! binary (`cargo run -p optimus-bench --release --bin table5_strong_scaling`)
//! plus the aggregate `run_all` binary that emits an EXPERIMENTS.md-ready
//! report.

#![forbid(unsafe_code)]

pub mod experiments;

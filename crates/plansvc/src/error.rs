//! Plan-service error type.

use optimus_core::OptimusError;

/// Everything that can go wrong serving a plan query.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanSvcError {
    /// Cache directory / index / entry I-O or parse failure.
    Cache(String),
    /// Delta could not be applied to the base configuration.
    Delta(String),
    /// The planning engine failed under the query's configuration.
    Engine(String),
    /// A reuse proof failed: the incremental answer disagrees with the
    /// ground truth (lint errors on the reused schedule, or a cross-check
    /// full search that does not reproduce it). This is a service bug, not
    /// a user error — the service refuses to serve the unproven plan.
    ProofFailed(String),
}

impl std::fmt::Display for PlanSvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanSvcError::Cache(m) => write!(f, "plan cache: {m}"),
            PlanSvcError::Delta(m) => write!(f, "plan delta: {m}"),
            PlanSvcError::Engine(m) => write!(f, "planning engine: {m}"),
            PlanSvcError::ProofFailed(m) => write!(f, "reuse proof failed: {m}"),
        }
    }
}

impl std::error::Error for PlanSvcError {}

impl From<OptimusError> for PlanSvcError {
    fn from(e: OptimusError) -> PlanSvcError {
        PlanSvcError::Engine(e.to_string())
    }
}

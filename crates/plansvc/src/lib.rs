//! optimus-plansvc — a plan *service* over the Optimus planning engine:
//! content-addressed plan caching, warm-started search, and incremental
//! re-planning.
//!
//! The paper frames schedule computation as "a one-time cost" (§4.2): a
//! production deployment plans offline and ships the schedule to the
//! training job. At fleet scale that one-time cost is paid many times —
//! per model revision, per cluster slice, per data-mixture refresh, and
//! again on every fault or elastic resize. This crate turns the engine
//! into a service that amortises those costs without ever trading away
//! the engine's determinism:
//!
//! 1. **Content-addressed cache** ([`cache`]) — plans are keyed by a
//!    [`PlanKey`] of canonical content fingerprints (cluster topology,
//!    model + plan-affecting config, trace distribution) and stored as
//!    [`SavedSchedule`](optimus_core::SavedSchedule) v2 documents. Every
//!    hit is re-verified — workload validation plus fingerprint equality —
//!    so a stale or corrupted entry can never serve a wrong plan; it
//!    simply degrades to a miss.
//! 2. **Warm-started search** ([`service`]) — on a miss the service seeds
//!    [`run_optimus_seeded`](optimus_core::run_optimus_seeded) with the
//!    nearest cached winners (same model fingerprint, then closest
//!    cluster size), so the engine sweeps the winners' neighbourhood
//!    first and prunes candidates a dependency-window lower bound proves
//!    strictly worse. The final answer is bit-identical to a cold search.
//! 3. **Incremental re-planning** ([`delta`]) — for the deltas fault and
//!    elasticity handling generate (a degraded link class, DP width ±1, a
//!    data-mixture reseed), the service re-plans only what the delta can
//!    actually affect. A delta on a link class the planner provably never
//!    reads ([`ClusterTopology::planning_reads`]
//!    (optimus_cluster::ClusterTopology::planning_reads) is `false`)
//!    reuses the cached plan with *zero* search, re-proved by the lint
//!    analyzer and — in cross-check mode — by a full search asserted
//!    bit-equal.
//!
//! The batched query API ([`PlanService::query_batch`]) serves what-if
//! queries over the deterministic worker pool and reports per-query
//! [`ServiceStats`] (hit/miss/warm/incremental, latency, work counts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod delta;
pub mod error;
pub mod key;
pub mod service;

pub use cache::{CacheStats, PlanCache};
pub use delta::PlanDelta;
pub use error::PlanSvcError;
pub use key::{model_fingerprint, trace_fingerprint, PlanKey};
pub use service::{PlanAnswer, PlanService, QueryKind, ServiceStats};

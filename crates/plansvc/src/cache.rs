//! Content-addressed plan cache.
//!
//! Two tiers, one invariant. The tiers: a deterministic in-memory LRU of
//! decoded schedules, and an optional on-disk store of
//! [`SavedSchedule`](optimus_core::SavedSchedule) v2 documents plus an
//! `index.json` manifest (so a service restart re-discovers entries
//! without decoding every file). The invariant: **a hit is never trusted,
//! it is re-verified** — the stored fingerprints must equal the queried
//! [`PlanKey`] and the schedule must pass
//! [`validate_for`](optimus_core::SavedSchedule::validate_for) against the
//! querying workload. An entry that fails either check is dropped and the
//! lookup degrades to a miss; a stale or corrupted cache can cost a
//! search, never a wrong plan.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use optimus_json::Json;
use optimus_modeling::Workload;
use optimus_parallel::ParallelPlan;

use optimus_core::SavedSchedule;

use crate::error::PlanSvcError;
use crate::key::PlanKey;

/// One cached plan with its content address.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The content address the plan was stored under.
    pub key: PlanKey,
    /// The decoded schedule.
    pub saved: Arc<SavedSchedule>,
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Verified hits served (memory or disk).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Hits decoded from the disk tier into the LRU.
    pub disk_promotions: u64,
    /// Entries found but rejected by re-verification (and dropped).
    pub rejected: u64,
    /// Entries evicted from the in-memory tier.
    pub evicted: u64,
}

fn cache_err(what: &str, e: impl std::fmt::Display) -> PlanSvcError {
    PlanSvcError::Cache(format!("{what}: {e}"))
}

/// Content-addressed plan store (in-memory LRU over an optional disk tier).
#[derive(Debug)]
pub struct PlanCache {
    dir: Option<PathBuf>,
    capacity: usize,
    /// In-memory tier, keyed by entry id.
    entries: BTreeMap<String, CachedPlan>,
    /// Recency order over `entries` — least-recent at the front.
    lru: VecDeque<String>,
    /// Every known entry id (including disk-only ones) and its key.
    index: BTreeMap<String, PlanKey>,
    stats: CacheStats,
}

impl PlanCache {
    /// A memory-only cache holding at most `capacity` decoded plans.
    pub fn in_memory(capacity: usize) -> PlanCache {
        PlanCache {
            dir: None,
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            lru: VecDeque::new(),
            index: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Opens (creating if needed) a disk-backed cache at `dir` with an
    /// in-memory LRU of `capacity` decoded plans. Existing entries are
    /// discovered through `index.json`; files are decoded lazily on first
    /// hit.
    pub fn open(dir: &Path, capacity: usize) -> Result<PlanCache, PlanSvcError> {
        std::fs::create_dir_all(dir).map_err(|e| cache_err("create dir", e))?;
        let mut cache = PlanCache::in_memory(capacity);
        cache.dir = Some(dir.to_path_buf());
        let index_path = dir.join("index.json");
        if index_path.exists() {
            let text =
                std::fs::read_to_string(&index_path).map_err(|e| cache_err("read index", e))?;
            let doc = Json::parse(&text).map_err(|e| cache_err("parse index", e))?;
            for entry in doc
                .field("entries")
                .and_then(|e| e.as_arr())
                .map_err(|e| cache_err("parse index", e))?
            {
                let id = entry
                    .field("id")
                    .and_then(|v| v.as_str())
                    .map_err(|e| cache_err("parse index", e))?
                    .to_string();
                let fp = |name: &str| -> Result<optimus_cluster::Fingerprint, PlanSvcError> {
                    let hex = entry
                        .field(name)
                        .and_then(|v| v.as_str())
                        .map_err(|e| cache_err("parse index", e))?;
                    optimus_cluster::Fingerprint::parse(hex)
                        .ok_or_else(|| cache_err("parse index", format!("bad fingerprint `{hex}`")))
                };
                let key = PlanKey {
                    topo: fp("topo")?,
                    model: fp("model")?,
                    trace: fp("trace")?,
                };
                cache.index.insert(id, key);
            }
        }
        Ok(cache)
    }

    /// Number of known entries (in-memory and disk-only).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache knows no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Observability counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Stores a plan under `key`, stamping the key's fingerprints into the
    /// document. Replaces any previous entry for the same key.
    pub fn insert(
        &mut self,
        key: PlanKey,
        saved: SavedSchedule,
    ) -> Result<Arc<SavedSchedule>, PlanSvcError> {
        let saved = Arc::new(saved.with_fingerprints(
            key.topo.to_hex(),
            key.model.to_hex(),
            key.trace.to_hex(),
        ));
        let id = key.id();
        if let Some(dir) = &self.dir {
            let mut buf = Vec::new();
            saved
                .save(&mut buf)
                .map_err(|e| cache_err("encode entry", e))?;
            std::fs::write(dir.join(format!("{id}.json")), &buf)
                .map_err(|e| cache_err("write entry", e))?;
        }
        self.index.insert(id.clone(), key);
        self.touch(
            id,
            CachedPlan {
                key,
                saved: Arc::clone(&saved),
            },
        );
        if self.dir.is_some() {
            self.write_index()?;
        }
        Ok(saved)
    }

    /// Looks up `key`, re-verifying any candidate entry against the
    /// querying workload and LLM plan. Failed verification drops the entry
    /// and reports a miss.
    pub fn lookup(
        &mut self,
        key: &PlanKey,
        w: &Workload,
        llm_plan: &ParallelPlan,
    ) -> Option<Arc<SavedSchedule>> {
        let id = key.id();
        let (cached, from_disk) = match self.entries.get(&id) {
            Some(c) => (c.clone(), false),
            None => match self.load_from_disk(&id) {
                Some(c) => (c, true),
                None => {
                    self.stats.misses += 1;
                    return None;
                }
            },
        };
        if !Self::verify(&cached, key, w, llm_plan) {
            self.remove(&id);
            self.stats.rejected += 1;
            self.stats.misses += 1;
            return None;
        }
        if from_disk {
            self.stats.disk_promotions += 1;
        }
        self.touch(id, cached.clone());
        self.stats.hits += 1;
        Some(cached.saved)
    }

    /// Every decoded (in-memory) entry, in deterministic id order. Used by
    /// the service to pick warm-start hints; disk-only entries are not
    /// decoded for hinting.
    pub fn resident(&self) -> impl Iterator<Item = &CachedPlan> {
        self.entries.values()
    }

    fn verify(cached: &CachedPlan, key: &PlanKey, w: &Workload, llm_plan: &ParallelPlan) -> bool {
        cached.saved.topology_fp == key.topo.to_hex()
            && cached.saved.model_fp == key.model.to_hex()
            && cached.saved.trace_fp == key.trace.to_hex()
            && cached.saved.validate_for(w, llm_plan).is_ok()
    }

    fn load_from_disk(&mut self, id: &str) -> Option<CachedPlan> {
        let dir = self.dir.as_ref()?;
        let key = *self.index.get(id)?;
        let file = std::fs::File::open(dir.join(format!("{id}.json"))).ok()?;
        let saved = SavedSchedule::load(file).ok()?;
        Some(CachedPlan {
            key,
            saved: Arc::new(saved),
        })
    }

    fn touch(&mut self, id: String, plan: CachedPlan) {
        self.lru.retain(|x| x != &id);
        self.lru.push_back(id.clone());
        self.entries.insert(id, plan);
        while self.entries.len() > self.capacity {
            if let Some(victim) = self.lru.pop_front() {
                self.entries.remove(&victim);
                self.stats.evicted += 1;
                // Disk-backed entries stay in the index; memory-only
                // entries are gone for good.
                if self.dir.is_none() {
                    self.index.remove(&victim);
                }
            }
        }
    }

    fn remove(&mut self, id: &str) {
        self.entries.remove(id);
        self.lru.retain(|x| x != id);
        self.index.remove(id);
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_file(dir.join(format!("{id}.json")));
            let _ = self.write_index();
        }
    }

    fn write_index(&self) -> Result<(), PlanSvcError> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        let entries: Vec<Json> = self
            .index
            .iter()
            .map(|(id, key)| {
                Json::obj(vec![
                    ("id", Json::from(id.as_str())),
                    ("topo", Json::from(key.topo.to_hex().as_str())),
                    ("model", Json::from(key.model.to_hex().as_str())),
                    ("trace", Json::from(key.trace.to_hex().as_str())),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("version", Json::from(1u32)),
            ("entries", Json::Arr(entries)),
        ]);
        std::fs::write(dir.join("index.json"), doc.to_pretty())
            .map_err(|e| cache_err("write index", e))
    }
}

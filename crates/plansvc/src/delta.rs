//! Plan deltas: the re-planning triggers fault and elasticity handling
//! generate, expressed as first-class values the service can reason about.
//!
//! Each delta rewrites the base `(Workload, OptimusConfig, SystemContext)`
//! triple into the what-if configuration to plan for. The service exploits
//! the delta's *structure*: a [`PlanDelta::DegradedLink`] on a class the
//! planner provably never reads
//! ([`ClusterTopology::planning_reads`] is `false`) cannot change any
//! plan, so the cached baseline is reused with zero search.

use optimus_baselines::common::SystemContext;
use optimus_cluster::{ClusterTopology, LinkClass};
use optimus_core::OptimusConfig;
use optimus_faults::{FaultModel, FaultScenario};
use optimus_modeling::{TraceConfig, Workload};
use optimus_parallel::ParallelPlan;

use crate::error::PlanSvcError;

/// One what-if query against the plan service.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanDelta {
    /// The base configuration, unchanged.
    Baseline,
    /// A degraded link class — NVLink lane failures, RDMA congestion, or a
    /// throttled checkpoint fabric (same parameters as
    /// [`FaultScenario::DegradedLink`]).
    DegradedLink {
        /// The affected link class.
        class: LinkClass,
        /// Remaining bandwidth fraction in `(0, 1]`.
        bandwidth_factor: f64,
        /// Latency multiplier, `>= 1`.
        latency_factor: f64,
    },
    /// An elastic resize to a new data-parallel width: the LLM plan's `dp`
    /// is replaced and the cluster shrinks/grows to `dp·pp·tp` GPUs.
    DpWidth {
        /// The new data-parallel width, `>= 1`.
        dp: u32,
    },
    /// A data-mixture refresh: per-microbatch encoder load scales are
    /// re-sampled from `trace` with `seed`.
    TraceSeed {
        /// The heterogeneous-data distribution.
        trace: TraceConfig,
        /// Sampling seed.
        seed: u64,
    },
}

impl PlanDelta {
    /// Short human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            PlanDelta::Baseline => "baseline".into(),
            PlanDelta::DegradedLink { class, .. } => format!("degraded-{}", class.label()),
            PlanDelta::DpWidth { dp } => format!("dp-width-{dp}"),
            PlanDelta::TraceSeed { seed, .. } => format!("trace-seed-{seed}"),
        }
    }

    /// Lifts a fault-injection scenario into a plan delta, when the
    /// scenario calls for re-planning at all. Scenarios the planner
    /// handles through cost scales or margins (stragglers, jitter, stalls)
    /// and point-in-time events (fail-stop) return `None`.
    pub fn from_scenario(s: &FaultScenario) -> Option<PlanDelta> {
        match *s {
            FaultScenario::DegradedLink {
                class,
                bandwidth_factor,
                latency_factor,
            } => Some(PlanDelta::DegradedLink {
                class,
                bandwidth_factor,
                latency_factor,
            }),
            _ => None,
        }
    }

    /// Whether this delta can change what the planner computes for the
    /// given base context. `false` is a *proof of reusability*: the delta
    /// only touches state the planning pipeline never reads, so the cached
    /// baseline plan is the degraded plan.
    pub fn planning_visible(&self, ctx: &SystemContext) -> bool {
        match self {
            PlanDelta::Baseline => false,
            PlanDelta::DegradedLink { class, .. } => ctx.topo.planning_reads(*class),
            PlanDelta::DpWidth { .. } | PlanDelta::TraceSeed { .. } => true,
        }
    }

    /// Rewrites the base triple into the configuration this delta asks
    /// the planner about.
    pub fn apply(
        &self,
        w: &Workload,
        cfg: &OptimusConfig,
        ctx: &SystemContext,
    ) -> Result<(Workload, OptimusConfig, SystemContext), PlanSvcError> {
        match self {
            PlanDelta::Baseline => Ok((w.clone(), cfg.clone(), ctx.clone())),
            PlanDelta::DegradedLink {
                class,
                bandwidth_factor,
                latency_factor,
            } => {
                // Route through the faults crate so the degradation prices
                // exactly like adaptive re-planning does.
                let model = FaultModel::new(0)
                    .with(FaultScenario::DegradedLink {
                        class: *class,
                        bandwidth_factor: *bandwidth_factor,
                        latency_factor: *latency_factor,
                    })
                    .map_err(|e| PlanSvcError::Delta(e.to_string()))?;
                let topo = model.degrade_topology(&ctx.topo);
                Ok((w.clone(), cfg.clone(), ctx.with_topology(topo)))
            }
            PlanDelta::DpWidth { dp } => {
                let plan = cfg.llm_plan;
                let new_plan = ParallelPlan::with_vpp(*dp, plan.pp, plan.tp, plan.vpp)
                    .map_err(|e| PlanSvcError::Delta(e.to_string()))?;
                let num_gpus = dp * plan.pp * plan.tp;
                let topo = resize_topology(&ctx.topo, num_gpus)?;
                let mut cfg2 = cfg.clone();
                cfg2.llm_plan = new_plan;
                // Heterogeneous scales are per-microbatch; a DP resize
                // changes the microbatch count, so stale scales must not
                // leak into the resized problem.
                if let Some(scales) = &cfg2.mb_scales {
                    let n_mb = w.microbatches(*dp).ok_or_else(|| {
                        PlanSvcError::Delta(format!(
                            "batch {} not divisible by dp {dp}",
                            w.global_batch
                        ))
                    })?;
                    if scales.len() != n_mb as usize {
                        return Err(PlanSvcError::Delta(format!(
                            "mb_scales has {} entries but dp {dp} implies {n_mb} microbatches; \
                             use PlanDelta::TraceSeed to re-sample",
                            scales.len()
                        )));
                    }
                }
                let mut w2 = w.clone();
                w2.num_gpus = num_gpus;
                Ok((w2, cfg2, ctx.with_topology(topo)))
            }
            PlanDelta::TraceSeed { trace, seed } => {
                let n_mb = w.microbatches(cfg.llm_plan.dp).ok_or_else(|| {
                    PlanSvcError::Delta(format!(
                        "batch {} not divisible by dp {}",
                        w.global_batch, cfg.llm_plan.dp
                    ))
                })?;
                let scales = trace
                    .microbatch_scales(n_mb, w.microbatch_size, *seed)
                    .map_err(PlanSvcError::Delta)?;
                let mut cfg2 = cfg.clone();
                cfg2.mb_scales = Some(scales);
                Ok((w.clone(), cfg2, ctx.clone()))
            }
        }
    }
}

/// Rebuilds a topology for a new GPU count, preserving the node shape and
/// link profiles of the base cluster.
fn resize_topology(topo: &ClusterTopology, num_gpus: u32) -> Result<ClusterTopology, PlanSvcError> {
    if num_gpus == 0 {
        return Err(PlanSvcError::Delta("resize to zero GPUs".into()));
    }
    let per_node = topo.gpus_per_node.max(1);
    let mut out = topo.clone();
    if num_gpus <= per_node {
        out.num_nodes = 1;
        out.gpus_per_node = num_gpus;
    } else {
        if !num_gpus.is_multiple_of(per_node) {
            return Err(PlanSvcError::Delta(format!(
                "{num_gpus} GPUs not a multiple of the {per_node}-GPU node size"
            )));
        }
        out.num_nodes = num_gpus / per_node;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_modeling::MllmConfig;

    fn base() -> (Workload, OptimusConfig, SystemContext) {
        let w = Workload::new(MllmConfig::small(), 8, 16, 1);
        let ctx = SystemContext::hopper(8).unwrap();
        let cfg = OptimusConfig::new(ParallelPlan::new(2, 2, 2).unwrap());
        (w, cfg, ctx)
    }

    #[test]
    fn storage_degradation_is_planning_invisible() {
        let (w, cfg, ctx) = base();
        let d = PlanDelta::DegradedLink {
            class: LinkClass::Storage,
            bandwidth_factor: 0.25,
            latency_factor: 4.0,
        };
        assert!(!d.planning_visible(&ctx));
        let (_, _, ctx2) = d.apply(&w, &cfg, &ctx).unwrap();
        // The topology really did change — only the planner's view of it
        // is unchanged.
        assert_ne!(ctx2.topo.storage, ctx.topo.storage);
        assert_eq!(ctx2.topo.nvlink, ctx.topo.nvlink);
    }

    #[test]
    fn nvlink_degradation_is_planning_visible() {
        let (_, _, ctx) = base();
        let d = PlanDelta::DegradedLink {
            class: LinkClass::NvLink,
            bandwidth_factor: 0.5,
            latency_factor: 1.0,
        };
        assert!(d.planning_visible(&ctx));
    }

    #[test]
    fn dp_width_resizes_cluster_and_plan() {
        let (w, cfg, ctx) = base();
        let (w2, cfg2, ctx2) = PlanDelta::DpWidth { dp: 1 }.apply(&w, &cfg, &ctx).unwrap();
        assert_eq!(cfg2.llm_plan.dp, 1);
        assert_eq!(w2.num_gpus, 4);
        assert_eq!(ctx2.topo.num_nodes * ctx2.topo.gpus_per_node, 4);
        assert!(PlanDelta::DpWidth { dp: 0 }.apply(&w, &cfg, &ctx).is_err());
    }

    #[test]
    fn trace_seed_sets_scales_deterministically() {
        let (w, cfg, ctx) = base();
        let d = PlanDelta::TraceSeed {
            trace: TraceConfig::llava_style(),
            seed: 17,
        };
        let (_, a, _) = d.apply(&w, &cfg, &ctx).unwrap();
        let (_, b, _) = d.apply(&w, &cfg, &ctx).unwrap();
        assert_eq!(a.mb_scales, b.mb_scales);
        assert_eq!(
            a.mb_scales.as_ref().map(Vec::len),
            Some(w.microbatches(cfg.llm_plan.dp).unwrap() as usize)
        );
    }

    #[test]
    fn only_link_scenarios_lift_to_deltas() {
        let link = FaultScenario::DegradedLink {
            class: LinkClass::Rdma,
            bandwidth_factor: 0.5,
            latency_factor: 2.0,
        };
        assert!(PlanDelta::from_scenario(&link).is_some());
        let jitter = FaultScenario::KernelJitter { eps: 0.05 };
        assert!(PlanDelta::from_scenario(&jitter).is_none());
    }
}

//! The plan service: batched what-if queries over the cache and engine.
//!
//! Query resolution ladder, cheapest rung first:
//!
//! 1. **Hit** — the exact content address is cached; the verified entry is
//!    served with zero planning work.
//! 2. **Incremental** — the delta is provably planning-invisible (a
//!    degraded link class the planner never reads), so the cached
//!    *baseline* entry is re-addressed to the delta's key. The reuse is
//!    re-proved by the lint analyzer against the delta's context, and — in
//!    cross-check mode — by a full cold search asserted bit-equal.
//! 3. **Warm** — a cached winner for the same model exists; the search is
//!    seeded with it and prunes bound-dominated candidates. Bit-identical
//!    to a cold search by construction.
//! 4. **Miss** — nothing reusable; full cold search.
//!
//! Whatever the rung, the answer is the answer a cold
//! [`run_optimus`](optimus_core::run_optimus) would give.

use std::sync::Arc;
use std::time::Instant;

use optimus_baselines::common::SystemContext;
use optimus_core::{
    lint_run, optimus_memory, run_optimus_hinted, run_optimus_seeded, LlmProfile, OptimusConfig,
    OptimusRun, SavedSchedule,
};
use optimus_modeling::Workload;
use optimus_parallel::{par_map, ColocationLayout, ParallelPlan};

use crate::cache::PlanCache;
use crate::delta::PlanDelta;
use crate::error::PlanSvcError;
use crate::key::{trace_fingerprint, PlanKey};

/// How a query was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Served from the cache (verified).
    Hit,
    /// Full cold search.
    Miss,
    /// Warm-started search seeded from a cached neighbour.
    Warm,
    /// Cached baseline reused under a planning-invisible delta.
    Incremental,
}

impl QueryKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Hit => "hit",
            QueryKind::Miss => "miss",
            QueryKind::Warm => "warm",
            QueryKind::Incremental => "incremental",
        }
    }
}

/// Per-query accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Resolution rung.
    pub kind: QueryKind,
    /// Wall-clock service latency for this query.
    pub latency_ns: u64,
    /// Search work items evaluated (0 when no search ran).
    pub evaluated: usize,
    /// Encoder-plan candidates in scope for the search (0 when no search
    /// ran).
    pub candidates: usize,
    /// Candidates pruned by the warm-start lower bound.
    pub pruned_by_bound: usize,
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct PlanAnswer {
    /// The delta's label.
    pub label: String,
    /// The content address the plan is cached under.
    pub key: PlanKey,
    /// The plan (a verified cache entry or a freshly captured search
    /// winner).
    pub saved: Arc<SavedSchedule>,
    /// How the query was resolved, and what it cost.
    pub stats: ServiceStats,
}

/// Aggregate resolution counters across a service's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Verified cache hits.
    pub hits: u64,
    /// Cold searches.
    pub misses: u64,
    /// Warm-started searches.
    pub warm: u64,
    /// Zero-search incremental reuses.
    pub incremental: u64,
}

/// A plan service bound to one base `(Workload, OptimusConfig,
/// SystemContext)` triple.
pub struct PlanService {
    w: Workload,
    cfg: OptimusConfig,
    ctx: SystemContext,
    cache: PlanCache,
    cross_check: bool,
    counters: ServiceCounters,
}

enum Resolution {
    Serve(Arc<SavedSchedule>, QueryKind),
    Search { hints: Vec<ParallelPlan> },
}

struct Prepared {
    label: String,
    w2: Workload,
    cfg2: OptimusConfig,
    ctx2: SystemContext,
    key: PlanKey,
    resolution: Resolution,
    prep_ns: u64,
}

impl PlanService {
    /// Builds a service with a memory-only cache of `capacity` plans.
    pub fn new(
        w: Workload,
        cfg: OptimusConfig,
        ctx: SystemContext,
        capacity: usize,
    ) -> PlanService {
        PlanService::with_cache(w, cfg, ctx, PlanCache::in_memory(capacity))
    }

    /// Builds a service over an existing (possibly disk-backed) cache.
    pub fn with_cache(
        w: Workload,
        cfg: OptimusConfig,
        ctx: SystemContext,
        cache: PlanCache,
    ) -> PlanService {
        PlanService {
            w,
            cfg,
            ctx,
            cache,
            cross_check: false,
            counters: ServiceCounters::default(),
        }
    }

    /// Enables cross-check mode: every incremental reuse is additionally
    /// proved by a full cold search asserted bit-equal. Expensive — meant
    /// for tests and audits, not production serving.
    pub fn with_cross_check(mut self, on: bool) -> PlanService {
        self.cross_check = on;
        self
    }

    /// Aggregate resolution counters.
    pub fn counters(&self) -> ServiceCounters {
        self.counters
    }

    /// The underlying cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Serves one what-if query.
    pub fn query(&mut self, delta: &PlanDelta) -> Result<PlanAnswer, PlanSvcError> {
        let mut answers = self.query_batch(std::slice::from_ref(delta), 1)?;
        Ok(answers.remove(0))
    }

    /// Serves a batch of what-if queries, fanning the searches (misses and
    /// warm starts) across `workers` threads of the deterministic worker
    /// pool — each search runs single-threaded inside its slot, so the
    /// batch is deterministic for any worker count. Queries in one batch
    /// do not observe each other's insertions; issue separate batches to
    /// reuse earlier answers.
    pub fn query_batch(
        &mut self,
        deltas: &[PlanDelta],
        workers: usize,
    ) -> Result<Vec<PlanAnswer>, PlanSvcError> {
        // Phase 1 (sequential): resolve each query against the cache.
        let mut prepared = Vec::with_capacity(deltas.len());
        for delta in deltas {
            prepared.push(self.prepare(delta)?);
        }

        // Phase 2 (parallel): run the searches. Inner searches are pinned
        // to one worker so the pool's slots are the only parallelism.
        let search_idx: Vec<usize> = prepared
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.resolution, Resolution::Search { .. }))
            .map(|(i, _)| i)
            .collect();
        let jobs: Vec<&Prepared> = search_idx.iter().map(|&i| &prepared[i]).collect();
        let pool = par_map(&jobs, workers, |_, p| {
            let Resolution::Search { hints } = &p.resolution else {
                unreachable!("phase 2 only receives search jobs");
            };
            let t0 = Instant::now();
            let mut cfg_run = p.cfg2.clone();
            cfg_run.search_workers = 1;
            let run = run_optimus_seeded(&p.w2, &cfg_run, &p.ctx2, hints);
            (run, t0.elapsed().as_nanos() as u64)
        });
        let mut runs: Vec<Option<(OptimusRun, u64)>> = Vec::with_capacity(search_idx.len());
        for (run, ns) in pool.results {
            runs.push(Some((run?, ns)));
        }

        // Phase 3 (sequential): capture winners into the cache and emit
        // answers in input order.
        let mut by_query: Vec<Option<(OptimusRun, u64)>> =
            (0..prepared.len()).map(|_| None).collect();
        for (slot, i) in search_idx.iter().enumerate() {
            by_query[*i] = runs[slot].take();
        }
        let mut answers = Vec::with_capacity(prepared.len());
        for (p, run) in prepared.into_iter().zip(by_query) {
            answers.push(self.finish(p, run)?);
        }
        Ok(answers)
    }

    fn prepare(&mut self, delta: &PlanDelta) -> Result<Prepared, PlanSvcError> {
        let t0 = Instant::now();
        let (w2, cfg2, ctx2) = delta.apply(&self.w, &self.cfg, &self.ctx)?;
        let mut key = PlanKey::for_query(&w2, &cfg2, &ctx2);
        if let PlanDelta::TraceSeed { trace, seed } = delta {
            key = key.with_trace(trace_fingerprint(trace, *seed));
        }

        // Rung 1: exact hit.
        if let Some(saved) = self.cache.lookup(&key, &w2, &cfg2.llm_plan) {
            return Ok(Prepared {
                label: delta.label(),
                w2,
                cfg2,
                ctx2,
                key,
                resolution: Resolution::Serve(saved, QueryKind::Hit),
                prep_ns: t0.elapsed().as_nanos() as u64,
            });
        }

        // Rung 2: planning-invisible link delta — reuse the baseline.
        if matches!(delta, PlanDelta::DegradedLink { .. }) && !delta.planning_visible(&self.ctx) {
            let base_key = PlanKey::for_query(&self.w, &self.cfg, &self.ctx);
            if let Some(saved) = self.cache.lookup(&base_key, &self.w, &self.cfg.llm_plan) {
                self.prove_reuse(&w2, &cfg2, &ctx2, &saved)?;
                let reused = self.cache.insert(key, (*saved).clone())?;
                return Ok(Prepared {
                    label: delta.label(),
                    w2,
                    cfg2,
                    ctx2,
                    key,
                    resolution: Resolution::Serve(reused, QueryKind::Incremental),
                    prep_ns: t0.elapsed().as_nanos() as u64,
                });
            }
        }

        // Rungs 3–4: search, warm-started when neighbours exist.
        let hints = self.pick_hints(&key, &w2);
        Ok(Prepared {
            label: delta.label(),
            w2,
            cfg2,
            ctx2,
            key,
            resolution: Resolution::Search { hints },
            prep_ns: t0.elapsed().as_nanos() as u64,
        })
    }

    fn finish(
        &mut self,
        p: Prepared,
        run: Option<(OptimusRun, u64)>,
    ) -> Result<PlanAnswer, PlanSvcError> {
        match p.resolution {
            Resolution::Serve(saved, kind) => {
                match kind {
                    QueryKind::Hit => self.counters.hits += 1,
                    QueryKind::Incremental => self.counters.incremental += 1,
                    _ => {}
                }
                Ok(PlanAnswer {
                    label: p.label,
                    key: p.key,
                    saved,
                    stats: ServiceStats {
                        kind,
                        latency_ns: p.prep_ns,
                        evaluated: 0,
                        candidates: 0,
                        pruned_by_bound: 0,
                    },
                })
            }
            Resolution::Search { .. } => {
                let (run, search_ns) = run.expect("search resolution always carries a phase-2 run");
                let kind = if run.warm.is_some() {
                    QueryKind::Warm
                } else {
                    QueryKind::Miss
                };
                match kind {
                    QueryKind::Warm => self.counters.warm += 1,
                    _ => self.counters.misses += 1,
                }
                let saved = self
                    .cache
                    .insert(p.key, SavedSchedule::capture(&run, &p.w2))?;
                Ok(PlanAnswer {
                    label: p.label,
                    key: p.key,
                    saved,
                    stats: ServiceStats {
                        kind,
                        latency_ns: p.prep_ns + search_ns,
                        evaluated: run.search.evaluated,
                        candidates: run.search.candidates,
                        pruned_by_bound: run.warm.map_or(0, |ws| ws.pruned_by_bound),
                    },
                })
            }
        }
    }

    /// Proves a planning-invisible reuse: the cached schedule must pass
    /// the full lint analyzer against the *delta's* context, and — in
    /// cross-check mode — a cold search under that context must reproduce
    /// it bit-exactly.
    fn prove_reuse(
        &self,
        w2: &Workload,
        cfg2: &OptimusConfig,
        ctx2: &SystemContext,
        saved: &SavedSchedule,
    ) -> Result<(), PlanSvcError> {
        let enc_plan = saved
            .enc_plan()
            .map_err(|e| PlanSvcError::ProofFailed(e.to_string()))?;
        let outcome = saved.to_outcome();
        let profile = LlmProfile::build_routed(
            w2,
            &cfg2.llm_plan,
            ctx2,
            cfg2.adjust_dep_points,
            cfg2.llm_schedule,
            cfg2.folded_sim,
        )?;
        let layout = ColocationLayout::new(cfg2.llm_plan, enc_plan)
            .map_err(|e| PlanSvcError::ProofFailed(e.to_string()))?;
        let memory = optimus_memory(w2, &enc_plan, &cfg2.llm_plan, profile.n_microbatches());
        let report = lint_run(
            &outcome,
            &profile,
            &layout,
            enc_plan.tp,
            &memory,
            ctx2.topo.gpu.hbm_capacity,
        );
        if report.has_errors() {
            return Err(PlanSvcError::ProofFailed(format!(
                "lint rejected reuse: {}",
                report
                    .errors()
                    .map(|d| d.summary())
                    .collect::<Vec<_>>()
                    .join("; ")
            )));
        }
        if self.cross_check {
            let run = run_optimus_hinted(w2, cfg2, ctx2, None)?;
            let fresh = SavedSchedule::capture(&run, w2).with_fingerprints(
                saved.topology_fp.clone(),
                saved.model_fp.clone(),
                saved.trace_fp.clone(),
            );
            if fresh != *saved {
                return Err(PlanSvcError::ProofFailed(
                    "cross-check search disagrees with reused baseline".into(),
                ));
            }
        }
        Ok(())
    }

    /// Picks the warm-start hints: among decoded cache entries for the same
    /// model name, prefer an identical model fingerprint, then the closest
    /// cluster size, then the smallest entry id — a total order, so the
    /// choice is deterministic. Up to two distinct nearest encoder plans
    /// are returned so the search seeds the whole winning neighbourhood.
    fn pick_hints(&self, key: &PlanKey, w2: &Workload) -> Vec<ParallelPlan> {
        let mut candidates: Vec<(bool, u32, String, ParallelPlan)> = self
            .cache
            .resident()
            .filter(|c| c.saved.model == w2.mllm.name)
            .filter_map(|c| {
                let plan = c.saved.enc_plan().ok()?;
                Some((
                    c.key.model != key.model,
                    c.saved.num_gpus.abs_diff(w2.num_gpus),
                    c.key.id(),
                    plan,
                ))
            })
            .collect();
        candidates.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
        let mut hints: Vec<ParallelPlan> = Vec::new();
        for (_, _, _, plan) in candidates {
            if !hints.contains(&plan) {
                hints.push(plan);
                if hints.len() == 2 {
                    break;
                }
            }
        }
        hints
    }
}

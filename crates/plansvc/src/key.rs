//! Content-addressed plan keys.
//!
//! A cached plan is valid for exactly the inputs the planning engine read
//! when it was computed. The key captures those inputs as three canonical
//! fingerprints:
//!
//! - **topology** — [`ClusterTopology::fingerprint`]: GPU profile, node
//!   shape, and every link class the cost model prices.
//! - **model** — [`model_fingerprint`]: the workload (model architecture,
//!   cluster size, batching) plus every *plan-affecting*
//!   [`OptimusConfig`] knob. Observability-only knobs (`search_workers`,
//!   `folded_sim`, `lint`) are deliberately excluded: they never change
//!   the chosen plan (pinned by the determinism suite), so varying them
//!   must not fragment the cache.
//! - **trace** — [`trace_fingerprint`]: the data-mixture distribution and
//!   sampling seed behind heterogeneous `mb_scales`;
//!   [`Fingerprint::ABSENT`] for uniform loads.

use optimus_baselines::common::SystemContext;
use optimus_cluster::{Fingerprint, FpHasher};
use optimus_core::{LlmScheduleKind, OptimusConfig};
use optimus_modeling::{TraceConfig, Workload};

fn schedule_label(kind: LlmScheduleKind) -> &'static str {
    match kind {
        LlmScheduleKind::OneFOneB => "1f1b",
        LlmScheduleKind::ZeroBubble => "zero-bubble",
    }
}

/// Canonical fingerprint of the workload plus every plan-affecting config
/// knob. Two queries with equal model fingerprints are guaranteed to ask
/// the engine the same question (modulo topology and trace).
pub fn model_fingerprint(w: &Workload, cfg: &OptimusConfig) -> Fingerprint {
    let mut h = FpHasher::new("plan-model/v1");
    h.fold_fp(w.fingerprint())
        .fold_u32(cfg.llm_plan.dp)
        .fold_u32(cfg.llm_plan.pp)
        .fold_u32(cfg.llm_plan.tp)
        .fold_u32(cfg.llm_plan.vpp)
        .fold_u64(cfg.max_partitions as u64)
        .fold_bool(cfg.fine_grained)
        .fold_bool(cfg.adjust_dep_points)
        .fold_bool(cfg.frozen_encoder)
        .fold_f64(cfg.bubble_margin)
        .fold_f64(cfg.bubble_slack)
        .fold_str(schedule_label(cfg.llm_schedule));
    match &cfg.mb_scales {
        None => h.fold_bool(false),
        Some(s) => h.fold_bool(true).fold_f64_slice(s),
    };
    h.finish()
}

/// Canonical fingerprint of a heterogeneous-data trace: the distribution
/// content plus the sampling seed that realises it into `mb_scales`.
pub fn trace_fingerprint(trace: &TraceConfig, seed: u64) -> Fingerprint {
    FpHasher::new("plan-trace/v1")
        .fold_fp(trace.fingerprint())
        .fold_u64(seed)
        .finish()
}

/// The content address of one cached plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanKey {
    /// Cluster-topology fingerprint.
    pub topo: Fingerprint,
    /// Workload + plan-affecting-config fingerprint.
    pub model: Fingerprint,
    /// Trace fingerprint ([`Fingerprint::ABSENT`] for uniform loads).
    pub trace: Fingerprint,
}

impl PlanKey {
    /// Builds the key for a query, with no trace component.
    pub fn for_query(w: &Workload, cfg: &OptimusConfig, ctx: &SystemContext) -> PlanKey {
        PlanKey {
            topo: ctx.topo.fingerprint(),
            model: model_fingerprint(w, cfg),
            trace: Fingerprint::ABSENT,
        }
    }

    /// Attaches a trace fingerprint.
    pub fn with_trace(mut self, trace: Fingerprint) -> PlanKey {
        self.trace = trace;
        self
    }

    /// Stable cache-entry identifier (file stem on disk): the three
    /// fingerprints folded into one 32-hex-char digest.
    pub fn id(&self) -> String {
        FpHasher::new("plan-key/v1")
            .fold_fp(self.topo)
            .fold_fp(self.model)
            .fold_fp(self.trace)
            .finish()
            .to_hex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_modeling::MllmConfig;
    use optimus_parallel::ParallelPlan;

    fn base() -> (Workload, OptimusConfig, SystemContext) {
        let w = Workload::new(MllmConfig::small(), 8, 16, 1);
        let ctx = SystemContext::hopper(8).unwrap();
        let cfg = OptimusConfig::new(ParallelPlan::new(2, 2, 2).unwrap());
        (w, cfg, ctx)
    }

    #[test]
    fn plan_affecting_knobs_change_the_key() {
        let (w, cfg, ctx) = base();
        let k0 = PlanKey::for_query(&w, &cfg, &ctx);
        assert_eq!(k0, PlanKey::for_query(&w, &cfg, &ctx));

        let mut c = cfg.clone();
        c.fine_grained = !c.fine_grained;
        assert_ne!(k0.model, PlanKey::for_query(&w, &c, &ctx).model);

        let mut c = cfg.clone();
        c.bubble_margin += 0.01;
        assert_ne!(k0.model, PlanKey::for_query(&w, &c, &ctx).model);

        let mut c = cfg.clone();
        c.mb_scales = Some(vec![1.0; 8]);
        assert_ne!(k0.model, PlanKey::for_query(&w, &c, &ctx).model);
    }

    #[test]
    fn observability_knobs_do_not_fragment_the_cache() {
        let (w, cfg, ctx) = base();
        let k0 = PlanKey::for_query(&w, &cfg, &ctx);
        let mut c = cfg.clone();
        c.search_workers = 7;
        c.folded_sim = !c.folded_sim;
        assert_eq!(k0, PlanKey::for_query(&w, &c, &ctx));
    }

    #[test]
    fn topology_and_trace_are_independent_axes() {
        let (w, cfg, ctx) = base();
        let k0 = PlanKey::for_query(&w, &cfg, &ctx);
        let ctx16 = SystemContext::hopper(16).unwrap();
        let k1 = PlanKey::for_query(&w, &cfg, &ctx16);
        assert_ne!(k0.topo, k1.topo);
        assert_eq!(k0.model, k1.model);

        let t = trace_fingerprint(&TraceConfig::llava_style(), 17);
        assert_ne!(k0.id(), k0.with_trace(t).id());
        assert_ne!(
            trace_fingerprint(&TraceConfig::llava_style(), 17),
            trace_fingerprint(&TraceConfig::llava_style(), 18),
        );
    }
}

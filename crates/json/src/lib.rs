//! A minimal JSON document model with a parser and writers.
//!
//! The workspace must build with no registry access, so this crate replaces
//! `serde`/`serde_json` for the two places that need JSON: schedule
//! persistence and Chrome-trace export. Objects preserve insertion order, so
//! serialisation is deterministic — a requirement for golden-file tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64, like browsers do).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse or extraction error with human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Builds an object node from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value under `key`, or an error naming the missing field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// This node as f64.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(n) => Ok(*n),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// This node as u64 (must be a non-negative integer).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return err(format!("expected unsigned integer, got {n}"));
        }
        Ok(n as u64)
    }

    /// This node as i64 (must be an integer).
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || n < i64::MIN as f64 || n > i64::MAX as f64 {
            return err(format!("expected integer, got {n}"));
        }
        Ok(n as i64)
    }

    /// This node as u32.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        u32::try_from(self.as_u64()?).map_err(|_| JsonError("u32 out of range".into()))
    }

    /// This node as bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }

    /// This node as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    /// This node as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(a) => Ok(a),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    /// Parses a JSON document from text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Compact serialisation.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialisation with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Ryū-style shortest float formatting is what `{}` gives us; it
        // round-trips through the parser exactly.
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => err(format!(
                "unexpected byte `{}` at {}",
                char::from(other),
                self.pos
            )),
            None => err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        let mut keys = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if keys.insert(key.clone(), ()).is_some() {
                return err(format!("duplicate key `{key}`"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("invalid codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = Json::obj(vec![
            ("name", Json::from("ring — αβ")),
            ("count", Json::from(42u64)),
            ("neg", Json::from(-7i64)),
            ("ratio", Json::from(1.35)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::from(1u64), Json::from(2u64)])),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.field("s").unwrap().as_str().unwrap(), "a\"b\\c\ndA");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("not json").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn integer_extraction_checks_range() {
        assert_eq!(Json::Num(7.0).as_u64().unwrap(), 7);
        assert!(Json::Num(-1.0).as_u64().is_err());
        assert!(Json::Num(1.5).as_u64().is_err());
        assert_eq!(Json::Num(-3.0).as_i64().unwrap(), -3);
    }

    #[test]
    fn object_order_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn large_integers_written_exactly() {
        let n = 1_234_567_890_123u64;
        let v = Json::from(n);
        assert_eq!(v.to_compact(), "1234567890123");
        assert_eq!(Json::parse("1234567890123").unwrap().as_u64().unwrap(), n);
    }
}

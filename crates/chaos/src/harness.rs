//! The probe harness: one chosen plan, evaluated under perturbations.
//!
//! A [`ChaosHarness`] plans once (the *chosen plan*: planner output, the
//! lowered task graph, the verified insert schedule, and a bubble-placed
//! checkpoint plan) and then evaluates arbitrary [`Perturbation`]s against
//! it. Each probe produces a [`ProbeReport`] scoring three independent
//! failure surfaces:
//!
//! 1. **Makespan regret** — the chosen plan simulated under the injected
//!    faults, versus a fault-aware re-plan (degraded link prices, straggler
//!    slowdown in the microbatch cost scales, widened bubble margin)
//!    evaluated under the *same* faults' residual. Regret is how much
//!    latency the static plan leaves on the table.
//! 2. **Schedule lint** — the verified OPT005 insert claims with the
//!    perturbation's timing damage applied, re-linted. Errors mean the
//!    proven-idle bubbles no longer contain the inserts.
//! 3. **Recovery ledger** — the perturbation's failure trace driven
//!    through the checkpoint/restart lifecycle, with every exact-ledger
//!    invariant checked (`wall == useful + lost`, gapless timeline,
//!    per-kind reconciliation).
//!
//! Probes are pure functions of the perturbation: the re-plan memo is
//! keyed only by the knobs that feed the planner, so results are
//! bit-identical at any worker count.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use optimus_baselines::common::SystemContext;
use optimus_cluster::{DurNs, Fingerprint, FpHasher, LinkProfile};
use optimus_core::{lowered_schedule, run_optimus, schedule_insert_set, OptimusConfig, OptimusRun};
use optimus_lint::InsertSet;
use optimus_modeling::{MllmConfig, Workload};
use optimus_parallel::{pool, ColocationLayout, ParallelPlan};
use optimus_recovery::{
    plan_checkpoints, simulate_lifecycle, CheckpointConfig, CheckpointPlan, RecoveryParams,
};
use optimus_sim::{simulate, TaskGraph, TaskKind};

use crate::error::ChaosError;
use crate::perturbation::{DegradedClass, Perturbation};
use crate::score::{
    ledger_violations, lint_violations, perturbed_insert_set, ChaosScore, ProbeReport,
};

/// The per-claim bubble slack the reference harness plans with: enough to
/// absorb the ≤ 2% stragglers/jitter PR 6's minimized counterexamples
/// proved escape zero-slack inserts, while costing almost no bubble
/// capacity.
pub const REFERENCE_BUBBLE_SLACK: f64 = 0.02;

/// Recovery-lifecycle settings for the ledger scorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSettings {
    /// Training steps walked by the recovery lifecycle per probe.
    pub horizon_steps: u32,
    /// Checkpoint interval (steps) for the bubble-placed plan.
    pub ckpt_interval: u32,
}

impl Default for ChaosSettings {
    fn default() -> ChaosSettings {
        ChaosSettings {
            horizon_steps: 12,
            ckpt_interval: 4,
        }
    }
}

/// A fault-aware re-plan, memoized by the planner-relevant knobs.
struct ReplanArtifact {
    /// Lowered graph of the re-planned schedule (`None` when the re-plan
    /// chose an unspliceable encoder layout).
    graph: Option<TaskGraph>,
    /// The degraded topology the re-plan was priced against.
    topo: optimus_cluster::ClusterTopology,
    /// The planner's analytic step latency, ns.
    analytic_ns: i64,
}

/// One chosen plan plus everything needed to probe it.
pub struct ChaosHarness {
    w: Workload,
    ctx: SystemContext,
    cfg: OptimusConfig,
    run: OptimusRun,
    lowered: TaskGraph,
    baseline_ns: i64,
    insert_set: InsertSet,
    ckpt_plan: CheckpointPlan,
    params: RecoveryParams,
    settings: ChaosSettings,
    mb_offsets: Vec<u32>,
    replan_cache: Mutex<BTreeMap<Fingerprint, Option<Arc<ReplanArtifact>>>>,
}

impl ChaosHarness {
    /// Plans the workload and builds the probe surfaces.
    ///
    /// Requires a spliceable configuration: `adjust_dep_points = false`
    /// and an encoder plan with `TP_enc == TP_llm`, so the schedule can be
    /// lowered exactly.
    pub fn new(
        w: Workload,
        ctx: SystemContext,
        cfg: OptimusConfig,
        settings: ChaosSettings,
    ) -> Result<ChaosHarness, ChaosError> {
        let harness_err = |e: &dyn std::fmt::Display| ChaosError::Harness(e.to_string());
        let run = run_optimus(&w, &cfg, &ctx).map_err(|e| harness_err(&e))?;
        let lowered = lowered_schedule(&run, &w, &ctx)
            .map_err(|e| harness_err(&e))?
            .graph;
        let baseline_ns = simulate(&lowered)
            .map_err(|e| harness_err(&e))?
            .makespan()
            .0 as i64;
        let layout =
            ColocationLayout::new(cfg.llm_plan, run.enc_plan).map_err(|e| harness_err(&e))?;
        let insert_set = schedule_insert_set(&run.outcome, &run.profile, &layout);
        let ckpt_plan = plan_checkpoints(
            &run,
            cfg.llm_plan,
            &ctx.topo,
            &CheckpointConfig::bubble(settings.ckpt_interval),
        )
        .map_err(|e| harness_err(&e))?;
        let mut mb_offsets = Vec::with_capacity(run.outcome.partition.len());
        let mut acc = 0u32;
        for &n in &run.outcome.partition {
            mb_offsets.push(acc);
            acc += n;
        }
        Ok(ChaosHarness {
            w,
            ctx,
            cfg,
            run,
            lowered,
            baseline_ns,
            insert_set,
            ckpt_plan,
            params: RecoveryParams::defaults(),
            settings,
            mb_offsets,
            replan_cache: Mutex::new(BTreeMap::new()),
        })
    }

    /// The standard probe target: the small multi-modal workload on an
    /// 8-GPU Hopper node with a storage link, planned at `(2, 2, 2)` —
    /// the spliceable reference configuration used across the repo.
    ///
    /// The reference plan is built with
    /// [`REFERENCE_BUBBLE_SLACK`] per-claim slack: PR 6's minimized
    /// counterexamples proved a 1% straggler (and 1% jitter) escapes
    /// zero-slack inserts, so the reference hardens against them; chaos
    /// search now has to push perturbations past the slack margin to score.
    pub fn reference(settings: ChaosSettings) -> Result<ChaosHarness, ChaosError> {
        let w = Workload::new(MllmConfig::small(), 8, 16, 1);
        let ctx = SystemContext::hopper(8).map_err(|e| ChaosError::Harness(e.to_string()))?;
        let topo = ctx.topo.with_storage(LinkProfile {
            bandwidth: 80e9,
            latency: 100e-6,
        });
        let ctx = ctx.with_topology(topo);
        let plan = ParallelPlan::new(2, 2, 2).map_err(|e| ChaosError::Harness(e.to_string()))?;
        let mut cfg = OptimusConfig::new(plan);
        cfg.adjust_dep_points = false;
        cfg.bubble_slack = REFERENCE_BUBBLE_SLACK;
        ChaosHarness::new(w, ctx, cfg, settings)
    }

    /// Fault-free makespan of the chosen plan, ns.
    pub fn baseline_ns(&self) -> i64 {
        self.baseline_ns
    }

    /// Devices in the probed cluster.
    pub fn num_devices(&self) -> u32 {
        self.ctx.topo.num_gpus()
    }

    /// The chosen plan's verified insert schedule.
    pub fn insert_set(&self) -> &InsertSet {
        &self.insert_set
    }

    /// The chosen plan's bubble-placed checkpoint plan.
    pub fn checkpoint_plan(&self) -> &CheckpointPlan {
        &self.ckpt_plan
    }

    /// The planner output the harness probes.
    pub fn run(&self) -> &OptimusRun {
        &self.run
    }

    /// The chosen plan's task graph with the perturbation's microbatch
    /// skew applied (encoder compute only — `EncTpComm` carries no
    /// microbatch identity).
    fn skewed_graph(&self, p: &Perturbation) -> TaskGraph {
        if p.mb_skew_pct == 0 {
            return self.lowered.clone();
        }
        let shift = p.mb_shift(self.run.profile.n_microbatches() as usize);
        self.lowered.with_durations(|t| match t.kind {
            TaskKind::EncFwd {
                pipeline,
                microbatch,
                ..
            }
            | TaskKind::EncBwd {
                pipeline,
                microbatch,
                ..
            } => {
                let g = (self.mb_offsets[pipeline as usize] + microbatch) as usize;
                DurNs((t.duration.0 as f64 * shift[g]).round() as u64)
            }
            _ => t.duration,
        })
    }

    /// Memo key over exactly the knobs that feed the re-planner: straggler
    /// magnitude (the planner folds the worst slowdown cluster-wide, so
    /// the device is irrelevant), link degradation, jitter margin, and
    /// microbatch skew. Stalls, failures, and the seed only enter the
    /// residual injection, which is re-run per probe. Keyed by the shared
    /// canonical [`Fingerprint`] rather than a bespoke format string.
    fn replan_key(p: &Perturbation) -> Fingerprint {
        FpHasher::new("chaos-replan/v1")
            .fold_u32(p.straggler_pct)
            .fold_str(p.link_class.label())
            .fold_u32(p.link_bw_drop_pct)
            .fold_u32(p.link_lat_pct)
            .fold_u32(p.jitter_pct)
            .fold_u32(p.mb_skew_pct)
            .finish()
    }

    /// True when some knob changes what the re-planner would do.
    fn affects_replan(p: &Perturbation) -> bool {
        p.straggler_pct > 0
            || p.link_class != DegradedClass::None
            || p.jitter_pct > 0
            || p.mb_skew_pct > 0
    }

    /// Builds (or recalls) the fault-aware re-plan for a perturbation.
    fn replan_artifact(&self, p: &Perturbation) -> Option<Arc<ReplanArtifact>> {
        let key = ChaosHarness::replan_key(p);
        if let Some(hit) = self.replan_cache.lock().expect("replan cache").get(&key) {
            return hit.clone();
        }
        let built = self.build_replan(p).map(Arc::new);
        self.replan_cache
            .lock()
            .expect("replan cache")
            .entry(key)
            .or_insert_with(|| built.clone());
        built
    }

    fn build_replan(&self, p: &Perturbation) -> Option<ReplanArtifact> {
        // Horizon is irrelevant here: failure instants do not feed the
        // planner, only degradation magnitudes do.
        let model = p.fault_model(self.baseline_ns).ok()?;
        let ctx2 = self
            .ctx
            .with_topology(model.degrade_topology(&self.ctx.topo));
        let mut cfg2 = self.cfg.clone();
        cfg2.adjust_dep_points = false;
        cfg2.bubble_margin = self.cfg.bubble_margin.max(model.jitter_margin());
        let scale = model.compute_scale();
        let n_mb = self.run.profile.n_microbatches() as usize;
        if scale > 1.0 || p.mb_skew_pct > 0 {
            let base = self
                .cfg
                .mb_scales
                .clone()
                .unwrap_or_else(|| vec![1.0; n_mb]);
            let shift = p.mb_shift(n_mb);
            cfg2.mb_scales = Some(
                base.iter()
                    .zip(&shift)
                    .map(|(b, s)| b * s * scale.max(1.0))
                    .collect(),
            );
        }
        let run2 = run_optimus(&self.w, &cfg2, &ctx2).ok()?;
        let analytic_ns = run2.outcome.latency;
        let graph = if run2.enc_plan.tp == run2.profile.llm_plan.tp {
            lowered_schedule(&run2, &self.w, &ctx2)
                .ok()
                .map(|l| l.graph)
        } else {
            None
        };
        Some(ReplanArtifact {
            graph,
            topo: ctx2.topo,
            analytic_ns,
        })
    }

    /// Evaluates one perturbation against the chosen plan.
    pub fn probe(&self, p: &Perturbation) -> Result<ProbeReport, ChaosError> {
        p.validate(self.num_devices())?;
        let model = p.fault_model(self.baseline_ns)?;

        // 1. Static plan under the fault.
        let skewed = self.skewed_graph(p);
        let injection = model
            .inject(&skewed, &self.ctx.topo)
            .map_err(|e| ChaosError::Probe(e.to_string()))?;
        let static_ns = simulate(&injection.graph)
            .map_err(|e| ChaosError::Probe(e.to_string()))?
            .makespan()
            .0 as i64;

        // 2. Fault-aware re-plan under the same fault's residual. Falls
        //    back to the static makespan (zero regret — conservative)
        //    when the re-plan fails or cannot be compared apples-to-apples.
        let replan_ns = if ChaosHarness::affects_replan(p) {
            match self.replan_artifact(p) {
                Some(a) => match &a.graph {
                    Some(g) => {
                        let inj2 = model
                            .inject_residual(g, &a.topo)
                            .map_err(|e| ChaosError::Probe(e.to_string()))?;
                        simulate(&inj2.graph)
                            .map_err(|e| ChaosError::Probe(e.to_string()))?
                            .makespan()
                            .0 as i64
                    }
                    // Unspliceable re-plan: the analytic latency is only
                    // comparable when no unpriced residual (stalls or
                    // failures) hit the static side.
                    None if p.failures.is_empty() && p.stall_pct == 0 => a.analytic_ns,
                    None => static_ns,
                },
                None => static_ns,
            }
        } else {
            static_ns
        };
        let regret_ns = (static_ns - replan_ns).max(0);

        // 3. Lint the perturbed insert schedule.
        let lint_notes = lint_violations(&perturbed_insert_set(&self.insert_set, p));

        // 4. Exact-ledger check on the recovery lifecycle.
        let horizon_wall = self
            .ckpt_plan
            .fault_free_wall_ns(self.settings.horizon_steps);
        let trace = p.failure_trace(horizon_wall)?;
        let outcome = simulate_lifecycle(
            &self.ckpt_plan,
            &trace,
            &self.params,
            self.settings.horizon_steps,
        )
        .map_err(|e| ChaosError::Probe(e.to_string()))?;
        let ledger_notes = ledger_violations(&outcome);

        let score = ChaosScore {
            ledger_violations: ledger_notes.len() as u32,
            lint_errors: lint_notes.len() as u32,
            regret_ns,
        };
        Ok(ProbeReport {
            perturbation: p.clone(),
            baseline_ns: self.baseline_ns,
            static_ns,
            replan_ns,
            lint_notes,
            ledger_notes,
            score,
        })
    }

    /// Probes a batch over the deterministic worker pool. Results are in
    /// input order, bit-identical at any worker count; probe errors are
    /// carried through per item.
    pub fn probe_many(
        &self,
        ps: &[Perturbation],
        workers: usize,
    ) -> Vec<Result<ProbeReport, ChaosError>> {
        pool::par_map(ps, workers, |_, p| self.probe(p)).results
    }
}

//! Counterexample fixtures: minimized perturbations serialized for CI.
//!
//! A [`ChaosFixture`] pins a minimized counterexample — the perturbation,
//! the predicate it violates, and the score observed when it was minted —
//! as a JSON file under `tests/golden/chaos/`. The integration suite
//! replays every fixture against a freshly built harness and fails if the
//! predicate no longer holds, so once a chaos run finds a weakness it is
//! guarded forever.

use std::fs;
use std::path::{Path, PathBuf};

use optimus_json::Json;

use crate::error::ChaosError;
use crate::harness::ChaosHarness;
use crate::perturbation::Perturbation;
use crate::score::{ChaosPredicate, ChaosScore, ProbeReport};

/// A serialized, replayable counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosFixture {
    /// File-stem-safe identifier.
    pub name: String,
    /// What the counterexample demonstrates, for humans.
    pub description: String,
    /// The property the perturbation violates; replay re-checks this.
    pub predicate: ChaosPredicate,
    /// The minimized perturbation.
    pub perturbation: Perturbation,
    /// The score observed when the fixture was minted (informational:
    /// replay enforces the predicate, not score equality, so legitimate
    /// cost-model changes do not stale the fixture).
    pub minted_score: ChaosScore,
}

impl ChaosFixture {
    /// Builds a fixture from a probe that satisfies `predicate`.
    pub fn from_report(
        name: &str,
        description: &str,
        predicate: ChaosPredicate,
        report: &ProbeReport,
    ) -> Result<ChaosFixture, ChaosError> {
        if !predicate.holds(report) {
            return Err(ChaosError::Fixture(format!(
                "cannot mint {name}: predicate {} does not hold",
                predicate.label()
            )));
        }
        Ok(ChaosFixture {
            name: name.to_string(),
            description: description.to_string(),
            predicate,
            perturbation: report.perturbation.clone(),
            minted_score: report.score,
        })
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("description", Json::Str(self.description.clone())),
            ("predicate", self.predicate.to_json()),
            ("perturbation", self.perturbation.to_json()),
            ("minted_score", self.minted_score.to_json()),
        ])
    }

    /// Parses the JSON form.
    pub fn from_json(j: &Json) -> Result<ChaosFixture, ChaosError> {
        let fix = |e: &dyn std::fmt::Display| ChaosError::Fixture(e.to_string());
        let str_field = |k: &str| -> Result<String, ChaosError> {
            Ok(j.field(k)
                .and_then(|v| v.as_str())
                .map_err(|e| fix(&e))?
                .to_string())
        };
        Ok(ChaosFixture {
            name: str_field("name")?,
            description: str_field("description")?,
            predicate: ChaosPredicate::from_json(j.field("predicate").map_err(|e| fix(&e))?)?,
            perturbation: Perturbation::from_json(j.field("perturbation").map_err(|e| fix(&e))?)?,
            minted_score: ChaosScore::from_json(j.field("minted_score").map_err(|e| fix(&e))?)?,
        })
    }

    /// Writes the fixture as pretty JSON to `dir/<name>.json`.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, ChaosError> {
        fs::create_dir_all(dir)
            .map_err(|e| ChaosError::Fixture(format!("create {}: {e}", dir.display())))?;
        let path = dir.join(format!("{}.json", self.name));
        let mut text = self.to_json().to_pretty();
        text.push('\n');
        fs::write(&path, text)
            .map_err(|e| ChaosError::Fixture(format!("write {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Reads one fixture file.
    pub fn load(path: &Path) -> Result<ChaosFixture, ChaosError> {
        let text = fs::read_to_string(path)
            .map_err(|e| ChaosError::Fixture(format!("read {}: {e}", path.display())))?;
        let json = Json::parse(&text)
            .map_err(|e| ChaosError::Fixture(format!("parse {}: {e}", path.display())))?;
        ChaosFixture::from_json(&json)
    }

    /// Reads every `*.json` fixture in a directory, sorted by file name.
    /// An absent directory is an empty set, not an error.
    pub fn load_dir(dir: &Path) -> Result<Vec<ChaosFixture>, ChaosError> {
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let mut paths: Vec<PathBuf> = fs::read_dir(dir)
            .map_err(|e| ChaosError::Fixture(format!("list {}: {e}", dir.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        paths.iter().map(|p| ChaosFixture::load(p)).collect()
    }

    /// Re-probes the perturbation and checks the predicate still holds.
    pub fn replay(&self, harness: &ChaosHarness) -> Result<ProbeReport, ChaosError> {
        let report = harness.probe(&self.perturbation)?;
        if !self.predicate.holds(&report) {
            return Err(ChaosError::Fixture(format!(
                "fixture {} no longer reproduces: predicate {} fails \
                 (score now {:?}, minted {:?})",
                self.name,
                self.predicate.label(),
                report.score,
                self.minted_score
            )));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fixture() -> ChaosFixture {
        let mut p = Perturbation::zero(7);
        p.straggler_device = 3;
        p.straggler_pct = 50;
        ChaosFixture {
            name: "straggler-lint".into(),
            description: "50% straggler escapes its bubbles".into(),
            predicate: ChaosPredicate::LintErrors,
            perturbation: p,
            minted_score: ChaosScore {
                ledger_violations: 0,
                lint_errors: 4,
                regret_ns: 0,
            },
        }
    }

    #[test]
    fn json_round_trips() {
        let f = sample_fixture();
        assert_eq!(ChaosFixture::from_json(&f.to_json()).unwrap(), f);
    }

    #[test]
    fn save_load_dir_round_trips_sorted() {
        let dir = std::env::temp_dir().join("optimus-chaos-fixture-test");
        let _ = fs::remove_dir_all(&dir);
        let mut a = sample_fixture();
        a.name = "b-second".into();
        let mut b = sample_fixture();
        b.name = "a-first".into();
        a.save(&dir).unwrap();
        b.save(&dir).unwrap();
        let loaded = ChaosFixture::load_dir(&dir).unwrap();
        assert_eq!(
            loaded.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["a-first", "b-second"]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("optimus-chaos-no-such-dir");
        assert!(ChaosFixture::load_dir(&dir).unwrap().is_empty());
    }

    #[test]
    fn minting_requires_the_predicate() {
        let report = ProbeReport {
            perturbation: Perturbation::zero(1),
            baseline_ns: 100,
            static_ns: 100,
            replan_ns: 100,
            lint_notes: vec![],
            ledger_notes: vec![],
            score: ChaosScore::default(),
        };
        assert!(ChaosFixture::from_report("x", "y", ChaosPredicate::LintErrors, &report).is_err());
    }
}

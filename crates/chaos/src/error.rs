//! Error type for the chaos harness.

use std::fmt;

/// Everything that can go wrong while probing or shrinking.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// A perturbation failed validation.
    Invalid(String),
    /// The harness could not be built (planner rejection, unspliceable
    /// schedule, checkpoint-plan failure).
    Harness(String),
    /// A probe failed mid-evaluation (injection or simulation error).
    Probe(String),
    /// A fixture could not be read, parsed, or reproduced.
    Fixture(String),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Invalid(msg) => write!(f, "invalid perturbation: {msg}"),
            ChaosError::Harness(msg) => write!(f, "chaos harness: {msg}"),
            ChaosError::Probe(msg) => write!(f, "chaos probe: {msg}"),
            ChaosError::Fixture(msg) => write!(f, "chaos fixture: {msg}"),
        }
    }
}

impl std::error::Error for ChaosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed() {
        assert!(ChaosError::Invalid("x".into())
            .to_string()
            .contains("invalid"));
        assert!(ChaosError::Fixture("y".into())
            .to_string()
            .contains("fixture"));
    }
}

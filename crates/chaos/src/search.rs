//! Coordinate-descent adversarial search over the perturbation space.
//!
//! The search walks fixed per-axis ladders (straggler, link degradation,
//! jitter, stalls, microbatch skew, failure sets) from a handful of seeded
//! restart points, always keeping the move that worsens the chosen plan
//! the most under the severity order of [`ChaosScore`]. Probe batches run
//! on the deterministic worker pool and every accept/reject decision is a
//! pure function of probe results, so the search is bit-identical at any
//! worker count. All probes are memoized by the perturbation's canonical
//! key; the final report keeps the worst offenders.

use std::collections::BTreeMap;

use crate::error::ChaosError;
use crate::harness::ChaosHarness;
use crate::perturbation::{DegradedClass, FailureSpec, Perturbation};
use crate::score::ProbeReport;

/// Search budget and determinism knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSearchConfig {
    /// Seeded restart points (restart 0 is the identity perturbation).
    pub restarts: u32,
    /// Coordinate-descent sweeps per restart.
    pub sweeps: u32,
    /// Worker threads for probe batches (`0` = all cores). Results do not
    /// depend on this.
    pub workers: usize,
    /// Worst offenders kept in the findings.
    pub keep: usize,
    /// Base seed for restarts and perturbation streams.
    pub seed: u64,
}

impl Default for ChaosSearchConfig {
    fn default() -> ChaosSearchConfig {
        ChaosSearchConfig {
            restarts: 3,
            sweeps: 2,
            workers: 0,
            keep: 8,
            seed: 1,
        }
    }
}

/// What the search found.
#[derive(Debug, Clone)]
pub struct ChaosFindings {
    /// Distinct perturbations probed.
    pub probes: usize,
    /// Worst offenders, sorted worst-first (score desc, size asc, key asc).
    pub offenders: Vec<ProbeReport>,
}

impl ChaosFindings {
    /// The single worst offender, if any probe scored above zero.
    pub fn worst(&self) -> Option<&ProbeReport> {
        self.offenders.first().filter(|r| !r.score.is_zero())
    }
}

/// The perturbation axes the coordinate descent sweeps, in order.
const AXES: usize = 6;

fn straggler_ladder(num_devices: u32) -> Vec<(u32, u32)> {
    let devices = [0, num_devices / 2, num_devices.saturating_sub(1)];
    let mut out = vec![(0u32, 0u32)];
    for &pct in &[25u32, 50, 100, 200] {
        for &d in &devices {
            if !out.contains(&(d, pct)) {
                out.push((d, pct));
            }
        }
    }
    out
}

const LINK_LADDER: [(DegradedClass, u32, u32); 5] = [
    (DegradedClass::None, 0, 0),
    (DegradedClass::NvLink, 50, 100),
    (DegradedClass::NvLink, 80, 300),
    (DegradedClass::Rdma, 50, 100),
    (DegradedClass::Rdma, 80, 300),
];

const JITTER_LADDER: [u32; 5] = [0, 10, 30, 60, 90];
const STALL_LADDER: [(u32, u32); 4] = [(0, 0), (20, 200), (50, 500), (80, 1000)];
const SKEW_LADDER: [u32; 5] = [0, 25, 50, 100, 200];

fn failure_ladder(num_devices: u32) -> Vec<Vec<FailureSpec>> {
    let d = |x: u32| x.min(num_devices.saturating_sub(1));
    vec![
        vec![],
        vec![FailureSpec {
            device: d(1),
            at_pct: 40,
            downtime_ms: 50,
            permanent: false,
        }],
        vec![
            FailureSpec {
                device: d(1),
                at_pct: 30,
                downtime_ms: 50,
                permanent: false,
            },
            FailureSpec {
                device: d(2),
                at_pct: 60,
                downtime_ms: 800,
                permanent: true,
            },
        ],
        vec![
            FailureSpec {
                device: d(1),
                at_pct: 20,
                downtime_ms: 50,
                permanent: false,
            },
            FailureSpec {
                device: d(3),
                at_pct: 45,
                downtime_ms: 80,
                permanent: false,
            },
            FailureSpec {
                device: d(2),
                at_pct: 70,
                downtime_ms: 800,
                permanent: true,
            },
        ],
    ]
}

/// Candidate mutations of `base` along one axis, in a fixed order.
fn axis_candidates(axis: usize, base: &Perturbation, num_devices: u32) -> Vec<Perturbation> {
    let mut out = Vec::new();
    match axis {
        0 => {
            for (device, pct) in straggler_ladder(num_devices) {
                let mut p = base.clone();
                p.straggler_device = device;
                p.straggler_pct = pct;
                out.push(p);
            }
        }
        1 => {
            for (class, bw, lat) in LINK_LADDER {
                let mut p = base.clone();
                p.link_class = class;
                p.link_bw_drop_pct = bw;
                p.link_lat_pct = lat;
                out.push(p);
            }
        }
        2 => {
            for pct in JITTER_LADDER {
                let mut p = base.clone();
                p.jitter_pct = pct;
                out.push(p);
            }
        }
        3 => {
            for (pct, us) in STALL_LADDER {
                let mut p = base.clone();
                p.stall_pct = pct;
                p.stall_us = us;
                out.push(p);
            }
        }
        4 => {
            for pct in SKEW_LADDER {
                let mut p = base.clone();
                p.mb_skew_pct = pct;
                out.push(p);
            }
        }
        _ => {
            for failures in failure_ladder(num_devices) {
                let mut p = base.clone();
                p.failures = failures;
                out.push(p);
            }
        }
    }
    out.into_iter()
        .map(Perturbation::canon)
        .filter(|p| p.validate(num_devices).is_ok())
        .collect()
}

/// True when `cand` should replace `inc` as the search incumbent: strictly
/// worse for the plan, or equally bad but strictly smaller.
fn beats(cand: &ProbeReport, inc: &ProbeReport) -> bool {
    let (cs, is) = (cand.score, inc.score);
    cs > is || (cs == is && cand.perturbation.size() < inc.perturbation.size())
}

/// Runs the adversarial search against a harness.
///
/// Deterministic: same harness, same config → bit-identical findings, at
/// any `workers` setting.
pub fn chaos_search(
    harness: &ChaosHarness,
    cfg: &ChaosSearchConfig,
) -> Result<ChaosFindings, ChaosError> {
    let num_devices = harness.num_devices();
    let mut probed: BTreeMap<String, ProbeReport> = BTreeMap::new();

    // Probes every not-yet-seen candidate (batched over the pool) and
    // returns the reports for `cands`, in order. Probe errors (invalid
    // corner combinations) drop the candidate.
    let eval = |cands: &[Perturbation],
                probed: &mut BTreeMap<String, ProbeReport>|
     -> Result<Vec<ProbeReport>, ChaosError> {
        let fresh: Vec<Perturbation> = {
            let mut seen = std::collections::BTreeSet::new();
            cands
                .iter()
                .filter(|p| !probed.contains_key(&p.key()) && seen.insert(p.key()))
                .cloned()
                .collect()
        };
        for (p, r) in fresh.iter().zip(harness.probe_many(&fresh, cfg.workers)) {
            match r {
                Ok(report) => {
                    probed.insert(p.key(), report);
                }
                Err(ChaosError::Invalid(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(cands
            .iter()
            .filter_map(|p| probed.get(&p.key()).cloned())
            .collect())
    };

    for restart in 0..cfg.restarts.max(1) {
        let start = if restart == 0 {
            Perturbation::zero(cfg.seed)
        } else {
            Perturbation::sample(cfg.seed.wrapping_add(restart as u64), num_devices)
        };
        let starts = eval(std::slice::from_ref(&start), &mut probed)?;
        let Some(mut incumbent) = starts.into_iter().next() else {
            continue;
        };

        for _sweep in 0..cfg.sweeps.max(1) {
            let mut improved = false;
            for axis in 0..AXES {
                let cands = axis_candidates(axis, &incumbent.perturbation, num_devices);
                let reports = eval(&cands, &mut probed)?;
                // Deterministic pick: first candidate (ladder order) among
                // those that beat everything else on the axis.
                let best = reports
                    .into_iter()
                    .fold(None::<ProbeReport>, |acc, r| match acc {
                        Some(a) if !beats(&r, &a) => Some(a),
                        _ => Some(r),
                    });
                if let Some(b) = best {
                    if beats(&b, &incumbent) {
                        incumbent = b;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }

    let probes = probed.len();
    let mut offenders: Vec<ProbeReport> = probed.into_values().collect();
    offenders.sort_by(|a, b| {
        b.score
            .cmp(&a.score)
            .then(a.perturbation.size().cmp(&b.perturbation.size()))
            .then(a.perturbation.key().cmp(&b.perturbation.key()))
    });
    offenders.truncate(cfg.keep.max(1));
    Ok(ChaosFindings { probes, offenders })
}

//! Probe scoring: makespan regret, lint violations, exact-ledger checks.
//!
//! A probe evaluates one [`Perturbation`](crate::Perturbation) against the
//! harness's chosen plan and condenses the damage into a [`ChaosScore`].
//! Scores order lexicographically by severity: an exact-ledger violation in
//! the recovery lifecycle outranks any number of schedule lint errors,
//! which outrank any amount of makespan regret. The search keeps the
//! worst offenders under this order; the shrinker preserves whichever
//! [`ChaosPredicate`] the counterexample was minted for.

use optimus_json::Json;
use optimus_lint::{Analyzer, InsertClaim, InsertSet};
use optimus_recovery::{RecoveryOutcome, SegmentKind};

use crate::error::ChaosError;
use crate::perturbation::Perturbation;

/// Severity-ordered damage summary for one probe.
///
/// Derived `Ord` is lexicographic over the declared field order, which is
/// exactly the severity order we want: ledger violations, then lint
/// errors, then regret.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChaosScore {
    /// Exact-ledger invariant violations in the recovery lifecycle.
    pub ledger_violations: u32,
    /// Error-severity lint diagnostics on the perturbed insert schedule.
    pub lint_errors: u32,
    /// Makespan regret of the static plan vs a fault-aware re-plan, ns
    /// (clamped at zero: a re-plan can only help).
    pub regret_ns: i64,
}

impl ChaosScore {
    /// True when the probe found nothing at all.
    pub fn is_zero(&self) -> bool {
        *self == ChaosScore::default()
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "ledger_violations",
                Json::Num(self.ledger_violations as f64),
            ),
            ("lint_errors", Json::Num(self.lint_errors as f64)),
            ("regret_ns", Json::Num(self.regret_ns as f64)),
        ])
    }

    /// Parses the JSON form.
    pub fn from_json(j: &Json) -> Result<ChaosScore, ChaosError> {
        let field = |k: &str| -> Result<f64, ChaosError> {
            j.field(k)
                .and_then(|v| v.as_f64())
                .map_err(|e| ChaosError::Fixture(format!("score.{k}: {e}")))
        };
        Ok(ChaosScore {
            ledger_violations: field("ledger_violations")? as u32,
            lint_errors: field("lint_errors")? as u32,
            regret_ns: field("regret_ns")? as i64,
        })
    }
}

/// Full record of one probe evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    /// The perturbation that was probed.
    pub perturbation: Perturbation,
    /// Fault-free makespan of the chosen plan, ns.
    pub baseline_ns: i64,
    /// Makespan of the chosen plan under the perturbation, ns.
    pub static_ns: i64,
    /// Makespan after a fault-aware re-plan, ns.
    pub replan_ns: i64,
    /// Rendered error diagnostics from the perturbed-schedule lint.
    pub lint_notes: Vec<String>,
    /// Exact-ledger violations from the recovery lifecycle.
    pub ledger_notes: Vec<String>,
    /// The condensed score.
    pub score: ChaosScore,
}

impl ProbeReport {
    /// JSON form (fixture payload).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("perturbation", self.perturbation.to_json()),
            ("baseline_ns", Json::Num(self.baseline_ns as f64)),
            ("static_ns", Json::Num(self.static_ns as f64)),
            ("replan_ns", Json::Num(self.replan_ns as f64)),
            (
                "lint_notes",
                Json::Arr(
                    self.lint_notes
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "ledger_notes",
                Json::Arr(
                    self.ledger_notes
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("score", self.score.to_json()),
        ])
    }
}

/// What a minted counterexample demonstrates; the shrinker preserves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPredicate {
    /// The static plan's regret vs a fault-aware re-plan is at least this
    /// many ns.
    RegretAtLeast(i64),
    /// The perturbed schedule has at least one error-severity lint
    /// diagnostic.
    LintErrors,
    /// The recovery lifecycle's exact ledger is violated.
    LedgerViolations,
}

impl ChaosPredicate {
    /// Does the probe satisfy the predicate?
    pub fn holds(&self, report: &ProbeReport) -> bool {
        match self {
            ChaosPredicate::RegretAtLeast(min) => report.score.regret_ns >= *min,
            ChaosPredicate::LintErrors => report.score.lint_errors > 0,
            ChaosPredicate::LedgerViolations => report.score.ledger_violations > 0,
        }
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            ChaosPredicate::RegretAtLeast(min) => Json::obj(vec![
                ("kind", Json::Str("regret_at_least".into())),
                ("min_ns", Json::Num(*min as f64)),
            ]),
            ChaosPredicate::LintErrors => {
                Json::obj(vec![("kind", Json::Str("lint_errors".into()))])
            }
            ChaosPredicate::LedgerViolations => {
                Json::obj(vec![("kind", Json::Str("ledger_violations".into()))])
            }
        }
    }

    /// Parses the JSON form.
    pub fn from_json(j: &Json) -> Result<ChaosPredicate, ChaosError> {
        let kind = j
            .field("kind")
            .and_then(|v| v.as_str())
            .map_err(|e| ChaosError::Fixture(format!("predicate.kind: {e}")))?;
        match kind {
            "regret_at_least" => {
                let min = j
                    .field("min_ns")
                    .and_then(|v| v.as_f64())
                    .map_err(|e| ChaosError::Fixture(format!("predicate.min_ns: {e}")))?;
                Ok(ChaosPredicate::RegretAtLeast(min as i64))
            }
            "lint_errors" => Ok(ChaosPredicate::LintErrors),
            "ledger_violations" => Ok(ChaosPredicate::LedgerViolations),
            other => Err(ChaosError::Fixture(format!(
                "unknown predicate kind {other:?}"
            ))),
        }
    }

    /// Stable label for display.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosPredicate::RegretAtLeast(_) => "regret_at_least",
            ChaosPredicate::LintErrors => "lint_errors",
            ChaosPredicate::LedgerViolations => "ledger_violations",
        }
    }
}

/// Applies the perturbation's timing damage to a verified insert schedule.
///
/// Idle intervals are the *capacity* the planner proved; they stay fixed.
/// The claims are what the runtime would actually execute, so a straggler
/// stretches every non-comm claim on its device and kernel jitter
/// stretches every claim — exactly the failure modes OPT005 exists to
/// catch. Lengths scale as `end = start + round(len · f)`.
pub fn perturbed_insert_set(set: &InsertSet, p: &Perturbation) -> InsertSet {
    let jitter = 1.0 + p.jitter_pct as f64 / 100.0;
    let straggle = 1.0 + p.straggler_pct as f64 / 100.0;
    let claims = set
        .claims
        .iter()
        .map(|c| {
            let mut f = jitter;
            if p.straggler_pct > 0 && c.device == p.straggler_device && !c.comm {
                f *= straggle;
            }
            let len = (c.end - c.start).max(0);
            let stretched = (len as f64 * f).round() as i64;
            InsertClaim {
                end: c.start + stretched,
                ..c.clone()
            }
        })
        .collect();
    InsertSet {
        intervals: set.intervals.clone(),
        claims,
    }
}

/// Runs the schedule lint over an insert set and returns the rendered
/// error diagnostics.
pub fn lint_violations(set: &InsertSet) -> Vec<String> {
    let report = Analyzer::new().inserts(set.clone()).analyze();
    report.errors().map(|d| d.summary()).collect()
}

/// Checks the exact-ledger invariants of a recovery lifecycle outcome.
///
/// Returns one note per violated invariant (empty means the ledger is
/// exact):
///
/// 1. `wall == horizon · step + lost.total()` — the headline ledger.
/// 2. The segment timeline is gapless: starts at 0, ends at `wall`,
///    contiguous, every segment non-empty and non-negative.
/// 3. Per-kind segment sums reconcile against the lost-work breakdown
///    (detect ↔ detection, restart+reshard ↔ restart, replay ↔ replay,
///    ckpt ↔ spill, wait ↔ wait, degraded excess ↔ degraded).
/// 4. No lost-work component is negative.
/// 5. At most one recovery measurement per failure seen.
pub fn ledger_violations(outcome: &RecoveryOutcome) -> Vec<String> {
    let mut notes = Vec::new();
    let expected = outcome.horizon_steps as i64 * outcome.step_ns + outcome.lost.total();
    if outcome.wall_ns != expected {
        notes.push(format!(
            "wall ledger: wall={} != horizon*step + lost = {}",
            outcome.wall_ns, expected
        ));
    }

    if let Some(first) = outcome.segments.first() {
        if first.start != 0 {
            notes.push(format!("timeline starts at {} not 0", first.start));
        }
    }
    if let Some(last) = outcome.segments.last() {
        if last.end != outcome.wall_ns {
            notes.push(format!(
                "timeline ends at {} not wall={}",
                last.end, outcome.wall_ns
            ));
        }
    } else if outcome.wall_ns != 0 {
        notes.push(format!("no segments but wall={}", outcome.wall_ns));
    }
    for pair in outcome.segments.windows(2) {
        if pair[0].end != pair[1].start {
            notes.push(format!(
                "timeline gap: {} ends {} but {} starts {}",
                pair[0].kind.label(),
                pair[0].end,
                pair[1].kind.label(),
                pair[1].start
            ));
            break;
        }
    }
    if let Some(s) = outcome.segments.iter().find(|s| s.end <= s.start) {
        notes.push(format!(
            "empty or reversed segment {} [{}, {})",
            s.kind.label(),
            s.start,
            s.end
        ));
    }

    let sum = |kinds: &[SegmentKind]| -> i64 {
        outcome
            .segments
            .iter()
            .filter(|s| kinds.contains(&s.kind))
            .map(|s| s.end - s.start)
            .sum()
    };
    let checks: [(&str, i64, i64); 5] = [
        (
            "detect",
            sum(&[SegmentKind::Detect]),
            outcome.lost.detection_ns,
        ),
        (
            "restart+reshard",
            sum(&[SegmentKind::Restart, SegmentKind::Reshard]),
            outcome.lost.restart_ns,
        ),
        (
            "replay",
            sum(&[SegmentKind::Replay]),
            outcome.lost.replay_ns,
        ),
        ("ckpt", sum(&[SegmentKind::Ckpt]), outcome.lost.spill_ns),
        ("wait", sum(&[SegmentKind::Wait]), outcome.lost.wait_ns),
    ];
    for (label, seg_sum, lost) in checks {
        if seg_sum != lost {
            notes.push(format!("{label} segments sum {seg_sum} != lost {lost}"));
        }
    }
    let degraded_excess: i64 = outcome
        .segments
        .iter()
        .filter(|s| s.kind == SegmentKind::Degraded)
        .map(|s| (s.end - s.start - outcome.step_ns).max(0))
        .sum();
    if degraded_excess != outcome.lost.degraded_ns {
        notes.push(format!(
            "degraded excess {} != lost {}",
            degraded_excess, outcome.lost.degraded_ns
        ));
    }

    let l = &outcome.lost;
    for (label, v) in [
        ("detection", l.detection_ns),
        ("restart", l.restart_ns),
        ("replay", l.replay_ns),
        ("spill", l.spill_ns),
        ("wait", l.wait_ns),
        ("degraded", l.degraded_ns),
    ] {
        if v < 0 {
            notes.push(format!("negative lost component {label}: {v}"));
        }
    }

    if outcome.recoveries_ns.len() as u32 > outcome.failures_seen {
        notes.push(format!(
            "{} recovery measurements for {} failures",
            outcome.recoveries_ns.len(),
            outcome.failures_seen
        ));
    }
    notes
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_lint::IdleInterval;
    use optimus_recovery::{LostWork, Segment};

    fn clean_outcome() -> RecoveryOutcome {
        RecoveryOutcome {
            horizon_steps: 2,
            step_ns: 100,
            wall_ns: 230,
            lost: LostWork {
                detection_ns: 10,
                spill_ns: 20,
                ..LostWork::default()
            },
            failures_seen: 1,
            recoveries_ns: vec![10],
            segments: vec![
                Segment {
                    kind: SegmentKind::Step,
                    start: 0,
                    end: 100,
                    note: "step 0".into(),
                },
                Segment {
                    kind: SegmentKind::Ckpt,
                    start: 100,
                    end: 120,
                    note: "ckpt".into(),
                },
                Segment {
                    kind: SegmentKind::Detect,
                    start: 120,
                    end: 130,
                    note: "detect".into(),
                },
                Segment {
                    kind: SegmentKind::Step,
                    start: 130,
                    end: 230,
                    note: "step 1".into(),
                },
            ],
            events: Vec::new(),
        }
    }

    #[test]
    fn score_orders_by_severity() {
        let regret = ChaosScore {
            regret_ns: 1_000_000_000,
            ..ChaosScore::default()
        };
        let lint = ChaosScore {
            lint_errors: 1,
            ..ChaosScore::default()
        };
        let ledger = ChaosScore {
            ledger_violations: 1,
            ..ChaosScore::default()
        };
        assert!(ledger > lint);
        assert!(lint > regret);
        assert!(regret > ChaosScore::default());
    }

    #[test]
    fn score_json_round_trips() {
        let s = ChaosScore {
            ledger_violations: 2,
            lint_errors: 3,
            regret_ns: 123_456_789,
        };
        assert_eq!(ChaosScore::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn predicate_json_round_trips() {
        for p in [
            ChaosPredicate::RegretAtLeast(5_000_000),
            ChaosPredicate::LintErrors,
            ChaosPredicate::LedgerViolations,
        ] {
            assert_eq!(ChaosPredicate::from_json(&p.to_json()).unwrap(), p);
        }
    }

    #[test]
    fn clean_ledger_has_no_violations() {
        assert!(ledger_violations(&clean_outcome()).is_empty());
    }

    #[test]
    fn each_ledger_invariant_fires() {
        // Headline ledger.
        let mut o = clean_outcome();
        o.wall_ns += 7;
        let notes = ledger_violations(&o);
        assert!(notes.iter().any(|n| n.contains("wall ledger")));

        // Gapless timeline.
        let mut o = clean_outcome();
        o.segments[1].start += 1;
        assert!(ledger_violations(&o)
            .iter()
            .any(|n| n.contains("timeline gap")));

        // Per-kind reconciliation.
        let mut o = clean_outcome();
        o.lost.detection_ns = 11;
        o.lost.spill_ns = 19; // keep the headline ledger balanced
        assert!(ledger_violations(&o)
            .iter()
            .any(|n| n.contains("detect segments")));

        // Negative component.
        let mut o = clean_outcome();
        o.lost.wait_ns = -5;
        o.lost.spill_ns = 25;
        assert!(ledger_violations(&o)
            .iter()
            .any(|n| n.contains("negative lost component wait")));

        // Recovery count.
        let mut o = clean_outcome();
        o.recoveries_ns = vec![1, 2];
        assert!(ledger_violations(&o)
            .iter()
            .any(|n| n.contains("recovery measurements")));
    }

    #[test]
    fn straggler_stretches_claims_out_of_their_intervals() {
        let set = InsertSet {
            intervals: vec![IdleInterval {
                device: 0,
                comm: false,
                start: 0,
                end: 110,
            }],
            claims: vec![InsertClaim {
                device: 0,
                lane: 0,
                comm: false,
                start: 0,
                end: 100,
                label: "enc".into(),
                chain: None,
            }],
        };
        assert!(lint_violations(&set).is_empty());

        let mut p = Perturbation::zero(1);
        p.straggler_device = 0;
        p.straggler_pct = 50;
        let stretched = perturbed_insert_set(&set, &p);
        assert_eq!(stretched.claims[0].end, 150);
        assert!(!lint_violations(&stretched).is_empty());
    }

    #[test]
    fn comm_claims_ignore_the_straggler_but_feel_jitter() {
        let claim = InsertClaim {
            device: 3,
            lane: 0,
            comm: true,
            start: 10,
            end: 110,
            label: "tp".into(),
            chain: None,
        };
        let set = InsertSet {
            intervals: Vec::new(),
            claims: vec![claim],
        };
        let mut p = Perturbation::zero(1);
        p.straggler_device = 3;
        p.straggler_pct = 100;
        assert_eq!(perturbed_insert_set(&set, &p).claims[0].end, 110);
        p.jitter_pct = 10;
        assert_eq!(perturbed_insert_set(&set, &p).claims[0].end, 120);
    }
}

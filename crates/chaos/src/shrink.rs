//! Property-test-style minimization of chaos counterexamples.
//!
//! Given a perturbation whose probe satisfies a [`ChaosPredicate`], the
//! shrinker repeatedly tries a fixed-order list of reductions — dropping
//! failures, halving downtimes, zeroing whole knob groups, halving
//! individual knobs — and accepts the first reduction whose probe still
//! satisfies the predicate. Every accepted step strictly reduces
//! [`Perturbation::size`], so the loop terminates; the result is a locally
//! minimal counterexample fit for a regression fixture.

use crate::error::ChaosError;
use crate::harness::ChaosHarness;
use crate::perturbation::{DegradedClass, Perturbation};
use crate::score::{ChaosPredicate, ProbeReport};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The starting probe (predicate holds).
    pub original: ProbeReport,
    /// The minimized probe (predicate still holds).
    pub shrunk: ProbeReport,
    /// Accepted reductions.
    pub steps: u32,
    /// Probes spent (accepted and rejected).
    pub probes: u32,
}

impl ShrinkResult {
    /// How much smaller the counterexample got.
    pub fn reduction(&self) -> u64 {
        self.original
            .perturbation
            .size()
            .saturating_sub(self.shrunk.perturbation.size())
    }
}

/// Candidate reductions of `p`, in the fixed order the shrinker tries
/// them: structural drops first (whole failures, whole knob groups), then
/// halvings. Every candidate is canonical, valid, and strictly smaller
/// than `p`.
fn reductions(p: &Perturbation, num_devices: u32) -> Vec<Perturbation> {
    let mut out: Vec<Perturbation> = Vec::new();
    let mut push = |mut c: Perturbation| {
        c = c.canon();
        if c.size() < p.size() && c.validate(num_devices).is_ok() {
            out.push(c);
        }
    };

    // Drop one failure at a time.
    for i in 0..p.failures.len() {
        let mut c = p.clone();
        c.failures.remove(i);
        push(c);
    }
    // Truncate the failure list to its first half.
    if p.failures.len() >= 2 {
        let mut c = p.clone();
        c.failures.truncate(p.failures.len() / 2);
        push(c);
    }
    // Halve one failure's downtime.
    for i in 0..p.failures.len() {
        if p.failures[i].downtime_ms > 1 {
            let mut c = p.clone();
            c.failures[i].downtime_ms /= 2;
            push(c);
        }
    }
    // Zero whole knob groups.
    if p.straggler_pct > 0 {
        let mut c = p.clone();
        c.straggler_pct = 0;
        push(c);
    }
    if p.link_class != DegradedClass::None {
        let mut c = p.clone();
        c.link_class = DegradedClass::None;
        c.link_bw_drop_pct = 0;
        c.link_lat_pct = 0;
        push(c);
    }
    if p.jitter_pct > 0 {
        let mut c = p.clone();
        c.jitter_pct = 0;
        push(c);
    }
    if p.stall_pct > 0 {
        let mut c = p.clone();
        c.stall_pct = 0;
        c.stall_us = 0;
        push(c);
    }
    if p.mb_skew_pct > 0 {
        let mut c = p.clone();
        c.mb_skew_pct = 0;
        push(c);
    }
    // Halve individual knobs (relax degradations while the failure
    // hopefully still reproduces).
    for f in [
        |c: &mut Perturbation| c.straggler_pct /= 2,
        |c: &mut Perturbation| c.link_bw_drop_pct /= 2,
        |c: &mut Perturbation| c.link_lat_pct /= 2,
        |c: &mut Perturbation| c.jitter_pct /= 2,
        |c: &mut Perturbation| c.stall_pct /= 2,
        |c: &mut Perturbation| c.stall_us /= 2,
        |c: &mut Perturbation| c.mb_skew_pct /= 2,
    ] {
        let mut c = p.clone();
        f(&mut c);
        push(c);
    }
    out
}

/// Minimizes a counterexample while `predicate` keeps holding.
///
/// Errors if the predicate does not hold on `start` to begin with.
/// Deterministic: reductions are tried in a fixed order and the first
/// surviving one is accepted, so the same start always shrinks to the
/// same minimum.
pub fn shrink(
    harness: &ChaosHarness,
    predicate: ChaosPredicate,
    start: &Perturbation,
) -> Result<ShrinkResult, ChaosError> {
    let original = harness.probe(start)?;
    if !predicate.holds(&original) {
        return Err(ChaosError::Probe(format!(
            "predicate {} does not hold on the starting perturbation {}",
            predicate.label(),
            start.describe()
        )));
    }
    let num_devices = harness.num_devices();
    let mut current = original.clone();
    let mut steps = 0u32;
    let mut probes = 1u32;
    loop {
        let mut accepted = false;
        for cand in reductions(&current.perturbation, num_devices) {
            probes += 1;
            // A reduction that fails to probe is simply skipped.
            let Ok(report) = harness.probe(&cand) else {
                continue;
            };
            if predicate.holds(&report) {
                current = report;
                steps += 1;
                accepted = true;
                break;
            }
        }
        if !accepted {
            return Ok(ShrinkResult {
                original,
                shrunk: current,
                steps,
                probes,
            });
        }
    }
}

//! The perturbation space: one point = one adversarial environment.
//!
//! Every knob is an **integer tick count**, so a perturbation's
//! [`size`](Perturbation::size) is an exact integer, shrinking is a strict
//! monotone decrease, and serialization round-trips bit-exactly through
//! optimus-json. The knobs map onto the fault machinery the repo already
//! models:
//!
//! * straggler / link / jitter / stall knobs → [`FaultScenario`]s in a
//!   seeded [`FaultModel`];
//! * `mb_skew_pct` → a trace-distribution shift: the true per-microbatch
//!   encoder load ramps away from the distribution the plan assumed;
//! * `failures` → fail-stop / device-loss events, injected into the step
//!   graph *and* replayed as a [`FailureTrace`] against the checkpoint
//!   plan's multi-step recovery lifecycle.

use optimus_cluster::{DurNs, LinkClass, TimeNs};
use optimus_detrand::{rngs::StdRng, Rng, RngExt, SeedableRng};
use optimus_faults::{FaultModel, FaultScenario};
use optimus_json::Json;
use optimus_recovery::{Failure, FailureKind, FailureTrace};

use crate::error::ChaosError;

/// Which link class a perturbation degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradedClass {
    /// No link degradation.
    None,
    /// Intra-node NVLink.
    NvLink,
    /// Inter-node RDMA.
    Rdma,
}

impl DegradedClass {
    /// Stable label used in JSON and canonical keys.
    pub fn label(&self) -> &'static str {
        match self {
            DegradedClass::None => "none",
            DegradedClass::NvLink => "nvlink",
            DegradedClass::Rdma => "rdma",
        }
    }

    fn from_label(s: &str) -> Result<DegradedClass, ChaosError> {
        match s {
            "none" => Ok(DegradedClass::None),
            "nvlink" => Ok(DegradedClass::NvLink),
            "rdma" => Ok(DegradedClass::Rdma),
            other => Err(ChaosError::Invalid(format!("unknown link class `{other}`"))),
        }
    }

    /// The cluster link class, when degradation is on.
    pub fn link_class(&self) -> Option<LinkClass> {
        match self {
            DegradedClass::None => None,
            DegradedClass::NvLink => Some(LinkClass::NvLink),
            DegradedClass::Rdma => Some(LinkClass::Rdma),
        }
    }
}

/// One fail-stop or device-loss event, positioned relatively so the same
/// spec scales to both the single-step graph and the multi-step lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FailureSpec {
    /// Failing device index.
    pub device: u32,
    /// Failure instant as a percentage of the horizon, in `1..=99`.
    pub at_pct: u32,
    /// Restart cost (transient) or repair lead time (permanent), ms.
    pub downtime_ms: u32,
    /// Permanent device loss (true) vs transient fail-stop (false).
    pub permanent: bool,
}

/// Size weight of *having* a failure at all, before its downtime ticks:
/// dropping a failure must always shrink more than relaxing its knobs.
const FAILURE_BASE: u64 = 1_000;

impl FailureSpec {
    /// Ticks this failure contributes to the perturbation size.
    pub fn size(&self) -> u64 {
        FAILURE_BASE + self.downtime_ms as u64
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("device", Json::Num(self.device as f64)),
            ("at_pct", Json::Num(self.at_pct as f64)),
            ("downtime_ms", Json::Num(self.downtime_ms as f64)),
            ("permanent", Json::Bool(self.permanent)),
        ])
    }

    fn from_json(j: &Json) -> Result<FailureSpec, ChaosError> {
        let num = |k: &str| -> Result<u32, ChaosError> {
            j.field(k)
                .and_then(|v| v.as_u32())
                .map_err(|e| ChaosError::Invalid(format!("failure.{k}: {e}")))
        };
        Ok(FailureSpec {
            device: num("device")?,
            at_pct: num("at_pct")?,
            downtime_ms: num("downtime_ms")?,
            permanent: j
                .field("permanent")
                .and_then(|v| v.as_bool())
                .map_err(|e| ChaosError::Invalid(format!("failure.permanent: {e}")))?,
        })
    }
}

/// One point in the perturbation space. All knobs are integer ticks; zero
/// everywhere (and no failures) is the identity environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perturbation {
    /// Device slowed by the straggler, when `straggler_pct > 0`.
    pub straggler_device: u32,
    /// Straggler slowdown in percent over 1×: `slowdown = 1 + pct/100`.
    pub straggler_pct: u32,
    /// Which link class is degraded.
    pub link_class: DegradedClass,
    /// Bandwidth drop in percent: `bandwidth_factor = 1 − pct/100`.
    pub link_bw_drop_pct: u32,
    /// Latency inflation in percent: `latency_factor = 1 + pct/100`.
    pub link_lat_pct: u32,
    /// Kernel-jitter amplitude in percent: `eps = pct/100`.
    pub jitter_pct: u32,
    /// Transient-stall probability in percent.
    pub stall_pct: u32,
    /// Stall duration in microseconds.
    pub stall_us: u32,
    /// Trace-distribution shift: the true load of the last microbatch is
    /// `1 + pct/100` times the planned load, ramping linearly from the
    /// first microbatch (which stays at the planned load).
    pub mb_skew_pct: u32,
    /// Fail-stop / device-loss events.
    pub failures: Vec<FailureSpec>,
    /// Seed of the jitter/stall draw streams.
    pub seed: u64,
}

/// Knob bounds, shared by validation and random sampling.
pub const MAX_STRAGGLER_PCT: u32 = 400;
/// Bandwidth can drop at most 95% (the factor stays positive).
pub const MAX_BW_DROP_PCT: u32 = 95;
/// Latency inflation cap.
pub const MAX_LAT_PCT: u32 = 400;
/// Jitter amplitude must stay below 100% (`eps < 1`).
pub const MAX_JITTER_PCT: u32 = 95;
/// Stall probability cap (100% = every matching kernel stalls).
pub const MAX_STALL_PCT: u32 = 100;
/// Stall duration cap, µs.
pub const MAX_STALL_US: u32 = 100_000;
/// Microbatch-skew cap.
pub const MAX_MB_SKEW_PCT: u32 = 200;
/// Failure-count cap per perturbation.
pub const MAX_FAILURES: usize = 8;
/// Failure downtime cap, ms.
pub const MAX_DOWNTIME_MS: u32 = 60_000;

impl Perturbation {
    /// The identity perturbation under `seed`.
    pub fn zero(seed: u64) -> Perturbation {
        Perturbation {
            straggler_device: 0,
            straggler_pct: 0,
            link_class: DegradedClass::None,
            link_bw_drop_pct: 0,
            link_lat_pct: 0,
            jitter_pct: 0,
            stall_pct: 0,
            stall_us: 0,
            mb_skew_pct: 0,
            failures: Vec::new(),
            seed,
        }
    }

    /// True when no knob is active: the probe must score all-clean.
    pub fn is_identity(&self) -> bool {
        self.straggler_pct == 0
            && self.link_class == DegradedClass::None
            && self.jitter_pct == 0
            && self.stall_pct == 0
            && self.mb_skew_pct == 0
            && self.failures.is_empty()
    }

    /// Total perturbation size in ticks — the quantity shrinking minimizes.
    pub fn size(&self) -> u64 {
        self.straggler_pct as u64
            + self.link_bw_drop_pct as u64
            + self.link_lat_pct as u64
            + self.jitter_pct as u64
            + self.stall_pct as u64
            + (self.stall_us as u64).div_ceil(50)
            + self.mb_skew_pct as u64
            + self.failures.iter().map(|f| f.size()).sum::<u64>()
    }

    /// Bounds-checks every knob against the harness's device count.
    pub fn validate(&self, num_devices: u32) -> Result<(), ChaosError> {
        let check = |name: &str, v: u32, max: u32| -> Result<(), ChaosError> {
            if v > max {
                return Err(ChaosError::Invalid(format!("{name} {v} exceeds {max}")));
            }
            Ok(())
        };
        check("straggler_pct", self.straggler_pct, MAX_STRAGGLER_PCT)?;
        check("link_bw_drop_pct", self.link_bw_drop_pct, MAX_BW_DROP_PCT)?;
        check("link_lat_pct", self.link_lat_pct, MAX_LAT_PCT)?;
        check("jitter_pct", self.jitter_pct, MAX_JITTER_PCT)?;
        check("stall_pct", self.stall_pct, MAX_STALL_PCT)?;
        check("stall_us", self.stall_us, MAX_STALL_US)?;
        check("mb_skew_pct", self.mb_skew_pct, MAX_MB_SKEW_PCT)?;
        if self.straggler_pct > 0 && self.straggler_device >= num_devices {
            return Err(ChaosError::Invalid(format!(
                "straggler device {} out of range (cluster has {num_devices})",
                self.straggler_device
            )));
        }
        if self.link_class != DegradedClass::None
            && self.link_bw_drop_pct == 0
            && self.link_lat_pct == 0
        {
            return Err(ChaosError::Invalid(
                "degraded link class set but both degradation knobs are zero".into(),
            ));
        }
        if self.link_class == DegradedClass::None
            && (self.link_bw_drop_pct > 0 || self.link_lat_pct > 0)
        {
            return Err(ChaosError::Invalid(
                "link degradation knobs set without a link class".into(),
            ));
        }
        if self.failures.len() > MAX_FAILURES {
            return Err(ChaosError::Invalid(format!(
                "{} failures exceed the cap of {MAX_FAILURES}",
                self.failures.len()
            )));
        }
        for f in &self.failures {
            if f.device >= num_devices {
                return Err(ChaosError::Invalid(format!(
                    "failure device {} out of range (cluster has {num_devices})",
                    f.device
                )));
            }
            if !(1..=99).contains(&f.at_pct) {
                return Err(ChaosError::Invalid(format!(
                    "failure at_pct {} outside 1..=99",
                    f.at_pct
                )));
            }
            if f.downtime_ms == 0 || f.downtime_ms > MAX_DOWNTIME_MS {
                return Err(ChaosError::Invalid(format!(
                    "failure downtime {} ms outside 1..={MAX_DOWNTIME_MS}",
                    f.downtime_ms
                )));
            }
        }
        Ok(())
    }

    /// Canonicalizes inactive knobs so equal environments have equal keys:
    /// a zero-strength straggler pins its device to 0, a zero-degradation
    /// link drops its class, a zero-probability stall zeroes its duration.
    pub fn canon(mut self) -> Perturbation {
        if self.straggler_pct == 0 {
            self.straggler_device = 0;
        }
        if self.link_bw_drop_pct == 0 && self.link_lat_pct == 0 {
            self.link_class = DegradedClass::None;
        }
        if self.link_class == DegradedClass::None {
            self.link_bw_drop_pct = 0;
            self.link_lat_pct = 0;
        }
        if self.stall_pct == 0 {
            self.stall_us = 0;
        }
        if self.stall_us == 0 {
            self.stall_pct = 0;
        }
        self
    }

    /// Builds the seeded fault model for the single-step graph. `horizon_ns`
    /// is the fault-free step makespan; failure instants land at
    /// `at_pct`% of it.
    pub fn fault_model(&self, horizon_ns: i64) -> Result<FaultModel, ChaosError> {
        let mut scenarios = Vec::new();
        if self.straggler_pct > 0 {
            scenarios.push(FaultScenario::StragglerDevice {
                device: self.straggler_device,
                slowdown: 1.0 + self.straggler_pct as f64 / 100.0,
            });
        }
        if let Some(class) = self.link_class.link_class() {
            scenarios.push(FaultScenario::DegradedLink {
                class,
                bandwidth_factor: 1.0 - self.link_bw_drop_pct as f64 / 100.0,
                latency_factor: 1.0 + self.link_lat_pct as f64 / 100.0,
            });
        }
        if self.jitter_pct > 0 {
            scenarios.push(FaultScenario::KernelJitter {
                eps: self.jitter_pct as f64 / 100.0,
            });
        }
        if self.stall_pct > 0 && self.stall_us > 0 {
            scenarios.push(FaultScenario::TransientStalls {
                prob: self.stall_pct as f64 / 100.0,
                stall: DurNs(self.stall_us as u64 * 1_000),
                device: None,
            });
        }
        for f in &self.failures {
            let at = TimeNs((horizon_ns.max(0) as u64).saturating_mul(f.at_pct as u64) / 100);
            let downtime = DurNs(f.downtime_ms as u64 * 1_000_000);
            scenarios.push(if f.permanent {
                FaultScenario::DeviceLoss {
                    device: f.device,
                    at,
                    repair: downtime,
                }
            } else {
                FaultScenario::FailStop {
                    device: f.device,
                    at,
                    restart: downtime,
                }
            });
        }
        let mut model = FaultModel::new(self.seed);
        for s in scenarios {
            model = model
                .with(s)
                .map_err(|e| ChaosError::Invalid(e.to_string()))?;
        }
        Ok(model)
    }

    /// Replays the failure specs as a multi-step [`FailureTrace`] over a
    /// recovery horizon of `horizon_wall_ns`.
    pub fn failure_trace(&self, horizon_wall_ns: i64) -> Result<FailureTrace, ChaosError> {
        let failures = self
            .failures
            .iter()
            .map(|f| {
                let at =
                    TimeNs((horizon_wall_ns.max(0) as u64).saturating_mul(f.at_pct as u64) / 100);
                let downtime = DurNs(f.downtime_ms as u64 * 1_000_000);
                Failure {
                    at,
                    device: f.device,
                    kind: if f.permanent {
                        FailureKind::Permanent { repair: downtime }
                    } else {
                        FailureKind::Transient { restart: downtime }
                    },
                }
            })
            .collect();
        FailureTrace::new(failures).map_err(|e| ChaosError::Invalid(e.to_string()))
    }

    /// The true per-microbatch load shift: a linear ramp from 1.0 on the
    /// first microbatch to `1 + mb_skew_pct/100` on the last.
    pub fn mb_shift(&self, n_mb: usize) -> Vec<f64> {
        let span = (n_mb.max(1) - 1).max(1) as f64;
        (0..n_mb)
            .map(|m| 1.0 + self.mb_skew_pct as f64 / 100.0 * m as f64 / span)
            .collect()
    }

    /// JSON encoding (bit-exact round trip via [`Perturbation::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("straggler_device", Json::Num(self.straggler_device as f64)),
            ("straggler_pct", Json::Num(self.straggler_pct as f64)),
            ("link_class", Json::Str(self.link_class.label().into())),
            ("link_bw_drop_pct", Json::Num(self.link_bw_drop_pct as f64)),
            ("link_lat_pct", Json::Num(self.link_lat_pct as f64)),
            ("jitter_pct", Json::Num(self.jitter_pct as f64)),
            ("stall_pct", Json::Num(self.stall_pct as f64)),
            ("stall_us", Json::Num(self.stall_us as f64)),
            ("mb_skew_pct", Json::Num(self.mb_skew_pct as f64)),
            (
                "failures",
                Json::Arr(self.failures.iter().map(|f| f.to_json()).collect()),
            ),
            ("seed", Json::Num(self.seed as f64)),
        ])
    }

    /// Decodes a perturbation from its JSON encoding.
    pub fn from_json(j: &Json) -> Result<Perturbation, ChaosError> {
        let num = |k: &str| -> Result<u32, ChaosError> {
            j.field(k)
                .and_then(|v| v.as_u32())
                .map_err(|e| ChaosError::Invalid(format!("{k}: {e}")))
        };
        let failures = j
            .field("failures")
            .and_then(|v| v.as_arr().map(|a| a.to_vec()))
            .map_err(|e| ChaosError::Invalid(format!("failures: {e}")))?
            .iter()
            .map(FailureSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Perturbation {
            straggler_device: num("straggler_device")?,
            straggler_pct: num("straggler_pct")?,
            link_class: DegradedClass::from_label(
                j.field("link_class")
                    .and_then(|v| v.as_str().map(str::to_string))
                    .map_err(|e| ChaosError::Invalid(format!("link_class: {e}")))?
                    .as_str(),
            )?,
            link_bw_drop_pct: num("link_bw_drop_pct")?,
            link_lat_pct: num("link_lat_pct")?,
            jitter_pct: num("jitter_pct")?,
            stall_pct: num("stall_pct")?,
            stall_us: num("stall_us")?,
            mb_skew_pct: num("mb_skew_pct")?,
            failures,
            seed: j
                .field("seed")
                .and_then(|v| v.as_u64())
                .map_err(|e| ChaosError::Invalid(format!("seed: {e}")))?,
        })
    }

    /// Canonical ordering/dedup key: the compact JSON encoding.
    pub fn key(&self) -> String {
        self.to_json().to_compact()
    }

    /// Short human-readable summary for logs and fixture descriptions.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.straggler_pct > 0 {
            parts.push(format!(
                "straggler dev{} +{}%",
                self.straggler_device, self.straggler_pct
            ));
        }
        if self.link_class != DegradedClass::None {
            parts.push(format!(
                "{} -{}% bw +{}% lat",
                self.link_class.label(),
                self.link_bw_drop_pct,
                self.link_lat_pct
            ));
        }
        if self.jitter_pct > 0 {
            parts.push(format!("jitter {}%", self.jitter_pct));
        }
        if self.stall_pct > 0 {
            parts.push(format!("stalls {}% x {}us", self.stall_pct, self.stall_us));
        }
        if self.mb_skew_pct > 0 {
            parts.push(format!("mb skew +{}%", self.mb_skew_pct));
        }
        for f in &self.failures {
            parts.push(format!(
                "{} dev{} @{}% {}ms",
                if f.permanent { "loss" } else { "failstop" },
                f.device,
                f.at_pct,
                f.downtime_ms
            ));
        }
        if parts.is_empty() {
            return "identity".into();
        }
        parts.join(", ")
    }

    /// Draws a random starting point from a seeded detrand stream: each
    /// knob is active with moderate probability so restarts explore mixed
    /// environments. Bit-identical for equal `(seed, num_devices)`.
    pub fn sample(seed: u64, num_devices: u32) -> Perturbation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Perturbation::zero(seed);
        if rng.next_f64() < 0.6 {
            p.straggler_device = rng.random_range(0..num_devices.max(1));
            p.straggler_pct = rng.random_range(10u32..=MAX_STRAGGLER_PCT / 2);
        }
        if rng.next_f64() < 0.4 {
            p.link_class = if rng.next_f64() < 0.5 {
                DegradedClass::NvLink
            } else {
                DegradedClass::Rdma
            };
            p.link_bw_drop_pct = rng.random_range(10u32..=MAX_BW_DROP_PCT);
            p.link_lat_pct = rng.random_range(0u32..=MAX_LAT_PCT / 2);
        }
        if rng.next_f64() < 0.4 {
            p.jitter_pct = rng.random_range(5u32..=MAX_JITTER_PCT / 2);
        }
        if rng.next_f64() < 0.3 {
            p.stall_pct = rng.random_range(10u32..=60);
            p.stall_us = rng.random_range(100u32..=2_000);
        }
        if rng.next_f64() < 0.4 {
            p.mb_skew_pct = rng.random_range(10u32..=MAX_MB_SKEW_PCT / 2);
        }
        let n_failures = rng.random_range(0u32..=2);
        for i in 0..n_failures {
            p.failures.push(FailureSpec {
                device: rng.random_range(0..num_devices.max(1)),
                at_pct: rng.random_range(10u32..=90),
                downtime_ms: rng.random_range(20u32..=1_000),
                permanent: i > 0 && rng.next_f64() < 0.5,
            });
        }
        p.canon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_size_zero() {
        let p = Perturbation::zero(7);
        assert!(p.is_identity());
        assert_eq!(p.size(), 0);
        p.validate(8).unwrap();
        assert_eq!(p.describe(), "identity");
        let model = p.fault_model(1_000_000).unwrap();
        assert!(model.scenarios().is_empty());
        assert!(p.failure_trace(1_000_000).unwrap().is_empty());
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let p = Perturbation {
            straggler_device: 3,
            straggler_pct: 120,
            link_class: DegradedClass::Rdma,
            link_bw_drop_pct: 60,
            link_lat_pct: 40,
            jitter_pct: 15,
            stall_pct: 25,
            stall_us: 500,
            mb_skew_pct: 80,
            failures: vec![
                FailureSpec {
                    device: 1,
                    at_pct: 40,
                    downtime_ms: 50,
                    permanent: false,
                },
                FailureSpec {
                    device: 2,
                    at_pct: 70,
                    downtime_ms: 900,
                    permanent: true,
                },
            ],
            seed: 42,
        };
        p.validate(8).unwrap();
        let text = p.to_json().to_compact();
        let back = Perturbation::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.key(), p.key());
    }

    #[test]
    fn size_is_monotone_in_every_knob() {
        let mut p = Perturbation::zero(0);
        let mut last = p.size();
        p.straggler_pct = 50;
        assert!(p.size() > last);
        last = p.size();
        p.link_class = DegradedClass::NvLink;
        p.link_bw_drop_pct = 30;
        assert!(p.size() > last);
        last = p.size();
        p.jitter_pct = 10;
        assert!(p.size() > last);
        last = p.size();
        p.stall_pct = 20;
        p.stall_us = 400;
        assert!(p.size() > last);
        last = p.size();
        p.mb_skew_pct = 25;
        assert!(p.size() > last);
        last = p.size();
        p.failures.push(FailureSpec {
            device: 0,
            at_pct: 50,
            downtime_ms: 100,
            permanent: false,
        });
        assert!(p.size() > last);
        // Halving a failure's downtime shrinks, dropping it shrinks more.
        let mut halved = p.clone();
        halved.failures[0].downtime_ms = 50;
        let mut dropped = p.clone();
        dropped.failures.clear();
        assert!(halved.size() < p.size());
        assert!(dropped.size() < halved.size());
    }

    #[test]
    fn validation_rejects_out_of_range_knobs() {
        let mut p = Perturbation::zero(0);
        p.straggler_pct = MAX_STRAGGLER_PCT + 1;
        assert!(p.validate(8).is_err());
        let mut p = Perturbation::zero(0);
        p.straggler_pct = 10;
        p.straggler_device = 8;
        assert!(p.validate(8).is_err());
        let mut p = Perturbation::zero(0);
        p.link_class = DegradedClass::NvLink;
        assert!(p.validate(8).is_err(), "class without knobs");
        let mut p = Perturbation::zero(0);
        p.link_bw_drop_pct = 10;
        assert!(p.validate(8).is_err(), "knobs without class");
        let mut p = Perturbation::zero(0);
        p.failures.push(FailureSpec {
            device: 0,
            at_pct: 0,
            downtime_ms: 10,
            permanent: false,
        });
        assert!(p.validate(8).is_err(), "at_pct 0");
        p.failures[0].at_pct = 50;
        p.failures[0].downtime_ms = 0;
        assert!(p.validate(8).is_err(), "zero downtime");
    }

    #[test]
    fn canon_normalizes_inactive_knobs() {
        let mut p = Perturbation::zero(0);
        p.straggler_device = 5;
        p.stall_us = 300;
        let c = p.canon();
        assert_eq!(c.straggler_device, 0);
        assert_eq!(c.stall_us, 0);
        assert_eq!(c, Perturbation::zero(0));
    }

    #[test]
    fn fault_model_scenario_order_is_fixed() {
        let mut p = Perturbation::zero(9);
        p.straggler_pct = 50;
        p.jitter_pct = 10;
        p.failures.push(FailureSpec {
            device: 1,
            at_pct: 50,
            downtime_ms: 20,
            permanent: false,
        });
        let m = p.fault_model(1_000_000).unwrap();
        let labels: Vec<&str> = m.scenarios().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["straggler_device", "kernel_jitter", "fail_stop"]
        );
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let a = Perturbation::sample(11, 8);
        let b = Perturbation::sample(11, 8);
        assert_eq!(a, b);
        a.validate(8).unwrap();
        let c = Perturbation::sample(12, 8);
        assert!(a != c, "different seeds should explore different points");
    }

    #[test]
    fn mb_shift_ramps_to_the_skew() {
        let mut p = Perturbation::zero(0);
        p.mb_skew_pct = 100;
        let s = p.mb_shift(5);
        assert_eq!(s.len(), 5);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[4] - 2.0).abs() < 1e-12);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(Perturbation::zero(0).mb_shift(3), vec![1.0; 3]);
    }
}

//! Adversarial chaos search over Optimus schedules, with shrinking
//! counterexamples as regression fixtures.
//!
//! The repo already models the perturbation space a production run lives
//! in — fault scenarios (`optimus-faults`), failure traces and recovery
//! lifecycles (`optimus-recovery`), schedule lints (`optimus-lint`). This
//! crate turns those models *against* the planner:
//!
//! 1. A [`Perturbation`] bundles the knobs (straggler, link degradation,
//!    kernel jitter, transient stalls, microbatch skew, fail-stop /
//!    device-loss sets) as bounded integers, with a canonical JSON form
//!    and a `size` the shrinker minimizes.
//! 2. A [`ChaosHarness`] plans a workload once and scores any
//!    perturbation against it on three surfaces: makespan **regret**
//!    versus a fault-aware re-plan, OPT005 **lint violations** of the
//!    perturbed insert schedule, and **exact-ledger violations** in the
//!    checkpoint/restart lifecycle. Scores order lexicographically by
//!    severity ([`ChaosScore`]).
//! 3. [`chaos_search`] runs seeded coordinate descent over fixed ladders,
//!    batching probes on the deterministic worker pool — results are
//!    bit-identical at any worker count — and keeps the worst offenders.
//! 4. [`shrink`] minimizes a counterexample property-test style: drop
//!    faults, shorten failure lists, relax degradations, while the
//!    [`ChaosPredicate`] keeps holding.
//! 5. A [`ChaosFixture`] serializes the minimized counterexample under
//!    `tests/golden/chaos/`; the integration suite replays every fixture
//!    forever.
//!
//! ```no_run
//! use optimus_chaos::{
//!     chaos_search, shrink, ChaosHarness, ChaosPredicate, ChaosSearchConfig, ChaosSettings,
//! };
//!
//! let harness = ChaosHarness::reference(ChaosSettings::default()).unwrap();
//! let findings = chaos_search(&harness, &ChaosSearchConfig::default()).unwrap();
//! if let Some(worst) = findings.worst() {
//!     let predicate = ChaosPredicate::LintErrors;
//!     if predicate.holds(worst) {
//!         let minimal = shrink(&harness, predicate, &worst.perturbation).unwrap();
//!         println!("minimized: {}", minimal.shrunk.perturbation.describe());
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fixture;
pub mod harness;
pub mod perturbation;
pub mod score;
pub mod search;
pub mod shrink;

pub use error::ChaosError;
pub use fixture::ChaosFixture;
pub use harness::{ChaosHarness, ChaosSettings, REFERENCE_BUBBLE_SLACK};
pub use perturbation::{DegradedClass, FailureSpec, Perturbation};
pub use score::{
    ledger_violations, lint_violations, perturbed_insert_set, ChaosPredicate, ChaosScore,
    ProbeReport,
};
pub use search::{chaos_search, ChaosFindings, ChaosSearchConfig};
pub use shrink::{shrink, ShrinkResult};

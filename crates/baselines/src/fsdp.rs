//! The PyTorch-FSDP baseline (§5.1): pure sharded data parallelism. Each
//! layer's parameters are all-gathered before use and gradients
//! reduce-scattered after the backward; there is no pipeline or tensor
//! parallelism, so activations for the full model depth stay resident.

use optimus_cluster::CollectiveKind;
use optimus_cluster::ProcessGroup;
use optimus_modeling::kernels::KernelTimer;
use optimus_modeling::memory::{activation_bytes_per_layer, MemoryEstimate, Recompute};
use optimus_modeling::{layer_kernels, Pass, StepReport, TransformerConfig, Workload};

use crate::common::{make_report, SystemContext};
use crate::error::BaselineError;

/// Compute-efficiency multiplier for FSDP's eager-mode execution: PyTorch
/// hooks, unfused kernels and per-op dispatch versus Megatron's fused
/// kernels. A documented calibration substitution (see DESIGN.md), matching
/// the paper's observation that FSDP sits between Megatron-LM and Optimus.
pub const FSDP_EAGER_EFFICIENCY: f64 = 0.80;

fn model_compute_secs(cfg: &TransformerConfig, batch: u64, seq: u64, timer: &KernelTimer) -> f64 {
    let fwd = timer.compute_total(&layer_kernels(cfg, batch, seq, 1, Pass::Forward));
    let bwd = timer.compute_total(&layer_kernels(cfg, batch, seq, 1, Pass::Backward));
    cfg.layers as f64 * (fwd.as_secs_f64() + bwd.as_secs_f64())
}

/// Runs the FSDP baseline analytically.
///
/// Returns `Err(Infeasible)` when the global batch is smaller than the
/// data-parallel width (FSDP cannot give every rank a sample) — the failure
/// mode behind the paper's weak-scaling "OOM" entries is reported by the
/// caller either way. Memory-overflow configurations return a report with
/// `oom = true`.
pub fn fsdp(w: &Workload, ctx: &SystemContext) -> Result<StepReport, BaselineError> {
    let n = w.num_gpus;
    if w.global_batch < n {
        return Err(BaselineError::Infeasible(format!(
            "global batch {} smaller than {} FSDP ranks",
            w.global_batch, n
        )));
    }
    let local_batch = u64::from(w.global_batch / n);
    let timer = ctx.timer(1)?;

    // Compute: the full model runs serially on every rank over its local
    // batch (forward + backward), plus the recomputation that selective
    // activation checkpointing performs during the backward (≈1/3 of a
    // forward: the attention block), all at eager-mode efficiency.
    let mut compute = model_compute_secs(&w.mllm.llm, local_batch, w.mllm.llm_seq, &timer);
    for e in &w.mllm.encoders {
        compute += model_compute_secs(e, local_batch, w.mllm.encoder_seq, &timer);
    }
    let recompute = compute / 3.0 / 3.0; // 1/3 of the fwd third of fwd+bwd
    let compute = (compute + recompute) / FSDP_EAGER_EFFICIENCY;

    // Communication: parameters are all-gathered (bf16) for the forward and
    // — with the default reshard-after-forward — again for the backward;
    // gradients are reduce-scattered (fp32) across all ranks.
    let group = ProcessGroup::contiguous(0, n).map_err(|e| BaselineError::Setup(e.to_string()))?;
    let params = w.mllm.total_params();
    let ag = ctx
        .comm
        .collective_time(CollectiveKind::AllGather, params * 2, &group);
    let rs = ctx
        .comm
        .collective_time(CollectiveKind::ReduceScatter, params * 4, &group);
    let comm = 2.0 * ag.as_secs_f64() + rs.as_secs_f64();

    // FSDP prefetching overlaps communication with compute, imperfectly.
    let iteration = compute.max(comm) + 0.10 * compute.min(comm);

    // Memory: fully-sharded states + the transiently unsharded working set +
    // full-depth activations. Selective activation checkpointing is assumed
    // (standard FSDP practice); even so, full-depth activations of a 70B+
    // backbone exhaust HBM.
    let shard = params * (2 + 4 + 12) / u64::from(n);
    let max_layer_params = w
        .mllm
        .encoders
        .iter()
        .chain(std::iter::once(&w.mllm.llm))
        .map(|c| c.params_per_layer())
        .max()
        .unwrap_or(0);
    let mut activations = w.mllm.llm.layers
        * activation_bytes_per_layer(
            &w.mllm.llm,
            local_batch,
            w.mllm.llm_seq,
            1,
            Recompute::Selective,
        );
    for e in &w.mllm.encoders {
        activations += e.layers
            * activation_bytes_per_layer(
                e,
                local_batch,
                w.mllm.encoder_seq,
                1,
                Recompute::Selective,
            );
    }
    let memory = MemoryEstimate {
        model_states: shard,
        optimizer: 0,
        activations: activations + 2 * 2 * max_layer_params,
        overhead: MemoryEstimate::DEFAULT_OVERHEAD,
    };

    let mut report = make_report("FSDP", w, ctx, iteration, &memory);
    if report.oom {
        report = StepReport::oom("FSDP", memory.total_gib());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_modeling::MllmConfig;

    #[test]
    fn small_model_fits_and_runs() {
        // Appendix C: FSDP trains ViT-3B + GPT-11B on 8 GPUs (3.20 s on
        // A100s; absolute numbers differ on our analytic H100 profile).
        let w = Workload::small_model();
        let ctx = SystemContext::ampere(8).unwrap();
        let r = fsdp(&w, &ctx).unwrap();
        assert!(!r.oom, "peak {:.1} GiB", r.peak_memory_gib);
        assert!(r.iteration_secs > 0.1 && r.iteration_secs < 60.0);
    }

    #[test]
    fn weak_scaling_models_fail() {
        // Fig. 15: FSDP OOMs/fails on every Table 3 model (batch < ranks,
        // and full-depth activations regardless).
        let ctx = SystemContext::hopper(64).unwrap();
        let w = Workload::new(MllmConfig::model_a(), 64, 32, 1);
        assert!(matches!(fsdp(&w, &ctx), Err(BaselineError::Infeasible(_))));
    }

    #[test]
    fn large_model_at_scale_oom() {
        // Even with enough samples, a 70B model without PP/TP exhausts HBM.
        let ctx = SystemContext::hopper(64).unwrap();
        let w = Workload::new(MllmConfig::model_a(), 64, 128, 1);
        let r = fsdp(&w, &ctx).unwrap();
        assert!(r.oom, "peak {:.1} GiB", r.peak_memory_gib);
    }
}

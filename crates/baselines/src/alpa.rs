//! The Alpa-like baseline (§5.1): automatic inter/intra-operator parallelism
//! with a GPipe-style pipeline (Alpa does not implement 1F1B-interleaving)
//! and no sequence parallelism, searched over candidate plans.
//!
//! Substitution note (see DESIGN.md): Alpa's measured slowness on real
//! hardware comes largely from XLA codegen quality (no fused attention,
//! less-tuned GEMM schedules). We model that with a degraded GPU profile
//! (≈0.45× kernel efficiency) — a calibration substitution, documented, that
//! preserves the paper's qualitative result (Alpa ≈3× slower, OOM at scale).

use optimus_cluster::DurNs;
use optimus_cluster::GpuProfile;
use optimus_modeling::memory::{activation_bytes_no_seqpar, Recompute};
use optimus_modeling::{MemoryEstimate, StepReport, Workload};
use optimus_parallel::{enumerate_plans, ParallelPlan};
use optimus_pipeline::{balance_layers, gpipe, simulate_pipeline, PipelineSpec, StageSpec};

use crate::common::{make_report, SystemContext};
use crate::error::BaselineError;

/// Efficiency multiplier modeling XLA-generated kernels.
pub const ALPA_KERNEL_EFFICIENCY: f64 = 0.45;

/// Result of the Alpa-like plan search.
#[derive(Debug, Clone)]
pub struct AlpaRun {
    /// Headline numbers (marked `oom` when no plan fits memory).
    pub report: StepReport,
    /// The chosen plan (minimum simulated time, or minimum memory if
    /// nothing fits).
    pub plan: ParallelPlan,
}

fn degraded(gpu: &GpuProfile) -> GpuProfile {
    let mut g = gpu.clone();
    g.matmul_efficiency = gpu.matmul_efficiency * ALPA_KERNEL_EFFICIENCY;
    g.attention_efficiency = gpu.attention_efficiency * ALPA_KERNEL_EFFICIENCY;
    g
}

/// Memory estimate for a GPipe plan.
///
/// Two structural disadvantages versus optimized Megatron-LM (§7): no
/// sequence parallelism (the 10·s·b·h activation term is replicated across
/// TP ranks), and GPipe retention — with `pp > 1`, all `n_mb` microbatch
/// activations of a stage stay resident until the backward drain.
fn gpipe_memory(
    w: &Workload,
    plan: &ParallelPlan,
    stage_params: &[u64],
    enc_in_first: bool,
    n_mb: u32,
) -> MemoryEstimate {
    let mb = u64::from(w.microbatch_size);
    let tp = u64::from(plan.tp);
    let split = plan.layer_split(w.mllm.llm.layers as u32);
    let inflight = if plan.pp > 1 { u64::from(n_mb) } else { 1 };
    let mut worst = MemoryEstimate::default();
    for (s, &layers) in split.iter().enumerate() {
        let mut act = u64::from(layers)
            * activation_bytes_no_seqpar(&w.mllm.llm, mb, w.mllm.llm_seq, tp, Recompute::Selective);
        if s == 0 && enc_in_first {
            for e in &w.mllm.encoders {
                act += e.layers
                    * activation_bytes_no_seqpar(
                        e,
                        mb,
                        w.mllm.encoder_seq,
                        tp,
                        Recompute::Selective,
                    );
            }
        }
        let params = stage_params[s];
        let est = MemoryEstimate {
            model_states: params * 6,
            optimizer: params * 12 / u64::from(plan.dp),
            activations: act * inflight,
            overhead: MemoryEstimate::DEFAULT_OVERHEAD,
        };
        if est.total() > worst.total() {
            worst = est;
        }
    }
    worst
}

/// Runs the Alpa-like baseline: search (DP, PP, TP) plans, simulate GPipe on
/// each memory-feasible plan, return the fastest.
pub fn alpa(w: &Workload, ctx: &SystemContext) -> Result<AlpaRun, BaselineError> {
    let ctx = ctx.with_gpu(degraded(&ctx.topo.gpu));
    let candidates = enumerate_plans(w.num_gpus, ctx.topo.gpus_per_node, w.mllm.llm.layers as u32);

    let mut best: Option<(f64, ParallelPlan, StepReport)> = None;
    let mut min_mem: Option<(u64, ParallelPlan, MemoryEstimate)> = None;

    for plan in candidates {
        let Some(n_mb) = w.microbatches(plan.dp) else {
            continue;
        };
        if plan.pp > 1 && n_mb == 0 {
            continue;
        }
        let timer = ctx.timer(plan.tp)?;
        let mb = u64::from(w.microbatch_size);

        let mut stages = crate::common::llm_stages(&w.mllm.llm, &plan, mb, w.mllm.llm_seq, &timer);
        // Alpa's inter-op DP places encoder layers on the early stages; as
        // with the balanced baseline, approximate with the DP partition when
        // single-encoder, else pack encoders into stage 0.
        let mut enc_stage = StageSpec::default();
        for e in &w.mllm.encoders {
            enc_stage = enc_stage.then(StageSpec::transformer_layers(
                e,
                e.layers as u32,
                mb,
                w.mllm.encoder_seq,
                u64::from(plan.tp),
                &timer,
            ));
        }
        let llm0 = std::mem::take(&mut stages[0]);
        stages[0] = enc_stage.then(llm0);
        let stage_params: Vec<u64> = stages.iter().map(|s| s.params_per_gpu).collect();

        let memory = gpipe_memory(w, &plan, &stage_params, true, n_mb);
        match &min_mem {
            Some((m, _, _)) if *m <= memory.total() => {}
            _ => min_mem = Some((memory.total(), plan, memory)),
        }
        if !memory.fits(ctx.topo.gpu.hbm_capacity) {
            continue;
        }

        // Alpa does not overlap DP collectives: charge them unhidden.
        let max_params = stage_params.iter().copied().max().unwrap_or(0);
        let (dp_ag, dp_rs) = ctx.dp_comm(max_params, 1, plan.dp, plan.pp * plan.tp)?;
        let act_bytes = stages.iter().map(|s| s.activation_bytes).max().unwrap_or(0);
        let spec = PipelineSpec {
            pp: plan.pp,
            vpp: 1,
            n_microbatches: n_mb,
            stages,
            dp_allgather: dp_ag,
            dp_reducescatter: dp_rs,
            p2p: ctx.p2p(act_bytes),
        };
        let schedule = gpipe(plan.pp, n_mb)?;
        let (_lowered, result) = simulate_pipeline(&spec, &schedule, &[])?;
        let secs = result.makespan().as_secs_f64();
        let report = make_report("Alpa", w, &ctx, secs, &memory);
        if best.as_ref().map(|(t, _, _)| secs < *t).unwrap_or(true) {
            best = Some((secs, plan, report));
        }
    }

    match best {
        Some((_, plan, report)) => Ok(AlpaRun { report, plan }),
        None => {
            let (_, plan, memory) = min_mem.ok_or_else(|| {
                BaselineError::Infeasible("no Alpa plan enumerable for this workload".into())
            })?;
            Ok(AlpaRun {
                report: StepReport::oom("Alpa", memory.total_gib()),
                plan,
            })
        }
    }
}

/// Convenience: use the Appendix B balanced partition for Alpa's inter-op
/// split of a single-encoder model; exposed for tests and ablations.
pub fn alpa_balanced_layer_counts(
    w: &Workload,
    plan: &ParallelPlan,
    ctx: &SystemContext,
) -> Result<Vec<u32>, BaselineError> {
    let timer = ctx.timer(plan.tp)?;
    let mb = u64::from(w.microbatch_size);
    let enc = &w.mllm.encoders[0];
    let llm = &w.mllm.llm;
    let enc_layer =
        StageSpec::transformer_layers(enc, 1, mb, w.mllm.encoder_seq, u64::from(plan.tp), &timer);
    let llm_layer =
        StageSpec::transformer_layers(llm, 1, mb, w.mllm.llm_seq, u64::from(plan.tp), &timer);
    let mut times: Vec<DurNs> = Vec::new();
    times.extend(std::iter::repeat_n(
        enc_layer.fwd_compute() + enc_layer.bwd_compute(),
        enc.layers as usize,
    ));
    times.extend(std::iter::repeat_n(
        llm_layer.fwd_compute() + llm_layer.bwd_compute(),
        llm.layers as usize,
    ));
    Ok(balance_layers(&times, plan.pp)?.layers_per_stage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::megatron::megatron_lm;
    use optimus_modeling::MllmConfig;

    #[test]
    fn small_model_runs_but_slower_than_megatron() {
        // Table 4: Alpa 8.61 s vs Megatron-LM 3.42 s (≈2.5× slower).
        let w = Workload::small_model();
        let ctx = SystemContext::ampere(8).unwrap();
        let a = alpa(&w, &ctx).unwrap();
        assert!(!a.report.oom, "peak {:.1} GiB", a.report.peak_memory_gib);
        let m = megatron_lm(&w, (2, 2, 2), &ctx).unwrap();
        let ratio = a.report.iteration_secs / m.report.iteration_secs;
        assert!(ratio > 1.5, "Alpa only {ratio:.2}× slower");
    }

    #[test]
    fn weak_scaling_model_ooms() {
        // Fig. 15: Alpa OOMs on the Table 3 models (GPipe activation
        // retention, no sequence parallelism).
        let w = Workload::new(MllmConfig::model_a(), 64, 32, 1);
        let ctx = SystemContext::hopper(64).unwrap();
        let a = alpa(&w, &ctx).unwrap();
        assert!(a.report.oom, "peak {:.1} GiB", a.report.peak_memory_gib);
    }

    #[test]
    fn balanced_layer_counts_cover_all_layers() {
        let w = Workload::small_model();
        let ctx = SystemContext::ampere(8).unwrap();
        let plan = ParallelPlan::new(1, 4, 2).unwrap();
        let counts = alpa_balanced_layer_counts(&w, &plan, &ctx).unwrap();
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<u32>(), 48 + 80);
        // The encoder-heavy front stages take more (cheap) layers.
        assert!(counts[0] > counts[3], "{counts:?}");
    }

    #[test]
    fn degraded_profile_scales_efficiency() {
        let g = degraded(&GpuProfile::h100());
        assert!(g.matmul_efficiency < GpuProfile::h100().matmul_efficiency);
        let expected = GpuProfile::h100().matmul_efficiency * ALPA_KERNEL_EFFICIENCY;
        assert!((g.matmul_efficiency - expected).abs() < 1e-12);
    }
}

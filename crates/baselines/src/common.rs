//! Shared machinery for building simulated training systems: process groups,
//! DP collective sizing, stage construction, memory estimation and report
//! assembly.

use optimus_cluster::{
    ClusterTopology, CollectiveKind, CommCostModel, DurNs, GpuProfile, ProcessGroup,
};
use optimus_modeling::kernels::KernelTimer;
use optimus_modeling::memory::{
    activation_bytes_per_layer, model_state_bytes, MemoryEstimate, Recompute,
};
use optimus_modeling::{flops, StepReport, TransformerConfig, Workload};
use optimus_parallel::ParallelPlan;
use optimus_pipeline::StageSpec;

use crate::error::BaselineError;

/// Cluster + communication model bundle shared by all systems.
#[derive(Debug, Clone)]
pub struct SystemContext {
    /// Cluster topology.
    pub topo: ClusterTopology,
    /// Communication cost model over the topology.
    pub comm: CommCostModel,
}

impl SystemContext {
    /// Hopper production cluster of `num_gpus`.
    pub fn hopper(num_gpus: u32) -> Result<SystemContext, BaselineError> {
        let topo = ClusterTopology::hopper_cluster(num_gpus)
            .map_err(|e| BaselineError::Setup(e.to_string()))?;
        Ok(SystemContext {
            comm: CommCostModel::new(topo.clone()),
            topo,
        })
    }

    /// Ampere node (Appendix C comparison).
    pub fn ampere(num_gpus: u32) -> Result<SystemContext, BaselineError> {
        let topo = ClusterTopology::ampere_node(num_gpus)
            .map_err(|e| BaselineError::Setup(e.to_string()))?;
        Ok(SystemContext {
            comm: CommCostModel::new(topo.clone()),
            topo,
        })
    }

    /// Context with a custom GPU profile (e.g. the degraded profile modeling
    /// Alpa's unfused XLA kernels).
    pub fn with_gpu(&self, gpu: GpuProfile) -> SystemContext {
        let mut topo = self.topo.clone();
        topo.gpu = gpu;
        SystemContext {
            comm: CommCostModel::new(topo.clone()),
            topo,
        }
    }

    /// Context rebound to a different topology (e.g. one with degraded
    /// links from a fault model), with a fresh communication cost model —
    /// the memo cache of the original must not leak stale link prices.
    pub fn with_topology(&self, topo: ClusterTopology) -> SystemContext {
        SystemContext {
            comm: self.comm.with_topology(topo.clone()),
            topo,
        }
    }

    /// A tensor-parallel group of `tp` adjacent GPUs (always intra-node by
    /// plan validation).
    pub fn tp_group(&self, tp: u32) -> Result<ProcessGroup, BaselineError> {
        ProcessGroup::contiguous(0, tp).map_err(|e| BaselineError::Setup(e.to_string()))
    }

    /// A data-parallel group: `dp` GPUs strided by `pp·tp` (one per
    /// pipeline replica). Spans nodes for any realistic scale.
    pub fn dp_group(&self, dp: u32, stride: u32) -> Result<ProcessGroup, BaselineError> {
        let ranks = (0..dp)
            .map(|r| optimus_cluster::DeviceId(r * stride))
            .collect();
        ProcessGroup::new(ranks).map_err(|e| BaselineError::Setup(e.to_string()))
    }

    /// Kernel timer bound to a TP group of the given degree.
    pub fn timer(&self, tp: u32) -> Result<KernelTimer, BaselineError> {
        Ok(KernelTimer::new(
            self.topo.gpu.clone(),
            self.comm.clone(),
            self.tp_group(tp)?,
        ))
    }

    /// Unhidden DP collective durations for a rank holding
    /// `params_per_gpu` parameters in `vpp` chunks (§2.2: only the first
    /// chunk's all-gather and the last chunk's reduce-scatter cannot be
    /// overlapped).
    pub fn dp_comm(
        &self,
        params_per_gpu: u64,
        vpp: u32,
        dp: u32,
        stride: u32,
    ) -> Result<(DurNs, DurNs), BaselineError> {
        if dp <= 1 {
            return Ok((DurNs::ZERO, DurNs::ZERO));
        }
        let group = self.dp_group(dp, stride)?;
        let chunk_params = params_per_gpu / u64::from(vpp.max(1));
        // The distributed optimizer all-gathers this rank's (chunk's) bf16
        // parameters — each DP peer contributes a 1/dp shard of the local
        // tensor — and reduce-scatters the fp32 gradients of the same
        // tensor. The collective payload is the rank-local tensor size.
        let ag = self
            .comm
            .collective_time(CollectiveKind::AllGather, chunk_params * 2, &group);
        let rs = self.comm.straggled_collective_time(
            CollectiveKind::ReduceScatter,
            chunk_params * 4,
            &group,
        );
        Ok((ag, rs))
    }

    /// Inter-stage pipeline P2P duration for one microbatch's activations.
    pub fn p2p(&self, activation_bytes: u64) -> DurNs {
        // Adjacent pipeline stages live on different nodes at scale.
        if self.topo.num_nodes > 1 {
            self.comm.p2p_time_internode(activation_bytes)
        } else {
            self.comm.p2p_time_intranode(activation_bytes)
        }
    }
}

/// Builds the LLM backbone's per-virtual-stage specs for a plan.
pub fn llm_stages(
    cfg: &TransformerConfig,
    plan: &ParallelPlan,
    microbatch: u64,
    seq: u64,
    timer: &KernelTimer,
) -> Vec<StageSpec> {
    plan.layer_split(cfg.layers as u32)
        .into_iter()
        .map(|n| StageSpec::transformer_layers(cfg, n, microbatch, seq, u64::from(plan.tp), timer))
        .collect()
}

/// Per-device memory estimate for a pipelined system.
///
/// `stage_params[s]` / `stage_act[s]` give the parameters per GPU and the
/// activation bytes per in-flight microbatch of virtual stage `s`;
/// `inflight(rank)` bounds resident microbatches per rank.
pub fn pipeline_memory(
    stage_params: &[u64],
    stage_act: &[u64],
    pp: u32,
    vpp: u32,
    dp: u32,
    n_microbatches: u32,
) -> MemoryEstimate {
    let mut worst = MemoryEstimate::default();
    for rank in 0..pp {
        let mut params = 0u64;
        let mut chunk_act_sum = 0u64;
        for chunk in 0..vpp {
            let s = (chunk * pp + rank) as usize;
            params += stage_params[s];
            chunk_act_sum += stage_act[s];
        }
        // In-flight *virtual* microbatches, each holding one chunk's
        // activations: `pp − rank` under plain 1F1B; `2(pp−rank−1) +
        // (V−1)·pp + 1` (the warmup count + 1) under interleaving.
        let inflight = if vpp == 1 {
            u64::from((pp - rank).min(n_microbatches.max(1)))
        } else {
            u64::from(((pp - rank - 1) * 2 + (vpp - 1) * pp + 1).min(n_microbatches.max(1) * vpp))
        };
        let act = chunk_act_sum / u64::from(vpp) * inflight;
        let states = model_state_bytes(params, u64::from(dp));
        let est = MemoryEstimate {
            model_states: params * 6,
            optimizer: states - params * 6,
            activations: act,
            overhead: MemoryEstimate::DEFAULT_OVERHEAD,
        };
        if est.total() > worst.total() {
            worst = est;
        }
    }
    worst
}

/// Activation bytes per microbatch for `layers` layers of `cfg`.
pub fn stage_activation_bytes(
    cfg: &TransformerConfig,
    layers: u32,
    microbatch: u64,
    seq: u64,
    tp: u32,
    recompute: Recompute,
) -> u64 {
    u64::from(layers) * activation_bytes_per_layer(cfg, microbatch, seq, u64::from(tp), recompute)
}

/// Total model FLOPs of one training step of the whole MLLM.
pub fn workload_model_flops(w: &Workload) -> f64 {
    let llm = flops::model_step_flops(&w.mllm.llm, u64::from(w.global_batch), w.mllm.llm_seq);
    let enc: f64 = w
        .mllm
        .encoders
        .iter()
        .map(|e| flops::model_step_flops(e, u64::from(w.global_batch), w.mllm.encoder_seq))
        .sum();
    llm + enc
}

/// Assembles a [`StepReport`] from a measured iteration time.
pub fn make_report(
    system: &str,
    w: &Workload,
    ctx: &SystemContext,
    iteration_secs: f64,
    memory: &MemoryEstimate,
) -> StepReport {
    let model_flops = workload_model_flops(w);
    let mfu = flops::mfu(
        model_flops,
        iteration_secs,
        u64::from(w.num_gpus),
        ctx.topo.gpu.peak_flops,
    );
    StepReport {
        system: system.to_string(),
        iteration_secs,
        mfu,
        aggregate_pflops: model_flops / iteration_secs / 1e15,
        peak_memory_gib: memory.total_gib(),
        oom: !memory.fits(ctx.topo.gpu.hbm_capacity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_modeling::MllmConfig;

    #[test]
    fn dp_comm_reduce_scatter_exceeds_all_gather() {
        // Table 1 shape: the RS bubble (fp32 + straggling) is ~2.7× the AG.
        let ctx = SystemContext::hopper(3072).unwrap();
        let (ag, rs) = ctx.dp_comm(2_000_000_000, 1, 48, 64).unwrap();
        let ratio = rs.as_secs_f64() / ag.as_secs_f64();
        assert!((2.3..3.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dp1_has_no_dp_comm() {
        let ctx = SystemContext::hopper(8).unwrap();
        let (ag, rs) = ctx.dp_comm(1 << 30, 1, 1, 8).unwrap();
        assert!(ag.is_zero() && rs.is_zero());
    }

    #[test]
    fn pipeline_memory_worst_rank_is_first() {
        // Uniform stages: rank 0 holds the most in-flight microbatches.
        let params = vec![1u64 << 30; 4];
        let act = vec![1u64 << 28; 4];
        let est = pipeline_memory(&params, &act, 4, 1, 8, 16);
        // Rank 0: 4 in-flight microbatches of 256 MiB.
        assert_eq!(est.activations, 4 << 28);
    }

    #[test]
    fn report_computes_mfu() {
        let w = Workload::small_model();
        let ctx = SystemContext::ampere(8).unwrap();
        let mem = MemoryEstimate::default();
        let r = make_report("X", &w, &ctx, 3.0, &mem);
        assert!(r.mfu > 0.0 && r.mfu < 1.0, "mfu {}", r.mfu);
        assert!(!r.oom);
    }

    #[test]
    fn model_flops_dominated_by_llm() {
        let w = Workload::new(MllmConfig::model_d(), 512, 256, 1);
        let total = workload_model_flops(&w);
        let llm = flops::model_step_flops(&w.mllm.llm, 256, 2048);
        assert!(llm / total > 0.8);
    }
}

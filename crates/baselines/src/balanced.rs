//! The Megatron-LM-balanced strawman baseline (§5.1, Appendix B): the
//! concatenated encoder+LLM layer list is partitioned across `V × PP`
//! virtual stages by dynamic programming, then trained with the interleaved
//! 1F1B schedule.

use optimus_cluster::DurNs;
use optimus_modeling::memory::Recompute;
use optimus_modeling::{MemoryEstimate, StepReport, Workload};
use optimus_parallel::ParallelPlan;
use optimus_pipeline::{
    balance_layers, interleaved_1f1b, simulate_pipeline, PipelineSpec, StageSpec,
};

use crate::common::{make_report, pipeline_memory, stage_activation_bytes, SystemContext};
use crate::error::BaselineError;
use crate::megatron::MegatronRun;

/// Runs the Megatron-LM-balanced baseline with `v` model chunks per rank.
///
/// Only single-encoder MLLMs are supported: the Appendix B dynamic program
/// requires a linear layer sequence (the paper excludes this baseline from
/// the multi-encoder experiment for the same reason).
pub fn megatron_balanced(
    w: &Workload,
    (dp, pp, tp): (u32, u32, u32),
    v: u32,
    ctx: &SystemContext,
) -> Result<MegatronRun, BaselineError> {
    if w.mllm.encoders.len() != 1 {
        return Err(BaselineError::Infeasible(
            "balanced DP partitioning only applies to single-encoder MLLMs".into(),
        ));
    }
    let plan =
        ParallelPlan::with_vpp(dp, pp, tp, v).map_err(|e| BaselineError::Setup(e.to_string()))?;
    plan.check(w.num_gpus, ctx.topo.gpus_per_node)
        .map_err(|e| BaselineError::Setup(e.to_string()))?;
    let n_mb = w
        .microbatches(dp)
        .ok_or_else(|| BaselineError::Infeasible(format!("batch {} ∤ dp {dp}", w.global_batch)))?;
    if n_mb % pp != 0 {
        return Err(BaselineError::Infeasible(format!(
            "interleaved schedule needs pp ({pp}) | microbatches ({n_mb})"
        )));
    }

    let timer = ctx.timer(tp)?;
    let mb = u64::from(w.microbatch_size);
    let enc = &w.mllm.encoders[0];
    let llm = &w.mllm.llm;

    // Per-layer building blocks.
    let enc_layer =
        StageSpec::transformer_layers(enc, 1, mb, w.mllm.encoder_seq, u64::from(tp), &timer);
    let llm_layer =
        StageSpec::transformer_layers(llm, 1, mb, w.mllm.llm_seq, u64::from(tp), &timer);

    // Appendix B: layer times estimated from compute FLOPs.
    let enc_layers = enc.layers as usize;
    let llm_layers = llm.layers as usize;
    let mut layer_times: Vec<DurNs> = Vec::with_capacity(enc_layers + llm_layers);
    layer_times.extend(std::iter::repeat_n(
        enc_layer.fwd_compute() + enc_layer.bwd_compute(),
        enc_layers,
    ));
    layer_times.extend(std::iter::repeat_n(
        llm_layer.fwd_compute() + llm_layer.bwd_compute(),
        llm_layers,
    ));

    let partition = balance_layers(&layer_times, pp * v)?;

    // Build one StageSpec per virtual stage, mixing encoder and LLM layers
    // where a stage spans the boundary.
    let mut stages: Vec<StageSpec> = Vec::with_capacity((pp * v) as usize);
    let mut act_per_stage: Vec<u64> = Vec::with_capacity((pp * v) as usize);
    let mut cursor = 0usize;
    for &count in &partition.layers_per_stage {
        let count = count as usize;
        let (start, end) = (cursor, cursor + count);
        cursor = end;
        let n_enc = end.min(enc_layers).saturating_sub(start.min(enc_layers)) as u32;
        let n_llm = (count as u32) - n_enc;
        let mut stage = StageSpec::default();
        let mut act = 0u64;
        if n_enc > 0 {
            stage = stage.then(StageSpec::transformer_layers(
                enc,
                n_enc,
                mb,
                w.mllm.encoder_seq,
                u64::from(tp),
                &timer,
            ));
            act += stage_activation_bytes(
                enc,
                n_enc,
                mb,
                w.mllm.encoder_seq,
                tp,
                Recompute::Selective,
            );
        }
        if n_llm > 0 {
            stage = stage.then(StageSpec::transformer_layers(
                llm,
                n_llm,
                mb,
                w.mllm.llm_seq,
                u64::from(tp),
                &timer,
            ));
            act += stage_activation_bytes(llm, n_llm, mb, w.mllm.llm_seq, tp, Recompute::Selective);
        }
        stages.push(stage);
        act_per_stage.push(act);
    }

    let max_params = {
        // Per-rank parameters: sum over that rank's chunks.
        (0..pp)
            .map(|r| {
                (0..v)
                    .map(|c| stages[(c * pp + r) as usize].params_per_gpu)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
    };
    let (dp_ag, dp_rs) = ctx.dp_comm(max_params, v, dp, pp * tp)?;
    let act_bytes = stages.iter().map(|s| s.activation_bytes).max().unwrap_or(0);
    let spec = PipelineSpec {
        pp,
        vpp: v,
        n_microbatches: n_mb,
        stages,
        dp_allgather: dp_ag,
        dp_reducescatter: dp_rs,
        p2p: ctx.p2p(act_bytes),
    };
    let schedule = interleaved_1f1b(pp, v, n_mb, None)?;
    let (lowered, result) = simulate_pipeline(&spec, &schedule, &[])?;

    let params: Vec<u64> = spec.stages.iter().map(|s| s.params_per_gpu).collect();
    let memory: MemoryEstimate = pipeline_memory(&params, &act_per_stage, pp, v, dp, n_mb);
    let report: StepReport = make_report(
        "Megatron-LM balanced",
        w,
        ctx,
        result.makespan().as_secs_f64(),
        &memory,
    );

    Ok(MegatronRun {
        report,
        plan,
        spec,
        schedule,
        lowered,
        result,
        memory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::megatron::megatron_lm;
    use optimus_modeling::MllmConfig;

    #[test]
    fn balanced_beats_unbalanced_megatron() {
        // The whole point of the strawman: balancing the encoder across
        // stages removes the stage-0 bottleneck.
        let w = Workload::new(MllmConfig::small(), 8, 16, 1);
        let ctx = SystemContext::hopper(8).unwrap();
        let plain = megatron_lm(&w, (2, 2, 2), &ctx).unwrap();
        let bal = megatron_balanced(&w, (2, 2, 2), 2, &ctx).unwrap();
        assert!(
            bal.report.iteration_secs < plain.report.iteration_secs,
            "balanced {} vs plain {}",
            bal.report.iteration_secs,
            plain.report.iteration_secs
        );
    }

    #[test]
    fn stage_layer_totals_preserved() {
        let w = Workload::new(MllmConfig::small(), 8, 16, 1);
        let ctx = SystemContext::hopper(8).unwrap();
        let run = megatron_balanced(&w, (2, 2, 2), 2, &ctx).unwrap();
        // 48 encoder + 80 LLM layers split into 4 virtual stages; total
        // kernel counts must match the unsplit model.
        let total_fwd_kernels: usize = run.spec.stages.iter().map(|s| s.fwd.len()).sum();
        let per_layer = 13; // kernel decomposition length
        assert_eq!(total_fwd_kernels, (48 + 80) * per_layer);
    }

    #[test]
    fn multi_encoder_rejected() {
        let w = Workload::new(MllmConfig::dual_enc_11_5(), 8, 16, 1);
        let ctx = SystemContext::hopper(8).unwrap();
        assert!(matches!(
            megatron_balanced(&w, (2, 2, 2), 2, &ctx),
            Err(BaselineError::Infeasible(_))
        ));
    }

    #[test]
    fn indivisible_microbatches_rejected() {
        let w = Workload::new(MllmConfig::small(), 8, 10, 1);
        let ctx = SystemContext::hopper(8).unwrap();
        // dp=2 → 5 microbatches, pp=2 ∤ 5.
        assert!(matches!(
            megatron_balanced(&w, (2, 2, 2), 2, &ctx),
            Err(BaselineError::Infeasible(_))
        ));
    }
}

//! Baseline-crate errors.

use std::error::Error;
use std::fmt;

/// Errors from baseline-system construction or simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// Cluster / group construction failed.
    Setup(String),
    /// The workload cannot be expressed under this system (e.g. global batch
    /// smaller than the data-parallel width).
    Infeasible(String),
    /// Schedule generation or lowering failed.
    Pipeline(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Setup(s) => write!(f, "setup error: {s}"),
            BaselineError::Infeasible(s) => write!(f, "infeasible workload: {s}"),
            BaselineError::Pipeline(s) => write!(f, "pipeline error: {s}"),
        }
    }
}

impl Error for BaselineError {}

impl From<optimus_pipeline::PipelineError> for BaselineError {
    fn from(e: optimus_pipeline::PipelineError) -> BaselineError {
        BaselineError::Pipeline(e.to_string())
    }
}

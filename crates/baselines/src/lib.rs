//! Comparator training systems for the Optimus evaluation (§5.1).
//!
//! Four baselines, each built on the shared cluster/pipeline substrate:
//!
//! * [`megatron::megatron_lm`] — Megatron-LM with encoders packed into the
//!   first pipeline stage and a plain 1F1B schedule;
//! * [`balanced::megatron_balanced`] — the strawman that balances the
//!   concatenated layer list across `V × PP` virtual stages with the
//!   Appendix B dynamic program and interleaved 1F1B;
//! * [`fsdp::fsdp`] — PyTorch-FSDP-style sharded data parallelism;
//! * [`alpa::alpa`] — an Alpa-like automatic-parallelism search with a
//!   GPipe schedule.
//!
//! # Examples
//!
//! ```
//! use optimus_baselines::{megatron_lm, SystemContext};
//! use optimus_modeling::Workload;
//!
//! let w = Workload::small_model();
//! let ctx = SystemContext::hopper(8).unwrap();
//! let run = megatron_lm(&w, (2, 2, 2), &ctx).unwrap();
//! assert!(run.report.iteration_secs > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpa;
pub mod balanced;
pub mod common;
pub mod error;
pub mod fsdp;
pub mod megatron;

pub use alpa::{alpa, AlpaRun};
pub use balanced::megatron_balanced;
pub use common::{make_report, workload_model_flops, SystemContext};
pub use error::BaselineError;
pub use fsdp::fsdp;
pub use megatron::{megatron_lm, MegatronRun};

//! The Megatron-LM baseline (§5.1): encoders placed in the first pipeline
//! stage, LLM layers split evenly, plain 1F1B schedule.

use optimus_modeling::memory::Recompute;
use optimus_modeling::{MemoryEstimate, StepReport, Workload};
use optimus_parallel::ParallelPlan;
use optimus_pipeline::{
    one_f_one_b, simulate_pipeline, Lowered, PipelineSchedule, PipelineSpec, StageSpec,
};
use optimus_sim::SimResult;

use crate::common::{make_report, pipeline_memory, stage_activation_bytes, SystemContext};
use crate::error::BaselineError;

/// Everything produced by one simulated Megatron-style run. The lowered
/// graph and simulation result are retained so Optimus can reuse the LLM
/// timeline as its bubble profile.
#[derive(Debug, Clone)]
pub struct MegatronRun {
    /// Headline numbers.
    pub report: StepReport,
    /// The parallel plan used.
    pub plan: ParallelPlan,
    /// Pipeline spec (stages, DP/P2P durations).
    pub spec: PipelineSpec,
    /// Schedule.
    pub schedule: PipelineSchedule,
    /// Lowered task graph.
    pub lowered: Lowered,
    /// Simulation result.
    pub result: SimResult,
    /// Worst-GPU memory estimate.
    pub memory: MemoryEstimate,
}

/// Builds the per-virtual-stage memory inputs (params, activation bytes per
/// in-flight microbatch) from stage specs plus the activation model.
fn stage_memory_inputs(
    w: &Workload,
    plan: &ParallelPlan,
    stages: &[StageSpec],
    split: &[u32],
    enc_layers_in_first: u32,
) -> (Vec<u64>, Vec<u64>) {
    let params: Vec<u64> = stages.iter().map(|s| s.params_per_gpu).collect();
    let mb = u64::from(w.microbatch_size);
    let mut act: Vec<u64> = split
        .iter()
        .map(|&n| {
            stage_activation_bytes(
                &w.mllm.llm,
                n,
                mb,
                w.mllm.llm_seq,
                plan.tp,
                Recompute::Selective,
            )
        })
        .collect();
    if enc_layers_in_first > 0 {
        // Encoder activations in stage 0 (small hidden × short seq).
        let enc_act: u64 = w
            .mllm
            .encoders
            .iter()
            .map(|e| {
                stage_activation_bytes(
                    e,
                    e.layers as u32,
                    mb,
                    w.mllm.encoder_seq,
                    plan.tp,
                    Recompute::Selective,
                )
            })
            .sum();
        act[0] += enc_act;
    }
    (params, act)
}

/// Runs the Megatron-LM baseline: encoders in the first pipeline stage,
/// 1F1B schedule, distributed optimizer DP collectives.
pub fn megatron_lm(
    w: &Workload,
    (dp, pp, tp): (u32, u32, u32),
    ctx: &SystemContext,
) -> Result<MegatronRun, BaselineError> {
    let plan = ParallelPlan::new(dp, pp, tp).map_err(|e| BaselineError::Setup(e.to_string()))?;
    plan.check(w.num_gpus, ctx.topo.gpus_per_node)
        .map_err(|e| BaselineError::Setup(e.to_string()))?;
    let n_mb = w
        .microbatches(dp)
        .ok_or_else(|| BaselineError::Infeasible(format!("batch {} ∤ dp {dp}", w.global_batch)))?;

    let timer = ctx.timer(tp)?;
    let mb = u64::from(w.microbatch_size);

    // Encoders go into the first pipeline stage (the paper's adaptation of
    // Megatron-LM to MLLMs). Megatron's uneven-first-stage knob
    // (`--decoder-first-pipeline-num-layers`) lets the operator give stage 0
    // fewer LLM layers to compensate; a competent baseline tunes it, so we
    // pick the stage-0 LLM layer count that minimises the bottleneck stage.
    let mut enc_stage = StageSpec::default();
    let mut enc_layers = 0;
    for e in &w.mllm.encoders {
        let s = StageSpec::transformer_layers(
            e,
            e.layers as u32,
            mb,
            w.mllm.encoder_seq,
            u64::from(tp),
            &timer,
        );
        enc_layers += e.layers as u32;
        enc_stage = enc_stage.then(s);
    }
    let llm_layers = w.mllm.llm.layers as u32;
    let llm_layer_one =
        StageSpec::transformer_layers(&w.mllm.llm, 1, mb, w.mllm.llm_seq, u64::from(tp), &timer);
    let per_llm_layer = llm_layer_one.fwd_compute() + llm_layer_one.bwd_compute();
    let enc_cost = enc_stage.fwd_compute() + enc_stage.bwd_compute();
    let split = if enc_layers > 0 && pp > 1 {
        let even = llm_layers / pp;
        let mut best: Option<(u64, Vec<u32>)> = None;
        for first in 0..=even {
            let rest = llm_layers - first;
            // Remaining layers spread over the other pp−1 stages.
            let base = rest / (pp - 1);
            let extra = rest % (pp - 1);
            let mut counts = vec![first];
            counts.extend((0..pp - 1).map(|s| base + u32::from(s < extra)));
            let bottleneck = counts
                .iter()
                .enumerate()
                .map(|(s, &c)| u64::from(c) * per_llm_layer.0 + if s == 0 { enc_cost.0 } else { 0 })
                .max()
                .unwrap_or(0);
            if best.as_ref().map(|(b, _)| bottleneck < *b).unwrap_or(true) {
                best = Some((bottleneck, counts));
            }
        }
        best.map(|(_, c)| c)
            .unwrap_or_else(|| plan.layer_split(llm_layers))
    } else {
        plan.layer_split(llm_layers)
    };
    let mut stages: Vec<StageSpec> = split
        .iter()
        .map(|&c| {
            StageSpec::transformer_layers(&w.mllm.llm, c, mb, w.mllm.llm_seq, u64::from(tp), &timer)
        })
        .collect();
    if enc_layers > 0 {
        let llm0 = std::mem::take(&mut stages[0]);
        stages[0] = enc_stage.then(llm0);
    }

    let max_params = stages.iter().map(|s| s.params_per_gpu).max().unwrap_or(0);
    let (dp_ag, dp_rs) = ctx.dp_comm(max_params, plan.vpp, dp, pp * tp)?;
    let act_bytes = stages.iter().map(|s| s.activation_bytes).max().unwrap_or(0);
    let spec = PipelineSpec {
        pp,
        vpp: 1,
        n_microbatches: n_mb,
        stages,
        dp_allgather: dp_ag,
        dp_reducescatter: dp_rs,
        p2p: ctx.p2p(act_bytes),
    };
    let schedule = one_f_one_b(pp, n_mb)?;
    let (lowered, result) = simulate_pipeline(&spec, &schedule, &[])?;

    let (params, act) = stage_memory_inputs(w, &plan, &spec.stages, &split, enc_layers);
    let memory = pipeline_memory(&params, &act, pp, 1, dp, n_mb);
    let report = make_report(
        "Megatron-LM",
        w,
        ctx,
        result.makespan().as_secs_f64(),
        &memory,
    );

    Ok(MegatronRun {
        report,
        plan,
        spec,
        schedule,
        lowered,
        result,
        memory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_modeling::MllmConfig;
    use optimus_sim::{BubbleBreakdown, BubbleKind};

    fn small_run() -> MegatronRun {
        let w = Workload::new(MllmConfig::small(), 8, 16, 1);
        let ctx = SystemContext::hopper(8).unwrap();
        megatron_lm(&w, (2, 2, 2), &ctx).unwrap()
    }

    #[test]
    fn produces_finite_iteration_time() {
        let run = small_run();
        assert!(run.report.iteration_secs > 0.0);
        assert!(run.report.iteration_secs.is_finite());
        assert!(run.report.mfu > 0.0 && run.report.mfu < 1.0);
    }

    #[test]
    fn first_stage_is_heaviest() {
        // Encoders in stage 0 make it the compute bottleneck.
        let run = small_run();
        let s0 = run.spec.stages[0].fwd_compute();
        let s1 = run.spec.stages[1].fwd_compute();
        assert!(s0 > s1, "stage0 {s0} vs stage1 {s1}");
    }

    #[test]
    fn imbalance_creates_pp_bubbles() {
        // A deeper pipeline (pp=4) makes the encoder-in-stage-0 imbalance
        // visible as pipeline bubbles on the later stages.
        let w = Workload::new(MllmConfig::small(), 8, 16, 1);
        let ctx = SystemContext::hopper(8).unwrap();
        let run = megatron_lm(&w, (1, 4, 2), &ctx).unwrap();
        let bd = BubbleBreakdown::measure(&run.lowered.graph, &run.result);
        let pp_frac = bd.fraction(BubbleKind::PpOther)
            + bd.fraction(BubbleKind::PpWarmup)
            + bd.fraction(BubbleKind::PpCooldown);
        assert!(pp_frac > 0.02, "pp bubble fraction {pp_frac}");
    }

    #[test]
    fn infeasible_batch_rejected() {
        let w = Workload::new(MllmConfig::small(), 8, 3, 1);
        let ctx = SystemContext::hopper(8).unwrap();
        assert!(matches!(
            megatron_lm(&w, (2, 2, 2), &ctx),
            Err(BaselineError::Infeasible(_))
        ));
    }

    #[test]
    fn fewer_microbatches_raise_bubble_ratio() {
        // §5.2.2: with batch fixed, scaling GPUs shrinks the per-pipeline
        // microbatch count and the bubble ratio rises (MFU drops). Emulate by
        // shrinking the batch at a fixed plan.
        let ctx = SystemContext::hopper(8).unwrap();
        let many = Workload::new(MllmConfig::small(), 8, 32, 1); // 16 microbatches
        let few = Workload::new(MllmConfig::small(), 8, 8, 1); // 4 microbatches
        let m = megatron_lm(&many, (2, 2, 2), &ctx).unwrap();
        let f = megatron_lm(&few, (2, 2, 2), &ctx).unwrap();
        let bd_many = BubbleBreakdown::measure(&m.lowered.graph, &m.result);
        let bd_few = BubbleBreakdown::measure(&f.lowered.graph, &f.result);
        assert!(
            bd_few.total_fraction() > bd_many.total_fraction(),
            "few {:.3} vs many {:.3}",
            bd_few.total_fraction(),
            bd_many.total_fraction()
        );
        assert!(f.report.mfu < m.report.mfu);
    }

    #[test]
    fn memory_reported_positive() {
        let run = small_run();
        assert!(run.memory.total_gib() > 1.0);
    }
}
